//! The Chapter 3 pipeline, end to end, on one workload.
//!
//! ```text
//! cargo run --release --example locality_study [slang|plagen|lyra|editor|pearl]
//! ```
//!
//! Runs the chosen benchmark Lisp program on the instrumented
//! interpreter, partitions the recorded list access stream into list
//! sets (§3.3.2.1), and prints the structural-locality report the
//! thesis builds in Figures 3.4–3.7 and Tables 3.1–3.2.

use small_repro::analysis::list_sets::{partition, SeparationConstraint};
use small_repro::analysis::lru::StackDistances;
use small_repro::analysis::np::np_summary;
use small_repro::analysis::ChainStats;
use small_repro::trace::TraceStats;
use small_repro::workloads;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "slang".into());
    println!("running the {which} workload on the instrumented interpreter…");
    let run = match which.as_str() {
        "slang" => workloads::slang::run(1),
        "plagen" => workloads::plagen::run(1),
        "lyra" => workloads::lyra::run(1),
        "editor" => workloads::editor::run(1),
        "pearl" => workloads::pearl::run(1),
        other => {
            eprintln!("unknown workload {other}");
            std::process::exit(2);
        }
    };
    let trace = &run.trace;
    let stats = TraceStats::of(trace);
    println!("\n=== trace (Table 5.1 row) ===");
    println!("primitive events : {}", stats.primitives);
    println!("function calls   : {}", stats.functions);
    println!("max call depth   : {}", stats.max_depth);

    let np = np_summary(trace);
    println!("\n=== list complexity (Table 3.1) ===");
    println!("mean n per encounter: {:.2}", np.mean_n);
    println!("mean p per encounter: {:.2}", np.mean_p);
    println!("distinct lists      : {}", np.lists);

    let p = partition(trace, SeparationConstraint::Fraction(0.10));
    println!("\n=== list-set partition, 10% separation (Figures 3.4-3.6) ===");
    println!("list sets          : {}", p.sets.len());
    println!("list references    : {}", p.total_refs);
    for q in [0.5, 0.8, 0.95] {
        println!("sets covering {:>3.0}% : {}", q * 100.0, p.sets_to_cover(q));
    }
    let mut sizes: Vec<usize> = p.sets.iter().map(|s| s.size).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("largest sets       : {:?}", &sizes[..sizes.len().min(5)]);

    let lru = StackDistances::of(p.ref_set_ids.iter().copied());
    println!("\n=== temporal locality over list sets (Figure 3.7) ===");
    for d in [1usize, 2, 4, 8] {
        println!(
            "LRU depth {d}: {:.1}% of references",
            lru.hit_rate(d) * 100.0
        );
    }

    let chains = ChainStats::of(trace);
    println!("\n=== primitive chaining (Table 3.2) ===");
    println!("CAR calls in chains: {:.1}%", chains.car_pct());
    println!("CDR calls in chains: {:.1}%", chains.cdr_pct());

    let top10 = p.coverage_curve().get(9).map_or(1.0, |x| x.1);
    println!(
        "\nconclusion: {:.1}% of all list references live in the {} largest list sets —",
        top10 * 100.0,
        10.min(p.sets.len())
    );
    println!("a fast structure (the LPT) that captures those locales captures the workload.");
}
