//! Quickstart: compile a Lisp program and run it on the SMALL machine.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Compiles the thesis's own example functions (Figures 4.14/4.15) to
//! the stack-machine ISA, runs them against the conventional
//! direct-heap backend and against the SMALL List Processor, shows the
//! disassembly, and prints the LPT activity the SMALL run generated.

use small_repro::lisp::compiler::compile_program;
use small_repro::lisp::vm::{DirectBackend, ListBackend, Vm};
use small_repro::sexpr::{parse, print, Interner};
use small_repro::small::machine::SmallBackend;
use small_repro::small::LpConfig;

const PROGRAM: &str = "
(def fact (lambda (x)
  (cond ((equal x 0) 1)
        (t (times x (fact (sub x 1)))))))

(def app (lambda (a b)
  (cond ((null a) b)
        (t (cons (car a) (app (cdr a) b))))))

(def doit (lambda ()
  (prog (lst)
    (read lst)
    (write (app lst (app lst nil)))
    (return (fact 10)))))

(doit)
";

fn main() {
    let mut interner = Interner::new();
    let program = compile_program(PROGRAM, &mut interner).expect("compiles");

    println!("=== compiled stack code (Figures 4.14/4.15 style) ===");
    println!("{}", program.disassemble(&interner));

    // Run on the conventional machine: lists as raw two-pointer cells.
    let mut direct = Vm::new(program.clone(), DirectBackend::new(1 << 16));
    direct
        .input
        .push_back(parse("(a b c)", &mut interner).unwrap());
    let v1 = direct.run().expect("direct run");
    let out1 = direct.backend.write_out(&v1);

    // Run the *same code* on the SMALL organization: every list
    // operation goes through the List Processor and its LPT.
    let mut small = Vm::new(program, SmallBackend::new(1 << 16, LpConfig::default()));
    small
        .input
        .push_back(parse("(a b c)", &mut interner).unwrap());
    let v2 = small.run().expect("small run");
    let out2 = small.backend.write_out(&v2);

    println!("=== results ===");
    println!("direct heap : {}", print(&out1, &interner));
    println!("SMALL LP/LPT: {}", print(&out2, &interner));
    println!("written     : {}", print(&small.output[0], &interner));
    assert_eq!(out1, out2, "both machines agree");

    let stats = small.backend.lp.stats();
    println!("\n=== LPT activity for the SMALL run ===");
    println!("entry allocations (Gets) : {}", stats.gets);
    println!("entries freed (Frees)    : {}", stats.frees);
    println!("car/cdr LPT hits         : {}", stats.hits);
    println!("car/cdr heap splits      : {}", stats.misses);
    println!("refcount operations      : {}", stats.refops);
    println!("peak LPT occupancy       : {}", stats.max_occupancy);
    println!(
        "LPT hit rate             : {:.1}%",
        stats.hit_rate() * 100.0
    );
    println!("\ncons never touches the heap: transient cells lived and died in the table.");
}
