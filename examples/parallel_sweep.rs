//! The instrumented parallel sweep engine, end to end.
//!
//! ```text
//! cargo run --release --example parallel_sweep
//! ```
//!
//! Fans the standard 12-cell configuration grid (three LPT sizes × both
//! compression policies × unified/split reference counts) over a
//! synthetic Table-5.1 trace across all available cores, each cell on
//! its own fully-instrumented List Processor, then:
//!
//! * writes the deterministic machine-readable report to
//!   `results/sweep_standard.json` (byte-identical regardless of the
//!   thread count used), and
//! * prints the human summary table.

use small_repro::simulator::sweep::{run_sweep, SweepGrid};
use small_repro::workloads::synthetic;
use std::path::Path;

fn main() {
    let mut params = synthetic::table_5_1("slang");
    params.primitives = 5000;
    let trace = synthetic::generate(&params);

    let grid = SweepGrid::standard("sweep_standard");
    let report = run_sweep(&trace, &grid, 0);

    print!("{}", report.summary_table());

    match report.write_json(Path::new("results")) {
        Ok(path) => println!("\nmachine-readable report: {}", path.display()),
        Err(e) => eprintln!("could not write results/: {e}"),
    }

    // The aggregate view: merge every cell's metrics into one snapshot.
    let mut total = report.cells[0].metrics.clone();
    for c in &report.cells[1..] {
        total.merge(&c.metrics);
    }
    println!(
        "grid totals: {} refops, {} entry allocations, {} heap splits, {} compression passes",
        total.counts.refops.get(),
        total.counts.entries_allocated.get(),
        total.counts.heap_splits.get(),
        total.counts.pseudo_overflows.get(),
    );
}
