//! Chapter 6 demo: a four-node SMALL Multilisp moving list structure
//! around with weighted references, futures overlapping the evaluation.
//!
//! ```text
//! cargo run --release --example multilisp_demo
//! ```

use small_repro::multilisp::{pcall, MultiNode};
use small_repro::sexpr::{parse, print, Interner};

fn main() {
    let mut interner = Interner::new();
    let mut system = MultiNode::new(4, 512);

    // Node 0 builds a shared database; the other nodes receive weighted
    // references — copies cost no messages (Figure 6.5).
    let db = parse(
        "((alpha (1 2 3)) (beta (4 5)) (gamma (6 7 8 9)))",
        &mut interner,
    )
    .unwrap();
    let mut root = system.create(0, &db);
    println!("node 0 owns: {}", print(&system.fetch(0, &root), &interner));

    let mut handed = Vec::new();
    for node in 1..4 {
        // Each node takes several references (it passes them on to its
        // own sub-computations).
        for _ in 0..4 {
            handed.push((node, system.copy_ref(&mut root)));
        }
        println!(
            "node {node} received 4 weighted references (messages so far: {})",
            system.stats.weight_messages
        );
    }
    assert_eq!(system.stats.weight_messages, 0, "copies are free");

    // Each node fetches the structure — one request/reply per remote
    // fetch. (In a full system the fetched copy would be installed in
    // the local LPT; here we show the message accounting.)
    for (node, r) in &handed {
        let e = system.fetch(*node, r);
        println!("node {node} fetched {} cells", e.cell_count());
    }
    println!("copy messages: {}", system.stats.copy_messages);

    // The nodes drop their references in a burst; each node's combining
    // queue merges its updates to the same object (Figure 6.6), so
    // twelve releases cost three messages.
    let n_releases = handed.len();
    for (node, r) in handed {
        system.release(node, r);
    }
    let sent = system.flush();
    println!(
        "{n_releases} releases -> {sent} weight messages ({} combined away)",
        system.stats.combined_saved
    );

    system.release(0, root);
    system.flush();
    assert_eq!(system.occupancy(0), 0);
    println!("owner reclaimed the object once global weight hit zero\n");

    // Futures: parallel argument evaluation (§6.2.1.2). The arguments
    // are independent, so eager parallel evaluation preserves
    // sequential semantics.
    println!("evaluating (list (fib 33) (fib 32) (fib 31)) with parallel arguments…");
    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }
    let t0 = std::time::Instant::now();
    let parallel = pcall(vec![
        (|| fib(33)) as fn() -> u64,
        (|| fib(32)) as fn() -> u64,
        (|| fib(31)) as fn() -> u64,
    ]);
    let t_par = t0.elapsed();
    let t0 = std::time::Instant::now();
    let sequential = [fib(33), fib(32), fib(31)];
    let t_seq = t0.elapsed();
    assert_eq!(parallel, sequential.to_vec());
    println!("results {parallel:?}; parallel {t_par:?} vs sequential {t_seq:?}");
}
