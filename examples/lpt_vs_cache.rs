//! The Chapter 5 headline experiment in miniature: drive the SMALL List
//! Processor with a trace while an equal-capacity LRU data cache watches
//! the same car/cdr request stream (§5.2.5, Table 5.4, Figure 5.4).
//!
//! ```text
//! cargo run --release --example lpt_vs_cache [table-size]
//! ```

use small_repro::simulator::driver::{run_sim, CacheConfig};
use small_repro::simulator::{sweep, SimParams};
use small_repro::workloads::synthetic;

fn main() {
    let size_arg: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());

    // The SLANG trace at its Table 5.1 scale (2304 primitives).
    let trace = synthetic::generate(&synthetic::table_5_1("slang"));
    let knee = sweep::knee(&trace, SimParams::default());
    println!(
        "SLANG trace: {} primitives; LPT knee = {knee} entries",
        2304
    );

    let sizes: Vec<usize> = match size_arg {
        Some(s) => vec![s],
        None => vec![knee / 2, knee * 3 / 4, knee, knee * 2],
    };

    println!(
        "\n{:>6}  {:>9} {:>8}   {:>11} {:>8}",
        "size", "LPTmisses", "LPT%", "cachemisses", "cache%"
    );
    for size in sizes {
        let r = run_sim(
            &trace,
            SimParams::default().with_table(size.max(8)),
            Some(CacheConfig {
                lines: size.max(8),
                line_cells: 1,
            }),
        );
        println!(
            "{:>6}  {:>9} {:>7.2}%   {:>11} {:>7.2}%{}",
            size,
            r.access_misses,
            r.lpt_hit_rate() * 100.0,
            r.cache_misses,
            r.cache_hit_rate() * 100.0,
            if r.true_overflow {
                "  (true overflow)"
            } else {
                ""
            },
        );
    }

    println!("\nWith unit cache lines the LPT wins at equal entry count: it caches");
    println!("*structure* (car/cdr edges), not memory words, so every hit skips the");
    println!("pointer-chase entirely — the §5.2.5 observation. Longer cache lines");
    println!("claw back ground by prefetching (Figure 5.5): try");
    println!("  cargo run -p small-bench --bin repro --release -- fig5.5");
}
