//! Cycle-accurate EP/LP span tracing, end to end.
//!
//! ```text
//! cargo run --release --example profile_timeline
//! ```
//!
//! Runs a synthetic Table-5.1 trace through the simulator with a
//! full-fidelity [`SpanSink`] attached, then:
//!
//! * writes a Perfetto-loadable Chrome trace (EP, LP, heap, and GC as
//!   separate named tracks) to `results/profile/timeline.trace.json`,
//! * writes folded stacks (`workload;primitive;phase cycles`) to
//!   `results/profile/timeline.folded`,
//! * writes the deterministic attribution JSON to
//!   `results/profile/attribution.json`,
//! * prints the per-primitive attribution table and the §4.3.2.5
//!   EP/LP-overlap summary, and
//! * asserts the acceptance bar: the profiler's overlap and
//!   chaining-stall totals are *exactly* equal to
//!   [`TimingModel::run_stream`]'s batch accounting on the same run.
//!
//! [`SpanSink`]: small_repro::profile::SpanSink
//! [`TimingModel::run_stream`]: small_repro::small::timing::TimingModel::run_stream

use small_repro::profile::SpanSink;
use small_repro::simulator::driver::{run_sim_profiled, run_sim_with_sink};
use small_repro::simulator::SimParams;
use small_repro::small::timing::TimingModel;
use small_repro::workloads::synthetic;
use std::path::Path;

fn main() {
    let mut params = synthetic::table_5_1("slang");
    params.primitives = 2000;
    let trace = synthetic::generate(&params);

    let (result, profile) = run_sim_profiled(&trace, SimParams::default(), None);
    assert!(!result.true_overflow, "workload must complete");

    // The acceptance bar: incremental virtual clock == batch run_stream,
    // exactly, on every total.
    let replay = profile.replay_stream_timing();
    assert_eq!(
        profile.timing, replay,
        "span accounting must equal TimingModel::run_stream"
    );
    let blocked: u64 = profile.attribution.iter().map(|a| a.blocked).sum();
    assert_eq!(
        profile.timing.ep_idle,
        profile.stall_cycles() + blocked,
        "EP idle decomposes into chaining stalls + blocked waits"
    );

    println!("profiled {} ops over '{}'", profile.timing.ops, trace.name);
    println!("\nper-primitive attribution (cycles):");
    print!("{}", profile.attribution_table());
    println!(
        "\nEP/LP concurrency (§4.3.2.5): {} total cycles, EP idle {}, LP idle {}",
        profile.timing.total, profile.timing.ep_idle, profile.timing.lp_idle
    );
    println!(
        "  chaining stalls: {} cycles | overlapped LP tail work: {} cycles | EP utilization {:.1}%",
        profile.stall_cycles(),
        profile.overlap_cycles(),
        profile.timing.ep_utilization() * 100.0
    );

    // The §4.3.2.5 caveat made visible: re-run the same workload with
    // *no* EP work between requests. Back-to-back requests must now wait
    // for the previous operation's LP tail — the chaining stall.
    let tight_sink: SpanSink =
        SpanSink::with_model(&trace.name, TimingModel::default(), 0).summary_only();
    let (_, tight) = run_sim_with_sink(&trace, SimParams::default(), None, tight_sink);
    let tight = tight.finish();
    assert_eq!(tight.timing, tight.replay_stream_timing());
    assert!(
        tight.stall_cycles() >= profile.stall_cycles(),
        "removing inter-op EP work cannot reduce chaining stalls"
    );
    println!(
        "  back-to-back requests (ep_gap 0): {} stall cycles, EP utilization {:.1}%",
        tight.stall_cycles(),
        tight.timing.ep_utilization() * 100.0
    );

    let dir = Path::new("results/profile");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("could not create {}: {e}", dir.display());
        return;
    }
    let outputs = [
        ("timeline.trace.json", profile.chrome_trace_json()),
        ("timeline.folded", profile.folded_stacks()),
        ("attribution.json", profile.attribution_json()),
    ];
    for (name, body) in outputs {
        let path = dir.join(name);
        match std::fs::write(&path, body) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    println!("open timeline.trace.json in https://ui.perfetto.dev or chrome://tracing");
}
