//! The trace pipeline as the thesis ran it: generate a trace file from
//! an instrumented run, then drive the SMALL simulator from the file —
//! decoupling trace collection from architecture evaluation, exactly
//! the §3.3.1 / §5.2.1 workflow.
//!
//! ```text
//! cargo run --release --example trace_pipeline [workload] [table-size]
//! ```

use small_repro::simulator::driver::{run_sim, CacheConfig};
use small_repro::simulator::SimParams;
use small_repro::trace::io;
use small_repro::workloads;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "plagen".into());
    let table: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);

    // Stage 1: the instrumented interpreter writes a trace file.
    println!("[1/3] tracing the {which} workload…");
    let run = match which.as_str() {
        "slang" => workloads::slang::run(1),
        "plagen" => workloads::plagen::run(1),
        "lyra" => workloads::lyra::run(1),
        "editor" => workloads::editor::run(1),
        "pearl" => workloads::pearl::run(1),
        other => {
            eprintln!("unknown workload {other}");
            std::process::exit(2);
        }
    };
    let dir = std::env::temp_dir();
    let path = dir.join(format!("{which}.trace"));
    io::save_file(&run.trace, &path).expect("write trace file");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "      {} events -> {} ({bytes} bytes)",
        run.trace.events.len(),
        path.display()
    );

    // Stage 2: reload — the evaluation can happen on another machine,
    // at another time, exactly as the thesis archived its traces.
    println!("[2/3] reloading the trace…");
    let trace = io::load_file(&path).expect("read trace file");
    assert_eq!(trace, run.trace, "lossless round-trip");

    // Stage 3: trace-driven simulation of the SMALL machine with the
    // data-cache comparator watching the same request stream.
    println!("[3/3] simulating SMALL with a {table}-entry LPT…");
    let r = run_sim(
        &trace,
        SimParams::default().with_table(table),
        Some(CacheConfig {
            lines: table,
            line_cells: 1,
        }),
    );
    println!("\n=== results ===");
    println!("primitives executed : {}", r.prims_executed);
    println!("LPT peak occupancy  : {}", r.lpt.max_occupancy);
    println!("LPT avg occupancy   : {:.0}", r.lpt.avg_occupancy());
    println!("pseudo overflows    : {}", r.lpt.pseudo_overflows);
    println!(
        "LPT hit rate        : {:.2}%  ({} misses)",
        r.lpt_hit_rate() * 100.0,
        r.access_misses
    );
    println!(
        "cache hit rate      : {:.2}%  ({} misses)",
        r.cache_hit_rate() * 100.0,
        r.cache_misses
    );
    println!("refcount operations : {}", r.lpt.refops);
    if r.true_overflow {
        println!("!! true LPT overflow — rerun with a larger table");
    }
    let _ = std::fs::remove_file(&path);
}
