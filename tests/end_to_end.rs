//! Cross-crate integration: the full thesis pipeline, end to end.
//!
//! workload Lisp source → instrumented interpreter → trace → (a) the
//! Chapter 3 locality analyses, (b) trace file round-trip, (c) the
//! Chapter 5 trace-driven simulation of the SMALL core with the cache
//! comparator — plus compiled-program equivalence between the
//! conventional backend and the SMALL machine.

use small_repro::analysis::list_sets::{partition, SeparationConstraint};
use small_repro::lisp::compiler::compile_program;
use small_repro::lisp::vm::{DirectBackend, ListBackend, Vm};
use small_repro::sexpr::{print, Interner};
use small_repro::simulator::driver::{run_sim, CacheConfig};
use small_repro::simulator::SimParams;
use small_repro::small::machine::SmallBackend;
use small_repro::small::LpConfig;
use small_repro::trace;
use small_repro::workloads;

#[test]
fn workload_to_analysis_to_simulation() {
    // One mid-sized workload through the whole pipeline.
    let run = workloads::pearl::run(1);
    let t = &run.trace;
    assert!(t.primitive_count() > 100);

    // Chapter 3: the partition is total — every reference lands in a set.
    let p = partition(t, SeparationConstraint::Fraction(0.10));
    assert_eq!(
        p.ref_set_ids.len(),
        p.total_refs,
        "every reference classified"
    );
    assert_eq!(
        p.sets.iter().map(|s| s.size).sum::<usize>(),
        p.total_refs,
        "set sizes sum to the reference count"
    );

    // Trace file round-trip.
    let mut buf = Vec::new();
    trace::io::save(t, &mut buf).expect("save");
    let back = trace::io::load(std::io::Cursor::new(buf)).expect("load");
    assert_eq!(*t, back);

    // Chapter 5: the simulator completes and the cache sees the same
    // request stream.
    let r = run_sim(
        t,
        SimParams::default(),
        Some(CacheConfig {
            lines: 256,
            line_cells: 1,
        }),
    );
    assert!(!r.true_overflow);
    assert_eq!(r.prims_executed, t.primitive_count());
    assert_eq!(
        r.cache_hits + r.cache_misses,
        r.access_hits + r.access_misses
    );
}

#[test]
fn compiled_programs_agree_across_machines() {
    let programs = [
        "(def fact (lambda (x) (cond ((equal x 0) 1) (t (times x (fact (sub x 1))))))) (fact 12)",
        "(def rev (lambda (l acc) (cond ((null l) acc) (t (rev (cdr l) (cons (car l) acc))))))
         (rev '(1 (2 3) 4 (5) 6) nil)",
        "(prog (x y)
           (setq x '(10 20 30))
           (setq y (cons 5 x))
           (rplaca x 99)
           (return y))",
        "(def len (lambda (l) (cond ((null l) 0) (t (add 1 (len (cdr l)))))))
         (len '(a b c d e f g))",
    ];
    for src in programs {
        let mut i1 = Interner::new();
        let p1 = compile_program(src, &mut i1).expect("compile");
        let mut direct = Vm::new(p1, DirectBackend::new(1 << 14));
        let v1 = direct.run().expect("direct");
        let r1 = print(&direct.backend.write_out(&v1), &i1);

        let mut i2 = Interner::new();
        let p2 = compile_program(src, &mut i2).expect("compile");
        let mut small = Vm::new(p2, SmallBackend::new(1 << 14, LpConfig::default()));
        let v2 = small.run().expect("small");
        let r2 = print(&small.backend.write_out(&v2), &i2);

        assert_eq!(r1, r2, "machines disagree on: {src}");
    }
}

#[test]
fn interpreter_and_compiled_vm_agree() {
    use small_repro::lisp::env::DeepEnv;
    use small_repro::lisp::interp::{Interp, NoHook, PRELUDE};

    let programs = [
        "(append '(1 2) '(3 4 5))",
        "(reverse '(a b c d))",
        "(assoc 'k2 '((k1 . 1) (k2 . 2)))",
    ];
    // The compiled VM has no prelude; compile the needed library with
    // the program.
    let lib = "
    (def append (lambda (a b)
      (cond ((null a) b) (t (cons (car a) (append (cdr a) b))))))
    (def reverse-onto (lambda (a acc)
      (cond ((null a) acc) (t (reverse-onto (cdr a) (cons (car a) acc))))))
    (def reverse (lambda (a) (reverse-onto a nil)))
    (def assoc (lambda (k al)
      (cond ((null al) nil)
            ((equal k (car (car al))) (car al))
            (t (assoc k (cdr al))))))
    ";
    for src in programs {
        let mut it = Interp::new(Interner::new(), DeepEnv::new(), NoHook);
        it.run_program(PRELUDE).unwrap();
        let v = it.run_program(src).unwrap();
        let interp_result = print(&v.to_sexpr(), &it.interner);

        let mut i = Interner::new();
        let p = compile_program(&format!("{lib}\n{src}"), &mut i).unwrap();
        let mut vm = Vm::new(p, DirectBackend::new(1 << 14));
        let vv = vm.run().unwrap();
        let vm_result = print(&vm.backend.write_out(&vv), &i);

        assert_eq!(interp_result, vm_result, "disagreement on: {src}");
    }
}

#[test]
fn small_machine_reclaims_everything_for_every_workload_program() {
    // Run a list-churning program on the SMALL backend; after shutdown
    // and lazy-drain, the LPT must be empty and the heap fully free
    // (the §5.3.2 garbage story, end to end).
    let src = "
    (def build (lambda (n)
      (cond ((equal n 0) nil) (t (cons (cons n n) (build (sub n 1)))))))
    (def churn (lambda (k)
      (cond ((equal k 0) 0)
            (t (prog (tmp)
                 (setq tmp (build 40))
                 (rplaca tmp 0)
                 (return (add 1 (churn (sub k 1)))))))))
    (churn 25)";
    let mut i = Interner::new();
    let p = compile_program(src, &mut i).unwrap();
    let mut vm = Vm::new(p, SmallBackend::new(1 << 14, LpConfig::default()));
    let v = vm.run().expect("run");
    assert!(matches!(v, small_repro::lisp::vm::VmValue::Int(25)));
    vm.shutdown();
    vm.backend.lp.drain_lazy();
    assert_eq!(vm.backend.lp.occupancy(), 0);
    let free = vm.backend.lp.controller.drain_and_free();
    assert_eq!(free, 1 << 14, "every heap cell recovered");
}
