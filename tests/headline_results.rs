//! Regression guards for the headline reproduced results (see
//! EXPERIMENTS.md). Uses the two small Chapter 5 traces so the guards
//! stay fast in debug builds.

use small_repro::simulator::driver::{run_sim, CacheConfig};
use small_repro::simulator::{sweep, SimParams};
use small_repro::workloads::synthetic::{generate, table_5_1};

#[test]
fn fig5_1_shape_slang() {
    // Slope-1 region with pseudo overflows below the knee; flat above.
    let t = generate(&table_5_1("slang"));
    let knee = sweep::knee(&t, SimParams::default());
    assert!(
        (40..120).contains(&knee),
        "slang knee {knee} left its historical band"
    );
    let below = run_sim(&t, SimParams::default().with_table(knee * 3 / 4), None);
    assert_eq!(
        below.lpt.max_occupancy,
        knee * 3 / 4,
        "table fills below knee"
    );
    assert!(below.lpt.pseudo_overflows > 0);
    let above = run_sim(&t, SimParams::default().with_table(knee * 2), None);
    assert_eq!(above.lpt.max_occupancy, knee, "flat above the knee");
    assert_eq!(above.lpt.pseudo_overflows, 0);
}

#[test]
fn table5_4_direction_slang() {
    // LPT out-hits an equal-entry unit-line LRU cache; cache misses are
    // roughly 2x LPT misses on SLANG (the thesis's Table 5.4 row).
    let t = generate(&table_5_1("slang"));
    let knee = sweep::knee(&t, SimParams::default());
    let r = run_sim(
        &t,
        SimParams::default().with_table(knee),
        Some(CacheConfig {
            lines: knee,
            line_cells: 1,
        }),
    );
    assert!(
        r.cache_misses as f64 >= 1.5 * r.access_misses as f64,
        "cache {} vs LPT {} misses",
        r.cache_misses,
        r.access_misses
    );
    assert!(r.lpt_hit_rate() > 0.80, "{}", r.lpt_hit_rate());
}

#[test]
fn fig5_5_lines_help_then_hurt_slang() {
    // With 2x half-size entries the cache improves to mid line sizes and
    // falls off at long lines (the paper's falling-off behaviour).
    let t = generate(&table_5_1("slang"));
    let knee = sweep::knee(&t, SimParams::default());
    let size = knee * 3 / 4;
    let r1 = sweep::line_size_ratio(&t, SimParams::default(), size, 1);
    let r4 = sweep::line_size_ratio(&t, SimParams::default(), size, 4);
    let r16 = sweep::line_size_ratio(&t, SimParams::default(), size, 16);
    assert!(r4 < r1, "lines should help at first: L1 {r1:.2} L4 {r4:.2}");
    assert!(
        r16 > r4,
        "long lines should fall off: L4 {r4:.2} L16 {r16:.2}"
    );
}

#[test]
fn table5_2_and_5_3_directions_editor() {
    let t = generate(&table_5_1("editor"));
    let act = sweep::lpt_activity(&t, SimParams::default());
    assert!(act.rec_refops > act.refops);
    // 1-3+ refcount ops per primitive (§5.2.4 note), loosely banded.
    let per_prim = act.refops as f64 / 1437.0;
    assert!(
        (0.5..6.0).contains(&per_prim),
        "refops per primitive {per_prim:.2}"
    );
    let split = sweep::split_counts(&t, SimParams::default());
    assert!(split.refops_now < split.refops_then);
    assert!(split.max_now_lpt <= split.max_then);
}
