//! The strongest end-to-end check in the repository: a real benchmark
//! workload (the SLANG circuit simulator, and LYRA's rule checker),
//! *compiled* by the §4.3.4 compiler and executed on the SMALL machine,
//! must produce exactly the outputs the instrumented interpreter
//! produces — and the SMALL machine must fully account for its storage
//! afterwards.

use small_repro::lisp::compiler::compile_program;
use small_repro::lisp::interp::PRELUDE;
use small_repro::lisp::vm::{DirectBackend, ListBackend, Vm, VmValue};
use small_repro::sexpr::{print, Interner, SExpr};
use small_repro::small::machine::SmallBackend;
use small_repro::small::LpConfig;
use small_repro::workloads;

fn run_compiled<B: ListBackend>(
    source: &str,
    inputs: Vec<SExpr>,
    interner: &mut Interner,
    backend: B,
) -> (Vec<String>, B) {
    let program =
        compile_program(&format!("{PRELUDE}\n{source}"), interner).expect("workload compiles");
    let mut vm = Vm::new(program, backend);
    for e in inputs {
        vm.input.push_back(e);
    }
    vm.set_budget(500_000_000);
    let v = vm.run().expect("workload runs");
    if let VmValue::List(r) = &v {
        vm.backend.release(r);
    }
    vm.shutdown();
    let outputs = vm.output.iter().map(|e| print(e, interner)).collect();
    (outputs, vm.backend)
}

#[test]
fn slang_compiled_on_small_matches_interpreter() {
    // Interpreter run (the tracing pipeline's view).
    let interp = workloads::slang::run(1);
    let interp_out: Vec<String> = interp
        .outputs
        .iter()
        .map(|e| print(e, &interp.interner))
        .collect();

    // Compiled, on the conventional machine.
    let mut i1 = Interner::new();
    let in1 = workloads::slang::inputs(1, &mut i1);
    let (direct_out, _) = run_compiled(
        workloads::slang::source(),
        in1,
        &mut i1,
        DirectBackend::new(1 << 18),
    );

    // Compiled, on the SMALL machine.
    let mut i2 = Interner::new();
    let in2 = workloads::slang::inputs(1, &mut i2);
    let (small_out, backend) = run_compiled(
        workloads::slang::source(),
        in2,
        &mut i2,
        SmallBackend::new(1 << 18, LpConfig::default()),
    );

    assert_eq!(interp_out, direct_out, "interpreter vs compiled/direct");
    assert_eq!(interp_out, small_out, "interpreter vs compiled/SMALL");
    assert_eq!(interp_out.len(), 10, "ten decoder outputs");

    // Full storage accounting on the SMALL machine.
    let mut lp = backend.lp;
    lp.drain_lazy();
    assert_eq!(lp.occupancy(), 0, "LPT empty after the workload");
    let free = lp.controller.drain_and_free();
    assert_eq!(free, 1 << 18, "every heap cell recovered");
}

#[test]
fn lyra_compiled_on_small_matches_interpreter() {
    let interp = workloads::lyra::run(1);
    let interp_out: Vec<String> = interp
        .outputs
        .iter()
        .map(|e| print(e, &interp.interner))
        .collect();

    let mut i2 = Interner::new();
    let in2 = workloads::lyra::inputs(1, &mut i2);
    let (small_out, backend) = run_compiled(
        workloads::lyra::source(),
        in2,
        &mut i2,
        SmallBackend::new(1 << 18, LpConfig::default()),
    );
    assert_eq!(interp_out, small_out, "interpreter vs compiled/SMALL");

    let mut lp = backend.lp;
    lp.drain_lazy();
    assert_eq!(lp.occupancy(), 0);
}

#[test]
fn slang_on_small_under_table_pressure() {
    // A small LPT forces compression during a real workload; results
    // must be unchanged. Probe downward for the smallest table (from a
    // set of candidates) that completes without true overflow; the live
    // working set of the compiled run bounds it from below.
    let mut i2 = Interner::new();
    let inputs2 = workloads::slang::inputs(1, &mut i2);
    let (out_big_table, _) = run_compiled(
        workloads::slang::source(),
        inputs2,
        &mut i2,
        SmallBackend::new(1 << 18, LpConfig::default()),
    );

    let mut squeezed = None;
    for size in [256usize, 384, 512, 768, 1024] {
        let mut i = Interner::new();
        let inputs = workloads::slang::inputs(1, &mut i);
        let program = compile_program(
            &format!(
                "{PRELUDE}
{}",
                workloads::slang::source()
            ),
            &mut i,
        )
        .unwrap();
        let mut vm = Vm::new(
            program,
            SmallBackend::new(
                1 << 18,
                LpConfig {
                    table_size: size,
                    ..LpConfig::default()
                },
            ),
        );
        for e in inputs {
            vm.input.push_back(e);
        }
        vm.set_budget(500_000_000);
        match vm.run() {
            Ok(_) => {
                let out: Vec<String> = vm.output.iter().map(|e| print(e, &i)).collect();
                eprintln!(
                    "size {size}: ok, pseudo={} peak={}",
                    vm.backend.lp.stats().pseudo_overflows,
                    vm.backend.lp.stats().max_occupancy
                );
                squeezed = Some((size, out, vm.backend.lp.stats()));
                break;
            }
            Err(e) => {
                eprintln!("size {size}: {e}");
                assert!(
                    e.to_string().contains("true overflow"),
                    "only true overflow is acceptable: {e}"
                );
            }
        }
    }
    let (size, out, stats) = squeezed.expect("some candidate size completes");
    assert_eq!(
        out, out_big_table,
        "pressure at size {size} changed results"
    );
    assert!(
        stats.pseudo_overflows > 0 || size >= 1024,
        "the squeezed run should have compressed"
    );
}
