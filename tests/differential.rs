//! Differential testing: randomly generated, type-safe Lisp programs
//! must produce identical results on all three execution engines —
//! the tree-walking interpreter, the compiled VM over the direct heap,
//! and the compiled VM over the SMALL List Processor — and the SMALL
//! run must account for every reference (empty LPT after shutdown).
//!
//! Programs are generated from a typed grammar (Int / List / Any) so
//! every expression is a runtime-safe Lisp program by construction:
//! `car`/`cdr` only ever apply to list-typed expressions, arithmetic to
//! int-typed ones.

use proptest::prelude::*;
use small_repro::lisp::compiler::compile_program;
use small_repro::lisp::env::DeepEnv;
use small_repro::lisp::interp::{Interp, NoHook, PRELUDE};
use small_repro::lisp::vm::{DirectBackend, ListBackend, Vm, VmValue};
use small_repro::sexpr::{print, Interner};
use small_repro::small::machine::SmallBackend;
use small_repro::small::LpConfig;

/// Library functions available to generated programs (terminating,
/// defined identically for the interpreter prelude and the compiled
/// program).
const LIB: &str = "
(def append (lambda (a b)
  (cond ((null a) b) (t (cons (car a) (append (cdr a) b))))))
(def reverse-onto (lambda (a acc)
  (cond ((null a) acc) (t (reverse-onto (cdr a) (cons (car a) acc))))))
(def reverse (lambda (a) (reverse-onto a nil)))
(def length (lambda (a)
  (cond ((null a) 0) (t (add 1 (length (cdr a)))))))
";

#[derive(Clone, Copy, PartialEq)]
enum Ty {
    Int,
    List,
}

fn gen_expr(ty: Ty, depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        return match ty {
            Ty::Int => (-20i64..20).prop_map(|i| i.to_string()).boxed(),
            Ty::List => prop_oneof![
                Just("nil".to_string()),
                prop::collection::vec(-9i64..9, 0..4).prop_map(|xs| format!(
                    "'({})",
                    xs.iter().map(i64::to_string).collect::<Vec<_>>().join(" ")
                )),
            ]
            .boxed(),
        };
    }
    let d = depth - 1;
    match ty {
        Ty::Int => prop_oneof![
            gen_expr(Ty::Int, 0),
            (gen_expr(Ty::Int, d), gen_expr(Ty::Int, d))
                .prop_map(|(a, b)| format!("(add {a} {b})")),
            (gen_expr(Ty::Int, d), gen_expr(Ty::Int, d))
                .prop_map(|(a, b)| format!("(sub {a} {b})")),
            (gen_expr(Ty::Int, d), gen_expr(Ty::Int, d))
                .prop_map(|(a, b)| format!("(times {a} {b})")),
            gen_expr(Ty::List, d).prop_map(|l| format!("(length {l})")),
            // cond with a list-typed test and int-typed arms.
            (
                gen_expr(Ty::List, d),
                gen_expr(Ty::Int, d),
                gen_expr(Ty::Int, d)
            )
                .prop_map(|(t, a, b)| format!("(cond ((null {t}) {a}) (t {b}))")),
        ]
        .boxed(),
        Ty::List => prop_oneof![
            gen_expr(Ty::List, 0),
            // cons of anything onto a list.
            (gen_expr(Ty::Int, d), gen_expr(Ty::List, d))
                .prop_map(|(a, b)| format!("(cons {a} {b})")),
            (gen_expr(Ty::List, d), gen_expr(Ty::List, d))
                .prop_map(|(a, b)| format!("(cons {a} {b})")),
            // cdr of a list is a list; nil-safe.
            gen_expr(Ty::List, d).prop_map(|l| format!("(cdr {l})")),
            (gen_expr(Ty::List, d), gen_expr(Ty::List, d))
                .prop_map(|(a, b)| format!("(append {a} {b})")),
            gen_expr(Ty::List, d).prop_map(|l| format!("(reverse {l})")),
            (
                gen_expr(Ty::List, d),
                gen_expr(Ty::List, d),
                gen_expr(Ty::List, d)
            )
                .prop_map(|(t, a, b)| format!("(cond ((null {t}) {a}) (t {b}))")),
        ]
        .boxed(),
    }
}

fn arb_program() -> impl Strategy<Value = String> {
    prop_oneof![gen_expr(Ty::Int, 4), gen_expr(Ty::List, 4)]
}

/// Mutation scenes (§2's `rplaca`/`rplacd` path): a `prog` builds
/// fresh cells over generated list-typed bindings, mutates them —
/// directly, through shared structure, and through a temporary
/// self-referential knot — and returns an observation. Mutation
/// targets are `cons` results, so they are non-nil by construction;
/// cycles are always broken before the value is written out.
fn gen_mutation_program() -> impl Strategy<Value = String> {
    let int = || gen_expr(Ty::Int, 2);
    let list = || gen_expr(Ty::List, 2);
    prop_oneof![
        // Both fields of a fresh cell, observed after mutation.
        (int(), list(), int(), list()).prop_map(|(a, l, b, l2)| format!(
            "(prog (m0) \
               (setq m0 (cons {a} {l})) \
               (rplaca m0 {b}) \
               (rplacd m0 {l2}) \
               (return (cons (car m0) (cdr m0))))"
        )),
        // Shared structure: m1's tail IS m0; a write through m0 must be
        // visible through m1, and the shared tail is guarded before a
        // second write through the alias.
        (int(), list(), int(), int(), list()).prop_map(|(a, l, b, c, l2)| format!(
            "(prog (m0 m1) \
               (setq m0 (cons {a} {l})) \
               (setq m1 (cons {b} m0)) \
               (rplaca m0 {c}) \
               (rplacd m0 {l2}) \
               (cond ((null (cdr m0)) nil) (t (rplaca (cdr m0) (car m1)))) \
               (return (cons (car (cdr m1)) (append m1 m0))))"
        )),
        // Self-reference: tie a two-cell knot with rplacd, read back
        // through the cycle, then break it before returning (so
        // write-out sees a tree and the LPT can drain to empty).
        (int(), int()).prop_map(|(a, b)| format!(
            "(prog (m0 m1) \
               (setq m0 (cons {a} (cons {b} nil))) \
               (rplacd (cdr m0) m0) \
               (setq m1 (car (cdr (cdr m0)))) \
               (rplacd (cdr m0) nil) \
               (return (cons m1 m0)))"
        )),
        // A chain rewrite: mutate an interior fresh cell, retarget its
        // tail at a still-shared cell, then write through the share.
        (int(), int(), int(), int(), int()).prop_map(|(a, b, c, d, e)| format!(
            "(prog (m0 m1) \
               (setq m0 (cons {a} nil)) \
               (setq m1 (cons {b} (cons {c} m0))) \
               (rplaca (cdr m1) {d}) \
               (rplacd (cdr m1) (cons {e} m0)) \
               (rplaca m0 (length m1)) \
               (return (append m1 (cons (car m0) nil))))"
        )),
    ]
}

fn run_interp(src: &str) -> String {
    let mut it = Interp::new(Interner::new(), DeepEnv::new(), NoHook);
    it.run_program(PRELUDE).expect("prelude");
    it.set_step_budget(50_000_000);
    let v = it.run_program(src).expect("interp run");
    print(&v.to_sexpr(), &it.interner)
}

fn run_vm<B: ListBackend>(src: &str, backend: B) -> (String, B) {
    let mut i = Interner::new();
    let p = compile_program(&format!("{LIB}\n{src}"), &mut i).expect("compile");
    let mut vm = Vm::new(p, backend);
    vm.set_budget(50_000_000);
    let v = vm.run().expect("vm run");
    let out = print(&vm.backend.write_out(&v), &i);
    if let VmValue::List(r) = &v {
        vm.backend.release(r);
    }
    vm.shutdown();
    (out, vm.backend)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn three_engines_agree(src in arb_program()) {
        let interp = run_interp(&src);
        let (direct, _) = run_vm(&src, DirectBackend::new(1 << 16));
        let (small, backend) = run_vm(&src, SmallBackend::new(1 << 16, LpConfig::default()));
        prop_assert_eq!(&interp, &direct, "interpreter vs direct VM on {}", src);
        prop_assert_eq!(&interp, &small, "interpreter vs SMALL on {}", src);
        // Reference accounting on the SMALL machine: nothing leaks.
        let mut lp = backend.lp;
        lp.drain_lazy();
        prop_assert_eq!(lp.occupancy(), 0, "LPT leak running {}", src);
    }

    #[test]
    fn three_engines_agree_under_mutation(src in gen_mutation_program()) {
        let interp = run_interp(&src);
        let (direct, _) = run_vm(&src, DirectBackend::new(1 << 16));
        let (small, backend) = run_vm(&src, SmallBackend::new(1 << 16, LpConfig::default()));
        prop_assert_eq!(&interp, &direct, "interpreter vs direct VM on {}", src);
        prop_assert_eq!(&interp, &small, "interpreter vs SMALL on {}", src);
        // §5.3.2 still holds under §2's mutation path: every reference
        // retained through rplaca/rplacd is released by shutdown.
        let mut lp = backend.lp;
        lp.drain_lazy();
        prop_assert_eq!(lp.occupancy(), 0, "LPT leak running {}", src);
    }

    #[test]
    fn small_machine_tiny_table_still_correct(src in gen_expr(Ty::List, 3)) {
        // A small LPT forces compression mid-run; results must not change.
        let (big, _) = run_vm(&src, SmallBackend::new(1 << 16, LpConfig::default()));
        let (tiny, _) = run_vm(
            &src,
            SmallBackend::new(
                1 << 16,
                LpConfig {
                    table_size: 48,
                    ..LpConfig::default()
                },
            ),
        );
        prop_assert_eq!(big, tiny, "compression changed the result of {}", src);
    }
}
