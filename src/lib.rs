//! Umbrella crate for the SMALL reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use
//! one coherent namespace. See `README.md` for the architecture overview
//! and `DESIGN.md` for the per-experiment index.

pub use small_analysis as analysis;
pub use small_chaos as chaos;
pub use small_core as small;
pub use small_heap as heap;
pub use small_lisp as lisp;
pub use small_metrics as metrics;
pub use small_multilisp as multilisp;
pub use small_persist as persist;
pub use small_profile as profile;
pub use small_serve as serve;
pub use small_sexpr as sexpr;
pub use small_simulator as simulator;
pub use small_trace as trace;
pub use small_workloads as workloads;
