//! Per-trace summary statistics (Table 5.1: "Content of the 4 Traces").

use crate::event::{Prim, Trace};
use std::collections::BTreeMap;

/// The Table 5.1 row for one trace, plus the primitive mix used by
/// Figure 3.1.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Trace name.
    pub name: String,
    /// User-defined function calls.
    pub functions: usize,
    /// Primitive events (trace length).
    pub primitives: usize,
    /// Maximum dynamic call depth.
    pub max_depth: usize,
    /// Count per primitive.
    pub prim_counts: BTreeMap<Prim, usize>,
    /// Distinct list uids encountered.
    pub distinct_lists: usize,
}

impl TraceStats {
    /// Compute the statistics for a trace.
    pub fn of(trace: &Trace) -> TraceStats {
        let mut prim_counts = BTreeMap::new();
        for (p, _, _) in trace.prims() {
            *prim_counts.entry(p).or_insert(0) += 1;
        }
        TraceStats {
            name: trace.name.clone(),
            functions: trace.fn_call_count(),
            primitives: trace.primitive_count(),
            max_depth: trace.max_call_depth(),
            prim_counts,
            distinct_lists: trace.uids.iter().filter(|u| !u.atom).count(),
        }
    }

    /// Percentage of primitives that are `p` (Figure 3.1 bars).
    pub fn prim_percent(&self, p: Prim) -> f64 {
        if self.primitives == 0 {
            return 0.0;
        }
        100.0 * *self.prim_counts.get(&p).unwrap_or(&0) as f64 / self.primitives as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, ListRef};

    #[test]
    fn stats_and_percentages() {
        let lref = |uid| ListRef {
            uid,
            exact: Some(uid as u64),
            chained: false,
        };
        let t = Trace {
            name: "x".into(),
            events: vec![
                Event::Prim {
                    prim: Prim::Car,
                    args: vec![lref(0)],
                    result: lref(1),
                },
                Event::Prim {
                    prim: Prim::Car,
                    args: vec![lref(0)],
                    result: lref(1),
                },
                Event::Prim {
                    prim: Prim::Cons,
                    args: vec![lref(0), lref(1)],
                    result: lref(2),
                },
                Event::Prim {
                    prim: Prim::Cdr,
                    args: vec![lref(2)],
                    result: lref(0),
                },
            ],
            uids: vec![
                crate::event::UidInfo {
                    n: 1,
                    p: 0,
                    atom: false,
                },
                crate::event::UidInfo {
                    n: 1,
                    p: 0,
                    atom: false,
                },
                crate::event::UidInfo {
                    n: 2,
                    p: 0,
                    atom: false,
                },
            ],
            fn_names: vec![],
        };
        let s = TraceStats::of(&t);
        assert_eq!(s.primitives, 4);
        assert_eq!(s.prim_percent(Prim::Car), 50.0);
        assert_eq!(s.prim_percent(Prim::Cons), 25.0);
        assert_eq!(s.prim_percent(Prim::Rplaca), 0.0);
        assert_eq!(s.distinct_lists, 3);
    }
}
