//! The trace event model.
//!
//! A trace is the sequence of list-primitive calls and user-function
//! enters/exits from one program run. Each list operand is recorded as a
//! [`ListRef`] carrying:
//!
//! * `uid` — the "looks identical ⇒ same id" unique identifier of
//!   §5.2.1 (lists with equal s-expression prints share a uid),
//! * `exact` — the exact cons-cell identity from our interpreter
//!   (information the thesis could not extract from Franz Lisp),
//! * `chained` — the §5.2.1 chaining flag: this argument is the value
//!   returned by the immediately preceding primitive call.

use std::fmt;

/// The traced primitives (the LP request set, §4.3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Prim {
    /// Simple list access.
    Car,
    /// Simple list access.
    Cdr,
    /// List construction.
    Cons,
    /// Simple list modification.
    Rplaca,
    /// Simple list modification.
    Rplacd,
    /// List input (`readlist`).
    Read,
}

impl Prim {
    /// All primitives, in display order (Figure 3.1 stacks car/cdr/cons).
    pub const ALL: [Prim; 6] = [
        Prim::Car,
        Prim::Cdr,
        Prim::Cons,
        Prim::Rplaca,
        Prim::Rplacd,
        Prim::Read,
    ];

    /// Lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Prim::Car => "car",
            Prim::Cdr => "cdr",
            Prim::Cons => "cons",
            Prim::Rplaca => "rplaca",
            Prim::Rplacd => "rplacd",
            Prim::Read => "read",
        }
    }

    /// Parse a name back (for trace files).
    pub fn from_name(s: &str) -> Option<Prim> {
        Prim::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A reference to a list (or atom) operand in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListRef {
    /// "Looks-identical" unique id (§5.2.1): equal s-expression prints
    /// share a uid. Atoms get uids too (their printed form).
    pub uid: u32,
    /// Exact cell identity from the interpreter (`None` for atoms).
    pub exact: Option<u64>,
    /// Chaining flag: this operand is the result of the immediately
    /// preceding primitive call in the trace (§5.2.1).
    pub chained: bool,
}

impl ListRef {
    /// Whether the operand was a list (has exact cell identity).
    pub fn is_list(&self) -> bool {
        self.exact.is_some()
    }
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A list-primitive call: `prim(args…) = result`.
    Prim {
        /// Which primitive.
        prim: Prim,
        /// Operands (in call order).
        args: Vec<ListRef>,
        /// The returned value.
        result: ListRef,
    },
    /// Entry to a user-defined function (name table index, arg count).
    FnEnter {
        /// Index into [`Trace::fn_names`].
        name: u32,
        /// Number of arguments in the call.
        nargs: u8,
    },
    /// Return from the matching user-defined function.
    FnExit,
}

/// Per-uid metadata: the `n`/`p` complexity of the list's s-expression
/// form at first encounter (§3.3.1), used by the simulator to size heap
/// objects and by the Fig 3.3 histograms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UidInfo {
    /// Number of atoms (n).
    pub n: u32,
    /// Internal parenthesis pairs (p).
    pub p: u32,
    /// Whether the uid denotes an atom rather than a list.
    pub atom: bool,
}

/// A complete recorded trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Workload name (e.g. "slang").
    pub name: String,
    /// The event sequence.
    pub events: Vec<Event>,
    /// Per-uid complexity metadata, indexed by uid.
    pub uids: Vec<UidInfo>,
    /// User-function name strings, indexed by [`Event::FnEnter::name`].
    pub fn_names: Vec<String>,
}

impl Trace {
    /// Number of primitive events (the "trace length" of the thesis).
    pub fn primitive_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Prim { .. }))
            .count()
    }

    /// Number of user-function calls.
    pub fn fn_call_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::FnEnter { .. }))
            .count()
    }

    /// Maximum function-call nesting depth.
    pub fn max_call_depth(&self) -> usize {
        let mut depth = 0usize;
        let mut max = 0usize;
        for e in &self.events {
            match e {
                Event::FnEnter { .. } => {
                    depth += 1;
                    max = max.max(depth);
                }
                Event::FnExit => depth = depth.saturating_sub(1),
                Event::Prim { .. } => {}
            }
        }
        max
    }

    /// Iterate just the primitive events.
    pub fn prims(&self) -> impl Iterator<Item = (Prim, &[ListRef], &ListRef)> {
        self.events.iter().filter_map(|e| match e {
            Event::Prim { prim, args, result } => Some((*prim, args.as_slice(), result)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lref(uid: u32) -> ListRef {
        ListRef {
            uid,
            exact: Some(uid as u64),
            chained: false,
        }
    }

    #[test]
    fn prim_name_roundtrip() {
        for p in Prim::ALL {
            assert_eq!(Prim::from_name(p.name()), Some(p));
        }
        assert_eq!(Prim::from_name("bogus"), None);
    }

    #[test]
    fn trace_counters() {
        let t = Trace {
            name: "t".into(),
            events: vec![
                Event::FnEnter { name: 0, nargs: 1 },
                Event::Prim {
                    prim: Prim::Car,
                    args: vec![lref(0)],
                    result: lref(1),
                },
                Event::FnEnter { name: 1, nargs: 0 },
                Event::FnExit,
                Event::FnExit,
            ],
            uids: vec![],
            fn_names: vec!["f".into(), "g".into()],
        };
        assert_eq!(t.primitive_count(), 1);
        assert_eq!(t.fn_call_count(), 2);
        assert_eq!(t.max_call_depth(), 2);
    }

    #[test]
    fn prims_iterator_filters() {
        let t = Trace {
            events: vec![
                Event::FnEnter { name: 0, nargs: 0 },
                Event::Prim {
                    prim: Prim::Cons,
                    args: vec![lref(0), lref(1)],
                    result: lref(2),
                },
            ],
            fn_names: vec!["f".into()],
            ..Default::default()
        };
        let v: Vec<_> = t.prims().collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, Prim::Cons);
    }
}
