#![warn(missing_docs)]
//! List-primitive traces: the experimental raw material of Chapters 3
//! and 5.
//!
//! The thesis modified a Franz Lisp interpreter so that "on the call of a
//! list access or modify function, the function name and its arguments
//! (in s-expression form) were written to a trace file" (§3.3.1), then
//! pre-processed each file so that every list argument became a unique
//! identifier plus a *chaining flag* (§5.2.1). This crate reproduces that
//! pipeline:
//!
//! * [`event`] — the trace event model (primitive calls with list
//!   references, function enter/exit),
//! * [`record`] — a [`small_lisp::EvalHook`] that captures events from
//!   live interpreter runs, assigning "looks-identical" unique ids and
//!   chaining flags,
//! * [`io`] — a line-oriented text file format (no external
//!   serialization dependency),
//! * [`stats`] — per-trace summary statistics (Table 5.1).

pub mod event;
pub mod io;
pub mod record;
pub mod stats;

pub use event::{Event, ListRef, Prim, Trace};
pub use record::Recorder;
pub use stats::TraceStats;
