//! Line-oriented trace file format.
//!
//! One record per line, whitespace-separated:
//!
//! ```text
//! T <name>                          header
//! N <fn-name>                       function-name table entry (in order)
//! U <n> <p> <atom 0|1>              uid table entry (in order)
//! P <prim> <result> <arg>*          primitive event
//! F <fn-index> <nargs>              function entry
//! X                                 function exit
//! ```
//!
//! where each operand reference is `uid[:exact][*]` — `:exact` present
//! for lists, a trailing `*` marks the chaining flag.
//!
//! The format is deliberately simple and dependency-free; trace files
//! compress well and diff cleanly.

use crate::event::{Event, ListRef, Prim, Trace, UidInfo};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Serialize a trace to a writer.
pub fn save<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    let mut buf = String::new();
    writeln!(buf, "T {}", trace.name).unwrap();
    for n in &trace.fn_names {
        writeln!(buf, "N {n}").unwrap();
    }
    for u in &trace.uids {
        writeln!(buf, "U {} {} {}", u.n, u.p, u8::from(u.atom)).unwrap();
    }
    for e in &trace.events {
        match e {
            Event::Prim { prim, args, result } => {
                write!(buf, "P {prim} ").unwrap();
                write_ref(&mut buf, result);
                for a in args {
                    buf.push(' ');
                    write_ref(&mut buf, a);
                }
                buf.push('\n');
            }
            Event::FnEnter { name, nargs } => {
                writeln!(buf, "F {name} {nargs}").unwrap();
            }
            Event::FnExit => buf.push_str("X\n"),
        }
        if buf.len() > 1 << 20 {
            w.write_all(buf.as_bytes())?;
            buf.clear();
        }
    }
    w.write_all(buf.as_bytes())?;
    Ok(())
}

fn write_ref(buf: &mut String, r: &ListRef) {
    write!(buf, "{}", r.uid).unwrap();
    if let Some(e) = r.exact {
        write!(buf, ":{e}").unwrap();
    }
    if r.chained {
        buf.push('*');
    }
}

/// Errors from [`load`].
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number, description).
    Parse(usize, String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse(line, what) => write!(f, "line {line}: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Deserialize a trace from a reader.
pub fn load<R: BufRead>(r: R) -> Result<Trace, LoadError> {
    let mut trace = Trace::default();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| LoadError::Parse(lineno, what.to_owned());
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("T") => {
                trace.name = parts.collect::<Vec<_>>().join(" ");
            }
            Some("N") => {
                trace.fn_names.push(parts.collect::<Vec<_>>().join(" "));
            }
            Some("U") => {
                let n = parse_num(parts.next(), lineno)?;
                let p = parse_num(parts.next(), lineno)?;
                let atom: u32 = parse_num(parts.next(), lineno)?;
                trace.uids.push(UidInfo {
                    n,
                    p,
                    atom: atom != 0,
                });
            }
            Some("P") => {
                let prim = parts
                    .next()
                    .and_then(Prim::from_name)
                    .ok_or_else(|| bad("bad primitive name"))?;
                let result = parse_ref(parts.next().ok_or_else(|| bad("missing result"))?)
                    .ok_or_else(|| bad("bad result ref"))?;
                let args = parts
                    .map(|p| parse_ref(p).ok_or_else(|| bad("bad arg ref")))
                    .collect::<Result<Vec<_>, _>>()?;
                trace.events.push(Event::Prim { prim, args, result });
            }
            Some("F") => {
                let name = parse_num(parts.next(), lineno)?;
                let nargs: u32 = parse_num(parts.next(), lineno)?;
                trace.events.push(Event::FnEnter {
                    name,
                    nargs: nargs.min(255) as u8,
                });
            }
            Some("X") => trace.events.push(Event::FnExit),
            Some(other) => return Err(bad(&format!("unknown record '{other}'"))),
            None => {}
        }
    }
    Ok(trace)
}

fn parse_num<T: std::str::FromStr>(s: Option<&str>, line: usize) -> Result<T, LoadError> {
    s.and_then(|x| x.parse().ok())
        .ok_or_else(|| LoadError::Parse(line, "bad number".to_owned()))
}

fn parse_ref(s: &str) -> Option<ListRef> {
    let (s, chained) = match s.strip_suffix('*') {
        Some(rest) => (rest, true),
        None => (s, false),
    };
    let (uid_s, exact) = match s.split_once(':') {
        Some((u, e)) => (u, Some(e.parse::<u64>().ok()?)),
        None => (s, None),
    };
    Some(ListRef {
        uid: uid_s.parse().ok()?,
        exact,
        chained,
    })
}

/// Save a trace to a file path.
pub fn save_file(trace: &Trace, path: &std::path::Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    save(trace, io::BufWriter::new(f))
}

/// Load a trace from a file path.
pub fn load_file(path: &std::path::Path) -> Result<Trace, LoadError> {
    let f = std::fs::File::open(path)?;
    load(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            name: "sample".into(),
            events: vec![
                Event::FnEnter { name: 0, nargs: 2 },
                Event::Prim {
                    prim: Prim::Car,
                    args: vec![ListRef {
                        uid: 0,
                        exact: Some(17),
                        chained: false,
                    }],
                    result: ListRef {
                        uid: 1,
                        exact: None,
                        chained: false,
                    },
                },
                Event::Prim {
                    prim: Prim::Cons,
                    args: vec![
                        ListRef {
                            uid: 1,
                            exact: None,
                            chained: true,
                        },
                        ListRef {
                            uid: 0,
                            exact: Some(17),
                            chained: false,
                        },
                    ],
                    result: ListRef {
                        uid: 2,
                        exact: Some(18),
                        chained: false,
                    },
                },
                Event::FnExit,
            ],
            uids: vec![
                UidInfo {
                    n: 3,
                    p: 0,
                    atom: false,
                },
                UidInfo {
                    n: 1,
                    p: 0,
                    atom: true,
                },
                UidInfo {
                    n: 4,
                    p: 1,
                    atom: false,
                },
            ],
            fn_names: vec!["doit".into()],
        }
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        save(&t, &mut buf).unwrap();
        let t2 = load(io::Cursor::new(buf)).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn format_is_line_oriented_text() {
        let mut buf = Vec::new();
        save(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("T sample\n"));
        assert!(text.contains("P car "));
        assert!(text.contains("1*"), "chained flag marker present");
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load(io::Cursor::new(b"Z nonsense\n".to_vec())).is_err());
        assert!(load(io::Cursor::new(b"P bogus 1\n".to_vec())).is_err());
        assert!(load(io::Cursor::new(b"U x y z\n".to_vec())).is_err());
    }

    #[test]
    fn empty_lines_skipped() {
        let t = load(io::Cursor::new(b"T x\n\n\nX\n".to_vec())).unwrap();
        assert_eq!(t.name, "x");
        assert_eq!(t.events.len(), 1);
    }
}
