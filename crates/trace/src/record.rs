//! Live trace recording from interpreter runs.
//!
//! [`Recorder`] implements [`small_lisp::EvalHook`]: each traced
//! primitive call is converted to s-expression form, deduplicated into a
//! "looks-identical" uid (§5.2.1), tagged with its exact cell identity
//! and the chaining flag, and appended to the growing [`Trace`].

use crate::event::{Event, ListRef, Prim, Trace, UidInfo};
use small_lisp::interp::EvalHook;
use small_lisp::value::Value;
use small_sexpr::metrics::np;
use small_sexpr::{Interner, SExpr, Symbol};
use std::collections::HashMap;

/// A trace recorder; plug into [`small_lisp::Interp`] as its hook.
pub struct Recorder {
    trace: Trace,
    /// Looks-identical table: s-expression → uid.
    uid_table: HashMap<SExpr, u32>,
    /// Function-name table.
    fn_table: HashMap<Symbol, u32>,
    /// Result of the previous primitive (for chaining flags): uid.
    prev_result: Option<u32>,
    /// Primitive symbols resolved lazily against the interpreter's
    /// interner (symbol ids differ per session).
    prim_syms: Vec<(Symbol, Prim)>,
    /// Cap on converted list size (guards against cyclic structures).
    conversion_budget: usize,
}

impl Recorder {
    /// Create a recorder. `interner` must be the same interner the
    /// interpreter will run with (primitive names are resolved from it).
    pub fn new(name: &str, interner: &mut Interner) -> Self {
        let prim_syms = [
            ("car", Prim::Car),
            ("cdr", Prim::Cdr),
            ("cons", Prim::Cons),
            ("rplaca", Prim::Rplaca),
            ("rplacd", Prim::Rplacd),
            ("read", Prim::Read),
        ]
        .into_iter()
        .map(|(n, p)| (interner.intern(n), p))
        .collect();
        Recorder {
            trace: Trace {
                name: name.to_owned(),
                ..Default::default()
            },
            uid_table: HashMap::new(),
            fn_table: HashMap::new(),
            prev_result: None,
            prim_syms,
            conversion_budget: 100_000,
        }
    }

    /// Finish recording and take the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.trace.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.trace.events.is_empty()
    }

    fn uid_of(&mut self, v: &Value) -> (u32, UidInfo) {
        let e = v.to_sexpr_limited(self.conversion_budget);
        if let Some(&uid) = self.uid_table.get(&e) {
            return (uid, self.trace.uids[uid as usize]);
        }
        let m = np(&e);
        let info = UidInfo {
            n: m.n as u32,
            p: m.p as u32,
            atom: v.is_atom(),
        };
        let uid = self.trace.uids.len() as u32;
        self.trace.uids.push(info);
        self.uid_table.insert(e, uid);
        (uid, info)
    }

    fn list_ref(&mut self, v: &Value, chained: bool) -> ListRef {
        let (uid, _) = self.uid_of(v);
        ListRef {
            uid,
            exact: v.list_id(),
            chained,
        }
    }
}

impl EvalHook for Recorder {
    fn primitive(&mut self, name: Symbol, args: &[Value], result: &Value) {
        let Some((_, prim)) = self.prim_syms.iter().find(|(s, _)| *s == name).copied() else {
            return; // untraced primitive
        };
        let prev = self.prev_result.take();
        let arg_refs: Vec<ListRef> = args
            .iter()
            .map(|a| {
                let r = self.list_ref(a, false);
                ListRef {
                    chained: prev.is_some() && prev == Some(r.uid) && r.is_list(),
                    ..r
                }
            })
            .collect();
        let result_ref = self.list_ref(result, false);
        self.prev_result = result_ref.is_list().then_some(result_ref.uid);
        self.trace.events.push(Event::Prim {
            prim,
            args: arg_refs,
            result: result_ref,
        });
    }

    fn fn_enter(&mut self, name: Symbol, nargs: usize) {
        let idx = match self.fn_table.get(&name) {
            Some(&i) => i,
            None => {
                let i = self.trace.fn_names.len() as u32;
                // Name resolution happens at save time; store a
                // placeholder keyed by symbol id for uniqueness.
                self.trace.fn_names.push(format!("fn#{}", name.0));
                self.fn_table.insert(name, i);
                i
            }
        };
        self.trace.events.push(Event::FnEnter {
            name: idx,
            nargs: nargs.min(255) as u8,
        });
    }

    fn fn_exit(&mut self, _name: Symbol) {
        self.trace.events.push(Event::FnExit);
    }
}

/// Resolve placeholder function names against the interner (call after
/// the run, when the interner is available again).
pub fn resolve_fn_names(trace: &mut Trace, interner: &Interner) {
    for name in &mut trace.fn_names {
        if let Some(id) = name.strip_prefix("fn#").and_then(|s| s.parse::<u32>().ok()) {
            *name = interner.name(Symbol(id)).to_owned();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_lisp::env::DeepEnv;
    use small_lisp::interp::{Interp, PRELUDE};

    fn record(src: &str) -> Trace {
        let mut interner = Interner::new();
        let rec = Recorder::new("test", &mut interner);
        let mut it = Interp::new(interner, DeepEnv::new(), rec);
        it.run_program(PRELUDE).unwrap();
        it.run_program(src).unwrap();
        let mut trace =
            std::mem::replace(&mut it.hook, Recorder::new("x", &mut it.interner)).finish();
        resolve_fn_names(&mut trace, &it.interner);
        trace
    }

    #[test]
    fn records_primitive_sequence() {
        let t = record("(car (cdr '(1 2 3)))");
        let prims: Vec<Prim> = t.prims().map(|(p, _, _)| p).collect();
        assert_eq!(prims, vec![Prim::Cdr, Prim::Car]);
    }

    #[test]
    fn chaining_flag_set_for_nested_calls() {
        let t = record("(car (cdr '(1 2 3)))");
        let events: Vec<_> = t.prims().collect();
        // cdr's argument is not chained; car's argument is the cdr result.
        assert!(!events[0].1[0].chained);
        assert!(events[1].1[0].chained, "car receives cdr's result");
    }

    #[test]
    fn chaining_flag_not_set_across_unrelated_calls() {
        let t = record("(progn (cdr '(1 2)) (car '(9 8)))");
        let events: Vec<_> = t.prims().collect();
        assert!(!events[1].1[0].chained);
    }

    #[test]
    fn identical_lists_share_uid() {
        let t = record("(progn (car '(a b)) (car '(a b)))");
        let events: Vec<_> = t.prims().collect();
        assert_eq!(events[0].1[0].uid, events[1].1[0].uid);
        // But exact identities differ (two fresh quoted copies).
        assert_ne!(events[0].1[0].exact, events[1].1[0].exact);
    }

    #[test]
    fn uid_info_has_np() {
        let t = record("(car '(a b c (d e) f g))");
        let events: Vec<_> = t.prims().collect();
        let arg = events[0].1[0];
        let info = t.uids[arg.uid as usize];
        assert_eq!((info.n, info.p), (7, 1));
        assert!(!info.atom);
    }

    #[test]
    fn function_enter_exit_recorded_with_names() {
        let t = record("(def f (lambda (x) (car x))) (f '(1 2))");
        assert_eq!(t.fn_call_count(), 1);
        assert!(t.fn_names.iter().any(|n| n == "f"), "{:?}", t.fn_names);
        assert_eq!(t.max_call_depth(), 1);
    }

    #[test]
    fn prelude_functions_generate_primitive_traffic() {
        let t = record("(append '(1 2 3) '(4 5))");
        // append recurses: car+cdr+cons per element.
        let count = t.primitive_count();
        assert!(count >= 9, "expected ≥9 primitives, got {count}");
    }

    #[test]
    fn read_is_traced() {
        let mut interner = Interner::new();
        let rec = Recorder::new("test", &mut interner);
        let mut it = Interp::new(interner, DeepEnv::new(), rec);
        let e = small_sexpr::parse("(x y)", &mut it.interner).unwrap();
        it.input.push_back(e);
        it.run_program("(read v)").unwrap();
        let t = std::mem::replace(&mut it.hook, Recorder::new("x", &mut it.interner)).finish();
        let prims: Vec<Prim> = t.prims().map(|(p, _, _)| p).collect();
        assert_eq!(prims, vec![Prim::Read]);
    }
}
