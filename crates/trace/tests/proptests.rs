//! Property tests: trace serialization round-trips arbitrary traces.

use proptest::prelude::*;
use small_trace::event::{Event, ListRef, Prim, Trace, UidInfo};
use small_trace::io;

fn arb_ref(max_uid: u32) -> impl Strategy<Value = ListRef> {
    (0..max_uid, prop::option::of(0u64..1000), any::<bool>()).prop_map(|(uid, exact, chained)| {
        ListRef {
            uid,
            exact,
            chained,
        }
    })
}

fn arb_event(max_uid: u32) -> impl Strategy<Value = Event> {
    prop_oneof![
        (
            prop::sample::select(Prim::ALL.to_vec()),
            prop::collection::vec(arb_ref(max_uid), 0..3),
            arb_ref(max_uid)
        )
            .prop_map(|(prim, args, result)| Event::Prim { prim, args, result }),
        (0u32..4, 0u8..5).prop_map(|(name, nargs)| Event::FnEnter { name, nargs }),
        Just(Event::FnExit),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    let max_uid = 16u32;
    (
        "[a-z]{1,12}",
        prop::collection::vec(arb_event(max_uid), 0..60),
        prop::collection::vec(
            (0u32..200, 0u32..40, any::<bool>()).prop_map(|(n, p, atom)| UidInfo { n, p, atom }),
            max_uid as usize,
        ),
    )
        .prop_map(|(name, events, uids)| Trace {
            name,
            events,
            uids,
            fn_names: vec!["f0".into(), "f1".into(), "f2".into(), "f3".into()],
        })
}

proptest! {
    #[test]
    fn save_load_roundtrip(t in arb_trace()) {
        let mut buf = Vec::new();
        io::save(&t, &mut buf).unwrap();
        let back = io::load(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn counters_are_consistent(t in arb_trace()) {
        let prims = t.prims().count();
        prop_assert_eq!(prims, t.primitive_count());
        prop_assert!(t.max_call_depth() <= t.fn_call_count());
    }
}
