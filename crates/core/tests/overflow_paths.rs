//! Overflow-path coverage: hybrid pseudo-overflow behavior around its
//! window/threshold crossing, and true-overflow cycle breaking — each
//! observed both through `LptStats` and through the event-sink
//! counters, which must agree.

use small_core::{CompressPolicy, ListProcessor, LpConfig, LpError, LpValue, OverflowPolicy};
use small_heap::controller::TwoPointerController;
use small_heap::Word;
use small_metrics::CountingSink;
use small_sexpr::{parse, print, Interner};

type Lp = ListProcessor<TwoPointerController, CountingSink>;

fn lp_with(table_size: usize, compression: CompressPolicy) -> Lp {
    ListProcessor::with_sink(
        TwoPointerController::new(4096, 64),
        LpConfig {
            table_size,
            compression,
            ..LpConfig::default()
        },
        CountingSink::default(),
    )
}

/// Two entries: a child cons reachable only from its parent cons, so
/// the child is compressible (merged back into the heap) at pseudo
/// overflow. Returns the parent (carrying the EP's reference).
fn compressible_pair(lp: &mut Lp) -> LpValue {
    let a = lp
        .cons(LpValue::Atom(Word::int(1)), LpValue::Atom(Word::NIL))
        .unwrap();
    let b = lp.cons(a, LpValue::Atom(Word::NIL)).unwrap();
    drop(lp.adopt_binding(a));
    lp.drain_unroots();
    b
}

fn atom_cons(lp: &mut Lp, k: i64) -> LpValue {
    lp.cons(LpValue::Atom(Word::int(k)), LpValue::Atom(Word::NIL))
        .unwrap()
}

/// Hybrid crosses its threshold *within* the window: the first overflow
/// compresses one entry (Compress-One behavior), the second — now past
/// the threshold — compresses everything (Compress-All behavior).
#[test]
fn hybrid_threshold_crossing_switches_to_compress_all() {
    let mut lp = lp_with(
        8,
        CompressPolicy::Hybrid {
            threshold: 1,
            window: 10_000,
        },
    );
    // Three compressible pairs fill 6 of 8 entries.
    let held: Vec<LpValue> = (0..3).map(|_| compressible_pair(&mut lp)).collect();
    // Two conses fill the table; the third forces pseudo overflow #1.
    let _c1 = atom_cons(&mut lp, 10);
    let _c2 = atom_cons(&mut lp, 11);
    let _c3 = atom_cons(&mut lp, 12);
    let s = lp.stats();
    assert_eq!(s.pseudo_overflows, 1);
    assert_eq!(
        s.compressed, 1,
        "below threshold the hybrid compresses one entry"
    );
    // Overflow #2 lands inside the window: now over threshold, the
    // hybrid compresses every remaining compressible entry.
    let _c4 = atom_cons(&mut lp, 13);
    let s = lp.stats();
    assert_eq!(s.pseudo_overflows, 2);
    assert_eq!(
        s.compressed, 3,
        "past the threshold the hybrid compresses everything"
    );
    // The sink saw exactly what the stats saw.
    let counts = lp.sink().counts;
    assert_eq!(counts.pseudo_overflows.get(), s.pseudo_overflows);
    assert_eq!(counts.compressed.get(), s.compressed);
    assert_eq!(counts.true_overflows.get(), 0);
    // The compressed pairs survived structurally.
    for b in held {
        assert!(lp.writelist(b).is_ok());
    }
}

/// The same pressure with the overflows spaced *past* the window: the
/// first overflow has aged out when the second arrives, so the hybrid
/// stays in Compress-One behavior both times.
#[test]
fn hybrid_window_expiry_keeps_compress_one() {
    let mut lp = lp_with(
        8,
        CompressPolicy::Hybrid {
            threshold: 1,
            window: 3,
        },
    );
    let _held: Vec<LpValue> = (0..3).map(|_| compressible_pair(&mut lp)).collect();
    let c1 = atom_cons(&mut lp, 10);
    let _c2 = atom_cons(&mut lp, 11);
    let _c3 = atom_cons(&mut lp, 12); // overflow #1
    assert_eq!(lp.stats().compressed, 1);
    // Age the first overflow out of the window: car hits advance the
    // occupancy-sample clock without allocating.
    let id = c1.obj().unwrap();
    for _ in 0..10 {
        let _ = lp.car(id).unwrap();
    }
    let _c4 = atom_cons(&mut lp, 13); // overflow #2, window expired
    let s = lp.stats();
    assert_eq!(s.pseudo_overflows, 2);
    assert_eq!(
        s.compressed, 2,
        "with the window expired each overflow compresses one entry"
    );
    assert_eq!(lp.sink().counts.compressed.get(), s.compressed);
}

/// True overflow: an unreachable reference cycle defeats both counting
/// and compression; the mark/sweep cycle breaker reclaims it, and the
/// event counters record the collection.
#[test]
fn cycle_breaking_reclaims_unreachable_cycle_and_counts_it() {
    let mut lp = lp_with(6, CompressPolicy::CompressOne);
    // a <-> b cycle, then drop both external references.
    let a = atom_cons(&mut lp, 1);
    let b = lp.cons(a, LpValue::Atom(Word::NIL)).unwrap();
    lp.rplacd(a.obj().unwrap(), b).unwrap();
    drop(lp.adopt_binding(a));
    drop(lp.adopt_binding(b));
    lp.drain_unroots();
    assert_eq!(lp.occupancy(), 2, "the cycle leaks under pure counting");
    // Fill the remaining 4 entries, then one more: compression cannot
    // touch the cycle (it is circular, not a tree), so the allocation
    // must come from cycle breaking.
    let _held: Vec<LpValue> = (0..5).map(|k| atom_cons(&mut lp, k)).collect();
    let s = lp.stats();
    assert_eq!(s.cycle_collections, 1);
    assert_eq!(s.cycles_reclaimed, 2, "both cycle members reclaimed");
    let counts = lp.sink().counts;
    assert_eq!(counts.cycle_collections.get(), s.cycle_collections);
    assert_eq!(counts.cycles_reclaimed.get(), s.cycles_reclaimed);
    assert_eq!(counts.true_overflows.get(), 0, "recovered, not fatal");
}

/// Run a fixed workload — reads, conses of held values, readback of
/// everything — over a table of the given size under the Degrade
/// policy, returning every held value's printed form plus how often
/// the LP entered §4.3.2.3 heap-direct overflow mode.
fn degrade_workload(table_size: usize) -> (Vec<String>, u64) {
    let mut i = Interner::new();
    let mut lp: Lp = ListProcessor::with_sink(
        TwoPointerController::new(4096, 64),
        LpConfig {
            table_size,
            overflow: OverflowPolicy::Degrade,
            ..LpConfig::default()
        },
        CountingSink::default(),
    );
    let mut held = Vec::new();
    for k in 0..20i64 {
        let src = format!("({k} (a b) ({} c))", k * 2);
        let e = parse(&src, &mut i).unwrap();
        let v = lp.readlist(None, &e).unwrap();
        held.push((v, lp.adopt_binding(v)));
        if k % 3 == 0 && held.len() >= 2 {
            let a = held[held.len() - 1].0;
            let b = held[held.len() - 2].0;
            let c = lp.cons(a, b).unwrap();
            held.push((c, lp.adopt_binding(c)));
        }
    }
    let out = held
        .iter()
        .map(|(v, _)| print(&lp.writelist(*v).unwrap(), &i))
        .collect();
    (out, lp.stats().overflow_entries)
}

/// §4.3.2.3 regression: a tiny LPT driven well past true overflow must
/// complete the whole workload in heap-direct overflow mode, with
/// byte-identical output to a table large enough to never overflow.
#[test]
fn tiny_table_completes_workload_in_overflow_mode_with_identical_output() {
    let (big_out, big_entries) = degrade_workload(512);
    assert_eq!(big_entries, 0, "a 512-entry table must never overflow here");
    let (tiny_out, tiny_entries) = degrade_workload(8);
    assert!(
        tiny_entries >= 1,
        "an 8-entry table must enter overflow mode under this workload"
    );
    assert_eq!(
        tiny_out, big_out,
        "degraded output must match the reference"
    );
}

/// When everything is externally referenced and incompressible, the
/// overflow is unrecoverable: the LP reports `TrueOverflow` (no panic)
/// and the sink records the event.
#[test]
fn unrecoverable_overflow_is_reported_and_counted() {
    let mut lp = lp_with(3, CompressPolicy::CompressOne);
    let held: Vec<LpValue> = (0..3).map(|k| atom_cons(&mut lp, k)).collect();
    let r = lp.cons(LpValue::Atom(Word::int(9)), LpValue::Atom(Word::NIL));
    assert_eq!(r.unwrap_err(), LpError::TrueOverflow);
    let counts = lp.sink().counts;
    assert_eq!(counts.true_overflows.get(), 1);
    assert_eq!(counts.compressed.get(), 0, "nothing was compressible");
    assert_eq!(counts.cycles_reclaimed.get(), 0, "nothing was garbage");
    // The failed allocation corrupted nothing: the held values survive.
    for v in held {
        assert!(lp.writelist(v).is_ok());
    }
}
