//! Property-based tests of the SMALL core invariants.
//!
//! Reference dropping goes through the RAII `Rooted` API (adopt the
//! EP's stack reference, then force the deferred release); the legacy
//! four-method protect protocol keeps one dedicated equivalence test
//! next to its implementation in `lp.rs`.

use proptest::prelude::*;
use small_core::machine::{traverse_preorder, SmallBackend};
use small_core::{CompressPolicy, DecrementPolicy, FreeDiscipline, LpConfig, RefcountMode};
use small_heap::controller::TwoPointerController;
use small_sexpr::{parse, print, Interner};

fn arb_list_src() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        prop::sample::select(vec!["a", "b", "c"]).prop_map(str::to_owned),
        (0i64..50).prop_map(|i| i.to_string()),
        Just("nil".to_owned()),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop::collection::vec(inner, 1..5).prop_map(|items| format!("({})", items.join(" ")))
    })
    .prop_map(|s| {
        if s.starts_with('(') {
            s
        } else {
            format!("({s})")
        }
    })
}

fn arb_config() -> impl Strategy<Value = LpConfig> {
    (
        prop::sample::select(vec![
            CompressPolicy::CompressOne,
            CompressPolicy::CompressAll,
        ]),
        prop::sample::select(vec![DecrementPolicy::Lazy, DecrementPolicy::Recursive]),
        prop::sample::select(vec![RefcountMode::Unified, RefcountMode::Split]),
        prop::sample::select(vec![FreeDiscipline::Stack, FreeDiscipline::Queue]),
        16usize..200,
    )
        .prop_map(
            |(compression, decrement, refcounts, free_discipline, table_size)| LpConfig {
                table_size,
                compression,
                decrement,
                refcounts,
                free_discipline,
                ..LpConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn readlist_writelist_roundtrip_all_configs(
        src in arb_list_src(),
        config in arb_config(),
    ) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let backend = SmallBackend::<TwoPointerController>::new(16384, config);
        let mut lp = backend.lp;
        let v = lp.readlist(None, &e).unwrap();
        prop_assert_eq!(print(&lp.writelist(v).unwrap(), &i), print(&e, &i));
    }

    #[test]
    fn traversal_invariants(src in arb_list_src(), config in arb_config()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        // §5.3.1 counts splits per *internal node* (cons cell); for
        // lists with no nil elements this equals n+p. The general form
        // uses the binary-tree node counts directly.
        let (internal, leaves) = small_sexpr::tree::node_counts(&e);
        let backend = SmallBackend::<TwoPointerController>::new(16384, config);
        let mut lp = backend.lp;
        let v = lp.readlist(None, &e).unwrap();
        let count = traverse_preorder(&mut lp, v).unwrap();
        // Structure survives traversal intact.
        prop_assert_eq!(print(&lp.writelist(v).unwrap(), &i), print(&e, &i));
        if config.table_size >= 2 * internal + 8 {
            prop_assert_eq!(count.misses as usize, internal);
            prop_assert_eq!(count.touches as usize, 3 * internal + leaves);
            prop_assert!(count.hit_rate() >= 0.75 - 1e-9);
        }
    }

    #[test]
    fn all_garbage_detected_after_release(
        src in arb_list_src(),
        config in arb_config(),
    ) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let backend = SmallBackend::<TwoPointerController>::new(16384, config);
        let mut lp = backend.lp;
        let v = lp.readlist(None, &e).unwrap();
        traverse_preorder(&mut lp, v).unwrap();
        drop(lp.adopt_binding(v));
        lp.drain_unroots();
        lp.drain_lazy();
        prop_assert_eq!(lp.occupancy(), 0);
    }

    #[test]
    fn cons_car_cdr_laws(
        a_src in arb_list_src(),
        b_src in arb_list_src(),
        config in arb_config(),
    ) {
        let mut i = Interner::new();
        let ae = parse(&a_src, &mut i).unwrap();
        let be = parse(&b_src, &mut i).unwrap();
        let backend = SmallBackend::<TwoPointerController>::new(16384, config);
        let mut lp = backend.lp;
        let a = lp.readlist(None, &ae).unwrap();
        let b = lp.readlist(None, &be).unwrap();
        let c = lp.cons(a, b).unwrap();
        let id = c.obj().unwrap();
        // car(cons(a, b)) = a and cdr(cons(a, b)) = b, by identifier.
        prop_assert_eq!(lp.car(id).unwrap(), a);
        prop_assert_eq!(lp.cdr(id).unwrap(), b);
    }

    #[test]
    fn audit_stays_clean_under_random_op_sequences(
        srcs in prop::collection::vec(arb_list_src(), 1..6),
        ops in prop::collection::vec(0u8..6, 0..40),
        config in arb_config(),
    ) {
        // After ANY sequence of reads, conses, traversals, mutations,
        // and releases — including lazy decrements drained mid-sequence
        // — the structural auditor must report zero violations, for
        // every DecrementPolicy × RefcountMode × FreeDiscipline combo.
        let mut i = Interner::new();
        let backend = SmallBackend::<TwoPointerController>::new(16384, config);
        let mut lp = backend.lp;
        let mut held = Vec::new();
        for src in &srcs {
            let e = parse(src, &mut i).unwrap();
            let v = lp.readlist(None, &e).unwrap();
            held.push((v, Some(lp.adopt_binding(v))));
        }
        for (step, op) in ops.iter().enumerate() {
            let n = held.len();
            if n == 0 { break; }
            let v = held[step % n].0;
            match op {
                0 => {
                    if let Some(id) = v.obj() {
                        let c = lp.car(id).unwrap();
                        drop(lp.adopt_binding(c));
                    }
                }
                1 => {
                    if let Some(id) = v.obj() {
                        let c = lp.cdr(id).unwrap();
                        drop(lp.adopt_binding(c));
                    }
                }
                2 => {
                    let w = held[(step + 1) % n].0;
                    let c = lp.cons(v, w).unwrap();
                    held.push((c, Some(lp.adopt_binding(c))));
                }
                3 => {
                    if let Some(id) = v.obj() {
                        lp.rplaca(id, small_core::LpValue::Atom(
                            small_heap::Word::int(step as i64),
                        )).unwrap();
                    }
                }
                4 => {
                    // Release one held reference (deferred unroot).
                    let idx = step % held.len();
                    held[idx].1 = None;
                    held.remove(idx);
                }
                _ => {
                    // Drain pending lazy decrements mid-sequence.
                    lp.drain_lazy();
                }
            }
            lp.drain_unroots();
            let report = lp.audit();
            prop_assert!(
                report.is_clean(),
                "audit violations after step {step} (op {op}): {:?}",
                report.violations
            );
        }
        held.clear();
        lp.drain_unroots();
        lp.drain_lazy();
        let report = lp.audit();
        prop_assert!(report.is_clean(), "final audit: {:?}", report.violations);
        prop_assert_eq!(lp.occupancy(), 0, "all structure released");
    }

    #[test]
    fn heap_cells_reclaimed_too(src in arb_list_src()) {
        // When the LPT frees an entry holding a heap object, the heap
        // space must come back after the controller services its queue.
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let backend = SmallBackend::<TwoPointerController>::new(16384, LpConfig::default());
        let mut lp = backend.lp;
        let v = lp.readlist(None, &e).unwrap();
        drop(lp.adopt_binding(v));
        lp.drain_unroots();
        lp.drain_lazy();
        let free = lp.controller.drain_and_free();
        prop_assert_eq!(free, 16384, "all heap cells must be recovered");
    }
}

mod structure_coded_controller {
    //! The LP is generic over its heap controller (§4.3.3): the same
    //! operations must behave identically over the two-pointer store and
    //! the structure-coded exception-table store.

    use proptest::prelude::*;
    use small_core::{ListProcessor, LpConfig};
    use small_heap::controller::TwoPointerController;
    use small_heap::StructureCodedController;
    use small_sexpr::{parse, print, Interner};

    fn arb_list_src() -> impl Strategy<Value = String> {
        let leaf = prop_oneof![
            prop::sample::select(vec!["a", "b", "c"]).prop_map(str::to_owned),
            (0i64..50).prop_map(|i| i.to_string()),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 1..5).prop_map(|items| format!("({})", items.join(" ")))
        })
        .prop_map(|s| {
            if s.starts_with('(') {
                s
            } else {
                format!("({s})")
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn controllers_agree_on_car_cdr_walks(src in arb_list_src()) {
            let mut i = Interner::new();
            let e = parse(&src, &mut i).unwrap();

            let mut lp_tp = ListProcessor::new(
                TwoPointerController::new(8192, 64),
                LpConfig::default(),
            );
            let mut lp_sc = ListProcessor::new(
                StructureCodedController::new(),
                LpConfig::default(),
            );
            let mut lp_cc = ListProcessor::new(
                small_heap::CdrCodedController::new(16384),
                LpConfig::default(),
            );
            let v_cc = lp_cc.readlist(None, &e).unwrap();
            prop_assert_eq!(
                print(&lp_cc.writelist(v_cc).unwrap(), &i),
                print(&e, &i),
                "cdr-coded controller round-trip"
            );
            if let Some(id) = v_cc.obj() {
                let car = lp_cc.car(id).unwrap();
                let cdr = lp_cc.cdr(id).unwrap();
                // car/cdr through the cdr-coded split agree with the tree.
                prop_assert_eq!(
                    print(&lp_cc.writelist(car).unwrap(), &i),
                    print(&e.car().unwrap(), &i)
                );
                prop_assert_eq!(
                    print(&lp_cc.writelist(cdr).unwrap(), &i),
                    print(&e.cdr().unwrap(), &i)
                );
            }

            let v_tp = lp_tp.readlist(None, &e).unwrap();
            let v_sc = lp_sc.readlist(None, &e).unwrap();

            // Walk the spine via the LP on both backends, comparing the
            // extracted structure at every step.
            let mut cur_tp = v_tp;
            let mut cur_sc = v_sc;
            loop {
                let s_tp = print(&lp_tp.writelist(cur_tp).unwrap(), &i);
                let s_sc = print(&lp_sc.writelist(cur_sc).unwrap(), &i);
                prop_assert_eq!(s_tp, s_sc);
                let (Some(id_tp), Some(id_sc)) = (cur_tp.obj(), cur_sc.obj()) else {
                    break;
                };
                let car_tp = lp_tp.car(id_tp).unwrap();
                let car_sc = lp_sc.car(id_sc).unwrap();
                prop_assert_eq!(
                    print(&lp_tp.writelist(car_tp).unwrap(), &i),
                    print(&lp_sc.writelist(car_sc).unwrap(), &i)
                );
                cur_tp = lp_tp.cdr(id_tp).unwrap();
                cur_sc = lp_sc.cdr(id_sc).unwrap();
            }
            // Identical LPT-level activity: hits/misses are a property of
            // the access pattern, not the representation.
            prop_assert_eq!(lp_tp.stats().misses, lp_sc.stats().misses);
            prop_assert_eq!(lp_tp.stats().hits, lp_sc.stats().hits);
        }

        #[test]
        fn structure_coded_reclaims_on_release(src in arb_list_src()) {
            let mut i = Interner::new();
            let e = parse(&src, &mut i).unwrap();
            let mut lp = ListProcessor::new(
                StructureCodedController::new(),
                LpConfig::default(),
            );
            let v = lp.readlist(None, &e).unwrap();
            if let Some(id) = v.obj() {
                // car() returns a retained reference; drop it too.
                let c = lp.car(id).unwrap();
                drop(lp.adopt_binding(c));
            }
            drop(lp.adopt_binding(v));
            lp.drain_unroots();
            lp.drain_lazy();
            prop_assert_eq!(lp.occupancy(), 0);
            prop_assert_eq!(lp.controller.heap().live(), 0, "all tables freed");
        }
    }
}
