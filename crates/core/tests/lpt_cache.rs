//! Differential tests of the LPT inline field cache.
//!
//! The cache is a wall-clock accelerator only: a machine with the cache
//! enabled must be *byte-identical* to one with it disabled in every
//! deterministic observable — results, [`small_core::LptStats`],
//! per-kind event counts, and exported checkpoint images. Each test
//! drives twin processors (cache on / cache off) through the same
//! scripted workload, crossing every invalidation boundary the cache
//! must survive: compression, cycle breaking, field replacement,
//! degrade-mode entry and exit, and checkpoint/resume — all *between*
//! cached accesses, so a stale line would be served if invalidation
//! missed a site.

use small_core::{ListProcessor, LpConfig, LpValue, LptCacheStats, OverflowPolicy, RefcountMode};
use small_heap::controller::TwoPointerController;
use small_heap::PersistableController;
use small_metrics::{CountingSink, EventSink};
use small_sexpr::{parse, print, Interner};

type Lp = ListProcessor<TwoPointerController, CountingSink>;

fn make(table: usize, overflow: OverflowPolicy, cache: bool) -> Lp {
    let mut lp = ListProcessor::with_sink(
        TwoPointerController::new(65536, 64),
        LpConfig {
            table_size: table,
            overflow,
            ..LpConfig::default()
        },
        CountingSink::default(),
    );
    lp.set_cache_enabled(cache);
    lp
}

fn read<S: EventSink>(
    lp: &mut ListProcessor<TwoPointerController, S>,
    i: &mut Interner,
    src: &str,
) -> LpValue {
    let e = parse(src, i).unwrap();
    lp.readlist(None, &e).unwrap()
}

/// Drop the EP stack reference `v` carries, forcing the deferred
/// release now.
fn release<S: EventSink>(lp: &mut ListProcessor<TwoPointerController, S>, v: LpValue) {
    drop(lp.adopt_binding(v));
    lp.drain_unroots();
}

/// Walk the spine of `v` (which stays externally rooted by the
/// caller), touching car and cdr of every cell and releasing the
/// references the accesses hand back. Returns the spine length.
fn walk<S: EventSink>(lp: &mut ListProcessor<TwoPointerController, S>, v: LpValue) -> usize {
    let mut len = 0usize;
    let mut cur = v;
    while let LpValue::Obj(id) = cur {
        let car = lp.car(id).unwrap();
        release(lp, car);
        let next = lp.cdr(id).unwrap();
        release(lp, next);
        cur = next;
        len += 1;
    }
    len
}

/// The scripted workload: repeated warm walks (cache hits), table
/// pressure that forces compression mid-walk, destructive updates,
/// an unreachable self-cycle that cycle breaking must reclaim, and
/// final reads of every survivor. Returns the observable outputs.
fn drive_churn(lp: &mut Lp, i: &mut Interner) -> Vec<String> {
    let mut out = Vec::new();
    let srcs = [
        "(a (b c) (d (e f)) g)",
        "(1 2 3 4 5 6 7 8)",
        "((h) ((j)) k)",
        "(l m (n o p) q r)",
        "(s (t (u (v))) w)",
        "(x y z 9 8 7)",
    ];
    let mut held = Vec::new();
    for src in srcs {
        let v = read(lp, i, src);
        let h = lp.root_binding(v);
        release(lp, v); // keep exactly the handle's reference
                        // Walk twice: the second pass re-touches entries whose lines
                        // are warm unless intervening compression dropped them.
        walk(lp, v);
        walk(lp, v);
        held.push((v, h));
    }
    // Destructive updates between warm accesses.
    let (first, _) = held[0];
    let x = read(lp, i, "(new-head)");
    lp.rplaca_of(first, x).unwrap();
    release(lp, x);
    let y = read(lp, i, "(new-tail nil)");
    lp.rplacd_of(first, y).unwrap();
    release(lp, y);
    walk(lp, first);
    // An unreachable self-cycle: dropped here, reclaimed only by the
    // cycle breaker once compression alone cannot satisfy a get.
    let c = read(lp, i, "(p p p)");
    lp.rplacd_of(c, c).unwrap();
    release(lp, c);
    // More pressure so compression (and eventually cycle breaking)
    // runs between the walks above and the reads below.
    for k in 0..6 {
        let v = read(lp, i, srcs[k % srcs.len()]);
        walk(lp, v);
        release(lp, v);
    }
    for (v, _) in &held {
        walk(lp, *v);
        out.push(print(&lp.writelist(*v).unwrap(), i));
    }
    out.push(format!("occupancy={}", lp.occupancy()));
    out
}

/// Assert the twins agree on every deterministic observable.
fn assert_twins_agree(on: &Lp, off: &Lp, out_on: &[String], out_off: &[String]) {
    assert_eq!(out_on, out_off, "results diverged");
    assert_eq!(on.stats(), off.stats(), "LptStats diverged");
    assert_eq!(on.sink().counts, off.sink().counts, "event counts diverged");
    assert_eq!(on.export_image(), off.export_image(), "images diverged");
    assert!(on.cache_stats().hits > 0, "cache never engaged");
    assert_eq!(
        off.cache_stats(),
        LptCacheStats::default(),
        "disabled cache must not count probes"
    );
}

#[test]
fn churn_with_compression_and_cycles_is_bit_identical() {
    // Table of 40 with ~60 cells of held structure: walks overflow the
    // table, so compression (and the cycle breaker, once the dropped
    // self-cycle is the only reclaimable garbage) interleaves with
    // cached accesses.
    let mut on = make(40, OverflowPolicy::Abort, true);
    let mut off = make(40, OverflowPolicy::Abort, false);
    let mut i_on = Interner::new();
    let mut i_off = Interner::new();
    let out_on = drive_churn(&mut on, &mut i_on);
    let out_off = drive_churn(&mut off, &mut i_off);
    assert!(
        on.stats().pseudo_overflows > 0,
        "script must force compression"
    );
    assert_twins_agree(&on, &off, &out_on, &out_off);
    assert!(on.audit().is_clean());
}

#[test]
fn split_refcounts_with_queue_discipline_agree() {
    let cfg = |cache| {
        let mut lp = ListProcessor::with_sink(
            TwoPointerController::new(65536, 64),
            LpConfig {
                table_size: 48,
                refcounts: RefcountMode::Split,
                free_discipline: small_core::FreeDiscipline::Queue,
                ..LpConfig::default()
            },
            CountingSink::default(),
        );
        lp.set_cache_enabled(cache);
        lp
    };
    let mut on = cfg(true);
    let mut off = cfg(false);
    let mut i_on = Interner::new();
    let mut i_off = Interner::new();
    let out_on = drive_churn(&mut on, &mut i_on);
    let out_off = drive_churn(&mut off, &mut i_off);
    assert_twins_agree(&on, &off, &out_on, &out_off);
}

#[test]
fn degrade_entry_and_exit_between_cached_accesses() {
    let drive = |lp: &mut Lp, i: &mut Interner| -> Vec<String> {
        let mut out = Vec::new();
        // Warm the cache on a small rooted list.
        let keep = read(lp, i, "(a b c)");
        let kh = lp.root_binding(keep);
        release(lp, keep);
        walk(lp, keep);
        walk(lp, keep);
        // Blow past the table: degrade-mode entry clears the cache.
        let big = read(lp, i, "(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18)");
        let bh = lp.root_binding(big);
        release(lp, big);
        walk(lp, big);
        out.push(format!("degraded={}", lp.degraded()));
        out.push(print(&lp.writelist(big).unwrap(), i));
        // Release the big list; occupancy recovery exits degraded mode
        // at the next operation boundary — another cache clear.
        drop(bh);
        lp.drain_unroots();
        lp.drain_lazy();
        walk(lp, keep);
        out.push(format!("degraded={}", lp.degraded()));
        out.push(print(&lp.writelist(keep).unwrap(), i));
        drop(kh);
        lp.drain_unroots();
        out
    };
    let mut on = make(16, OverflowPolicy::Degrade, true);
    let mut off = make(16, OverflowPolicy::Degrade, false);
    let mut i_on = Interner::new();
    let mut i_off = Interner::new();
    let out_on = drive(&mut on, &mut i_on);
    let out_off = drive(&mut off, &mut i_off);
    assert_eq!(
        on.stats().overflow_entries,
        1,
        "script must enter degraded mode"
    );
    assert!(
        on.stats().overflow_exits >= 1,
        "script must exit degraded mode"
    );
    assert_twins_agree(&on, &off, &out_on, &out_off);
}

#[test]
fn rplaca_between_cached_accesses_never_serves_stale_car() {
    let mut i = Interner::new();
    let mut lp = make(512, OverflowPolicy::Abort, true);
    let v = read(&mut lp, &mut i, "(old rest)");
    let id = v.obj().unwrap();
    // Two reads: the second is served by the inline cache.
    let a = lp.car(id).unwrap();
    release(&mut lp, a);
    let hits_before = lp.cache_stats().hits;
    let b = lp.car(id).unwrap();
    release(&mut lp, b);
    assert!(lp.cache_stats().hits > hits_before, "second read must hit");
    assert_eq!(a, b);
    // Replace the car, then read again: the line must be gone.
    let nv = read(&mut lp, &mut i, "(brand-new)");
    lp.rplaca(id, nv).unwrap();
    release(&mut lp, nv);
    let c = lp.car(id).unwrap();
    assert_eq!(
        print(&lp.writelist(c).unwrap(), &i),
        "(brand-new)",
        "stale cached car served after rplaca"
    );
    release(&mut lp, c);
    assert_eq!(lp.stats().hits, lp.sink().counts.lpt_hits.get());
}

#[test]
fn checkpoint_resume_between_cached_accesses() {
    let mut i = Interner::new();
    let mut on = make(64, OverflowPolicy::Abort, true);
    let mut off = make(64, OverflowPolicy::Abort, false);
    let (v_on, v_off) = (
        read(&mut on, &mut i, "(a (b c) d e)"),
        read(&mut off, &mut i, "(a (b c) d e)"),
    );
    let h_on = on.root_binding(v_on);
    release(&mut on, v_on);
    let h_off = off.root_binding(v_off);
    release(&mut off, v_off);
    walk(&mut on, v_on);
    walk(&mut off, v_off);
    // Snapshot both mid-warm; images must already agree (the cache is
    // host-side state and must never leak into an image).
    let (img_on, img_off) = (on.export_image(), off.export_image());
    assert_eq!(img_on, img_off, "cache state leaked into the image");
    // Restore the cached twin and keep using it: the restored cache
    // starts cold, re-warms, and stays consistent.
    let controller = TwoPointerController::import_image(&on.controller.export_image()).unwrap();
    let mut resumed: Lp = ListProcessor::from_image(
        controller,
        LpConfig {
            table_size: 64,
            ..LpConfig::default()
        },
        &img_on,
        CountingSink::default(),
    )
    .unwrap();
    assert!(resumed.cache_enabled());
    assert_eq!(resumed.cache_stats(), LptCacheStats::default());
    let rh = resumed.resume_root(v_on, small_core::RootKind::Binding);
    walk(&mut resumed, v_on);
    walk(&mut resumed, v_on);
    assert!(resumed.cache_stats().hits > 0, "resumed cache must re-warm");
    assert_eq!(
        print(&resumed.writelist(v_on).unwrap(), &i),
        print(&on.writelist(v_on).unwrap(), &i),
    );
    // Post-resume stats continue from the checkpointed values exactly
    // as the uncached twin's do.
    walk(&mut off, v_off);
    walk(&mut off, v_off);
    let _ = off.writelist(v_off).unwrap();
    let _ = on.writelist(v_on).unwrap();
    assert_eq!(resumed.stats(), off.stats(), "post-resume stats diverged");
    drop(rh);
    resumed.drain_unroots();
    drop(h_on);
    on.drain_unroots();
    drop(h_off);
    off.drain_unroots();
    assert!(resumed.audit().is_clean());
}
