//! The EP/LP concurrency model (§4.3.2.5, Figures 4.10–4.13).
//!
//! The thesis does not fix absolute times; it builds timing diagrams
//! from implementation-dependent parameters (LPT access time, entry
//! modification time, reference-count update time, name lookup time,
//! heap latency) and reads off where the EP idles and where EP and LP
//! overlap. [`TimingModel`] reproduces those diagrams: each primitive
//! yields a [`OpTiming`] with the EP-visible latency, the LP's total
//! busy time, and the post-response LP work that overlaps continued EP
//! execution — plus a whole-stream aggregator that accounts for the
//! §4.3.2.5 caveat: a new EP request must wait until the LP has finished
//! the previous operation's tail work (the chaining stall).

/// Cost parameters, in abstract cycles.
#[derive(Debug, Clone, Copy)]
pub struct TimingModel {
    /// EP: environment interrogation for one name.
    pub ep_lookup: u64,
    /// EP→LP (or LP→EP) message transfer.
    pub bus: u64,
    /// LP: one LPT access (index + field read).
    pub lpt_access: u64,
    /// LP: one LPT entry allocation (free-stack pop + init).
    pub lpt_alloc: u64,
    /// LP: one field update.
    pub lpt_update: u64,
    /// LP: one reference-count update.
    pub refcount: u64,
    /// Heap: one split or merge.
    pub heap_split: u64,
    /// Heap: list input (per read request).
    pub heap_io: u64,
}

impl Default for TimingModel {
    fn default() -> Self {
        // The relative magnitudes of the thesis diagrams: LPT operations
        // are register-file fast, heap operations an order slower, I/O
        // slower still.
        TimingModel {
            ep_lookup: 2,
            bus: 1,
            lpt_access: 1,
            lpt_alloc: 2,
            lpt_update: 1,
            refcount: 1,
            heap_split: 10,
            heap_io: 50,
        }
    }
}

/// The four timed LP request kinds of Figures 4.10–4.13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimedOp {
    /// Figure 4.10: `readlist`.
    ReadList,
    /// Figure 4.11: car/cdr satisfied from the LPT.
    AccessHit,
    /// Figure 4.11 with splitting: car/cdr that goes to the heap.
    AccessMiss,
    /// Figure 4.12: rplaca/rplacd (fields present).
    Modify,
    /// Figure 4.13: cons.
    Cons,
}

impl TimedOp {
    /// Map an operation class observed by an [`EventSink`] (via
    /// `op_end`) onto the figure it is timed by. This is the bridge the
    /// profiler uses: the LP reports *what happened* (hit vs. splitting
    /// miss is only known after the field lookup) and the timing model
    /// prices it.
    ///
    /// [`EventSink`]: small_metrics::EventSink
    pub fn from_class(class: small_metrics::OpClass) -> TimedOp {
        match class {
            small_metrics::OpClass::ReadList => TimedOp::ReadList,
            small_metrics::OpClass::AccessHit => TimedOp::AccessHit,
            small_metrics::OpClass::AccessMiss => TimedOp::AccessMiss,
            small_metrics::OpClass::Modify => TimedOp::Modify,
            small_metrics::OpClass::Cons => TimedOp::Cons,
        }
    }
}

/// Timing decomposition of one EP-issued operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTiming {
    /// EP work before the request (environment interrogation).
    pub ep_pre: u64,
    /// Time from request to the LP's response — the EP is *blocked*
    /// (idle) for whatever part of this it cannot fill with other work.
    pub latency: u64,
    /// LP work remaining after it has already responded — overlapped
    /// with continued EP evaluation (the concurrency win of §4.3.2.5).
    pub lp_tail: u64,
}

impl OpTiming {
    /// Total LP busy time for the operation.
    pub fn lp_busy(&self) -> u64 {
        self.latency + self.lp_tail
    }

    /// Fraction of LP work hidden behind EP execution.
    pub fn overlap_fraction(&self) -> f64 {
        if self.lp_busy() == 0 {
            0.0
        } else {
            self.lp_tail as f64 / self.lp_busy() as f64
        }
    }
}

impl TimingModel {
    /// The Figure 4.10–4.13 decomposition for one operation.
    pub fn op(&self, op: TimedOp) -> OpTiming {
        match op {
            // Figure 4.10: the LP cannot respond until I/O completes
            // (the type tag of the value is unknown until then); the EP
            // idles for the full I/O. Afterwards the LP still updates
            // the new entry's fields.
            TimedOp::ReadList => OpTiming {
                ep_pre: self.ep_lookup,
                latency: self.bus + self.heap_io + self.lpt_alloc + self.bus,
                lp_tail: 2 * self.lpt_update,
            },
            // Figure 4.11 (hit): respond with the field value, then
            // update the returned object's reference count.
            TimedOp::AccessHit => OpTiming {
                ep_pre: self.ep_lookup,
                latency: self.bus + self.lpt_access + self.bus,
                lp_tail: self.refcount,
            },
            // Figure 4.11 (miss): the split must complete before the
            // response (the piece could be an atom, and its type tag
            // must come from the heap); setting up the two child
            // entries' remaining fields overlaps.
            TimedOp::AccessMiss => OpTiming {
                ep_pre: self.ep_lookup,
                latency: self.bus
                    + self.lpt_access
                    + self.heap_split
                    + 2 * self.lpt_alloc
                    + self.bus,
                lp_tail: 2 * self.lpt_update + self.refcount,
            },
            // Figure 4.12: control returns to the EP while the LPT
            // changes are still being made.
            TimedOp::Modify => OpTiming {
                ep_pre: 2 * self.ep_lookup,
                latency: self.bus + self.lpt_access + self.bus,
                lp_tail: self.lpt_update + 2 * self.refcount,
            },
            // Figure 4.13: the identifier is returned as soon as the
            // entry is allocated; field setting and the two child
            // refcount updates proceed in parallel with the EP.
            TimedOp::Cons => OpTiming {
                ep_pre: 2 * self.ep_lookup,
                latency: self.bus + self.lpt_alloc + self.bus,
                lp_tail: 2 * self.lpt_update + 2 * self.refcount,
            },
        }
    }

    /// Aggregate a stream of operations with inter-operation EP work
    /// (`ep_gap` cycles between requests): returns total elapsed time,
    /// EP idle time, and LP idle time, modeling the §4.3.2.5 stall — the
    /// LP accepts a new request only after finishing the previous tail.
    pub fn run_stream<I: IntoIterator<Item = TimedOp>>(&self, ops: I, ep_gap: u64) -> StreamTiming {
        let mut now = 0u64; // EP clock
        let mut lp_free_at = 0u64;
        let mut ep_idle = 0u64;
        let mut lp_busy_total = 0u64;
        let mut count = 0u64;
        for op in ops {
            let t = self.op(op);
            now += t.ep_pre;
            // Wait for the LP to accept the request.
            if lp_free_at > now {
                ep_idle += lp_free_at - now;
                now = lp_free_at;
            }
            // Blocked for the response latency.
            now += t.latency;
            ep_idle += t.latency;
            lp_free_at = now + t.lp_tail;
            lp_busy_total += t.lp_busy();
            now += ep_gap; // EP-side evaluation between list operations
            count += 1;
        }
        let total = now.max(lp_free_at);
        StreamTiming {
            total,
            ep_idle,
            lp_idle: total - lp_busy_total.min(total),
            ops: count,
        }
    }
}

/// Aggregated timing over an operation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTiming {
    /// Elapsed cycles.
    pub total: u64,
    /// Cycles the EP spent blocked on the LP.
    pub ep_idle: u64,
    /// Cycles the LP spent idle.
    pub lp_idle: u64,
    /// Operations executed.
    pub ops: u64,
}

impl StreamTiming {
    /// EP utilization.
    pub fn ep_utilization(&self) -> f64 {
        1.0 - self.ep_idle as f64 / self.total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cons_has_short_latency_long_tail() {
        // Figure 4.13's point: the EP gets its answer almost
        // immediately; most LP work overlaps.
        let m = TimingModel::default();
        let t = m.op(TimedOp::Cons);
        assert!(t.latency < t.lp_tail + t.latency);
        assert!(t.overlap_fraction() >= 0.4, "{}", t.overlap_fraction());
    }

    #[test]
    fn readlist_blocks_the_ep() {
        // Figure 4.10: the EP must idle for the I/O.
        let m = TimingModel::default();
        let t = m.op(TimedOp::ReadList);
        assert!(t.latency > m.heap_io);
        assert!(t.overlap_fraction() < 0.1);
    }

    #[test]
    fn miss_latency_exceeds_hit_latency() {
        let m = TimingModel::default();
        assert!(m.op(TimedOp::AccessMiss).latency > m.op(TimedOp::AccessHit).latency);
    }

    #[test]
    fn chained_requests_stall_on_lp_tail() {
        // §4.3.2.5: consecutive conses with no EP work between them make
        // the EP wait for the LP to become ready — visible whenever the
        // LP tail work exceeds the EP's own per-operation work.
        let m = TimingModel {
            lpt_update: 3,
            refcount: 3,
            ..TimingModel::default()
        };
        assert!(m.op(TimedOp::Cons).lp_tail > m.op(TimedOp::Cons).ep_pre);
        let tight = m.run_stream(std::iter::repeat_n(TimedOp::Cons, 100), 0);
        let spaced = m.run_stream(std::iter::repeat_n(TimedOp::Cons, 100), 20);
        assert!(
            tight.ep_idle > spaced.ep_idle,
            "back-to-back requests must stall more ({} vs {})",
            tight.ep_idle,
            spaced.ep_idle
        );
        assert!(spaced.ep_utilization() > tight.ep_utilization());
    }

    #[test]
    fn stream_accounting_consistent() {
        let m = TimingModel::default();
        let s = m.run_stream([TimedOp::AccessHit, TimedOp::Cons, TimedOp::Modify], 5);
        assert_eq!(s.ops, 3);
        assert!(s.total >= s.ep_idle);
        assert!(s.total >= s.lp_idle);
    }
}
