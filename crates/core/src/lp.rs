//! The List Processor and its LPT (§4.3.2).
//!
//! Every list object the EP can name is an entry in the LPT. An entry is
//! an `(identifier, car, cdr, refcount, address, mark)` tuple
//! (Figure 4.2): `car`/`cdr` cache the object's children (other
//! identifiers, or immediate atoms), `address` points at the backing
//! heap object when the children are *not* materialized, and the
//! reference count governs reclamation. Invariant: a live entry either
//! has its fields materialized or an address, never both (a split
//! consumes the heap object; a compression merge re-creates one).
//!
//! Reclamation follows §4.3.2.1 exactly:
//!
//! * freed entries go on a LIFO **free stack** threaded through the
//!   table, so the most recently freed entry is reused first;
//! * a freed entry's children are decremented **lazily**, when the entry
//!   is reallocated ([`DecrementPolicy::Lazy`]) — the alternative
//!   recursive policy is implemented for the Table 5.2 comparison;
//! * stack references can be counted EP-side
//!   ([`RefcountMode::Split`]): the LPT keeps one `StackBit` per entry
//!   and only hears about the *last* stack reference dying (§5.2.4,
//!   Table 5.3).
//!
//! Overflow handling (§4.3.2.3): **pseudo overflow** compresses
//! table-internal structure back into the heap (merge); **true
//! overflow** breaks unreachable reference cycles by a mark/sweep over
//! the table; only if both fail does the machine degrade to overflow
//! mode (surfaced as [`LpError::TrueOverflow`]).
//!
//! # Protecting operands: the [`Rooted`] handle
//!
//! The EP must protect in-flight operands from reclamation while a
//! multi-step operation runs, and must tell the LP about stack/binding
//! references. Both protections are one RAII API:
//!
//! * [`ListProcessor::root`] takes a *register* reference (a processor
//!   register holds the operand; no reference-count bus traffic);
//! * [`ListProcessor::root_binding`] takes a *stack/binding* reference
//!   (counted per the configured [`RefcountMode`]);
//! * [`ListProcessor::adopt_binding`] wraps a stack reference a value
//!   already carries (e.g. the reference `readlist`/`car`/`cons` results
//!   arrive with) in a handle without taking another.
//!
//! Dropping the handle releases the reference. Because a handle must
//! coexist with `&mut` operations on the processor, release is
//! *deferred*: the drop enqueues an unroot request which the LP drains
//! at the next operation boundary (or [`ListProcessor::drain_unroots`]).
//! Deferral is always in the safe direction — a reference lives
//! slightly longer, never shorter.
//!
//! # Instrumentation
//!
//! The processor is generic over a [`small_metrics::EventSink`]
//! (defaulting to [`NoopSink`], which compiles to nothing) and emits a
//! [`small_metrics::Event`] at every observable step: hits, misses,
//! reference operations, entry allocation/free, compression passes,
//! cycle collections, lazy-decrement drains, occupancy samples, and all
//! heap-controller traffic (the LP is the single chokepoint through
//! which split/merge/read-in/free requests flow).

use small_heap::controller::{HeapController, HeapError};
use small_heap::{Tag, Word};
use small_metrics::{Event, EventSink, NoopSink, OpClass, PrimKind};
use small_sexpr::SExpr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// An LPT identifier — the small name the EP uses for a list object.
pub type Id = u32;

/// Retries granted by [`ListProcessor::retrying`] before a transient
/// heap fault is surfaced to the caller. Chosen above the longest
/// fault burst the deterministic injector produces, so every bounded
/// burst recovers.
pub const TRANSIENT_RETRY_LIMIT: u32 = 4;

/// A value crossing the EP–LP interface: an immediate atom or a list
/// object identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpValue {
    /// An immediate (nil / integer / symbol), as a tagged word.
    Atom(Word),
    /// A list object named by an LPT identifier.
    Obj(Id),
}

impl LpValue {
    /// The identifier, if a list object.
    pub fn obj(self) -> Option<Id> {
        match self {
            LpValue::Obj(id) => Some(id),
            LpValue::Atom(_) => None,
        }
    }

    /// True for nil.
    pub fn is_nil(self) -> bool {
        matches!(self, LpValue::Atom(w) if w.is_nil())
    }

    /// True for values naming list structure: a table object, or a
    /// heap-direct pointer produced in §4.3.2.3 overflow mode.
    pub fn is_list(self) -> bool {
        match self {
            LpValue::Obj(_) => true,
            LpValue::Atom(w) => is_ptr_word(w),
        }
    }

    /// True when the value is a heap-direct pointer (§4.3.2.3 overflow
    /// mode) rather than a table entry or an immediate atom.
    pub fn is_heap_direct(self) -> bool {
        matches!(self, LpValue::Atom(w) if is_ptr_word(w))
    }
}

/// Whether a word is an object pointer (as opposed to an immediate).
fn is_ptr_word(w: Word) -> bool {
    matches!(w.tag(), Tag::Ptr | Tag::Invisible)
}

/// Pseudo-overflow compression policy (§5.2.3, Figure 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressPolicy {
    /// Compress just enough to satisfy the immediate need.
    #[default]
    CompressOne,
    /// Compress every compressible entry at overflow time.
    CompressAll,
    /// The hybrid §5.2.3 sketches: Compress-One by default, switching to
    /// Compress-All when pseudo overflows become frequent (more than
    /// the given number of overflows within the last `window` sampled
    /// operations).
    Hybrid {
        /// Pseudo overflows tolerated within the window.
        threshold: u32,
        /// Window length in occupancy samples.
        window: u64,
    },
}

/// What happens to a freed entry's children (§4.3.2.1, Table 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecrementPolicy {
    /// Children decremented when the entry is *reallocated* (the paper's
    /// choice: freeing is O(1)).
    #[default]
    Lazy,
    /// Children decremented immediately on free (unbounded cascades; the
    /// "RecRefops" comparison column).
    Recursive,
}

/// How freed entries are remembered for reuse (§4.3.2.1).
///
/// The thesis argues for a LIFO *stack* ("the most recently freed entry
/// will be the first to be re-used. This minimizes the period during
/// which more LPT space than is necessary is occupied"); the FIFO queue
/// alternative is implemented for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FreeDiscipline {
    /// LIFO free stack (the paper's choice).
    #[default]
    Stack,
    /// FIFO free queue (the rejected alternative).
    Queue,
}

/// Where stack references are counted (§5.2.4, Table 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefcountMode {
    /// All references counted in the LPT (every stack retain/release is
    /// EP→LP bus traffic).
    #[default]
    Unified,
    /// Stack references counted in an EP-side table; the LPT keeps a
    /// StackBit and is told only when the EP count reaches zero.
    Split,
}

/// What the LP does when the table is full and neither compression nor
/// cycle breaking recovers space (§4.3.2.3 overflow mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Surface [`LpError::TrueOverflow`] and let the machine abort the
    /// workload (the conservative default: a correctly sized table
    /// should never truly overflow).
    #[default]
    Abort,
    /// Degrade to heap-direct operation: new structure is built in the
    /// heap and named by pointer atoms, accessed with non-consuming
    /// peeks like a conventional machine, until occupancy falls back to
    /// half the table and the LP re-enters table mode. The heap-direct
    /// world is never reclaimed (a conventional machine would need its
    /// own collector); destructive update of heap-direct values is
    /// refused with [`LpError::Degraded`].
    Degrade,
}

/// LP configuration.
#[derive(Debug, Clone, Copy)]
pub struct LpConfig {
    /// Number of LPT entries.
    pub table_size: usize,
    /// Pseudo-overflow policy.
    pub compression: CompressPolicy,
    /// Child-decrement policy.
    pub decrement: DecrementPolicy,
    /// Reference-count placement.
    pub refcounts: RefcountMode,
    /// Free-entry reuse order.
    pub free_discipline: FreeDiscipline,
    /// True-overflow behavior.
    pub overflow: OverflowPolicy,
}

impl Default for LpConfig {
    fn default() -> Self {
        LpConfig {
            table_size: 2048,
            compression: CompressPolicy::CompressOne,
            decrement: DecrementPolicy::Lazy,
            refcounts: RefcountMode::Unified,
            free_discipline: FreeDiscipline::Stack,
            overflow: OverflowPolicy::Abort,
        }
    }
}

/// LP/LPT activity counters (Tables 5.2–5.4).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LptStats {
    /// Reference-count updates performed in the LPT (EP–LP bus traffic).
    pub refops: u64,
    /// Reference-count updates performed EP-side (split mode only).
    pub ep_refops: u64,
    /// LPT entry allocation requests ("Gets").
    pub gets: u64,
    /// Entries whose count reached zero ("Frees").
    pub frees: u64,
    /// car/cdr requests satisfied from LPT fields.
    pub hits: u64,
    /// car/cdr requests that required a heap split.
    pub misses: u64,
    /// Pseudo overflows (compression runs).
    pub pseudo_overflows: u64,
    /// Entries reclaimed by compression.
    pub compressed: u64,
    /// True-overflow cycle-breaking collections.
    pub cycle_collections: u64,
    /// Entries reclaimed by cycle breaking.
    pub cycles_reclaimed: u64,
    /// Peak simultaneous occupancy.
    pub max_occupancy: usize,
    /// Sum of occupancy over samples (for averages).
    pub occupancy_sum: u64,
    /// Occupancy samples taken.
    pub occupancy_samples: u64,
    /// Largest LPT reference count observed.
    pub max_refcount: u32,
    /// Largest EP-side count observed (split mode).
    pub max_ep_refcount: u32,
    /// Transient heap faults detected by a recovery layer (the bounded
    /// retry wrapper or an abandoned compression pass).
    pub faults_detected: u64,
    /// Detected transient faults subsequently recovered from.
    pub faults_recovered: u64,
    /// Times the LP entered §4.3.2.3 heap-direct overflow mode.
    pub overflow_entries: u64,
    /// Times the LP left overflow mode and resumed table operation.
    pub overflow_exits: u64,
    /// Operations served heap-direct while in (or leaving) overflow
    /// mode: direct conses, peeks, and cross-boundary copies.
    pub heap_direct_ops: u64,
}

impl LptStats {
    /// Average occupancy over the run.
    pub fn avg_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }

    /// Hit rate of car/cdr requests.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LP errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The LPT is full and neither compression nor cycle breaking could
    /// recover space: the machine must degrade to overflow mode.
    TrueOverflow,
    /// The backing heap failed.
    Heap(HeapError),
    /// car/cdr of an atom reached the LP (EP type check should prevent).
    NotAList,
    /// The heap returned a word the LP cannot interpret (a free-list
    /// link or collector-internal tag escaped): memory corruption.
    UnexpectedTag(Tag),
    /// The operation is unsupported while the LP is degraded to
    /// §4.3.2.3 heap-direct overflow mode (destructive update of a
    /// heap-direct value). The payload names the refused operation.
    Degraded(&'static str),
    /// `writelist` (or an overflow-mode snapshot) met a cycle built by
    /// `rplaca`/`rplacd`: the structure has no finite s-expression.
    Cyclic,
}

impl From<HeapError> for LpError {
    fn from(e: HeapError) -> Self {
        LpError::Heap(e)
    }
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::TrueOverflow => write!(f, "LPT true overflow"),
            LpError::Heap(e) => write!(f, "heap: {e}"),
            LpError::NotAList => write!(f, "LP operand is not a list object"),
            LpError::UnexpectedTag(t) => write!(f, "heap returned word with tag {t:?}"),
            LpError::Degraded(what) => {
                write!(f, "{what} is unsupported in heap-direct overflow mode")
            }
            LpError::Cyclic => {
                write!(f, "cyclic list structure has no finite s-expression")
            }
        }
    }
}

impl std::error::Error for LpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LpError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

/// One LPT field: empty (backed by the heap), an immediate atom, or a
/// child object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Field {
    #[default]
    Empty,
    Atom(Word),
    Obj(Id),
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    car: Field,
    cdr: Field,
    rc: u32,
    addr: Option<small_heap::HeapAddr>,
    stack_bit: bool,
    live: bool,
    /// Free-stack link (the paper threads this through the addr field).
    free_next: Option<Id>,
    /// Freed with children still in the fields (lazy decrement pending).
    lazy: bool,
}

// ---------------------------------------------------------------------
// Invariant auditing, perturbation, and reconciliation
// ---------------------------------------------------------------------

/// A single invariant violation found by [`ListProcessor::audit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// A live entry's reference count is below its internal in-degree
    /// and no stack bit covers the shortfall: a future decrement will
    /// free it while fields still reference it.
    RefcountLow {
        /// The under-counted entry.
        id: Id,
        /// Its recorded reference count.
        rc: u32,
        /// References to it from live and pending fields.
        indegree: u32,
    },
    /// A live entry with zero references and no stack bit: garbage the
    /// counting machinery failed to detect.
    UndetectedGarbage {
        /// The unreferenced entry.
        id: Id,
    },
    /// A live or pending field names a dead entry.
    DanglingField {
        /// The entry holding the field.
        id: Id,
        /// The dead identifier it names.
        child: Id,
    },
    /// A field names an identifier outside the table.
    FieldOutOfRange {
        /// The entry holding the field.
        id: Id,
        /// The out-of-range identifier.
        child: Id,
    },
    /// A live entry violates the fields-XOR-address invariant (§4.3.2):
    /// empty fields without a backing address, materialized fields
    /// alongside one, or only one field materialized.
    FieldsAddrMismatch {
        /// The inconsistent entry.
        id: Id,
    },
    /// The free-list walk revisited an entry: `free_next` links form a
    /// cycle.
    FreeListCycle {
        /// The first entry reached twice.
        id: Id,
    },
    /// A live entry is threaded on the free list.
    LiveOnFreeList {
        /// The live entry found on the list.
        id: Id,
    },
    /// A dead entry is unreachable from the free-list head: it can
    /// never be reused.
    DeadNotOnFreeList {
        /// The stranded entry.
        id: Id,
    },
    /// `free_tail` does not name the last entry of the free list.
    FreeTailMismatch,
    /// Split-refcount bookkeeping out of sync (§5.2.4): the entry's
    /// stack bit disagrees with the EP-side count table, or stack state
    /// exists under the unified mode.
    StackBitMismatch {
        /// The inconsistent entry.
        id: Id,
    },
}

/// The structured result of an [`ListProcessor::audit`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Violations found, in table order (free-list findings last).
    pub violations: Vec<Violation>,
    /// Live entries examined.
    pub live_entries: usize,
    /// Entries reached on the free list.
    pub free_entries: usize,
}

impl AuditReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A deliberate corruption applied by [`ListProcessor::perturb`].
///
/// Chaos/test tooling only: each variant models a bit-flip class the
/// invariant auditor must catch and [`ListProcessor::reconcile`] must
/// repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// Overwrite a live entry's reference count.
    SetRefcount {
        /// The entry to corrupt.
        id: Id,
        /// The forged count.
        rc: u32,
    },
    /// Overwrite one field of a live entry with a reference to `child`
    /// without adjusting any count.
    CorruptField {
        /// The entry whose field is overwritten.
        id: Id,
        /// True to hit the car field, false the cdr.
        car: bool,
        /// The forged child identifier (may be dead or out of range).
        child: Id,
    },
    /// Clear a live entry's stack bit without telling the EP table.
    ClearStackBit {
        /// The entry to corrupt.
        id: Id,
    },
    /// Sever the free list at its head: every dead entry becomes
    /// unreachable for reuse.
    BreakFreeList,
    /// Mark a dead entry live without linking any structure to it.
    ResurrectEntry {
        /// The entry to resurrect.
        id: Id,
    },
}

/// What a [`ListProcessor::reconcile`] pass repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconcileStats {
    /// Entries whose reference count was rewritten.
    pub refcounts_fixed: usize,
    /// Fields cleared or defaulted because they named dead or
    /// out-of-range entries (or were inconsistently materialized).
    pub fields_cleared: usize,
    /// Unreachable live entries swept back to the free list.
    pub entries_swept: usize,
    /// Stack bits realigned with the EP-side count table.
    pub stack_bits_fixed: usize,
    /// Free lists rebuilt because the existing threading was invalid
    /// (0 or 1 — a structurally sound list is left untouched).
    pub free_lists_rebuilt: usize,
}

impl ReconcileStats {
    /// True when the pass repaired nothing: the table was already
    /// consistent and is byte-for-byte unchanged.
    pub fn is_clean(&self) -> bool {
        *self == ReconcileStats::default()
    }
}

// ---------------------------------------------------------------------
// Checkpoint images
// ---------------------------------------------------------------------

/// One LPT field in checkpoint-image form (the in-table [`Field`] is
/// private; this mirrors it exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldImage {
    /// Field not materialized (the entry is heap-backed).
    Empty,
    /// An immediate atom, as raw word bits.
    Atom(u64),
    /// A child object identifier.
    Obj(Id),
}

/// One LPT entry in checkpoint-image form: every bit of entry state,
/// including free-stack threading and the lazy-decrement flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryImage {
    /// The car field.
    pub car: FieldImage,
    /// The cdr field.
    pub cdr: FieldImage,
    /// The reference count.
    pub rc: u32,
    /// The backing heap address, when the fields are not materialized.
    pub addr: Option<u32>,
    /// The split-mode stack bit (§5.2.4).
    pub stack_bit: bool,
    /// Whether the entry is live.
    pub live: bool,
    /// Free-stack link.
    pub free_next: Option<Id>,
    /// Freed with deferred child decrements still pending (§4.3.2.1).
    pub lazy: bool,
}

/// A deterministic, complete snapshot of a [`ListProcessor`]'s table
/// state — everything except the heap controller (exported separately
/// via [`small_heap::PersistableController`]) and outstanding [`Rooted`]
/// handles (the restored counts already include them; see
/// [`ListProcessor::resume_root`]).
///
/// Equal processor states export equal images: `ep_counts` is sorted by
/// identifier and every collection is emitted in table order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpImage {
    /// Table size (must match the importing configuration).
    pub table_size: usize,
    /// Every entry, in identifier order.
    pub entries: Vec<EntryImage>,
    /// Head of the free list.
    pub free_head: Option<Id>,
    /// Tail of the free list.
    pub free_tail: Option<Id>,
    /// Live entry count.
    pub live: usize,
    /// Whether the LP was in §4.3.2.3 heap-direct overflow mode.
    pub degraded: bool,
    /// EP-side stack counts (split mode), sorted by identifier.
    pub ep_counts: Vec<(Id, u32)>,
    /// Recent pseudo-overflow times (hybrid compression state).
    pub recent_overflows: Vec<u64>,
    /// The full statistics ledger, so counters survive recovery.
    pub stats: LptStats,
}

fn field_to_image(f: Field) -> FieldImage {
    match f {
        Field::Empty => FieldImage::Empty,
        Field::Atom(w) => FieldImage::Atom(w.bits()),
        Field::Obj(id) => FieldImage::Obj(id),
    }
}

fn field_from_image(f: FieldImage) -> Field {
    match f {
        FieldImage::Empty => Field::Empty,
        FieldImage::Atom(bits) => Field::Atom(Word::from_bits(bits)),
        FieldImage::Obj(id) => Field::Obj(id),
    }
}

// ---------------------------------------------------------------------
// The Rooted protect protocol
// ---------------------------------------------------------------------

/// Which reference a [`Rooted`] handle holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootKind {
    /// A processor-register reference: protects the value during a
    /// multi-step operation, generating no reference-count bus traffic.
    Register,
    /// A stack/binding reference, counted per the configured
    /// [`RefcountMode`].
    Binding,
}

/// Shared root bookkeeping between a processor and its outstanding
/// [`Rooted`] handles.
struct RootShared {
    /// References whose handles have dropped, awaiting release at the
    /// next operation boundary.
    queue: Mutex<Vec<(LpValue, RootKind)>>,
    /// Fast-path flag: set when the queue is non-empty, so ops that
    /// never see handles pay one relaxed load.
    pending: AtomicBool,
}

/// An RAII reference to an LP value: the value cannot be reclaimed
/// while the handle lives. Created by [`ListProcessor::root`],
/// [`ListProcessor::root_binding`], or [`ListProcessor::adopt_binding`].
///
/// Dropping the handle *schedules* the release; the processor performs
/// it at its next operation boundary (or on an explicit
/// [`ListProcessor::drain_unroots`]). A handle outliving its processor
/// degrades to a no-op.
#[must_use = "dropping a Rooted releases the reference it protects"]
pub struct Rooted {
    value: LpValue,
    kind: RootKind,
    shared: Weak<RootShared>,
    live: bool,
}

impl Rooted {
    /// The protected value.
    pub fn value(&self) -> LpValue {
        self.value
    }

    /// The identifier, if the protected value is a list object.
    pub fn id(&self) -> Option<Id> {
        self.value.obj()
    }

    /// Which reference kind the handle holds.
    pub fn kind(&self) -> RootKind {
        self.kind
    }

    /// Defuse the handle: the reference is intentionally kept forever
    /// (the value stays live for the processor's lifetime). Returns the
    /// value.
    pub fn leak(mut self) -> LpValue {
        self.live = false;
        self.value
    }
}

impl std::fmt::Debug for Rooted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rooted")
            .field("value", &self.value)
            .field("kind", &self.kind)
            .finish()
    }
}

impl Drop for Rooted {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        if let Some(shared) = self.shared.upgrade() {
            // A worker that panicked while holding the lock poisons it;
            // the queue is a plain `Vec` push/take, so the data is valid
            // regardless — recover instead of cascading the panic.
            shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((self.value, self.kind));
            shared.pending.store(true, Ordering::Release);
        }
    }
}

/// Number of lines in the direct-mapped inline field cache. Power of
/// two; small enough to stay resident in the host L1.
const FIELD_CACHE_LINES: usize = 256;

/// One line of the inline field cache: a materialized `(car, cdr)`
/// pair keyed by entry id (`tag` is `id + 1`; 0 marks an empty line).
/// Only entries whose fields are fully materialized and self-contained
/// (no parked owned heap words, which `access` must transfer into the
/// table on touch) are ever cached.
#[derive(Clone, Copy)]
struct CacheLine {
    tag: u32,
    car: Field,
    cdr: Field,
}

impl CacheLine {
    const EMPTY: CacheLine = CacheLine {
        tag: 0,
        car: Field::Empty,
        cdr: Field::Empty,
    };
}

/// Wall-clock-only counters for the LPT inline field cache. These are
/// host telemetry, deliberately **not** part of [`LptStats`]: the
/// cache accelerates the simulator without existing in the modeled
/// machine, so nothing deterministic may depend on it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LptCacheStats {
    /// Probes served from a cache line (full lookup skipped).
    pub hits: u64,
    /// Probes that fell through to the full lookup.
    pub misses: u64,
}

/// The List Processor: the LPT plus the algorithms that manage it,
/// fronting a heap controller and reporting to an event sink.
pub struct ListProcessor<C: HeapController, S: EventSink = NoopSink> {
    /// The backing heap controller (§4.3.3).
    pub controller: C,
    entries: Vec<Entry>,
    free_head: Option<Id>,
    /// Tail of the free list (queue discipline appends here).
    free_tail: Option<Id>,
    live: usize,
    config: LpConfig,
    stats: LptStats,
    sink: S,
    /// EP-side stack reference counts (split mode). Conceptually this
    /// table lives in the EP (§5.2.4); it is held here so the LP API is
    /// self-contained. Keyed by small dense ids and hit on every
    /// binding acquire/release, so it uses the vendored FxHash (a
    /// SipHash map here is measurable on the simulator's wall time).
    ep_counts: fxhash::FxHashMap<Id, u32>,
    /// Recent pseudo-overflow times (in occupancy samples), for the
    /// hybrid compression policy.
    recent_overflows: std::collections::VecDeque<u64>,
    /// Unroot requests from dropped [`Rooted`] handles.
    roots: Arc<RootShared>,
    /// True while operating in §4.3.2.3 heap-direct overflow mode
    /// (only ever set under [`OverflowPolicy::Degrade`]).
    degraded: bool,
    /// Entry whose fields are mid-materialization: compression and
    /// cycle breaking triggered by the nested allocation must not
    /// flush or sweep it while it is in a transitional state.
    pin: Option<Id>,
    /// Direct-mapped inline cache of materialized `(car, cdr)` field
    /// pairs, consulted by `access` before the full table lookup. A
    /// cached hit replays the exact Figure-4.11 hit accounting (stats,
    /// events, reference traffic, occupancy sampling), so every
    /// deterministic counter is byte-identical with the cache disabled
    /// — the cache saves wall time, never virtual cycles. Empty slice
    /// when disabled.
    cache: Box<[CacheLine]>,
    /// Wall-clock-only cache probe counters (see [`LptCacheStats`]).
    cache_stats: LptCacheStats,
}

impl<C: HeapController> ListProcessor<C> {
    /// Create an uninstrumented LP (no-op event sink) with the given
    /// table size and policies.
    pub fn new(controller: C, config: LpConfig) -> Self {
        Self::with_sink(controller, config, NoopSink)
    }
}

impl<C: HeapController, S: EventSink> ListProcessor<C, S> {
    /// Create an LP reporting events to `sink`.
    pub fn with_sink(controller: C, config: LpConfig, sink: S) -> Self {
        let mut lp = ListProcessor {
            controller,
            entries: vec![Entry::default(); config.table_size],
            free_head: None,
            free_tail: None,
            live: 0,
            config,
            stats: LptStats::default(),
            sink,
            ep_counts: fxhash::FxHashMap::default(),
            recent_overflows: std::collections::VecDeque::new(),
            roots: Arc::new(RootShared {
                queue: Mutex::new(Vec::new()),
                pending: AtomicBool::new(false),
            }),
            degraded: false,
            pin: None,
            cache: vec![CacheLine::EMPTY; FIELD_CACHE_LINES].into_boxed_slice(),
            cache_stats: LptCacheStats::default(),
        };
        // Thread the initial free list, low ids first.
        for id in (0..config.table_size as u32).rev() {
            lp.entries[id as usize].free_next = lp.free_head;
            lp.free_head = Some(id);
        }
        lp.free_tail = config.table_size.checked_sub(1).map(|t| t as u32);
        lp
    }

    /// Activity counters.
    pub fn stats(&self) -> LptStats {
        self.stats
    }

    /// The event sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the event sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consume the processor, returning its event sink (for collecting
    /// per-run metrics after a simulation).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Consume the processor, returning both the heap controller and
    /// the event sink (chaos tooling reads injected-fault counters off
    /// the controller after a run).
    pub fn into_parts(self) -> (C, S) {
        (self.controller, self.sink)
    }

    /// True while the LP operates in §4.3.2.3 heap-direct overflow
    /// mode.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Retry `f` on transient heap faults, up to
    /// [`TRANSIENT_RETRY_LIMIT`] retries with exponential spin-loop
    /// backoff. Exactly [`HeapError::Transient`] is retried; every
    /// failed attempt is counted and reported as a detected fault, and
    /// a success after failures as a recovery. Safe for any single LP
    /// request: a failed request leaves the table consistent, so the
    /// retry re-issues it verbatim.
    pub fn retrying<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, LpError>,
    ) -> Result<T, LpError> {
        let mut failures = 0u32;
        loop {
            match f(self) {
                Err(LpError::Heap(HeapError::Transient)) => {
                    failures += 1;
                    self.stats.faults_detected += 1;
                    self.sink.record(Event::HeapFaultDetected);
                    if failures > TRANSIENT_RETRY_LIMIT {
                        return Err(LpError::Heap(HeapError::Transient));
                    }
                    // Exponential backoff: the modeled fault classes
                    // (busy bank, bus glitch) clear with time.
                    for _ in 0..(1u32 << failures) {
                        std::hint::spin_loop();
                    }
                }
                r => {
                    if failures > 0 && r.is_ok() {
                        self.stats.faults_recovered += u64::from(failures);
                        for _ in 0..failures {
                            self.sink.record(Event::HeapFaultRecovered);
                        }
                    }
                    return r;
                }
            }
        }
    }

    /// Enter heap-direct overflow mode (§4.3.2.3). Idempotent.
    fn enter_degraded(&mut self) {
        if !self.degraded {
            self.degraded = true;
            self.cache_clear();
            self.stats.overflow_entries += 1;
            self.sink.record(Event::OverflowModeEntered);
        }
    }

    /// Leave overflow mode once occupancy has recovered to half the
    /// table. Checked at every operation boundary.
    fn check_overflow_mode(&mut self) {
        if self.degraded && self.live <= self.config.table_size / 2 {
            self.degraded = false;
            self.cache_clear();
            self.stats.overflow_exits += 1;
            self.sink.record(Event::OverflowModeExited);
        }
    }

    /// Live entry count.
    pub fn occupancy(&self) -> usize {
        self.live
    }

    /// Table capacity.
    pub fn capacity(&self) -> usize {
        self.config.table_size
    }

    /// The configuration in force.
    pub fn config(&self) -> LpConfig {
        self.config
    }

    /// Wall-clock-only inline-cache probe counters. Not part of
    /// [`LptStats`]: nothing deterministic may depend on them.
    pub fn cache_stats(&self) -> LptCacheStats {
        self.cache_stats
    }

    /// Whether the inline field cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        !self.cache.is_empty()
    }

    /// Enable or disable the inline field cache (on by default).
    /// Disabling drops every line; the differential tests run twin
    /// workloads cache-on vs cache-off and require byte-identical
    /// stats, events, and results.
    pub fn set_cache_enabled(&mut self, on: bool) {
        if on == self.cache_enabled() {
            return;
        }
        self.cache = if on {
            vec![CacheLine::EMPTY; FIELD_CACHE_LINES].into_boxed_slice()
        } else {
            Box::new([])
        };
    }

    /// Look up `id` in the inline cache.
    #[inline]
    fn cache_lookup(&self, id: Id) -> Option<(Field, Field)> {
        if self.cache.is_empty() {
            return None;
        }
        let line = &self.cache[id as usize & (self.cache.len() - 1)];
        (line.tag == id + 1).then_some((line.car, line.cdr))
    }

    /// Install `id`'s fields into its cache line, if they are fully
    /// materialized and self-contained. Parked owned heap words are
    /// never cached: `access` must transfer them into table entries
    /// (mutating the field) on touch.
    #[inline]
    fn cache_fill(&mut self, id: Id) {
        if self.cache.is_empty() {
            return;
        }
        let e = &self.entries[id as usize];
        let cacheable = |f: Field| match f {
            Field::Atom(w) => !is_ptr_word(w),
            Field::Obj(_) => true,
            Field::Empty => false,
        };
        if cacheable(e.car) && cacheable(e.cdr) {
            let mask = self.cache.len() - 1;
            self.cache[id as usize & mask] = CacheLine {
                tag: id + 1,
                car: e.car,
                cdr: e.cdr,
            };
        }
    }

    /// Drop `id`'s cache line, if present (field replacement).
    #[inline]
    fn cache_invalidate(&mut self, id: Id) {
        if self.cache.is_empty() {
            return;
        }
        let mask = self.cache.len() - 1;
        let line = &mut self.cache[id as usize & mask];
        if line.tag == id + 1 {
            *line = CacheLine::EMPTY;
        }
    }

    /// Drop every cache line. Called on any transition that can move
    /// or reclaim entries out from under their ids — frees,
    /// compression, cycle breaking, degrade-mode entry/exit,
    /// perturbation, reconciliation.
    #[inline]
    fn cache_clear(&mut self) {
        for line in self.cache.iter_mut() {
            *line = CacheLine::EMPTY;
        }
    }

    /// Debug-only consistency audit: every live entry's reference count
    /// must cover the internal references (fields of live entries plus
    /// pending fields of lazily-freed entries) that point at it.
    #[cfg(feature = "lp-debug")]
    fn audit(&self, whence: &str) {
        let n = self.entries.len();
        let mut indeg = vec![0u32; n];
        for e in &self.entries {
            if e.live || e.lazy {
                for f in [e.car, e.cdr] {
                    if let Field::Obj(c) = f {
                        indeg[c as usize] += 1;
                    }
                }
            }
        }
        for (id, e) in self.entries.iter().enumerate() {
            if e.live {
                assert!(
                    e.rc >= indeg[id] || e.stack_bit,
                    "{whence}: entry {id} rc {} < internal indegree {}",
                    e.rc,
                    indeg[id]
                );
            } else {
                assert!(
                    indeg[id] == 0,
                    "{whence}: dead entry {id} referenced {} times by live/pending fields",
                    indeg[id]
                );
            }
        }
    }

    fn sample_occupancy(&mut self) {
        #[cfg(feature = "lp-debug")]
        self.audit("sample");
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.live);
        self.stats.occupancy_sum += self.live as u64;
        self.stats.occupancy_samples += 1;
        self.sink.record(Event::Occupancy {
            live: self.live as u32,
        });
    }

    // -----------------------------------------------------------------
    // Reference counting
    // -----------------------------------------------------------------

    fn incref(&mut self, id: Id) {
        self.stats.refops += 1;
        self.sink.record(Event::RefOp);
        let e = &mut self.entries[id as usize];
        debug_assert!(e.live, "incref of dead entry {id}");
        e.rc += 1;
        self.stats.max_refcount = self.stats.max_refcount.max(e.rc);
    }

    fn decref(&mut self, id: Id) {
        #[cfg(feature = "lp-debug")]
        self.audit("pre-decref");
        self.stats.refops += 1;
        self.sink.record(Event::RefOp);
        let e = &mut self.entries[id as usize];
        debug_assert!(e.live, "decref of dead entry {id}");
        debug_assert!(e.rc > 0, "decref of zero-count entry {id}");
        e.rc -= 1;
        if e.rc == 0 && !e.stack_bit {
            self.free_entry(id);
        }
    }

    /// Take a register reference: the real EP holds operands in
    /// processor registers, which generate no LPT reference-count
    /// traffic — so this does not count toward [`LptStats::refops`].
    fn register_acquire(&mut self, v: LpValue) {
        if let Some(id) = v.obj() {
            let e = &mut self.entries[id as usize];
            debug_assert!(e.live, "register reference to dead entry {id}");
            e.rc += 1;
        }
    }

    /// Drop a register reference.
    fn register_release(&mut self, v: LpValue) {
        if let Some(id) = v.obj() {
            let e = &mut self.entries[id as usize];
            debug_assert!(e.live && e.rc > 0, "register release of dead entry {id}");
            e.rc -= 1;
            if e.rc == 0 && !e.stack_bit {
                self.free_entry(id);
            }
        }
    }

    /// The EP took a stack/binding reference to a value (push, bind).
    fn binding_acquire(&mut self, v: LpValue) {
        let Some(id) = v.obj() else { return };
        match self.config.refcounts {
            RefcountMode::Unified => self.incref(id),
            RefcountMode::Split => {
                self.stats.ep_refops += 1;
                self.sink.record(Event::EpRefOp);
                let c = self.ep_counts.entry(id).or_insert(0);
                *c += 1;
                self.stats.max_ep_refcount = self.stats.max_ep_refcount.max(*c);
                let e = &mut self.entries[id as usize];
                if !e.stack_bit {
                    // First stack reference: one message to set the bit.
                    e.stack_bit = true;
                    self.stats.refops += 1;
                    self.sink.record(Event::RefOp);
                }
            }
        }
    }

    /// The EP dropped a stack/binding reference (pop, unbind, return).
    fn binding_release(&mut self, v: LpValue) {
        #[cfg(feature = "lp-debug")]
        self.audit("pre-stack-release");
        let Some(id) = v.obj() else { return };
        match self.config.refcounts {
            RefcountMode::Unified => self.decref(id),
            RefcountMode::Split => {
                self.stats.ep_refops += 1;
                self.sink.record(Event::EpRefOp);
                let c = self
                    .ep_counts
                    .get_mut(&id)
                    .unwrap_or_else(|| panic!("stack release of untracked {id}"));
                debug_assert!(*c > 0);
                *c -= 1;
                if *c == 0 {
                    self.ep_counts.remove(&id);
                    // The last stack reference died: one message to the
                    // LP to clear the StackBit (§5.2.4).
                    self.stats.refops += 1;
                    self.sink.record(Event::RefOp);
                    let e = &mut self.entries[id as usize];
                    e.stack_bit = false;
                    if e.rc == 0 {
                        self.free_entry(id);
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // The Rooted protect protocol
    // -----------------------------------------------------------------

    fn make_rooted(&self, v: LpValue, kind: RootKind) -> Rooted {
        Rooted {
            value: v,
            kind,
            shared: Arc::downgrade(&self.roots),
            live: true,
        }
    }

    /// Protect `v` with a *register* reference for the handle's
    /// lifetime. No reference-count bus traffic.
    pub fn root(&mut self, v: LpValue) -> Rooted {
        self.drain_unroots();
        self.register_acquire(v);
        self.make_rooted(v, RootKind::Register)
    }

    /// Take a *stack/binding* reference to `v` for the handle's
    /// lifetime, counted per the configured [`RefcountMode`].
    pub fn root_binding(&mut self, v: LpValue) -> Rooted {
        self.drain_unroots();
        self.binding_acquire(v);
        self.make_rooted(v, RootKind::Binding)
    }

    /// Wrap a stack reference `v` *already carries* (results of
    /// `readlist`/`car`/`cdr`/`cons` arrive retained for the EP) in a
    /// handle, without taking another reference.
    pub fn adopt_binding(&mut self, v: LpValue) -> Rooted {
        self.drain_unroots();
        self.make_rooted(v, RootKind::Binding)
    }

    /// Rebuild a [`Rooted`] handle for a reference that is *already
    /// counted* in restored table state (checkpoint recovery). Unlike
    /// [`Self::root`]/[`Self::root_binding`] no new reference is taken:
    /// an imported [`LpImage`]'s counts and EP-side table include every
    /// reference that was protected by a handle at export time, so
    /// recovery only needs to re-wrap them. Dropping the handle releases
    /// the restored reference as usual.
    pub fn resume_root(&self, v: LpValue, kind: RootKind) -> Rooted {
        self.make_rooted(v, kind)
    }

    /// Perform the releases scheduled by dropped [`Rooted`] handles.
    /// Called automatically at every operation boundary; callers only
    /// need it to force deterministic reclamation points (tests,
    /// shutdown accounting).
    pub fn drain_unroots(&mut self) {
        // Cheap read-only probe first: this runs at every operation
        // boundary and is almost always empty, so skip the atomic RMW
        // (and its bus lock) in the common case. A concurrent drop that
        // lands between load and swap is picked up at the next
        // boundary, exactly as with the bare swap.
        if !self.roots.pending.load(Ordering::Relaxed) {
            return;
        }
        if !self.roots.pending.swap(false, Ordering::Acquire) {
            return;
        }
        // Releases never enqueue new unroots, so one batch suffices. A
        // poisoned lock (panicking worker elsewhere) still holds a valid
        // Vec; adopt it rather than turning one failure into a cascade.
        let batch: Vec<(LpValue, RootKind)> =
            std::mem::take(&mut *self.roots.queue.lock().unwrap_or_else(|e| e.into_inner()));
        for (v, kind) in batch {
            match kind {
                RootKind::Register => self.register_release(v),
                RootKind::Binding => self.binding_release(v),
            }
        }
    }

    /// Release a field's owned heap word, if any. Pointer-tagged atom
    /// *fields* own their heap object (parked compression progress,
    /// split pieces the table had no room to materialize, adopted
    /// overflow-mode copies) — unlike EP-visible pointer atoms, which
    /// alias the never-reclaimed heap-direct world.
    fn free_field_word(&mut self, f: Field) {
        if let Field::Atom(w) = f {
            if is_ptr_word(w) {
                self.controller.free_object(w.addr());
                self.sink.record(Event::HeapFree);
            }
        }
    }

    /// Link a freed entry into the free list per the configured
    /// discipline.
    fn push_free(&mut self, id: Id) {
        match self.config.free_discipline {
            FreeDiscipline::Stack => {
                self.entries[id as usize].free_next = self.free_head;
                self.free_head = Some(id);
                if self.free_tail.is_none() {
                    self.free_tail = Some(id);
                }
            }
            FreeDiscipline::Queue => {
                self.entries[id as usize].free_next = None;
                match self.free_tail {
                    Some(t) => self.entries[t as usize].free_next = Some(id),
                    None => self.free_head = Some(id),
                }
                self.free_tail = Some(id);
            }
        }
    }

    fn free_entry(&mut self, id: Id) {
        #[cfg(feature = "lp-debug")]
        {
            // The entry being freed must not be referenced by any
            // live/pending field (its rc is 0 or being forced to 0).
            let mut refs = 0;
            for (oid, e) in self.entries.iter().enumerate() {
                if (e.live || e.lazy) && oid != id as usize {
                    for f in [e.car, e.cdr] {
                        if f == Field::Obj(id) {
                            refs += 1;
                        }
                    }
                }
            }
            assert!(refs == 0, "freeing entry {id} with {refs} internal refs");
        }
        // Any line may name the freed entry (as the tagged id or as a
        // cached Obj child), and its id is about to be reusable.
        self.cache_clear();
        self.stats.frees += 1;
        self.sink.record(Event::EntryFreed);
        let e = &mut self.entries[id as usize];
        debug_assert!(e.live);
        e.live = false;
        self.live -= 1;
        if let Some(addr) = e.addr.take() {
            // Signal the heap controller to reclaim the object.
            self.controller.free_object(addr);
            self.sink.record(Event::HeapFree);
        }
        match self.config.decrement {
            DecrementPolicy::Lazy => {
                // Children stay in the fields until reallocation.
                let e = &mut self.entries[id as usize];
                e.lazy = e.car != Field::Empty || e.cdr != Field::Empty;
                self.push_free(id);
            }
            DecrementPolicy::Recursive => {
                let e = &mut self.entries[id as usize];
                let (car, cdr) = (e.car, e.cdr);
                e.car = Field::Empty;
                e.cdr = Field::Empty;
                e.lazy = false;
                self.push_free(id);
                for f in [car, cdr] {
                    match f {
                        Field::Obj(c) => self.decref(c),
                        f => self.free_field_word(f),
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Entry allocation, compression, cycle breaking
    // -----------------------------------------------------------------

    fn try_pop_free(&mut self) -> Option<Id> {
        #[cfg(feature = "lp-debug")]
        self.audit("pre-pop");
        let id = self.free_head?;
        let e = &mut self.entries[id as usize];
        self.free_head = e.free_next;
        if self.free_head.is_none() {
            self.free_tail = None;
        }
        e.free_next = None;
        let lazy = std::mem::replace(&mut e.lazy, false);
        let (car, cdr) = (e.car, e.cdr);
        *e = Entry {
            live: true,
            ..Entry::default()
        };
        self.live += 1;
        self.stats.gets += 1;
        self.sink.record(Event::EntryAllocated);
        if lazy {
            // Deferred child decrements happen now (§4.3.2.1).
            let children =
                matches!(car, Field::Obj(_)) as u32 + matches!(cdr, Field::Obj(_)) as u32;
            self.sink.record(Event::LazyDrain { children });
            for f in [car, cdr] {
                match f {
                    Field::Obj(c) => self.decref(c),
                    f => self.free_field_word(f),
                }
            }
        }
        Some(id)
    }

    fn allocate(&mut self) -> Result<Id, LpError> {
        if let Some(id) = self.try_pop_free() {
            self.sample_occupancy();
            return Ok(id);
        }
        // Pseudo overflow: compress.
        self.stats.pseudo_overflows += 1;
        self.recent_overflows
            .push_back(self.stats.occupancy_samples);
        let freed = self.compress();
        self.sink.record(Event::PseudoOverflow {
            reclaimed: freed as u32,
        });
        #[cfg(feature = "lp-debug")]
        self.audit("post-compress");
        if freed > 0 {
            if let Some(id) = self.try_pop_free() {
                self.sample_occupancy();
                return Ok(id);
            }
        }
        // True overflow: break cycles.
        self.stats.cycle_collections += 1;
        let reclaimed = self.break_cycles();
        self.sink.record(Event::CycleCollection {
            reclaimed: reclaimed as u32,
        });
        #[cfg(feature = "lp-debug")]
        self.audit("post-break-cycles");
        self.stats.cycles_reclaimed += reclaimed as u64;
        if let Some(id) = self.try_pop_free() {
            self.sample_occupancy();
            return Ok(id);
        }
        self.sink.record(Event::TrueOverflow);
        Err(LpError::TrueOverflow)
    }

    /// Whether the value in `f` can be flushed to a heap word: an
    /// immediate atom, or an *internal-only* child (exactly one
    /// reference — the parent field — and no stack bit) whose own
    /// sub-structure is flushable or already heap-backed. The rc==1
    /// condition excludes shared structure; reference *cycles* of
    /// rc==1 entries (unreachable circular garbage, §4.3.2.1) are
    /// excluded by the path check — they are reclaimed by
    /// [`ListProcessor::break_cycles`] instead.
    fn flushable(&self, f: Field, path: &mut Vec<Id>) -> bool {
        match f {
            Field::Atom(_) => true,
            Field::Empty => false,
            Field::Obj(c) => {
                if path.contains(&c) {
                    return false; // circular structure: not a tree
                }
                if self.pin == Some(c) {
                    return false; // mid-materialization: fields in flux
                }
                let e = &self.entries[c as usize];
                if !(e.live && e.rc == 1 && !e.stack_bit) {
                    return false;
                }
                if e.addr.is_some() {
                    return true;
                }
                path.push(c);
                let ok = self.flushable(e.car, path) && self.flushable(e.cdr, path);
                path.pop();
                ok
            }
        }
    }

    /// Flush a field to a heap word, freeing the internal entries it
    /// consumed. Precondition: [`ListProcessor::flushable`].
    fn flush_field(&mut self, f: Field) -> Result<Word, LpError> {
        match f {
            Field::Atom(w) => Ok(w),
            Field::Obj(c) => {
                let (addr, car, cdr) = {
                    let e = &self.entries[c as usize];
                    (e.addr, e.car, e.cdr)
                };
                let word = match addr {
                    Some(a) => Word::ptr(a),
                    None => {
                        let cw = self.flush_field(car)?;
                        // Record progress before the next fallible
                        // step: the subtree behind `cw` is already
                        // reclaimed, so a later failure must not leave
                        // the old Obj field naming freed entries.
                        // Parking the owned word keeps the entry
                        // consistent; at worst the object leaks when
                        // the pass is abandoned.
                        self.entries[c as usize].car = Field::Atom(cw);
                        let dw = self.flush_field(cdr)?;
                        self.entries[c as usize].cdr = Field::Atom(dw);
                        let merged = self.controller.merge(cw, dw)?;
                        self.sink.record(Event::HeapMerge);
                        Word::ptr(merged)
                    }
                };
                // The heap object now belongs to the merged parent;
                // clear the entry before freeing so neither the
                // controller nor the lazy-decrement path touches it.
                let e = &mut self.entries[c as usize];
                e.addr = None;
                e.car = Field::Empty;
                e.cdr = Field::Empty;
                e.rc = 0;
                self.free_entry(c);
                self.stats.compressed += 1;
                Ok(word)
            }
            Field::Empty => unreachable!("flush of empty field"),
        }
    }

    /// Compress LPT entries back into heap objects (Figure 4.8): any
    /// entry whose fields form a closed internal-only subtree is merged
    /// into one heap object, and the subtree's entries are reclaimed.
    /// Returns the number of entries reclaimed.
    fn compress(&mut self) -> usize {
        // Compression rewrites fields of live entries (parked words,
        // then fields → address) beyond the frees that already clear
        // the cache; drop everything up front.
        self.cache_clear();
        let mut total = 0usize;
        loop {
            let mut freed_this_pass = 0usize;
            for id in 0..self.entries.len() as Id {
                let e = &self.entries[id as usize];
                if !e.live || e.addr.is_some() || self.pin == Some(id) {
                    continue;
                }
                let (fcar, fcdr) = (e.car, e.cdr);
                // Compression must reclaim table space: at least one
                // field must be a child entry (Figure 4.8 compresses
                // children INTO parents).
                if !matches!(fcar, Field::Obj(_)) && !matches!(fcdr, Field::Obj(_)) {
                    continue;
                }
                let mut path = vec![id];
                if !self.flushable(fcar, &mut path) || !self.flushable(fcdr, &mut path) {
                    continue;
                }
                let frees_before = self.stats.frees;
                let car_w = match self.flush_field(fcar) {
                    Ok(w) => w,
                    Err(e) => return self.abandon_compress(e, total),
                };
                // Park flushed words eagerly (see `flush_field`): a
                // failure on the other field must find this one
                // consistent, not naming already-freed entries.
                self.entries[id as usize].car = Field::Atom(car_w);
                let cdr_w = match self.flush_field(fcdr) {
                    Ok(w) => w,
                    Err(e) => return self.abandon_compress(e, total),
                };
                self.entries[id as usize].cdr = Field::Atom(cdr_w);
                let addr = match self.controller.merge(car_w, cdr_w) {
                    Ok(a) => a,
                    Err(e) => return self.abandon_compress(e.into(), total),
                };
                self.sink.record(Event::HeapMerge);
                let e = &mut self.entries[id as usize];
                e.car = Field::Empty;
                e.cdr = Field::Empty;
                e.addr = Some(addr);
                freed_this_pass += (self.stats.frees - frees_before) as usize;
                if self.stop_after_one() && freed_this_pass > 0 {
                    return total + freed_this_pass;
                }
            }
            total += freed_this_pass;
            if freed_this_pass == 0 {
                return total;
            }
            // Compress-All iterates to a fixpoint: compressing children
            // can make parents compressible.
        }
    }

    /// Abandon a compression pass on a heap error, keeping whatever it
    /// reclaimed so far. A transient fault handled this way counts as
    /// both detected and recovered: the pass carried on consistently
    /// without it (the merge is simply retried at the next overflow).
    fn abandon_compress(&mut self, e: LpError, total: usize) -> usize {
        if matches!(e, LpError::Heap(HeapError::Transient)) {
            self.stats.faults_detected += 1;
            self.stats.faults_recovered += 1;
            self.sink.record(Event::HeapFaultDetected);
            self.sink.record(Event::HeapFaultRecovered);
        }
        total
    }

    /// Whether the current (possibly hybrid) policy stops after freeing
    /// enough for the immediate need.
    fn stop_after_one(&mut self) -> bool {
        match self.config.compression {
            CompressPolicy::CompressOne => true,
            CompressPolicy::CompressAll => false,
            CompressPolicy::Hybrid { threshold, window } => {
                let now = self.stats.occupancy_samples;
                while let Some(&t) = self.recent_overflows.front() {
                    if now.saturating_sub(t) > window {
                        self.recent_overflows.pop_front();
                    } else {
                        break;
                    }
                }
                // Frequent overflows → behave like Compress-All.
                (self.recent_overflows.len() as u32) <= threshold
            }
        }
    }

    /// Break unreachable reference cycles with a mark/sweep over the
    /// table (§4.3.2.3). Returns entries reclaimed.
    fn break_cycles(&mut self) -> usize {
        self.cache_clear();
        let n = self.entries.len();
        // In-degree from table-internal references.
        let mut indegree = vec![0u32; n];
        for e in &self.entries {
            if !e.live {
                continue;
            }
            for f in [e.car, e.cdr] {
                if let Field::Obj(c) = f {
                    indegree[c as usize] += 1;
                }
            }
        }
        // Roots: entries with external references.
        let mut marks = vec![false; n];
        let mut stack: Vec<Id> = Vec::new();
        for (id, e) in self.entries.iter().enumerate() {
            if e.live && (e.stack_bit || e.rc > indegree[id] || self.pin == Some(id as Id)) {
                stack.push(id as Id);
            }
        }
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut marks[id as usize], true) {
                continue;
            }
            let e = &self.entries[id as usize];
            for f in [e.car, e.cdr] {
                if let Field::Obj(c) = f {
                    if !marks[c as usize] {
                        stack.push(c);
                    }
                }
            }
        }
        // Sweep: unmarked live entries are circular garbage.
        let victims: Vec<Id> = (0..n as Id)
            .filter(|&id| self.entries[id as usize].live && !marks[id as usize])
            .collect();
        for &id in &victims {
            // References from garbage into the marked world must be
            // returned; references among garbage just vanish.
            let (car, cdr) = {
                let e = &mut self.entries[id as usize];
                let out = (e.car, e.cdr);
                e.car = Field::Empty;
                e.cdr = Field::Empty;
                e.rc = 0;
                out
            };
            for f in [car, cdr] {
                match f {
                    Field::Obj(c) => {
                        if marks[c as usize] {
                            self.decref(c);
                        }
                    }
                    // A parked owned word on a garbage entry is
                    // unreachable heap structure: reclaim it.
                    f => self.free_field_word(f),
                }
            }
            if self.entries[id as usize].live {
                self.free_entry(id);
            }
        }
        victims.len()
    }

    // -----------------------------------------------------------------
    // The LP request set (§4.3.2.2)
    // -----------------------------------------------------------------

    fn word_to_value(&mut self, w: Word) -> Result<LpValue, LpError> {
        match w.tag() {
            Tag::Nil | Tag::Int | Tag::Sym => Ok(LpValue::Atom(w)),
            Tag::Ptr | Tag::Invisible => {
                let id = self.allocate()?;
                let e = &mut self.entries[id as usize];
                e.addr = Some(w.addr());
                Ok(LpValue::Obj(id))
            }
            t => Err(LpError::UnexpectedTag(t)),
        }
    }

    /// `readlist` (§4.3.2.2.1): read a list in; the returned value
    /// already carries one stack reference for the EP. If the EP passes
    /// the variable's old value, its reference is dropped first.
    pub fn readlist(&mut self, old: Option<LpValue>, expr: &SExpr) -> Result<LpValue, LpError> {
        self.drain_unroots();
        self.check_overflow_mode();
        self.sink.op_begin(PrimKind::ReadList);
        let r = self.readlist_op(old, expr);
        self.sink.op_end(OpClass::ReadList);
        r
    }

    fn readlist_op(&mut self, old: Option<LpValue>, expr: &SExpr) -> Result<LpValue, LpError> {
        if let Some(v) = old {
            self.binding_release(v);
        }
        let w = self.controller.read_in(expr)?;
        self.sink.record(Event::HeapReadIn);
        if self.degraded && is_ptr_word(w) {
            // Overflow mode: the object stays heap-side and the EP
            // names it by address, like a conventional machine.
            self.stats.heap_direct_ops += 1;
            return Ok(LpValue::Atom(w));
        }
        let v = match self.word_to_value(w) {
            Ok(v) => v,
            Err(LpError::TrueOverflow)
                if self.config.overflow == OverflowPolicy::Degrade && is_ptr_word(w) =>
            {
                self.enter_degraded();
                self.stats.heap_direct_ops += 1;
                return Ok(LpValue::Atom(w));
            }
            Err(e) => return Err(e),
        };
        if let LpValue::Obj(id) = v {
            self.entries[id as usize].rc = 1;
            // That reference belongs to the EP.
            self.adopt_as_stack_ref(id);
        }
        Ok(v)
    }

    /// Convert the freshly-created unified reference on `id` into a
    /// stack reference under the current mode.
    fn adopt_as_stack_ref(&mut self, id: Id) {
        if self.config.refcounts == RefcountMode::Split {
            let e = &mut self.entries[id as usize];
            e.rc -= 1;
            e.stack_bit = true;
            self.stats.ep_refops += 1;
            self.sink.record(Event::EpRefOp);
            let c = self.ep_counts.entry(id).or_insert(0);
            *c += 1;
            self.stats.max_ep_refcount = self.stats.max_ep_refcount.max(*c);
        }
    }

    /// Materialize the fields of `id` by splitting its heap object.
    fn ensure_fields(&mut self, id: Id) -> Result<(), LpError> {
        if self.entries[id as usize].car != Field::Empty
            || self.entries[id as usize].cdr != Field::Empty
        {
            return Ok(());
        }
        let addr = self.entries[id as usize]
            .addr
            .expect("live entry with no fields must have an address");
        let split = self.controller.split(addr)?;
        // The split consumed the backing object: from here on the
        // entry must never be left with neither fields nor address.
        // Validate the pieces, then park them as owned words *before*
        // the fallible materializations — a table overflow below then
        // leaves a consistent, later-upgradable entry instead of a
        // corrupt one with orphaned pieces.
        for w in [split.car, split.cdr] {
            match w.tag() {
                Tag::Nil | Tag::Int | Tag::Sym | Tag::Ptr | Tag::Invisible => {}
                t => return Err(LpError::UnexpectedTag(t)),
            }
        }
        {
            let e = &mut self.entries[id as usize];
            e.addr = None;
            e.car = Field::Atom(split.car);
            e.cdr = Field::Atom(split.cdr);
        }
        self.stats.misses += 1;
        self.sink.record(Event::LptMiss);
        self.sink.record(Event::HeapSplit);
        // Pin the entry: materialize can trigger a compression pass
        // (or cycle break) that would otherwise flush the parked
        // fields out from under us, leaving a torn entry.
        self.pin = Some(id);
        for (piece, is_car) in [(split.car, true), (split.cdr, false)] {
            if !is_ptr_word(piece) {
                continue;
            }
            match self.materialize(piece) {
                Ok(f) => {
                    let e = &mut self.entries[id as usize];
                    if is_car {
                        e.car = f;
                    } else {
                        e.cdr = f;
                    }
                }
                // Table full: keep the parked owned word; an access
                // upgrades (or, degraded, copies) it on demand.
                Err(LpError::TrueOverflow) => {}
                Err(e) => {
                    self.pin = None;
                    return Err(e);
                }
            }
        }
        self.pin = None;
        Ok(())
    }

    fn materialize(&mut self, w: Word) -> Result<Field, LpError> {
        match w.tag() {
            Tag::Nil | Tag::Int | Tag::Sym => Ok(Field::Atom(w)),
            Tag::Ptr | Tag::Invisible => {
                let id = self.allocate()?;
                let e = &mut self.entries[id as usize];
                e.addr = Some(w.addr());
                e.rc = 1; // the internal reference from the parent field
                Ok(Field::Obj(id))
            }
            t => Err(LpError::UnexpectedTag(t)),
        }
    }

    /// `car` (§4.3.2.2.2): the returned value carries a fresh stack
    /// reference for the EP (Figure 4.11 increments the ref of Lcar).
    pub fn car(&mut self, id: Id) -> Result<LpValue, LpError> {
        self.drain_unroots();
        self.check_overflow_mode();
        self.timed_access(id, true, PrimKind::Car)
    }

    /// `cdr` (§4.3.2.2.2).
    pub fn cdr(&mut self, id: Id) -> Result<LpValue, LpError> {
        self.drain_unroots();
        self.check_overflow_mode();
        self.timed_access(id, false, PrimKind::Cdr)
    }

    /// `car` of any LP value: table objects dispatch to [`Self::car`];
    /// §4.3.2.3 heap-direct pointer atoms are peeked in place;
    /// immediates are refused as [`LpError::NotAList`].
    pub fn car_of(&mut self, v: LpValue) -> Result<LpValue, LpError> {
        self.value_access(v, true)
    }

    /// `cdr` of any LP value (see [`Self::car_of`]).
    pub fn cdr_of(&mut self, v: LpValue) -> Result<LpValue, LpError> {
        self.value_access(v, false)
    }

    fn value_access(&mut self, v: LpValue, want_car: bool) -> Result<LpValue, LpError> {
        match v {
            LpValue::Obj(id) => {
                if want_car {
                    self.car(id)
                } else {
                    self.cdr(id)
                }
            }
            LpValue::Atom(w) if is_ptr_word(w) => {
                self.drain_unroots();
                self.check_overflow_mode();
                let prim = if want_car {
                    PrimKind::Car
                } else {
                    PrimKind::Cdr
                };
                self.sink.op_begin(prim);
                let r = self.heap_direct_access(w, want_car);
                // Heap-direct accesses always touch the heap.
                self.sink.op_end(OpClass::AccessMiss);
                r
            }
            LpValue::Atom(_) => Err(LpError::NotAList),
        }
    }

    /// Overflow-mode access: read one piece of a heap-direct object
    /// with a non-consuming peek. Pieces stay words — pointer pieces
    /// alias the leaked heap-direct world and are never given table
    /// entries (the table does not own that structure).
    fn heap_direct_access(&mut self, w: Word, want_car: bool) -> Result<LpValue, LpError> {
        let split = self.controller.peek(w.addr())?;
        self.stats.heap_direct_ops += 1;
        let piece = if want_car { split.car } else { split.cdr };
        match piece.tag() {
            Tag::Nil | Tag::Int | Tag::Sym | Tag::Ptr | Tag::Invisible => Ok(LpValue::Atom(piece)),
            t => Err(LpError::UnexpectedTag(t)),
        }
    }

    /// Bracket one field access with op boundary marks. Whether it is a
    /// Figure-4.11 hit or a splitting miss is only known once the field
    /// has been examined, so the class is resolved at `op_end` from the
    /// miss-counter delta.
    fn timed_access(&mut self, id: Id, want_car: bool, prim: PrimKind) -> Result<LpValue, LpError> {
        self.sink.op_begin(prim);
        let misses_before = self.stats.misses;
        let r = self.access(id, want_car);
        let class = if self.stats.misses > misses_before {
            OpClass::AccessMiss
        } else {
            OpClass::AccessHit
        };
        self.sink.op_end(class);
        r
    }

    fn access(&mut self, id: Id, want_car: bool) -> Result<LpValue, LpError> {
        if let Some((car, cdr)) = self.cache_lookup(id) {
            // Inline-cache fast path: a line is only ever installed for
            // a live entry with both fields materialized and no parked
            // owned words, so this replays the exact Figure-4.11 hit
            // accounting the slow path below would perform — same
            // stats, same events, same reference traffic — and saves
            // only host wall time.
            debug_assert!(self.entries[id as usize].live, "access of dead entry {id}");
            self.cache_stats.hits += 1;
            self.sink.cache_probe(true);
            self.stats.hits += 1;
            self.sink.record(Event::LptHit);
            let v = match if want_car { car } else { cdr } {
                Field::Atom(w) => LpValue::Atom(w),
                Field::Obj(c) => LpValue::Obj(c),
                Field::Empty => unreachable!("cache lines hold materialized fields"),
            };
            if let LpValue::Obj(c) = v {
                self.binding_acquire(LpValue::Obj(c));
            }
            self.sample_occupancy();
            return Ok(v);
        }
        if self.cache_enabled() {
            self.cache_stats.misses += 1;
            self.sink.cache_probe(false);
        }
        let e = &self.entries[id as usize];
        debug_assert!(e.live, "access of dead entry {id}");
        let field = if want_car { e.car } else { e.cdr };
        if field == Field::Empty {
            self.ensure_fields(id)?;
        } else {
            self.stats.hits += 1;
            self.sink.record(Event::LptHit);
        }
        let e = &self.entries[id as usize];
        let v = match if want_car { e.car } else { e.cdr } {
            Field::Atom(w) if is_ptr_word(w) => {
                // An owned word parked in the field (partial
                // compression progress or an earlier overflow).
                // Transfer it to a table entry so normal refcounting
                // applies; with the table still full under the degrade
                // policy, hand the EP a leaked private copy instead —
                // the field keeps its owned original.
                self.pin = Some(id);
                let m = self.materialize(w);
                self.pin = None;
                match m {
                    Ok(f) => {
                        let e = &mut self.entries[id as usize];
                        if want_car {
                            e.car = f;
                        } else {
                            e.cdr = f;
                        }
                        match f {
                            Field::Obj(c) => LpValue::Obj(c),
                            _ => unreachable!("ptr words materialize to objects"),
                        }
                    }
                    Err(LpError::TrueOverflow)
                        if self.config.overflow == OverflowPolicy::Degrade =>
                    {
                        self.enter_degraded();
                        let expr = self.controller.extract(w);
                        let copy = self.controller.read_in(&expr)?;
                        self.sink.record(Event::HeapReadIn);
                        self.stats.heap_direct_ops += 1;
                        LpValue::Atom(copy)
                    }
                    Err(e) => return Err(e),
                }
            }
            Field::Atom(w) => LpValue::Atom(w),
            Field::Obj(c) => LpValue::Obj(c),
            Field::Empty => unreachable!("ensure_fields materializes both"),
        };
        if let LpValue::Obj(c) = v {
            self.binding_acquire(LpValue::Obj(c));
        }
        self.cache_fill(id);
        self.sample_occupancy();
        Ok(v)
    }

    /// `cons` (§4.3.2.2.4): pure LPT activity, no heap traffic. The
    /// result carries one stack reference.
    pub fn cons(&mut self, car: LpValue, cdr: LpValue) -> Result<LpValue, LpError> {
        self.drain_unroots();
        self.check_overflow_mode();
        self.sink.op_begin(PrimKind::Cons);
        let r = self.cons_op(car, cdr);
        self.sink.op_end(OpClass::Cons);
        r
    }

    fn cons_op(&mut self, car: LpValue, cdr: LpValue) -> Result<LpValue, LpError> {
        if self.degraded {
            return self.cons_direct(car, cdr);
        }
        let car = self.adopt_operand(car)?;
        let cdr = self.adopt_operand(cdr)?;
        let id = match self.allocate() {
            Ok(id) => id,
            Err(LpError::TrueOverflow) if self.config.overflow == OverflowPolicy::Degrade => {
                self.enter_degraded();
                return self.cons_direct(car, cdr);
            }
            Err(e) => return Err(e),
        };
        // Children gain an internal reference each.
        if let LpValue::Obj(c) = car {
            self.incref(c);
        }
        if let LpValue::Obj(c) = cdr {
            self.incref(c);
        }
        let e = &mut self.entries[id as usize];
        e.car = match car {
            LpValue::Atom(w) => Field::Atom(w),
            LpValue::Obj(c) => Field::Obj(c),
        };
        e.cdr = match cdr {
            LpValue::Atom(w) => Field::Atom(w),
            LpValue::Obj(c) => Field::Obj(c),
        };
        e.rc = 1;
        self.adopt_as_stack_ref(id);
        self.sample_occupancy();
        #[cfg(feature = "lp-debug")]
        self.audit("post-cons");
        Ok(LpValue::Obj(id))
    }

    /// Copy an overflow-mode heap-direct operand into a privately
    /// owned heap object before it is stored into a table field.
    /// EP-visible pointer atoms alias the leaked heap-direct world,
    /// which is never reclaimed; table fields *own* their words and
    /// free them with the entry, so sharing a word across the two
    /// regimes would reclaim cells other overflow-mode values still
    /// reference.
    fn adopt_operand(&mut self, v: LpValue) -> Result<LpValue, LpError> {
        match v {
            LpValue::Atom(w) if is_ptr_word(w) => {
                let expr = self.controller.extract(w);
                let copy = self.controller.read_in(&expr)?;
                self.sink.record(Event::HeapReadIn);
                self.stats.heap_direct_ops += 1;
                Ok(LpValue::Atom(copy))
            }
            v => Ok(v),
        }
    }

    /// §4.3.2.3 overflow-mode cons: build the cell heap-side like a
    /// conventional machine. Table objects are passed by value (a deep
    /// copy — aliasing with the table original is lost for structure
    /// built while degraded); atoms and heap-direct pointers pass
    /// straight through.
    fn cons_direct(&mut self, car: LpValue, cdr: LpValue) -> Result<LpValue, LpError> {
        let cw = self.direct_word(car)?;
        let dw = self.direct_word(cdr)?;
        let addr = self.controller.merge(cw, dw)?;
        self.sink.record(Event::HeapMerge);
        self.stats.heap_direct_ops += 1;
        self.sample_occupancy();
        Ok(LpValue::Atom(Word::ptr(addr)))
    }

    fn direct_word(&mut self, v: LpValue) -> Result<Word, LpError> {
        match v {
            LpValue::Atom(w) => Ok(w),
            LpValue::Obj(id) => {
                // Snapshot the table object into the heap-direct
                // world; the entry keeps its structure and refcounts.
                let expr = self.writelist_inner(LpValue::Obj(id), &mut Vec::new())?;
                let w = self.controller.read_in(&expr)?;
                self.sink.record(Event::HeapReadIn);
                self.stats.heap_direct_ops += 1;
                Ok(w)
            }
        }
    }

    /// `rplaca` (§4.3.2.2.3).
    pub fn rplaca(&mut self, id: Id, v: LpValue) -> Result<(), LpError> {
        self.drain_unroots();
        self.check_overflow_mode();
        self.timed_replace(id, v, true, PrimKind::Rplaca)
    }

    /// `rplacd` (§4.3.2.2.3).
    pub fn rplacd(&mut self, id: Id, v: LpValue) -> Result<(), LpError> {
        self.drain_unroots();
        self.check_overflow_mode();
        self.timed_replace(id, v, false, PrimKind::Rplacd)
    }

    /// `rplaca` of any LP value. Destructive update of a §4.3.2.3
    /// heap-direct value is refused with a typed [`LpError::Degraded`]
    /// — overflow-mode structure is immutable by construction (the
    /// leaked world may be aliased arbitrarily).
    pub fn rplaca_of(&mut self, target: LpValue, v: LpValue) -> Result<(), LpError> {
        self.value_replace(target, v, true)
    }

    /// `rplacd` of any LP value (see [`Self::rplaca_of`]).
    pub fn rplacd_of(&mut self, target: LpValue, v: LpValue) -> Result<(), LpError> {
        self.value_replace(target, v, false)
    }

    fn value_replace(&mut self, target: LpValue, v: LpValue, is_car: bool) -> Result<(), LpError> {
        match target {
            LpValue::Obj(id) => {
                if is_car {
                    self.rplaca(id, v)
                } else {
                    self.rplacd(id, v)
                }
            }
            LpValue::Atom(w) if is_ptr_word(w) => Err(LpError::Degraded(if is_car {
                "rplaca of a heap-direct value"
            } else {
                "rplacd of a heap-direct value"
            })),
            LpValue::Atom(_) => Err(LpError::NotAList),
        }
    }

    /// Bracket one field replacement. Always classed as a Figure-4.12
    /// modify, even when `ensure_fields` had to split first: the thesis
    /// diagrams treat rplac* on an unmaterialized entry as out of scope,
    /// and folding the split into Modify keeps attribution deterministic.
    fn timed_replace(
        &mut self,
        id: Id,
        v: LpValue,
        is_car: bool,
        prim: PrimKind,
    ) -> Result<(), LpError> {
        self.sink.op_begin(prim);
        let r = self.replace(id, v, is_car);
        self.sink.op_end(OpClass::Modify);
        r
    }

    fn replace(&mut self, id: Id, v: LpValue, is_car: bool) -> Result<(), LpError> {
        self.cache_invalidate(id);
        self.ensure_fields(id)?;
        let v = self.adopt_operand(v)?;
        if let LpValue::Obj(c) = v {
            self.incref(c);
        }
        let new_field = match v {
            LpValue::Atom(w) => Field::Atom(w),
            LpValue::Obj(c) => Field::Obj(c),
        };
        let old = {
            let e = &mut self.entries[id as usize];
            if is_car {
                std::mem::replace(&mut e.car, new_field)
            } else {
                std::mem::replace(&mut e.cdr, new_field)
            }
        };
        match old {
            Field::Obj(c) => self.decref(c),
            // The field owned its parked heap word; it is unreachable
            // once replaced.
            old => self.free_field_word(old),
        }
        self.sample_occupancy();
        Ok(())
    }

    /// `copy` (§4.3.1): a top-cell copy for call-by-value parameters.
    pub fn copy(&mut self, id: Id) -> Result<LpValue, LpError> {
        self.drain_unroots();
        self.ensure_fields(id)?;
        let (car, cdr) = {
            let e = &self.entries[id as usize];
            (e.car, e.cdr)
        };
        let to_value = |f: Field| match f {
            Field::Atom(w) => LpValue::Atom(w),
            Field::Obj(c) => LpValue::Obj(c),
            Field::Empty => unreachable!(),
        };
        self.cons(to_value(car), to_value(cdr))
    }

    /// `writelist`: reconstruct the s-expression for a value. A cycle
    /// built by `rplaca`/`rplacd` is refused with a typed
    /// [`LpError::Cyclic`] rather than recursing without bound.
    pub fn writelist(&mut self, v: LpValue) -> Result<SExpr, LpError> {
        self.drain_unroots();
        let mut path = Vec::new();
        self.writelist_inner(v, &mut path)
    }

    fn writelist_inner(&mut self, v: LpValue, path: &mut Vec<Id>) -> Result<SExpr, LpError> {
        match v {
            LpValue::Atom(w) => Ok(self.controller.extract(w)),
            LpValue::Obj(id) => {
                // Path-based detection: a shared (DAG) child may appear
                // many times, but the same id on the *current* path is
                // a cycle and has no finite printed form.
                if path.contains(&id) {
                    return Err(LpError::Cyclic);
                }
                let e = &self.entries[id as usize];
                debug_assert!(e.live);
                if let Some(addr) = e.addr {
                    return Ok(self.controller.extract(Word::ptr(addr)));
                }
                let (car, cdr) = (e.car, e.cdr);
                let to_value = |f: Field| match f {
                    Field::Atom(w) => LpValue::Atom(w),
                    Field::Obj(c) => LpValue::Obj(c),
                    Field::Empty => unreachable!("live entry without addr has fields"),
                };
                path.push(id);
                let car_e = self.writelist_inner(to_value(car), path)?;
                let cdr_e = self.writelist_inner(to_value(cdr), path)?;
                path.pop();
                Ok(SExpr::cons(car_e, cdr_e))
            }
        }
    }

    /// Structural equality of two LP values (used by the VM's `equal`).
    pub fn equal(&mut self, a: LpValue, b: LpValue) -> Result<bool, LpError> {
        Ok(self.writelist(a)? == self.writelist(b)?)
    }

    /// Count of entries the EP currently holds stack references to
    /// (split mode bookkeeping; for tests).
    pub fn ep_tracked(&self) -> usize {
        self.ep_counts.len()
    }

    /// Introspect an entry's materialized fields without touching stats
    /// or reference counts. Simulator-only: the trace-driven simulator
    /// uses this to learn both split pieces when synthesizing heap
    /// addresses for the cache comparison (§5.2.5).
    pub fn peek_fields(&self, id: Id) -> (Option<LpValue>, Option<LpValue>) {
        let e = &self.entries[id as usize];
        let conv = |f: Field| match f {
            Field::Empty => None,
            Field::Atom(w) => Some(LpValue::Atom(w)),
            Field::Obj(c) => Some(LpValue::Obj(c)),
        };
        (conv(e.car), conv(e.cdr))
    }

    /// Perform every *pending* lazy child decrement without waiting for
    /// reallocation, to a fixpoint. The hardware never does this — the
    /// deferred work is the price of O(1) frees (§4.3.2.1) — but tests
    /// and shutdown accounting use it to verify that everything
    /// unreachable is eventually detected. Scheduled unroots from
    /// dropped [`Rooted`] handles are drained first.
    pub fn drain_lazy(&mut self) {
        self.drain_unroots();
        loop {
            let mut did = false;
            for id in 0..self.entries.len() {
                let e = &mut self.entries[id];
                if e.live || !e.lazy {
                    continue;
                }
                e.lazy = false;
                let (car, cdr) = (e.car, e.cdr);
                e.car = Field::Empty;
                e.cdr = Field::Empty;
                let children =
                    matches!(car, Field::Obj(_)) as u32 + matches!(cdr, Field::Obj(_)) as u32;
                if children > 0 {
                    self.sink.record(Event::LazyDrain { children });
                }
                for f in [car, cdr] {
                    match f {
                        Field::Obj(c) => {
                            self.decref(c);
                            did = true;
                        }
                        f => self.free_field_word(f),
                    }
                }
            }
            if !did {
                return;
            }
        }
    }

    // -----------------------------------------------------------------
    // Invariant auditing, perturbation, and reconciliation
    // -----------------------------------------------------------------

    /// Walk the whole table and verify its structural invariants:
    /// reference counts against internal in-degree, the
    /// fields-XOR-address rule, dangling and out-of-range fields,
    /// free-stack integrity (LIFO threading, no cycles, no live entry
    /// on the list, no stranded dead entry), and split-refcount
    /// conservation (§5.2.4). Read-only; returns a structured report.
    ///
    /// Legal states are not flagged: uncollected reference cycles
    /// satisfy `rc >= indegree`, and over-counted entries merely leak
    /// (external register references are invisible to the walk).
    pub fn audit(&self) -> AuditReport {
        let n = self.entries.len();
        let mut report = AuditReport::default();
        // Internal in-degree: fields of live entries plus pending
        // fields of lazily-freed entries.
        let mut indeg = vec![0u32; n];
        for e in &self.entries {
            if e.live || e.lazy {
                for f in [e.car, e.cdr] {
                    if let Field::Obj(c) = f {
                        if (c as usize) < n {
                            indeg[c as usize] += 1;
                        }
                    }
                }
            }
        }
        for (i, e) in self.entries.iter().enumerate() {
            let id = i as Id;
            if e.live {
                report.live_entries += 1;
                let has_car = e.car != Field::Empty;
                let has_cdr = e.cdr != Field::Empty;
                let consistent = match (has_car, has_cdr) {
                    (true, true) => e.addr.is_none(),
                    (false, false) => e.addr.is_some(),
                    _ => false,
                };
                if !consistent {
                    report.violations.push(Violation::FieldsAddrMismatch { id });
                }
                if e.rc < indeg[i] && !e.stack_bit {
                    report.violations.push(Violation::RefcountLow {
                        id,
                        rc: e.rc,
                        indegree: indeg[i],
                    });
                }
                if e.rc == 0 && !e.stack_bit {
                    report.violations.push(Violation::UndetectedGarbage { id });
                }
            }
            if e.live || e.lazy {
                for f in [e.car, e.cdr] {
                    if let Field::Obj(c) = f {
                        if c as usize >= n {
                            report
                                .violations
                                .push(Violation::FieldOutOfRange { id, child: c });
                        } else if !self.entries[c as usize].live {
                            report
                                .violations
                                .push(Violation::DanglingField { id, child: c });
                        }
                    }
                }
            }
        }
        // Split-refcount conservation (§5.2.4): the stack bit and the
        // EP-side count table must agree exactly; the unified mode has
        // neither.
        match self.config.refcounts {
            RefcountMode::Unified => {
                for (i, e) in self.entries.iter().enumerate() {
                    if e.stack_bit {
                        report
                            .violations
                            .push(Violation::StackBitMismatch { id: i as Id });
                    }
                }
                let mut stray: Vec<Id> = self.ep_counts.keys().copied().collect();
                stray.sort_unstable();
                for id in stray {
                    report.violations.push(Violation::StackBitMismatch { id });
                }
            }
            RefcountMode::Split => {
                for (i, e) in self.entries.iter().enumerate() {
                    let counted = self.ep_counts.get(&(i as Id)).copied().unwrap_or(0) > 0;
                    let mismatch = if e.live {
                        e.stack_bit != counted
                    } else {
                        e.stack_bit || counted
                    };
                    if mismatch {
                        report
                            .violations
                            .push(Violation::StackBitMismatch { id: i as Id });
                    }
                }
            }
        }
        // Free-list integrity: walk from the head with a seen-bitmap.
        let mut seen = vec![false; n];
        let mut cursor = self.free_head;
        let mut last = None;
        let mut cycled = false;
        while let Some(id) = cursor {
            if seen[id as usize] {
                report.violations.push(Violation::FreeListCycle { id });
                cycled = true;
                break;
            }
            seen[id as usize] = true;
            report.free_entries += 1;
            if self.entries[id as usize].live {
                report.violations.push(Violation::LiveOnFreeList { id });
            }
            last = Some(id);
            cursor = self.entries[id as usize].free_next;
        }
        if !cycled && last != self.free_tail {
            report.violations.push(Violation::FreeTailMismatch);
        }
        for (i, e) in self.entries.iter().enumerate() {
            if !e.live && !seen[i] {
                report
                    .violations
                    .push(Violation::DeadNotOnFreeList { id: i as Id });
            }
        }
        report
    }

    /// Deliberately corrupt the table (chaos/test tooling only): apply
    /// one [`Perturbation`] with no bookkeeping, modeling a bit flip
    /// the [`Self::audit`] walk must catch and [`Self::reconcile`]
    /// must repair.
    pub fn perturb(&mut self, p: Perturbation) {
        self.cache_clear();
        match p {
            Perturbation::SetRefcount { id, rc } => {
                self.entries[id as usize].rc = rc;
            }
            Perturbation::CorruptField { id, car, child } => {
                let e = &mut self.entries[id as usize];
                if car {
                    e.car = Field::Obj(child);
                } else {
                    e.cdr = Field::Obj(child);
                }
            }
            Perturbation::ClearStackBit { id } => {
                self.entries[id as usize].stack_bit = false;
            }
            Perturbation::BreakFreeList => {
                self.free_head = None;
                self.free_tail = None;
            }
            Perturbation::ResurrectEntry { id } => {
                let e = &mut self.entries[id as usize];
                if !e.live {
                    e.live = true;
                    e.lazy = false;
                    self.live += 1;
                }
            }
        }
    }

    /// Walk the free list and decide whether its threading is
    /// structurally sound: every link targets an in-range dead entry,
    /// no entry repeats, the walk covers *every* dead entry, and the
    /// final node is the recorded tail. Used by [`Self::reconcile`] to
    /// leave a healthy list (whose order encodes workload history)
    /// untouched instead of unconditionally rebuilding it.
    fn free_list_is_valid(&self) -> bool {
        let n = self.entries.len();
        let dead_total = self.entries.iter().filter(|e| !e.live).count();
        let mut seen = vec![false; n];
        let mut visited = 0usize;
        let mut last: Option<Id> = None;
        let mut cursor = self.free_head;
        while let Some(id) = cursor {
            let i = id as usize;
            if i >= n || seen[i] || self.entries[i].live {
                return false;
            }
            seen[i] = true;
            visited += 1;
            last = Some(id);
            cursor = self.entries[i].free_next;
        }
        visited == dead_total && last == self.free_tail
    }

    /// Audit-driven repair: rebuild the table's bookkeeping from
    /// trusted external roots, reusing the true-overflow mark
    /// machinery. `roots` must list every EP-held reference that is
    /// counted in entry refcounts — register references in both modes,
    /// plus stack/binding references under [`RefcountMode::Unified`]
    /// (one element per reference). Split-mode stack references are
    /// recovered from the EP-side count table automatically.
    ///
    /// The pass clears corrupt fields, sweeps unreachable live
    /// entries, recomputes every reference count from internal
    /// in-degree plus root multiplicity, realigns stack bits with the
    /// EP-side table, and — only if its threading is invalid — rebuilds
    /// the free list deterministically (dead identifiers ascending,
    /// threaded low-first). Reachable structure is never dropped;
    /// ambiguous heap addresses are leaked rather than freed.
    ///
    /// The pass is **idempotent**: on an already-consistent table it
    /// repairs nothing ([`ReconcileStats::is_clean`]) and leaves every
    /// entry — including free-list threading and pending lazy
    /// obligations — byte-for-byte unchanged, so recovery gates can run
    /// it unconditionally.
    pub fn reconcile(&mut self, roots: &[LpValue]) -> ReconcileStats {
        self.cache_clear();
        let mut stats = ReconcileStats::default();
        let n = self.entries.len();
        let nil = Field::Atom(Word::NIL);
        // 1. Field hygiene: clear fields naming dead or out-of-range
        //    entries; resolve fields/address inconsistencies.
        for i in 0..n {
            if !(self.entries[i].live || self.entries[i].lazy) {
                continue;
            }
            for is_car in [true, false] {
                let e = &self.entries[i];
                let f = if is_car { e.car } else { e.cdr };
                if let Field::Obj(c) = f {
                    if c as usize >= n || !self.entries[c as usize].live {
                        let e = &mut self.entries[i];
                        if is_car {
                            e.car = nil;
                        } else {
                            e.cdr = nil;
                        }
                        stats.fields_cleared += 1;
                    }
                }
            }
            if self.entries[i].live {
                let e = &mut self.entries[i];
                let has_fields = e.car != Field::Empty || e.cdr != Field::Empty;
                if has_fields && e.addr.is_some() {
                    // Trust the materialized fields; the stale address
                    // may alias live structure, so it leaks.
                    e.addr = None;
                    stats.fields_cleared += 1;
                }
                if has_fields {
                    if e.car == Field::Empty {
                        e.car = nil;
                        stats.fields_cleared += 1;
                    }
                    if e.cdr == Field::Empty {
                        e.cdr = nil;
                        stats.fields_cleared += 1;
                    }
                } else if e.addr.is_none() {
                    // No recoverable structure: default to (nil . nil)
                    // so the entry stays accessible.
                    e.car = nil;
                    e.cdr = nil;
                    stats.fields_cleared += 1;
                }
            }
        }
        // 2. Mark from the trusted roots (the same machinery as
        //    true-overflow cycle breaking, with externally supplied
        //    roots instead of count-derived ones).
        let mut marked = vec![false; n];
        let mut stack: Vec<Id> = Vec::new();
        let mut root_mult = vec![0u32; n];
        for v in roots {
            if let LpValue::Obj(id) = v {
                if (*id as usize) < n && self.entries[*id as usize].live {
                    root_mult[*id as usize] += 1;
                    stack.push(*id);
                }
            }
        }
        for (&id, &c) in &self.ep_counts {
            if (id as usize) < n && c > 0 && self.entries[id as usize].live {
                stack.push(id);
            }
        }
        // Pending lazy decrements are references too: a dead entry's
        // not-yet-drained fields still hold counted references to their
        // targets (step 5 counts them in the in-degree), so they must
        // also anchor the mark — otherwise an entry kept alive only by
        // a pending decrement is swept from a perfectly clean table.
        for i in 0..n {
            if !self.entries[i].lazy {
                continue;
            }
            let e = &self.entries[i];
            for f in [e.car, e.cdr] {
                if let Field::Obj(c) = f {
                    if (c as usize) < n && self.entries[c as usize].live {
                        stack.push(c);
                    }
                }
            }
        }
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut marked[id as usize], true) {
                continue;
            }
            let e = &self.entries[id as usize];
            for f in [e.car, e.cdr] {
                if let Field::Obj(c) = f {
                    if !marked[c as usize] {
                        stack.push(c);
                    }
                }
            }
        }
        // 3. Sweep unreachable live entries back to dead.
        for (i, &m) in marked.iter().enumerate() {
            if !self.entries[i].live || m {
                continue;
            }
            let (car, cdr, addr) = {
                let e = &mut self.entries[i];
                e.live = false;
                e.lazy = false;
                e.rc = 0;
                e.stack_bit = false;
                (
                    std::mem::take(&mut e.car),
                    std::mem::take(&mut e.cdr),
                    e.addr.take(),
                )
            };
            if let Some(a) = addr {
                self.controller.free_object(a);
                self.sink.record(Event::HeapFree);
            }
            for f in [car, cdr] {
                self.free_field_word(f);
            }
            stats.entries_swept += 1;
        }
        // 4. Pending lazy fields whose target was just swept: drop the
        //    deferred decrement (the target is already gone).
        for i in 0..n {
            if !self.entries[i].lazy {
                continue;
            }
            for is_car in [true, false] {
                let e = &self.entries[i];
                let f = if is_car { e.car } else { e.cdr };
                if let Field::Obj(c) = f {
                    if !self.entries[c as usize].live {
                        let e = &mut self.entries[i];
                        if is_car {
                            e.car = nil;
                        } else {
                            e.cdr = nil;
                        }
                        stats.fields_cleared += 1;
                    }
                }
            }
        }
        // 5. Recompute reference counts: internal in-degree over live
        //    and pending fields, plus declared root multiplicity.
        let mut indeg = vec![0u32; n];
        for e in &self.entries {
            if e.live || e.lazy {
                for f in [e.car, e.cdr] {
                    if let Field::Obj(c) = f {
                        indeg[c as usize] += 1;
                    }
                }
            }
        }
        for i in 0..n {
            let want = indeg[i] + root_mult[i];
            let e = &mut self.entries[i];
            if e.live && e.rc != want {
                e.rc = want;
                stats.refcounts_fixed += 1;
            }
        }
        // 6. Stack bits follow the EP-side table (split mode); the
        //    unified mode has none. EP counts on dead entries are
        //    corrupt leftovers and are dropped.
        let dead_counts: Vec<Id> = self
            .ep_counts
            .keys()
            .copied()
            .filter(|&id| id as usize >= n || !self.entries[id as usize].live)
            .collect();
        for id in dead_counts {
            self.ep_counts.remove(&id);
            stats.stack_bits_fixed += 1;
        }
        for i in 0..n {
            let should = self.config.refcounts == RefcountMode::Split
                && self.entries[i].live
                && self.ep_counts.get(&(i as Id)).copied().unwrap_or(0) > 0;
            let e = &mut self.entries[i];
            if e.stack_bit != should {
                e.stack_bit = should;
                stats.stack_bits_fixed += 1;
            }
        }
        // 7. Free list: keep the existing threading when it is
        //    structurally sound (so a clean table — whose list order
        //    reflects workload history — passes through untouched, and
        //    a second invocation is a no-op); rebuild deterministically
        //    (dead identifiers ascending, threaded low-first) only when
        //    the walk finds corruption.
        if !self.free_list_is_valid() {
            self.free_head = None;
            self.free_tail = None;
            for i in (0..n).rev() {
                if self.entries[i].live {
                    self.entries[i].free_next = None;
                } else {
                    self.entries[i].free_next = self.free_head;
                    self.free_head = Some(i as Id);
                    if self.free_tail.is_none() {
                        self.free_tail = Some(i as Id);
                    }
                }
            }
            stats.free_lists_rebuilt += 1;
        }
        // 8. Recount occupancy.
        self.live = self.entries.iter().filter(|e| e.live).count();
        stats
    }

    // -----------------------------------------------------------------
    // Checkpoint export / import
    // -----------------------------------------------------------------

    /// Capture the complete table state as a deterministic [`LpImage`].
    ///
    /// Must be called at an operation boundary (no multi-step primitive
    /// in flight, [`Self::drain_unroots`] already run); equal states
    /// always export equal images. The heap controller is exported
    /// separately via [`small_heap::PersistableController`].
    pub fn export_image(&self) -> LpImage {
        debug_assert!(self.pin.is_none(), "export only at operation boundaries");
        let entries = self
            .entries
            .iter()
            .map(|e| EntryImage {
                car: field_to_image(e.car),
                cdr: field_to_image(e.cdr),
                rc: e.rc,
                addr: e.addr.map(|a| a.0),
                stack_bit: e.stack_bit,
                live: e.live,
                free_next: e.free_next,
                lazy: e.lazy,
            })
            .collect();
        let mut ep_counts: Vec<(Id, u32)> =
            self.ep_counts.iter().map(|(&id, &c)| (id, c)).collect();
        ep_counts.sort_unstable_by_key(|&(id, _)| id);
        LpImage {
            table_size: self.config.table_size,
            entries,
            free_head: self.free_head,
            free_tail: self.free_tail,
            live: self.live,
            degraded: self.degraded,
            ep_counts,
            recent_overflows: self.recent_overflows.iter().copied().collect(),
            stats: self.stats,
        }
    }

    /// Rebuild a processor from an [`LpImage`] captured by
    /// [`Self::export_image`], attaching `controller` (restored via
    /// [`small_heap::PersistableController`]) and `sink`.
    ///
    /// Validates structural invariants that do not require trusting the
    /// image — table size against `config`, identifier ranges, the live
    /// count — and fails closed with
    /// [`ImageError::Malformed`](small_heap::ImageError) on any
    /// mismatch. Outstanding handles are *not* recreated; callers
    /// re-wrap recovered references via [`Self::resume_root`]. Recovery
    /// gates should follow up with [`Self::audit`] /
    /// [`Self::reconcile`].
    pub fn from_image(
        controller: C,
        config: LpConfig,
        image: &LpImage,
        sink: S,
    ) -> Result<Self, small_heap::ImageError> {
        use small_heap::ImageError;
        let n = image.table_size;
        if n != config.table_size || image.entries.len() != n {
            return Err(ImageError::Malformed);
        }
        let in_range = |id: Id| (id as usize) < n;
        let link_ok = |o: Option<Id>| o.is_none_or(in_range);
        if !link_ok(image.free_head) || !link_ok(image.free_tail) {
            return Err(ImageError::Malformed);
        }
        let mut live = 0usize;
        let mut entries = Vec::with_capacity(n);
        for img in &image.entries {
            if !link_ok(img.free_next) {
                return Err(ImageError::Malformed);
            }
            for f in [img.car, img.cdr] {
                if let FieldImage::Obj(c) = f {
                    if !in_range(c) {
                        return Err(ImageError::Malformed);
                    }
                }
            }
            live += img.live as usize;
            entries.push(Entry {
                car: field_from_image(img.car),
                cdr: field_from_image(img.cdr),
                rc: img.rc,
                addr: img.addr.map(small_heap::HeapAddr),
                stack_bit: img.stack_bit,
                live: img.live,
                free_next: img.free_next,
                lazy: img.lazy,
            });
        }
        if live != image.live {
            return Err(ImageError::Malformed);
        }
        let mut ep_counts = fxhash::FxHashMap::default();
        for &(id, c) in &image.ep_counts {
            if !in_range(id) || ep_counts.insert(id, c).is_some() {
                return Err(ImageError::Malformed);
            }
        }
        Ok(ListProcessor {
            controller,
            entries,
            free_head: image.free_head,
            free_tail: image.free_tail,
            live,
            config,
            stats: image.stats,
            sink,
            ep_counts,
            recent_overflows: image.recent_overflows.iter().copied().collect(),
            roots: Arc::new(RootShared {
                queue: Mutex::new(Vec::new()),
                pending: AtomicBool::new(false),
            }),
            degraded: image.degraded,
            pin: None,
            // The cache is host-side state and is never checkpointed:
            // a restored processor starts cold and re-warms.
            cache: vec![CacheLine::EMPTY; FIELD_CACHE_LINES].into_boxed_slice(),
            cache_stats: LptCacheStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_heap::controller::TwoPointerController;
    use small_metrics::CountingSink;
    use small_sexpr::{parse, print, Interner};

    type Lp = ListProcessor<TwoPointerController>;

    /// Drop the EP's stack reference to `v` *now*: adopt the reference
    /// the value already carries, then force the deferred release.
    fn release<S: EventSink>(lp: &mut ListProcessor<TwoPointerController, S>, v: LpValue) {
        drop(lp.adopt_binding(v));
        lp.drain_unroots();
    }

    fn lp_with(table: usize) -> Lp {
        ListProcessor::new(
            TwoPointerController::new(65536, 64),
            LpConfig {
                table_size: table,
                ..LpConfig::default()
            },
        )
    }

    fn lp() -> Lp {
        lp_with(512)
    }

    fn read<S: EventSink>(
        lp: &mut ListProcessor<TwoPointerController, S>,
        i: &mut Interner,
        src: &str,
    ) -> LpValue {
        let e = parse(src, i).unwrap();
        lp.readlist(None, &e).unwrap()
    }

    #[test]
    fn readlist_writelist_roundtrip() {
        let mut i = Interner::new();
        let mut lp = lp();
        let v = read(&mut lp, &mut i, "(a (b c) d)");
        let e = lp.writelist(v).unwrap();
        assert_eq!(print(&e, &i), "(a (b c) d)");
        assert_eq!(lp.occupancy(), 1, "one entry for the whole object");
    }

    #[test]
    fn car_miss_splits_then_hits() {
        let mut i = Interner::new();
        let mut lp = lp();
        let v = read(&mut lp, &mut i, "((a) b)");
        let id = v.obj().unwrap();
        let car1 = lp.car(id).unwrap();
        assert_eq!(lp.stats().misses, 1);
        assert_eq!(lp.stats().hits, 0);
        // Second access is a hit and returns the same identifier.
        let car2 = lp.car(id).unwrap();
        assert_eq!(lp.stats().hits, 1);
        assert_eq!(car1, car2);
        assert_eq!(print(&lp.writelist(car1).unwrap(), &i), "(a)");
    }

    #[test]
    fn cons_touches_no_heap() {
        let mut i = Interner::new();
        let mut lp = lp();
        let a = read(&mut lp, &mut i, "(a)");
        let b = read(&mut lp, &mut i, "(b)");
        let heap_live = lp.controller.heap().live();
        let c = lp.cons(a, b).unwrap();
        assert_eq!(
            lp.controller.heap().live(),
            heap_live,
            "cons allocates only an LPT entry (§4.3.2.2.4)"
        );
        assert_eq!(print(&lp.writelist(c).unwrap(), &i), "((a) b)");
    }

    #[test]
    fn transient_cons_cells_die_in_the_table() {
        let mut i = Interner::new();
        let mut lp = lp();
        let a = read(&mut lp, &mut i, "(x)");
        let frees_before = lp.stats().frees;
        // cons, then drop the only reference: the cell must be detected
        // as garbage immediately (§5.3.2).
        let c = lp.cons(a, LpValue::Atom(Word::NIL)).unwrap();
        release(&mut lp, a); // EP's ref; the cons child ref remains
        release(&mut lp, c);
        assert_eq!(lp.stats().frees, frees_before + 1);
        // `a` survives: the freed cons still holds it (lazy decrement).
        assert_eq!(lp.occupancy(), 1);
    }

    #[test]
    fn lazy_decrement_defers_child_frees_until_reallocation() {
        let mut i = Interner::new();
        let mut lp = lp();
        let a = read(&mut lp, &mut i, "(x)");
        let c = lp.cons(a, LpValue::Atom(Word::NIL)).unwrap();
        release(&mut lp, a);
        // Now `a` is held only by the cons. Drop the cons:
        release(&mut lp, c);
        // Lazy policy: `a` is NOT yet freed (child decrement deferred).
        assert_eq!(lp.occupancy(), 1);
        // Reallocating the freed entry performs the deferred decrement,
        // freeing `a` too.
        let _fresh = lp
            .cons(LpValue::Atom(Word::int(1)), LpValue::Atom(Word::NIL))
            .unwrap();
        assert_eq!(lp.occupancy(), 1, "a freed, fresh cons live");
    }

    #[test]
    fn recursive_decrement_frees_children_immediately() {
        let mut i = Interner::new();
        let mut lp = ListProcessor::new(
            TwoPointerController::new(4096, 64),
            LpConfig {
                table_size: 256,
                decrement: DecrementPolicy::Recursive,
                ..LpConfig::default()
            },
        );
        let a = read(&mut lp, &mut i, "(x)");
        let c = lp.cons(a, LpValue::Atom(Word::NIL)).unwrap();
        release(&mut lp, a);
        release(&mut lp, c);
        assert_eq!(lp.occupancy(), 0, "recursive policy frees the child too");
    }

    #[test]
    fn recursive_policy_does_more_refops() {
        // The Table 5.2 Refops vs RecRefops comparison, in miniature.
        let run = |decrement: DecrementPolicy| -> u64 {
            let mut i = Interner::new();
            let mut lp = ListProcessor::new(
                TwoPointerController::new(8192, 64),
                LpConfig {
                    table_size: 512,
                    decrement,
                    ..LpConfig::default()
                },
            );
            for _ in 0..50 {
                let a = read(&mut lp, &mut i, "(x y z)");
                let b = lp.cons(a, LpValue::Atom(Word::NIL)).unwrap();
                let c = lp.cons(b, LpValue::Atom(Word::NIL)).unwrap();
                release(&mut lp, a);
                release(&mut lp, b);
                release(&mut lp, c);
                // Never reallocate: lazy policy defers the chain.
            }
            lp.stats().refops
        };
        let lazy = run(DecrementPolicy::Lazy);
        let recursive = run(DecrementPolicy::Recursive);
        assert!(
            recursive > lazy,
            "recursive {recursive} should exceed lazy {lazy}"
        );
    }

    #[test]
    fn free_stack_reuses_most_recently_freed_first() {
        // §4.3.2.1: LIFO reuse performs the just-freed entry's deferred
        // child decrement immediately on the next allocation, minimizing
        // the occupied-but-unreferenced window. A FIFO queue leaves the
        // pending garbage parked until the queue wraps around.
        let run = |disc: FreeDiscipline| {
            let mut i = Interner::new();
            let mut lp: Lp = ListProcessor::new(
                TwoPointerController::new(4096, 64),
                LpConfig {
                    table_size: 64,
                    free_discipline: disc,
                    ..LpConfig::default()
                },
            );
            let a = read(&mut lp, &mut i, "(x)");
            let c = lp.cons(a, LpValue::Atom(Word::NIL)).unwrap();
            release(&mut lp, a);
            release(&mut lp, c); // c freed lazily, still holding a
                                 // One allocation:
            let _fresh = lp
                .cons(LpValue::Atom(Word::int(1)), LpValue::Atom(Word::NIL))
                .unwrap();
            lp.occupancy()
        };
        // Stack: the freed cons is reused; its pending decrement frees
        // `a` → only the fresh cons is live.
        assert_eq!(run(FreeDiscipline::Stack), 1);
        // Queue: a never-used entry is taken from the front; `a` stays
        // parked behind the freed cons's pending reference.
        assert_eq!(run(FreeDiscipline::Queue), 2);
    }

    #[test]
    fn queue_discipline_still_converges() {
        // The queue is only *slower* to drain, not incorrect: after
        // enough churn everything is reclaimed.
        let mut i = Interner::new();
        let mut lp: Lp = ListProcessor::new(
            TwoPointerController::new(8192, 64),
            LpConfig {
                table_size: 32,
                free_discipline: FreeDiscipline::Queue,
                ..LpConfig::default()
            },
        );
        for _ in 0..200 {
            let a = read(&mut lp, &mut i, "(x y)");
            let c = lp.cons(a, LpValue::Atom(Word::NIL)).unwrap();
            release(&mut lp, a);
            release(&mut lp, c);
        }
        lp.drain_lazy();
        assert_eq!(lp.occupancy(), 0);
    }

    #[test]
    fn rplaca_updates_fields_and_counts() {
        let mut i = Interner::new();
        let mut lp = lp();
        let x = read(&mut lp, &mut i, "(1 2)");
        let y = read(&mut lp, &mut i, "(9)");
        lp.rplaca(x.obj().unwrap(), y).unwrap();
        assert_eq!(print(&lp.writelist(x).unwrap(), &i), "((9) 2)");
        // y now has two refs: EP stack + the car field.
        release(&mut lp, y);
        assert_eq!(print(&lp.writelist(x).unwrap(), &i), "((9) 2)");
    }

    #[test]
    fn figure_4_9_example() {
        // {cons [cons (car L1) (cdr L2)] (car L2)} — 3 list accesses
        // cost only 2 heap splits; the conses cost none.
        let mut i = Interner::new();
        let mut lp = lp();
        let l1 = read(&mut lp, &mut i, "((p) q)");
        let l2 = read(&mut lp, &mut i, "((r) s)");
        let splits_before = lp.controller.stats().splits;
        let car_l1 = lp.car(l1.obj().unwrap()).unwrap();
        let cdr_l2 = lp.cdr(l2.obj().unwrap()).unwrap();
        let inner = lp.cons(car_l1, cdr_l2).unwrap();
        let car_l2 = lp.car(l2.obj().unwrap()).unwrap();
        let outer = lp.cons(inner, car_l2).unwrap();
        assert_eq!(
            lp.controller.stats().splits - splits_before,
            2,
            "3 accesses, 2 heap operations (Figure 4.9)"
        );
        assert_eq!(print(&lp.writelist(outer).unwrap(), &i), "(((p) s) r)");
    }

    #[test]
    fn compression_reclaims_table_space() {
        let mut i = Interner::new();
        // Tiny table: force pseudo overflow.
        let mut lp = lp_with(4);
        let v = read(&mut lp, &mut i, "(a b c)");
        let id = v.obj().unwrap();
        let car = lp.car(id).unwrap(); // split: 2 more entries (cdr obj + car atom? car is atom a)
        let _ = car;
        // Drop EP refs to the cdr chain children... access cdr then release
        let cdr = lp.cdr(id).unwrap();
        release(&mut lp, cdr);
        // Table now has: v (fields), cdr-child (addr, rc=1 internal).
        // Fill the table to force a pseudo overflow, which compresses
        // the cdr-child back into v.
        let before = lp.stats().pseudo_overflows;
        let mut held = Vec::new();
        for _ in 0..3 {
            match lp.cons(LpValue::Atom(Word::int(1)), LpValue::Atom(Word::NIL)) {
                Ok(c) => held.push(c),
                Err(e) => panic!("allocation failed: {e}"),
            }
        }
        assert!(lp.stats().pseudo_overflows > before);
        assert!(lp.stats().compressed > 0);
        // The original list is still intact.
        assert_eq!(print(&lp.writelist(v).unwrap(), &i), "(a b c)");
    }

    #[test]
    fn true_overflow_breaks_cycles() {
        let mut i = Interner::new();
        let mut lp = lp_with(6);
        // Build a cycle: a -> b -> a, drop external refs.
        let a = read(&mut lp, &mut i, "(1)");
        let b = lp.cons(a, LpValue::Atom(Word::NIL)).unwrap();
        lp.rplacd(a.obj().unwrap(), b).unwrap();
        release(&mut lp, a);
        release(&mut lp, b);
        // Cycle is unreachable but reference counts keep it alive.
        let occupied = lp.occupancy();
        assert!(occupied >= 2, "cycle leaks under pure counting");
        // Exhaust the table; cycle breaking must reclaim the pair.
        let mut held = Vec::new();
        for _ in 0..6 {
            held.push(
                lp.cons(LpValue::Atom(Word::int(7)), LpValue::Atom(Word::NIL))
                    .expect("cycle breaking must free space"),
            );
        }
        assert!(lp.stats().cycle_collections > 0);
        assert!(lp.stats().cycles_reclaimed >= 2);
    }

    #[test]
    fn true_overflow_reported_when_everything_is_live() {
        let mut lp = lp_with(3);
        let mut held = Vec::new();
        for k in 0..3 {
            held.push(
                lp.cons(LpValue::Atom(Word::int(k)), LpValue::Atom(Word::NIL))
                    .unwrap(),
            );
        }
        // Everything externally referenced and uncompressible-to-free
        // (atom/atom conses ARE compressible... they merge to heap).
        // After compression the conses gain addresses; they stay live.
        // Hold enough deep structure to defeat compression:
        let e = lp.cons(held[0], held[1]);
        // Either compression succeeded (entries became heap objects) or
        // we got a true overflow; both are legal here — assert we never
        // corrupt state.
        match e {
            Ok(v) => held.push(v),
            Err(LpError::TrueOverflow) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn hybrid_policy_switches_under_pressure() {
        // Hybrid behaves like Compress-One until overflows get frequent,
        // then compresses everything like Compress-All (§5.2.3).
        let run = |policy: CompressPolicy| {
            let i = Interner::new();
            let mut lp: Lp = ListProcessor::new(
                TwoPointerController::new(8192, 64),
                LpConfig {
                    table_size: 24,
                    compression: policy,
                    ..LpConfig::default()
                },
            );
            // Sustained pressure: live chains that keep the table near
            // full so pseudo overflows recur.
            let mut held = Vec::new();
            for k in 0..300i64 {
                let a = lp
                    .cons(LpValue::Atom(Word::int(k)), LpValue::Atom(Word::NIL))
                    .unwrap();
                let b = lp.cons(a, LpValue::Atom(Word::NIL)).unwrap();
                release(&mut lp, a);
                held.push(b);
                // Keep enough chains live that in-flight conses push
                // past the table size.
                if held.len() > 13 {
                    release(&mut lp, held.remove(0));
                }
            }
            for v in held {
                release(&mut lp, v);
            }
            let _ = i;
            (lp.stats().pseudo_overflows, lp.stats().avg_occupancy())
        };
        let (of_one, _) = run(CompressPolicy::CompressOne);
        let (of_hybrid, _) = run(CompressPolicy::Hybrid {
            threshold: 2,
            window: 200,
        });
        assert!(of_one > 0, "the workload must actually overflow");
        assert!(
            of_hybrid <= of_one,
            "hybrid ({of_hybrid}) must not overflow more than pure Compress-One ({of_one})"
        );
    }

    #[test]
    fn split_refcounts_reduce_bus_traffic() {
        // Table 5.3: stack churn stays EP-side in split mode.
        let run = |mode: RefcountMode| -> (u64, u64) {
            let mut i = Interner::new();
            let mut lp = ListProcessor::new(
                TwoPointerController::new(8192, 64),
                LpConfig {
                    table_size: 512,
                    refcounts: mode,
                    ..LpConfig::default()
                },
            );
            let v = read(&mut lp, &mut i, "(a b c)");
            // Simulate heavy stack churn: repeated push/pop of the value.
            for _ in 0..100 {
                let h = lp.root_binding(v);
                drop(h);
                lp.drain_unroots();
            }
            release(&mut lp, v);
            (lp.stats().refops, lp.stats().ep_refops)
        };
        let (unified_bus, unified_ep) = run(RefcountMode::Unified);
        let (split_bus, split_ep) = run(RefcountMode::Split);
        assert_eq!(unified_ep, 0);
        assert!(split_ep > 0);
        assert!(
            split_bus < unified_bus / 5,
            "split bus traffic {split_bus} must be far below unified {unified_bus}"
        );
    }

    #[test]
    fn split_mode_frees_when_both_counts_zero() {
        let mut i = Interner::new();
        let mut lp = ListProcessor::new(
            TwoPointerController::new(8192, 64),
            LpConfig {
                table_size: 64,
                refcounts: RefcountMode::Split,
                ..LpConfig::default()
            },
        );
        let v = read(&mut lp, &mut i, "(a)");
        assert_eq!(lp.occupancy(), 1);
        release(&mut lp, v);
        assert_eq!(lp.occupancy(), 0, "freed when stack bit clears with rc 0");
        assert_eq!(lp.ep_tracked(), 0);
    }

    #[test]
    fn equal_compares_structure() {
        let mut i = Interner::new();
        let mut lp = lp();
        let a = read(&mut lp, &mut i, "(1 (2) 3)");
        let b = read(&mut lp, &mut i, "(1 (2) 3)");
        let c = read(&mut lp, &mut i, "(1 2 3)");
        assert!(lp.equal(a, b).unwrap());
        assert!(!lp.equal(a, c).unwrap());
    }

    // -- Rooted protect protocol --------------------------------------

    #[test]
    fn rooted_register_protects_until_drop() {
        let mut i = Interner::new();
        let mut lp = lp();
        let a = read(&mut lp, &mut i, "(x)");
        let g = lp.root(a);
        assert_eq!(g.kind(), RootKind::Register);
        // Drop the EP's stack reference: the register root keeps `a`.
        release(&mut lp, a);
        assert_eq!(lp.occupancy(), 1);
        drop(g);
        // The release is deferred to the next operation boundary.
        assert_eq!(lp.occupancy(), 1);
        lp.drain_unroots();
        assert_eq!(lp.occupancy(), 0);
    }

    #[test]
    fn rooted_register_matches_guard_refops() {
        // Register roots, like the guards they replace, generate no
        // reference-count bus traffic.
        let mut i = Interner::new();
        let mut lp = lp();
        let a = read(&mut lp, &mut i, "(x y)");
        let refops = lp.stats().refops;
        let g = lp.root(a);
        drop(g);
        lp.drain_unroots();
        assert_eq!(lp.stats().refops, refops);
    }

    #[test]
    fn rooted_binding_counts_like_stack_retain() {
        let mut i = Interner::new();
        let mut lp = lp();
        let a = read(&mut lp, &mut i, "(x)");
        let refops = lp.stats().refops;
        let b = lp.root_binding(a);
        assert_eq!(lp.stats().refops, refops + 1, "binding roots are counted");
        drop(b);
        lp.drain_unroots();
        assert_eq!(lp.stats().refops, refops + 2);
    }

    #[test]
    fn unroots_drain_at_operation_boundaries() {
        let mut i = Interner::new();
        let mut lp = lp();
        let a = read(&mut lp, &mut i, "(x)");
        let frees = lp.stats().frees;
        let h = lp.adopt_binding(a); // wraps readlist's reference
        drop(h);
        assert_eq!(lp.stats().frees, frees, "release is deferred");
        // Any LP operation drains the pending unroot first.
        let _ = lp
            .cons(LpValue::Atom(Word::int(1)), LpValue::Atom(Word::NIL))
            .unwrap();
        assert_eq!(lp.stats().frees, frees + 1);
    }

    #[test]
    fn rooted_leak_keeps_the_reference() {
        let mut i = Interner::new();
        let mut lp = lp();
        let a = read(&mut lp, &mut i, "(x)");
        let h = lp.adopt_binding(a);
        let v = h.leak();
        lp.drain_unroots();
        assert_eq!(lp.occupancy(), 1, "leaked root keeps the value live");
        assert_eq!(v, a);
    }

    #[test]
    fn rooted_binding_split_mode_round_trips() {
        let mut i = Interner::new();
        let mut lp = ListProcessor::new(
            TwoPointerController::new(8192, 64),
            LpConfig {
                table_size: 64,
                refcounts: RefcountMode::Split,
                ..LpConfig::default()
            },
        );
        let v = read(&mut lp, &mut i, "(a)");
        let h = lp.root_binding(v);
        assert_eq!(lp.ep_tracked(), 1);
        drop(h);
        lp.drain_unroots();
        // The adopted readlist reference remains; the handle's is gone.
        assert_eq!(lp.ep_tracked(), 1);
        release(&mut lp, v);
        assert_eq!(lp.occupancy(), 0);
    }

    #[test]
    fn rooted_outliving_the_processor_is_harmless() {
        let mut i = Interner::new();
        let mut lp = lp();
        let a = read(&mut lp, &mut i, "(x)");
        let h = lp.root(a);
        drop(lp);
        drop(h); // must not panic
    }

    #[test]
    fn sink_events_mirror_stats() {
        let mut i = Interner::new();
        let mut lp = ListProcessor::with_sink(
            TwoPointerController::new(8192, 64),
            LpConfig {
                table_size: 128,
                ..LpConfig::default()
            },
            CountingSink::default(),
        );
        let v = read(&mut lp, &mut i, "((a) b c)");
        let id = v.obj().unwrap();
        let _ = lp.car(id).unwrap();
        let _ = lp.car(id).unwrap();
        let _ = lp.cdr(id).unwrap();
        let stats = lp.stats();
        let counts = lp.sink().counts;
        assert_eq!(counts.lpt_hits.get(), stats.hits);
        assert_eq!(counts.lpt_misses.get(), stats.misses);
        assert_eq!(counts.refops.get(), stats.refops);
        assert_eq!(counts.entries_allocated.get(), stats.gets);
        assert_eq!(counts.entries_freed.get(), stats.frees);
        assert_eq!(counts.occupancy_samples.get(), stats.occupancy_samples);
        assert_eq!(counts.heap_read_ins.get(), 1);
        assert!(counts.heap_splits.get() > 0);
    }

    /// Retired from the deprecated four-method protect protocol
    /// (`guard`/`unguard`/`stack_retain`/`stack_release`, now removed):
    /// the RAII `Rooted` handles must stay behaviorally identical to the
    /// immediate acquire/release primitives they defer to.
    #[test]
    fn rooted_handles_match_immediate_semantics() {
        let run = |immediate: bool| -> (u64, usize) {
            let mut i = Interner::new();
            let mut lp = lp();
            let v = read(&mut lp, &mut i, "(x y)");
            if immediate {
                lp.register_acquire(v);
                lp.binding_acquire(v);
                lp.binding_release(v);
                lp.register_release(v);
                lp.binding_release(v);
            } else {
                let g = lp.root(v);
                let b = lp.root_binding(v);
                drop(b);
                drop(g);
                lp.drain_unroots();
                release(&mut lp, v);
            }
            (lp.stats().refops, lp.occupancy())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn poisoned_roots_queue_recovers() {
        // A worker that panics while holding the shared unroot queue
        // poisons the mutex; both the `Rooted` drop path and
        // `drain_unroots` must adopt the (still valid) queue instead of
        // cascading the panic across every other worker.
        let mut i = Interner::new();
        let mut lp = lp();
        let a = read(&mut lp, &mut i, "(x)");
        let handle = lp.adopt_binding(a);
        let shared = Arc::clone(&lp.roots);
        std::thread::spawn(move || {
            let _guard = shared.queue.lock().unwrap();
            panic!("poison the roots queue");
        })
        .join()
        .unwrap_err();
        assert!(lp.roots.queue.is_poisoned(), "setup must actually poison");
        drop(handle); // Rooted::drop pushes through the poisoned lock
        lp.drain_unroots(); // ...and the drain takes through it
        assert_eq!(lp.occupancy(), 0, "release still went through");
    }

    #[test]
    fn op_hooks_bracket_each_primitive() {
        // Every timed primitive announces itself to the sink and reports
        // its resolved class — the contract the profiler's virtual clock
        // is built on.
        #[derive(Default)]
        struct OpLog {
            begun: Vec<PrimKind>,
            ended: Vec<OpClass>,
        }
        impl EventSink for OpLog {
            fn record(&mut self, _event: Event) {}
            fn op_begin(&mut self, prim: PrimKind) {
                self.begun.push(prim);
            }
            fn op_end(&mut self, class: OpClass) {
                assert_eq!(
                    self.begun.len(),
                    self.ended.len() + 1,
                    "op_end without matching op_begin"
                );
                self.ended.push(class);
            }
        }
        let mut i = Interner::new();
        let mut lp = ListProcessor::with_sink(
            TwoPointerController::new(8192, 64),
            LpConfig {
                table_size: 128,
                ..LpConfig::default()
            },
            OpLog::default(),
        );
        let v = read(&mut lp, &mut i, "((a) b)");
        let id = v.obj().unwrap();
        let _ = lp.car(id).unwrap(); // split: miss
        let _ = lp.car(id).unwrap(); // hit
        let cdr = lp.cdr(id).unwrap(); // hit
        let c = lp.cons(cdr, LpValue::Atom(Word::NIL)).unwrap();
        lp.rplaca(c.obj().unwrap(), LpValue::Atom(Word::int(9)))
            .unwrap();
        lp.rplacd(c.obj().unwrap(), LpValue::Atom(Word::NIL))
            .unwrap();
        assert_eq!(
            lp.sink().begun,
            [
                PrimKind::ReadList,
                PrimKind::Car,
                PrimKind::Car,
                PrimKind::Cdr,
                PrimKind::Cons,
                PrimKind::Rplaca,
                PrimKind::Rplacd,
            ]
        );
        assert_eq!(
            lp.sink().ended,
            [
                OpClass::ReadList,
                OpClass::AccessMiss,
                OpClass::AccessHit,
                OpClass::AccessHit,
                OpClass::Cons,
                OpClass::Modify,
                OpClass::Modify,
            ]
        );
    }

    // -- Invariant auditing and reconciliation ------------------------

    fn has<F: Fn(&Violation) -> bool>(report: &AuditReport, pred: F) -> bool {
        report.violations.iter().any(pred)
    }

    #[test]
    fn audit_clean_on_fresh_and_worked_tables() {
        let mut i = Interner::new();
        let mut lp = lp();
        assert!(lp.audit().is_clean());
        let v = read(&mut lp, &mut i, "(a (b c) d)");
        let id = v.obj().unwrap();
        let cdr = lp.cdr(id).unwrap();
        assert!(lp.audit().is_clean());
        release(&mut lp, cdr);
        release(&mut lp, v);
        lp.drain_lazy();
        let r = lp.audit();
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.live_entries, 0);
    }

    #[test]
    fn audit_detects_refcount_corruption() {
        let mut i = Interner::new();
        let mut lp = lp();
        let v = read(&mut lp, &mut i, "((a) b)");
        let id = v.obj().unwrap();
        let child = lp.car(id).unwrap();
        let cid = child.obj().unwrap();
        assert!(lp.audit().is_clean());
        lp.perturb(Perturbation::SetRefcount { id: cid, rc: 0 });
        let r = lp.audit();
        assert!(has(&r, |x| matches!(
            x,
            Violation::RefcountLow { .. } | Violation::UndetectedGarbage { .. }
        )));
    }

    #[test]
    fn audit_detects_undetected_garbage() {
        let mut i = Interner::new();
        let mut lp = lp();
        let v = read(&mut lp, &mut i, "(a b)");
        let id = v.obj().unwrap();
        lp.perturb(Perturbation::SetRefcount { id, rc: 0 });
        assert!(has(&lp.audit(), |x| matches!(
            x,
            Violation::UndetectedGarbage { .. }
        )));
    }

    #[test]
    fn audit_detects_dangling_and_out_of_range_fields() {
        let mut i = Interner::new();
        let mut lp = lp();
        let v = read(&mut lp, &mut i, "((a) b)");
        let id = v.obj().unwrap();
        let _ = lp.car(id).unwrap(); // materialize the fields
        lp.perturb(Perturbation::CorruptField {
            id,
            car: true,
            child: 300, // dead but in range
        });
        assert!(has(&lp.audit(), |x| matches!(
            x,
            Violation::DanglingField { child: 300, .. }
        )));
        lp.perturb(Perturbation::CorruptField {
            id,
            car: true,
            child: 100_000,
        });
        assert!(has(&lp.audit(), |x| matches!(
            x,
            Violation::FieldOutOfRange { .. }
        )));
    }

    #[test]
    fn audit_detects_cleared_stack_bit_in_split_mode() {
        let mut i = Interner::new();
        let mut lp = ListProcessor::new(
            TwoPointerController::new(65536, 64),
            LpConfig {
                refcounts: RefcountMode::Split,
                ..LpConfig::default()
            },
        );
        let v = read(&mut lp, &mut i, "(a b)");
        let id = v.obj().unwrap();
        assert!(lp.audit().is_clean());
        lp.perturb(Perturbation::ClearStackBit { id });
        assert!(has(&lp.audit(), |x| matches!(
            x,
            Violation::StackBitMismatch { .. }
        )));
    }

    #[test]
    fn audit_detects_broken_free_list() {
        let mut i = Interner::new();
        let mut lp = lp();
        let _v = read(&mut lp, &mut i, "(a)");
        assert!(lp.audit().is_clean());
        lp.perturb(Perturbation::BreakFreeList);
        assert!(has(&lp.audit(), |x| matches!(
            x,
            Violation::DeadNotOnFreeList { .. }
        )));
    }

    #[test]
    fn audit_detects_resurrected_entry() {
        let mut i = Interner::new();
        let mut lp = lp();
        let _v = read(&mut lp, &mut i, "(a)");
        lp.perturb(Perturbation::ResurrectEntry { id: 5 });
        let r = lp.audit();
        assert!(has(&r, |x| matches!(
            x,
            Violation::LiveOnFreeList { id: 5 }
        )));
        assert!(has(&r, |x| matches!(
            x,
            Violation::FieldsAddrMismatch { id: 5 }
        )));
    }

    #[test]
    fn reconcile_repairs_counts_and_free_list_without_losing_structure() {
        let mut i = Interner::new();
        let mut lp = lp();
        let v = read(&mut lp, &mut i, "(a (b c) d)");
        let id = v.obj().unwrap();
        let cdr = lp.cdr(id).unwrap();
        let cdr_id = cdr.obj().unwrap();
        let inner = lp.car(cdr_id).unwrap();
        release(&mut lp, cdr);
        release(&mut lp, inner);
        let before = print(&lp.writelist(v).unwrap(), &i);
        assert!(lp.audit().is_clean());
        lp.perturb(Perturbation::SetRefcount { id: cdr_id, rc: 7 });
        lp.perturb(Perturbation::BreakFreeList);
        lp.perturb(Perturbation::ResurrectEntry { id: 400 });
        assert!(!lp.audit().is_clean());
        let stats = lp.reconcile(&[v]);
        assert!(stats.refcounts_fixed >= 1);
        assert!(stats.entries_swept >= 1, "the resurrected husk is swept");
        assert_eq!(stats.free_lists_rebuilt, 1, "severed list is rebuilt");
        let r = lp.audit();
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(print(&lp.writelist(v).unwrap(), &i), before);
    }

    #[test]
    fn reconcile_clears_corrupted_fields_and_sweeps_orphans() {
        let mut i = Interner::new();
        let mut lp = lp();
        let v = read(&mut lp, &mut i, "((a) b)");
        let id = v.obj().unwrap();
        let child = lp.car(id).unwrap();
        release(&mut lp, child);
        // Overwrite the cdr field with a dangling reference: the old
        // cdr subtree becomes unreachable and must be swept, and the
        // forged field must be defaulted rather than followed.
        lp.perturb(Perturbation::CorruptField {
            id,
            car: false,
            child: 300,
        });
        let stats = lp.reconcile(&[v]);
        assert!(stats.fields_cleared >= 1);
        assert!(stats.entries_swept >= 1);
        let r = lp.audit();
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(print(&lp.writelist(v).unwrap(), &i), "((a))");
    }

    #[test]
    fn reconcile_noop_on_clean_table_with_lazy_state() {
        // A healthy table — workload-order free list, freed entries
        // with pending lazy decrements, children kept alive only by
        // those pending fields — must pass through reconcile with zero
        // repairs and byte-identical state.
        let mut i = Interner::new();
        let mut lp = lp();
        let keep = read(&mut lp, &mut i, "(x y)");
        let v = read(&mut lp, &mut i, "((a b) c)");
        // Dropping the list frees its spine lazily: the `(a b)` child
        // survives only through the dead spine entry's pending field.
        release(&mut lp, v);
        assert!(lp.audit().is_clean());
        let before = lp.export_image();
        let stats = lp.reconcile(&[keep]);
        assert!(stats.is_clean(), "clean table repaired: {stats:?}");
        assert_eq!(lp.export_image(), before, "state must be untouched");
        assert!(lp.audit().is_clean());
    }

    #[test]
    fn reconcile_is_idempotent_after_repair() {
        let mut i = Interner::new();
        let mut lp = lp();
        let v = read(&mut lp, &mut i, "(a (b c) d)");
        lp.perturb(Perturbation::SetRefcount {
            id: v.obj().unwrap(),
            rc: 9,
        });
        lp.perturb(Perturbation::BreakFreeList);
        let first = lp.reconcile(&[v]);
        assert!(!first.is_clean());
        let repaired = lp.export_image();
        let second = lp.reconcile(&[v]);
        assert!(second.is_clean(), "second pass repaired: {second:?}");
        assert_eq!(lp.export_image(), repaired, "second pass must not move");
    }

    #[test]
    fn image_round_trip_restores_identical_state() {
        let mut i = Interner::new();
        let mut lp = lp();
        let v = read(&mut lp, &mut i, "(a (b c) d)");
        let held = lp.cdr(v.obj().unwrap()).unwrap();
        let handle = lp.root_binding(held);
        let image = lp.export_image();
        let restored: Lp = ListProcessor::from_image(
            TwoPointerController::new(65536, 64),
            LpConfig {
                table_size: 512,
                ..LpConfig::default()
            },
            &image,
            NoopSink,
        )
        .unwrap();
        assert_eq!(restored.export_image(), image);
        assert_eq!(restored.occupancy(), lp.occupancy());
        assert_eq!(restored.stats(), lp.stats());
        // The restored handle releases normally and the count drops.
        let resumed = restored.resume_root(held, RootKind::Binding);
        let mut restored = restored;
        drop(resumed);
        restored.drain_unroots();
        drop(handle);
        lp.drain_unroots();
        assert_eq!(restored.export_image(), lp.export_image());
        assert!(restored.audit().is_clean());
    }

    #[test]
    fn from_image_rejects_malformed_images() {
        let mut i = Interner::new();
        let mut lp = lp();
        let _v = read(&mut lp, &mut i, "(a b)");
        let image = lp.export_image();
        let ctrl = || TwoPointerController::new(65536, 64);
        let config = LpConfig {
            table_size: 512,
            ..LpConfig::default()
        };
        // Wrong table size for the configuration.
        let bad = LpImage {
            table_size: 256,
            ..image.clone()
        };
        assert!(ListProcessor::<_>::from_image(ctrl(), config, &bad, NoopSink).is_err());
        // Live count that disagrees with the entries.
        let bad = LpImage {
            live: image.live + 1,
            ..image.clone()
        };
        assert!(ListProcessor::<_>::from_image(ctrl(), config, &bad, NoopSink).is_err());
        // Out-of-range child reference.
        let mut bad = image.clone();
        bad.entries[0].car = FieldImage::Obj(100_000);
        assert!(ListProcessor::<_>::from_image(ctrl(), config, &bad, NoopSink).is_err());
    }

    // -- Transient-fault retry ----------------------------------------

    mod faults {
        use super::*;
        use small_heap::{FaultPlan, FaultyController};

        type FLp = ListProcessor<FaultyController<TwoPointerController>>;

        fn split_always(max_burst: u32) -> FaultPlan {
            FaultPlan {
                seed: 7,
                read_in_ppk: 0,
                split_ppk: 1024,
                merge_ppk: 0,
                delay_free_ppk: 0,
                delay_ops: 0,
                max_burst,
            }
        }

        fn faulty_lp(plan: FaultPlan) -> FLp {
            ListProcessor::new(
                FaultyController::new(TwoPointerController::new(65536, 64), plan),
                LpConfig::default(),
            )
        }

        #[test]
        fn retrying_recovers_bounded_transient_bursts() {
            let mut i = Interner::new();
            let mut lp = faulty_lp(split_always(2));
            let e = parse("((a) b)", &mut i).unwrap();
            let v = lp.readlist(None, &e).unwrap();
            let id = v.obj().unwrap();
            let car = lp.retrying(|lp| lp.car(id)).unwrap();
            assert_eq!(print(&lp.writelist(car).unwrap(), &i), "(a)");
            // Two injected failures, both detected and both recovered;
            // injected == detected reconciles exactly.
            assert_eq!(lp.stats().faults_detected, 2);
            assert_eq!(lp.stats().faults_recovered, 2);
            assert_eq!(lp.controller.fault_stats().transient_total(), 2);
            let r = lp.audit();
            assert!(r.is_clean(), "{:?}", r.violations);
        }

        #[test]
        fn retrying_gives_up_after_bounded_attempts() {
            let mut i = Interner::new();
            let mut lp = faulty_lp(split_always(64));
            let e = parse("((a) b)", &mut i).unwrap();
            let v = lp.readlist(None, &e).unwrap();
            let id = v.obj().unwrap();
            let r = lp.retrying(|lp| lp.car(id));
            assert_eq!(r.unwrap_err(), LpError::Heap(HeapError::Transient));
            // Every attempt (the initial one plus the retries) was
            // detected; none recovered.
            assert_eq!(
                lp.stats().faults_detected,
                u64::from(TRANSIENT_RETRY_LIMIT) + 1
            );
            assert_eq!(lp.stats().faults_recovered, 0);
            // The failed splits corrupted nothing: the entry still has
            // its backing object and a clean audit.
            assert!(lp.audit().is_clean());
            assert_eq!(print(&lp.writelist(v).unwrap(), &i), "((a) b)");
        }
    }

    // -- §4.3.2.3 graceful overflow degradation -----------------------

    mod overflow_degradation {
        use super::*;

        fn degrade_lp(table: usize) -> Lp {
            ListProcessor::new(
                TwoPointerController::new(65536, 64),
                LpConfig {
                    table_size: table,
                    overflow: OverflowPolicy::Degrade,
                    ..LpConfig::default()
                },
            )
        }

        #[test]
        fn true_overflow_degrades_instead_of_failing() {
            let mut lp = degrade_lp(4);
            let held: Vec<LpValue> = (0..4)
                .map(|k| {
                    lp.cons(LpValue::Atom(Word::int(k)), LpValue::Atom(Word::NIL))
                        .unwrap()
                })
                .collect();
            assert!(!lp.degraded());
            // The table is full of EP-rooted, incompressible pairs: the
            // next cons overflows and degrades to heap-direct operation.
            let v = lp
                .cons(LpValue::Atom(Word::int(99)), LpValue::Atom(Word::NIL))
                .unwrap();
            assert!(lp.degraded());
            assert!(v.is_heap_direct());
            assert!(v.is_list());
            assert_eq!(lp.stats().overflow_entries, 1);
            // car/cdr work directly against the heap.
            assert_eq!(lp.car_of(v).unwrap(), LpValue::Atom(Word::int(99)));
            assert_eq!(lp.cdr_of(v).unwrap(), LpValue::Atom(Word::NIL));
            assert!(lp.stats().heap_direct_ops > 0);
            // The table-resident values are untouched.
            for (k, h) in held.iter().enumerate() {
                assert_eq!(lp.car_of(*h).unwrap(), LpValue::Atom(Word::int(k as i64)));
            }
        }

        #[test]
        fn degraded_readlist_round_trips_through_the_heap() {
            let mut i = Interner::new();
            let mut lp = degrade_lp(4);
            let _held: Vec<LpValue> = (0..4)
                .map(|k| {
                    lp.cons(LpValue::Atom(Word::int(k)), LpValue::Atom(Word::NIL))
                        .unwrap()
                })
                .collect();
            let _ = lp
                .cons(LpValue::Atom(Word::int(9)), LpValue::Atom(Word::NIL))
                .unwrap();
            assert!(lp.degraded());
            let e = parse("(a (b) c)", &mut i).unwrap();
            let v = lp.readlist(None, &e).unwrap();
            assert!(v.is_heap_direct());
            assert_eq!(print(&lp.writelist(v).unwrap(), &i), "(a (b) c)");
            // Structural traversal of a heap-direct nested list.
            let second = {
                let tail = lp.cdr_of(v).unwrap();
                lp.car_of(tail).unwrap()
            };
            assert!(second.is_heap_direct());
            assert_eq!(print(&lp.writelist(second).unwrap(), &i), "(b)");
        }

        #[test]
        fn degraded_mutation_is_a_typed_error() {
            let mut lp = degrade_lp(4);
            let _held: Vec<LpValue> = (0..4)
                .map(|k| {
                    lp.cons(LpValue::Atom(Word::int(k)), LpValue::Atom(Word::NIL))
                        .unwrap()
                })
                .collect();
            let v = lp
                .cons(LpValue::Atom(Word::int(9)), LpValue::Atom(Word::NIL))
                .unwrap();
            assert!(v.is_heap_direct());
            let r = lp.rplaca_of(v, LpValue::Atom(Word::int(1)));
            assert!(matches!(r, Err(LpError::Degraded(_))), "{r:?}");
            let r = lp.rplacd_of(v, LpValue::Atom(Word::NIL));
            assert!(matches!(r, Err(LpError::Degraded(_))), "{r:?}");
        }

        #[test]
        fn overflow_mode_exits_once_occupancy_recovers() {
            let mut lp = degrade_lp(4);
            let held: Vec<LpValue> = (0..4)
                .map(|k| {
                    lp.cons(LpValue::Atom(Word::int(k)), LpValue::Atom(Word::NIL))
                        .unwrap()
                })
                .collect();
            let _v = lp
                .cons(LpValue::Atom(Word::int(9)), LpValue::Atom(Word::NIL))
                .unwrap();
            assert!(lp.degraded());
            // Dropping the EP's references empties the table; the next
            // op boundary re-enters table mode.
            for h in held {
                release(&mut lp, h);
            }
            lp.drain_lazy();
            let t = lp
                .cons(LpValue::Atom(Word::int(7)), LpValue::Atom(Word::NIL))
                .unwrap();
            assert!(!lp.degraded());
            assert!(matches!(t, LpValue::Obj(_)));
            assert_eq!(lp.stats().overflow_entries, 1);
            assert_eq!(lp.stats().overflow_exits, 1);
            let r = lp.audit();
            assert!(r.is_clean(), "{:?}", r.violations);
        }

        #[test]
        fn degraded_cons_adopts_table_operands_safely() {
            let i = Interner::new();
            let mut lp = degrade_lp(4);
            let held: Vec<LpValue> = (0..4)
                .map(|k| {
                    lp.cons(LpValue::Atom(Word::int(k)), LpValue::Atom(Word::NIL))
                        .unwrap()
                })
                .collect();
            // cons of a *table* object while degraded: the operand is
            // snapshotted to the heap, the original entry untouched.
            let v = lp.cons(held[0], LpValue::Atom(Word::NIL)).unwrap();
            assert!(lp.degraded());
            assert!(v.is_heap_direct());
            assert_eq!(print(&lp.writelist(v).unwrap(), &i), "((0))");
            assert_eq!(lp.car_of(held[0]).unwrap(), LpValue::Atom(Word::int(0)));
        }
    }
}
