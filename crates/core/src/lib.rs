#![warn(missing_docs)]
//! **SMALL** — the Structured Memory Access of Lisp Lists architecture
//! (Chapter 4). The paper's primary contribution.
//!
//! SMALL partitions a Lisp machine into an **Evaluation Processor** (EP,
//! program control, the control/binding stack, the environment) and a
//! **List Processor** (LP) that owns all list structure behind the
//! **LPT** — a fixed-size table of
//! `(identifier, car, cdr, refcount, address, mark)` entries that
//! virtualizes heap addresses and caches list *structure* (§4.3).
//!
//! * [`lp`] — the LPT and the List Processor: car/cdr/cons/rplaca/
//!   rplacd/readlist, reference counting with the lazy free-stack
//!   discipline, pseudo-overflow compression (Compress-One /
//!   Compress-All), true-overflow cycle breaking, and split (EP-side)
//!   reference counts;
//! * [`machine`] — a [`small_lisp::vm::ListBackend`] over the LP, so
//!   compiled Lisp programs run end-to-end on the SMALL organization;
//! * [`timing`] — the parameterized EP/LP concurrency model of
//!   Figures 4.10–4.13.

pub mod lp;
pub mod machine;
pub mod timing;

pub use lp::{
    AuditReport, CompressPolicy, DecrementPolicy, EntryImage, FieldImage, FreeDiscipline, Id,
    ListProcessor, LpConfig, LpError, LpImage, LpValue, LptCacheStats, LptStats, OverflowPolicy,
    Perturbation, ReconcileStats, RefcountMode, RootKind, Rooted, Violation, TRANSIENT_RETRY_LIMIT,
};
pub use machine::SmallBackend;
