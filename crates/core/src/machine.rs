//! The SMALL machine: compiled Lisp running against the List Processor.
//!
//! [`SmallBackend`] implements [`small_lisp::vm::ListBackend`] over a
//! [`ListProcessor`], so the same stack-machine programs that run on the
//! conventional [`small_lisp::vm::DirectBackend`] run on the SMALL
//! organization. The VM plays the Evaluation Processor: its combined
//! control/binding stack is the EP stack of §4.3.1, and its
//! `retain`/`release` hook calls are exactly the reference-count traffic
//! the EP sends the LP on binding creation and function return. The
//! backend holds one [`Rooted`] binding handle per retained reference;
//! releasing drops the handle and the LP performs the release at its
//! next operation boundary.
//!
//! Because the VM maintains one retained reference per live stack slot
//! and binding, running a program to completion and dropping its result
//! leaves the LPT *empty* — every transient cons was detected as garbage
//! the moment its last reference died, the §5.3.2 claim.
//!
//! Failures cross this boundary as typed values: [`LpError`] converts
//! into [`small_lisp::vm::BackendError`], so no LP condition — not even
//! a corrupt heap word — panics the machine.

use crate::lp::{Id, ListProcessor, LpConfig, LpError, LpValue, Rooted};
use small_heap::controller::TwoPointerController;
use small_heap::{HeapController, Word};
use small_lisp::vm::{BackendError, ListBackend, VmError, VmValue};
use small_metrics::{EventSink, NoopSink};
use small_sexpr::{SExpr, Symbol};
use std::collections::HashMap;

impl From<LpError> for BackendError {
    fn from(e: LpError) -> Self {
        match e {
            LpError::TrueOverflow => BackendError::TrueOverflow,
            LpError::Heap(h) => BackendError::Heap(h),
            LpError::NotAList => BackendError::NotAList,
            LpError::UnexpectedTag(t) => BackendError::UnexpectedTag(t),
            LpError::Degraded(what) => BackendError::Degraded(what),
            LpError::Cyclic => BackendError::Degraded("printing a cyclic structure"),
        }
    }
}

/// A [`ListBackend`] that routes every list operation through the LP.
pub struct SmallBackend<C: HeapController, S: EventSink = NoopSink> {
    /// The List Processor (public for stats inspection).
    pub lp: ListProcessor<C, S>,
    /// Outstanding binding handles, one per `retain` the VM issued.
    /// References the VM received pre-retained (car/cdr/cons/read_in
    /// results) have no handle here; `release` wraps those with
    /// [`ListProcessor::adopt_binding`] on the way out.
    roots: HashMap<Id, Vec<Rooted>>,
}

impl SmallBackend<TwoPointerController> {
    /// Convenience: an uninstrumented LP over a two-pointer heap
    /// controller.
    pub fn new(heap_cells: usize, config: LpConfig) -> Self {
        SmallBackend {
            lp: ListProcessor::new(TwoPointerController::new(heap_cells, 64), config),
            roots: HashMap::new(),
        }
    }
}

impl<C: HeapController> SmallBackend<C> {
    /// An uninstrumented LP over any heap controller — e.g. a
    /// fault-injecting wrapper for chaos runs.
    pub fn over(controller: C, config: LpConfig) -> Self {
        SmallBackend {
            lp: ListProcessor::new(controller, config),
            roots: HashMap::new(),
        }
    }
}

impl<S: EventSink> SmallBackend<TwoPointerController, S> {
    /// An LP over a two-pointer heap controller, reporting events to
    /// `sink`. Passing a `small_profile::SpanSink` here profiles a
    /// whole VM run: every primitive the compiled program issues gets
    /// cycle-stamped EP/LP spans.
    pub fn with_sink(heap_cells: usize, config: LpConfig, sink: S) -> Self {
        SmallBackend {
            lp: ListProcessor::with_sink(TwoPointerController::new(heap_cells, 64), config, sink),
            roots: HashMap::new(),
        }
    }
}

impl<C: HeapController, S: EventSink> SmallBackend<C, S> {
    /// Consume the backend and return its event sink (releases the
    /// VM's outstanding roots first so deferred unroot events land in
    /// the sink rather than vanishing). Pair with
    /// [`with_sink`](SmallBackend::with_sink) to recover a profiler or
    /// recorder after a VM run.
    pub fn into_sink(mut self) -> S {
        self.roots.clear();
        self.lp.drain_unroots();
        self.lp.into_sink()
    }
}

impl<C: HeapController, S: EventSink> SmallBackend<C, S> {
    /// Wrap an existing List Processor — e.g. one rebuilt from a
    /// checkpoint image — as a fresh backend with no outstanding
    /// binding handles. Pair with [`SmallBackend::resume_retained`] to
    /// reconstruct the handles a suspended session's globals held.
    pub fn from_lp(lp: ListProcessor<C, S>) -> Self {
        SmallBackend {
            lp,
            roots: HashMap::new(),
        }
    }

    /// Re-create one retained binding handle for `id` after a resume.
    ///
    /// The restored [`LpImage`](crate::lp::LpImage) already carries the
    /// reference counts the handle represents, so this re-wraps the
    /// reference without touching the table (no refop traffic): call it
    /// once per `List`-valued global binding being restored, in any
    /// order, and the backend's handle multiset matches the suspended
    /// machine's exactly.
    pub fn resume_retained(&mut self, id: Id) {
        let handle = self
            .lp
            .resume_root(LpValue::Obj(id), crate::lp::RootKind::Binding);
        self.roots.entry(id).or_default().push(handle);
    }

    /// Reconstruct the s-expression behind a value without panicking:
    /// the fallible twin of [`ListBackend::write_out`], surfacing
    /// [`LpError::Cyclic`] (a client program returned self-referential
    /// structure) as a typed value a serving layer can turn into an
    /// error reply instead of a crash.
    pub fn try_write_out(&mut self, v: &VmValue<Id>) -> Result<SExpr, LpError> {
        self.lp.writelist(Self::to_lp(v))
    }

    fn to_vm(v: LpValue) -> Result<VmValue<Id>, VmError> {
        match v {
            LpValue::Obj(id) => Ok(VmValue::List(id)),
            LpValue::Atom(w) => match w.tag() {
                small_heap::Tag::Nil => Ok(VmValue::Nil),
                small_heap::Tag::Int => Ok(VmValue::Int(w.as_int())),
                small_heap::Tag::Sym => Ok(VmValue::Sym(Symbol(w.as_sym()))),
                t => Err(VmError::Backend(BackendError::UnexpectedTag(t))),
            },
        }
    }

    fn to_lp(v: &VmValue<Id>) -> LpValue {
        match v {
            VmValue::Nil => LpValue::Atom(Word::NIL),
            VmValue::Int(i) => LpValue::Atom(Word::int(*i)),
            VmValue::Sym(s) => LpValue::Atom(Word::sym(s.0)),
            VmValue::List(id) => LpValue::Obj(*id),
        }
    }

    fn lp_err(e: LpError) -> VmError {
        VmError::Backend(e.into())
    }
}

// Every fallible primitive goes through [`ListProcessor::retrying`]:
// transient heap faults (a fault-injecting controller, §6 chaos runs)
// are retried with bounded backoff before surfacing, so the VM only
// sees a `Transient` error once the LP has genuinely given up.
impl<C: HeapController, S: EventSink> ListBackend for SmallBackend<C, S> {
    type Ref = Id;

    fn car(&mut self, r: &Id) -> Result<VmValue<Id>, VmError> {
        let r = *r;
        self.lp
            .retrying(|lp| lp.car(r))
            .map_err(Self::lp_err)
            .and_then(Self::to_vm)
    }

    fn cdr(&mut self, r: &Id) -> Result<VmValue<Id>, VmError> {
        let r = *r;
        self.lp
            .retrying(|lp| lp.cdr(r))
            .map_err(Self::lp_err)
            .and_then(Self::to_vm)
    }

    fn cons(&mut self, car: VmValue<Id>, cdr: VmValue<Id>) -> Result<Id, VmError> {
        let (a, d) = (Self::to_lp(&car), Self::to_lp(&cdr));
        let v = self.lp.retrying(|lp| lp.cons(a, d)).map_err(Self::lp_err)?;
        // The operand-stack references the VM holds on `car`/`cdr` are
        // released by the VM itself after this call; the cons's internal
        // references were taken by the LP. In heap-direct overflow mode
        // the result is an address the VM's reference type cannot name,
        // so it crosses the boundary as a typed degraded condition.
        v.obj().ok_or(VmError::Backend(BackendError::Degraded(
            "a table-backed cons result",
        )))
    }

    fn rplaca(&mut self, r: &Id, v: VmValue<Id>) -> Result<(), VmError> {
        let (r, v) = (*r, Self::to_lp(&v));
        self.lp.retrying(|lp| lp.rplaca(r, v)).map_err(Self::lp_err)
    }

    fn rplacd(&mut self, r: &Id, v: VmValue<Id>) -> Result<(), VmError> {
        let (r, v) = (*r, Self::to_lp(&v));
        self.lp.retrying(|lp| lp.rplacd(r, v)).map_err(Self::lp_err)
    }

    fn read_in(&mut self, e: &SExpr) -> Result<VmValue<Id>, VmError> {
        self.lp
            .retrying(|lp| lp.readlist(None, e))
            .map_err(Self::lp_err)
            .and_then(Self::to_vm)
    }

    fn write_out(&mut self, v: &VmValue<Id>) -> SExpr {
        self.lp
            .writelist(Self::to_lp(v))
            .expect("writelist of live value")
    }

    fn equal(&mut self, a: &VmValue<Id>, b: &VmValue<Id>) -> bool {
        self.lp
            .equal(Self::to_lp(a), Self::to_lp(b))
            .expect("equal of live values")
    }

    fn retain(&mut self, r: &Id) {
        let handle = self.lp.root_binding(LpValue::Obj(*r));
        self.roots.entry(*r).or_default().push(handle);
    }

    fn release(&mut self, r: &Id) {
        if let Some(stack) = self.roots.get_mut(r) {
            if let Some(handle) = stack.pop() {
                if stack.is_empty() {
                    self.roots.remove(r);
                }
                drop(handle); // schedules the release
                return;
            }
        }
        // A reference the value arrived with (no retain of ours).
        drop(self.lp.adopt_binding(LpValue::Obj(*r)));
    }
}

/// Ordered-traversal accounting (§5.3.1).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraversalCount {
    /// LPT touches: 3 per internal node + 1 per leaf.
    pub touches: u64,
    /// Touches satisfied by the LPT (everything but first contacts).
    pub hits: u64,
    /// First contacts with internal nodes — each costs one heap split.
    pub misses: u64,
}

impl TraversalCount {
    /// Hit rate of the traversal; ≥ 75% is guaranteed (§5.3.1).
    pub fn hit_rate(&self) -> f64 {
        if self.touches == 0 {
            0.0
        } else {
            self.hits as f64 / self.touches as f64
        }
    }
}

/// Ordered-traversal driver (§5.3.1): visit every node of the object,
/// touching each internal node three times (before, between, and after
/// its sub-trees — the traversal super-sequence) and each leaf once.
/// Identical LP activity for pre-, in-, and post-order traversal; only
/// the *visit* position differs. Used by the `traversal` repro target
/// and the guaranteed-hit-rate property test.
pub fn traverse_preorder<C: HeapController, S: EventSink>(
    lp: &mut ListProcessor<C, S>,
    v: LpValue,
) -> Result<TraversalCount, LpError> {
    let mut count = TraversalCount::default();
    go(lp, v, &mut count)?;
    return Ok(count);

    fn go<C: HeapController, S: EventSink>(
        lp: &mut ListProcessor<C, S>,
        v: LpValue,
        count: &mut TraversalCount,
    ) -> Result<(), LpError> {
        match v {
            // A leaf touch: the atom was delivered from a parent field —
            // an LPT-satisfied reference (§5.3.1 counts it as a hit).
            LpValue::Atom(_) => {
                count.touches += 1;
                count.hits += 1;
                Ok(())
            }
            LpValue::Obj(id) => {
                // Touch 1: first contact; the car access splits the heap
                // object if the node is not yet materialized.
                let before = lp.stats().misses;
                let car = lp.car(id)?;
                count.touches += 1;
                if lp.stats().misses > before {
                    count.misses += 1;
                } else {
                    count.hits += 1;
                }
                go(lp, car, count)?;
                if let LpValue::Obj(_) = car {
                    drop(lp.adopt_binding(car));
                }
                // Touch 2: back at the node between its sub-trees.
                let cdr = lp.cdr(id)?;
                count.touches += 1;
                count.hits += 1;
                go(lp, cdr, count)?;
                if let LpValue::Obj(_) = cdr {
                    drop(lp.adopt_binding(cdr));
                }
                // Touch 3: final contact after the right sub-tree (where
                // a post-order visit — or a merge — would happen).
                let again = lp.car(id)?;
                count.touches += 1;
                count.hits += 1;
                if let LpValue::Obj(_) = again {
                    drop(lp.adopt_binding(again));
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::LptStats;
    use small_lisp::compiler::compile_program;
    use small_lisp::vm::Vm;
    use small_sexpr::{metrics::np, parse, print, Interner};

    fn run_on_small(src: &str, inputs: &[&str]) -> (String, Vec<SExpr>, LptStats, Interner) {
        let mut i = Interner::new();
        let p = compile_program(src, &mut i).expect("compile");
        let backend = SmallBackend::new(65536, LpConfig::default());
        let mut vm = Vm::new(p, backend);
        for src in inputs {
            vm.input.push_back(parse(src, &mut i).unwrap());
        }
        let v = vm.run().expect("run");
        let out = vm.backend.write_out(&v);
        // Drop the final value and whatever the machine still holds so
        // the garbage accounting check is exact.
        if let small_lisp::vm::VmValue::List(id) = v {
            vm.backend.release(&id);
        }
        vm.shutdown();
        // Lazy child decrements park garbage on the free stack until
        // reallocation; drain them (this also drains scheduled unroots).
        vm.backend.lp.drain_lazy();
        let stats = vm.backend.lp.stats();
        let occupancy = vm.backend.lp.occupancy();
        assert_eq!(
            occupancy, 0,
            "all garbage must be detected by program end (§5.3.2)"
        );
        (print(&out, &i), vm.output, stats, i)
    }

    #[test]
    fn factorial_runs_on_small() {
        let src = "
        (def fact (lambda (x)
          (cond ((equal x 0) 1)
                (t (times x (fact (sub x 1)))))))
        (fact 10)";
        let (out, _, _, _) = run_on_small(src, &[]);
        assert_eq!(out, "3628800");
    }

    #[test]
    fn list_program_runs_on_small_with_lpt_hits() {
        let src = "
        (def app (lambda (a b)
          (cond ((null a) b)
                (t (cons (car a) (app (cdr a) b))))))
        (app '(1 2 3 4) '(5 6))";
        let (out, _, stats, _) = run_on_small(src, &[]);
        assert_eq!(out, "(1 2 3 4 5 6)");
        assert!(stats.gets > 0);
        assert!(stats.frees > 0, "transient structure must be reclaimed");
    }

    #[test]
    fn figure_4_15_program_on_small() {
        let src = "
        (def printit (lambda (junk) (write (cdr junk))))
        (def doit (lambda ()
          (prog (lst)
            (read lst)
            (printit lst)
            (setq lst (cdr (cdr lst)))
            (return lst))))
        (doit)";
        let (out, written, _, i) = run_on_small(src, &["(a b c d)"]);
        assert_eq!(out, "(c d)");
        assert_eq!(print(&written[0], &i), "(b c d)");
    }

    #[test]
    fn destructive_update_on_small() {
        let src = "
        (prog (x)
          (setq x '(1 2 3))
          (rplaca x 9)
          (rplacd (cdr x) '(7))
          (return x))";
        let (out, _, _, _) = run_on_small(src, &[]);
        assert_eq!(out, "(9 2 7)");
    }

    #[test]
    fn small_and_direct_backends_agree() {
        let src = "
        (def rev (lambda (l acc)
          (cond ((null l) acc)
                (t (rev (cdr l) (cons (car l) acc))))))
        (rev '(1 (2 a) 3 4 5) nil)";
        let mut i1 = Interner::new();
        let p1 = compile_program(src, &mut i1).unwrap();
        let mut vm1 = Vm::new(p1, small_lisp::vm::DirectBackend::new(4096));
        let v1 = vm1.run().unwrap();
        let direct = print(&vm1.backend.write_out(&v1), &i1);

        let (small, _, _, _) = run_on_small(src, &[]);
        assert_eq!(direct, small);
    }

    #[test]
    fn traversal_guarantees_75_percent_hit_rate() {
        // §5.3.1: a complete traversal of a list with n atoms and p
        // internal parens does exactly n+p splits and guarantees a 75%
        // hit rate (3 internal-node touches, 1 leaf touch each).
        let mut i = Interner::new();
        for src in [
            "(((A B) C D) E F G)",
            "(A B C (D E) F G)",
            "(A (B (C (D E F) G)))",
            "(A)",
        ] {
            let e = parse(src, &mut i).unwrap();
            let m = np(&e);
            let backend = SmallBackend::new(4096, LpConfig::default());
            let mut lp = backend.lp;
            let v = lp.readlist(None, &e).unwrap();
            let count = traverse_preorder(&mut lp, v).unwrap();
            assert_eq!(
                count.misses as usize,
                m.n + m.p,
                "{src}: splits must equal n+p"
            );
            // 3(n+p) internal touches + (n+p+1) leaf touches.
            assert_eq!(count.touches as usize, 4 * (m.n + m.p) + 1, "{src}");
            assert!(
                count.hit_rate() >= 0.75 - 1e-9,
                "{src}: traversal hit rate {} below the guaranteed 75%",
                count.hit_rate()
            );
        }
    }

    #[test]
    fn traversal_is_refcount_neutral() {
        let mut i = Interner::new();
        let e = parse("((a b) (c (d)) e)", &mut i).unwrap();
        let backend = SmallBackend::new(4096, LpConfig::default());
        let mut lp = backend.lp;
        let v = lp.readlist(None, &e).unwrap();
        traverse_preorder(&mut lp, v).unwrap();
        drop(lp.adopt_binding(v));
        // Everything was reachable from v; after the deferred decrements
        // run, the whole structure must be detected as garbage.
        lp.drain_lazy();
        assert_eq!(lp.occupancy(), 0);
    }

    #[test]
    fn program_survives_transient_faults_with_identical_output() {
        use small_heap::{FaultPlan, FaultyController};
        let src = "
        (def app (lambda (a b)
          (cond ((null a) b)
                (t (cons (car a) (app (cdr a) b))))))
        (app '(1 2 3 4) '(5 6))";
        let (clean, _, _, _) = run_on_small(src, &[]);

        let mut i = Interner::new();
        let p = compile_program(src, &mut i).unwrap();
        let backend = SmallBackend::over(
            FaultyController::new(
                TwoPointerController::new(65536, 64),
                FaultPlan::aggressive(42),
            ),
            LpConfig::default(),
        );
        let mut vm = Vm::new(p, backend);
        let v = vm.run().expect("faulted run must still complete");
        let out = print(&vm.backend.write_out(&v), &i);
        assert_eq!(out, clean, "faults must not change the result");
        if let small_lisp::vm::VmValue::List(id) = v {
            vm.backend.release(&id);
        }
        vm.shutdown();
        vm.backend.lp.drain_lazy();
        assert_eq!(vm.backend.lp.occupancy(), 0);
        // The fault ledger reconciles exactly: every injected transient
        // was detected, and a run that completed recovered all of them.
        let stats = vm.backend.lp.stats();
        let injected = vm.backend.lp.controller.fault_stats().transient_total();
        assert!(injected > 0, "the aggressive plan must actually fire");
        assert_eq!(stats.faults_detected, injected);
        assert_eq!(stats.faults_recovered, stats.faults_detected);
        // Withheld frees all reach the heap once the window is flushed.
        vm.backend.lp.controller.flush_all_delayed();
        let fs = vm.backend.lp.controller.fault_stats();
        assert_eq!(fs.delayed_frees, fs.flushed_frees);
        assert_eq!(vm.backend.lp.controller.pending_delayed(), 0);
    }

    #[test]
    fn bad_tag_surfaces_as_typed_error_not_panic() {
        // A corrupt heap word must cross the EP–LP boundary as a value.
        let v = SmallBackend::<TwoPointerController>::to_vm(LpValue::Atom(Word::free_link(None)));
        match v {
            Err(VmError::Backend(BackendError::UnexpectedTag(t))) => {
                assert_eq!(t, small_heap::Tag::FreeLink);
            }
            other => panic!("expected UnexpectedTag, got {other:?}"),
        }
    }
}
