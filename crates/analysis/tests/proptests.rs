//! Property tests: list-set partition invariants on arbitrary traces.

use proptest::prelude::*;
use small_analysis::list_sets::{partition, SeparationConstraint};
use small_analysis::lru::StackDistances;
use small_trace::event::{Event, ListRef, Prim, Trace, UidInfo};

fn arb_trace() -> impl Strategy<Value = Trace> {
    let max_uid = 12u32;
    let lref = move |uid: u32| ListRef {
        uid,
        exact: Some(uid as u64),
        chained: false,
    };
    prop::collection::vec(
        (
            prop::sample::select(vec![Prim::Car, Prim::Cdr, Prim::Cons, Prim::Rplaca]),
            0..max_uid,
            0..max_uid,
            0..max_uid,
        ),
        1..200,
    )
    .prop_map(move |ops| Trace {
        name: "prop".into(),
        events: ops
            .into_iter()
            .map(|(prim, a, b, r)| Event::Prim {
                prim,
                args: if matches!(prim, Prim::Car | Prim::Cdr) {
                    vec![lref(a)]
                } else {
                    vec![lref(a), lref(b)]
                },
                result: lref(r),
            })
            .collect(),
        uids: (0..max_uid)
            .map(|_| UidInfo {
                n: 2,
                p: 0,
                atom: false,
            })
            .collect(),
        fn_names: vec![],
    })
}

proptest! {
    #[test]
    fn partition_is_total_and_consistent(t in arb_trace(), frac in 0.02f64..1.0) {
        let p = partition(&t, SeparationConstraint::Fraction(frac));
        // Totality: every list reference classified exactly once.
        prop_assert_eq!(p.ref_set_ids.len(), p.total_refs);
        prop_assert_eq!(p.sets.iter().map(|s| s.size).sum::<usize>(), p.total_refs);
        // Set ids are in range; first <= last <= trace length.
        for s in &p.sets {
            prop_assert!(s.first <= s.last);
            prop_assert!(s.last < p.trace_len.max(1));
            prop_assert!(s.size >= 1);
            prop_assert!(s.distinct_lists >= 1);
        }
        // Coverage curve monotone to 1.
        let c = p.coverage_curve();
        prop_assert!(c.windows(2).all(|w| w[0].1 <= w[1].1));
        if let Some(last) = c.last() {
            prop_assert!((last.1 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tighter_window_never_reduces_set_count(t in arb_trace()) {
        let loose = partition(&t, SeparationConstraint::Fraction(1.0)).sets.len();
        let mid = partition(&t, SeparationConstraint::Fraction(0.2)).sets.len();
        let tight = partition(&t, SeparationConstraint::Absolute(1)).sets.len();
        prop_assert!(tight >= mid);
        prop_assert!(mid >= loose);
    }

    #[test]
    fn lru_hit_rates_monotone_and_bounded(t in arb_trace()) {
        let p = partition(&t, SeparationConstraint::Fraction(0.1));
        let d = StackDistances::of(p.ref_set_ids.iter().copied());
        let mut prev = 0.0;
        for depth in 1..20 {
            let r = d.hit_rate(depth);
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!(r >= prev);
            prev = r;
        }
        // Cold misses = number of distinct set instances first touched.
        prop_assert_eq!(d.cold as usize, p.sets.len());
    }
}
