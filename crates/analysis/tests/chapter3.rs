//! Integration test: the Chapter 3 headline observations hold on the
//! regenerated workload suite.
//!
//! §3.3.2.2: "a small number (about 10) of significant structural
//! locales of reference represent a large percentage (about 80%) of all
//! the list references in each trace."
//! §3.3.2.3: "a stack depth of 4 list sets captures from 70-90% of all
//! accesses."
//! Table 3.2: chaining is significant in 4 of the 5 programs, with only
//! PEARL showing a low level.

use small_analysis::list_sets::{partition, SeparationConstraint};
use small_analysis::lru::StackDistances;
use small_analysis::ChainStats;
use small_workloads as workloads;

#[test]
fn few_list_sets_cover_most_references() {
    for t in workloads::standard_suite(1) {
        if t.name == "pearl" {
            // Our PEARL substitution routes record access through
            // untraced hunk primitives (as the original did), which
            // hides the car/cdr relations that would join records into
            // large list sets — its partition is many small sets. The
            // four list-structured workloads carry the §3.3.2.2 claim.
            continue;
        }
        let p = partition(&t, SeparationConstraint::Fraction(0.10));
        let k = p.sets_to_cover(0.80);
        assert!(
            k <= 20,
            "{}: needed {k} list sets to cover 80% of references",
            t.name
        );
    }
}

#[test]
fn lru_depth_4_captures_most_accesses() {
    // §3.3.2.3: "a stack depth of 4 list sets captures from 70-90% of
    // all accesses" — our traces are even more concentrated.
    for t in workloads::standard_suite(1) {
        let p = partition(&t, SeparationConstraint::Fraction(0.10));
        let d = StackDistances::of(p.ref_set_ids.iter().copied());
        let rate = d.hit_rate(4);
        assert!(rate > 0.60, "{}: depth-4 hit rate only {rate:.2}", t.name);
    }
}

#[test]
fn chaining_significant_except_pearl() {
    let mut pearl_car = f64::NAN;
    let mut others_min = f64::INFINITY;
    for t in workloads::standard_suite(1) {
        let c = ChainStats::of(&t);
        if t.name == "pearl" {
            pearl_car = c.car_pct();
        } else {
            others_min = others_min.min(c.car_pct().max(c.cdr_pct()));
        }
    }
    assert!(
        others_min > 20.0,
        "chaining should be significant outside PEARL, min {others_min:.1}"
    );
    assert!(
        pearl_car < others_min,
        "PEARL must show the least chaining ({pearl_car:.1} vs {others_min:.1})"
    );
}

#[test]
fn smaller_separation_constraint_means_more_sets() {
    // The Figures 3.8-3.10 sensitivity direction on the SLANG trace.
    let t = workloads::slang::run(1).trace;
    let mut prev = 0usize;
    for frac in [1.0, 0.5, 0.10, 0.05] {
        let p = partition(&t, SeparationConstraint::Fraction(frac));
        assert!(
            p.sets.len() >= prev,
            "tightening the constraint must not reduce set count"
        );
        prev = p.sets.len();
    }
}
