//! The list-set partition of a list access stream (§3.3.2.1).
//!
//! Two list references are **related** if one is the car or cdr of the
//! other; a **list set** is a closure of related references with the
//! constraint that no two temporally adjacent members are separated by
//! more than a fraction (the thesis uses 10%) of the trace length. The
//! lifetime of a list set is the distance between its first and last
//! members.
//!
//! Implementation: union–find over list uids driven by the car/cdr
//! relation (the thesis definition relates exactly those pairs: a `car`
//! or `cdr` call relates its argument to its result — a consed list
//! becomes related to its components only when a later access walks into
//! them), followed by a temporal pass that splits each structural class
//! wherever the separation constraint is exceeded.
//!
//! Note the thesis caveat, faithfully preserved: references are at the
//! s-expression level, so "two list references could be mistaken for
//! each other if they were made to identical lists" — uids are the
//! looks-identical classes of §5.2.1.

use small_trace::{Prim, Trace};

/// The separation constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeparationConstraint {
    /// A fraction of the trace length (the thesis default is 0.10).
    Fraction(f64),
    /// An absolute event-count window (Figures 3.11–3.13 use 10% of the
    /// shortest trace for every trace).
    Absolute(usize),
}

impl SeparationConstraint {
    fn window(self, trace_len: usize) -> usize {
        match self {
            SeparationConstraint::Fraction(f) => ((trace_len as f64) * f).ceil() as usize,
            SeparationConstraint::Absolute(n) => n,
        }
    }
}

/// One list set of the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListSet {
    /// Number of list references in the set (its *size*).
    pub size: usize,
    /// Trace position of the first member.
    pub first: usize,
    /// Trace position of the last member.
    pub last: usize,
    /// Number of distinct uids among the members.
    pub distinct_lists: usize,
}

impl ListSet {
    /// Lifetime in events.
    pub fn lifetime(&self) -> usize {
        self.last - self.first
    }

    /// Lifetime as a fraction of the trace length.
    pub fn lifetime_frac(&self, trace_len: usize) -> f64 {
        self.lifetime() as f64 / trace_len.max(1) as f64
    }
}

/// The full partition result.
#[derive(Debug, Clone)]
pub struct Partition {
    /// All list sets, unordered.
    pub sets: Vec<ListSet>,
    /// Total list references in the stream.
    pub total_refs: usize,
    /// Trace length (primitive events).
    pub trace_len: usize,
    /// For each reference (in order), the index into `sets` it belongs
    /// to — the stream consumed by the LRU stack analysis (Figure 3.7).
    pub ref_set_ids: Vec<u32>,
}

impl Partition {
    /// Sets sorted by size, largest first (Figure 3.4's x-axis order).
    pub fn by_size_desc(&self) -> Vec<ListSet> {
        let mut v = self.sets.clone();
        v.sort_by_key(|s| std::cmp::Reverse(s.size));
        v
    }

    /// Cumulative fraction of references covered by the `k` largest sets
    /// (Figure 3.4): returns (k, fraction) points.
    pub fn coverage_curve(&self) -> Vec<(usize, f64)> {
        let total = self.total_refs.max(1) as f64;
        let mut acc = 0usize;
        self.by_size_desc()
            .iter()
            .enumerate()
            .map(|(k, s)| {
                acc += s.size;
                (k + 1, acc as f64 / total)
            })
            .collect()
    }

    /// Number of sets needed to cover fraction `q` of all references.
    pub fn sets_to_cover(&self, q: f64) -> usize {
        for (k, f) in self.coverage_curve() {
            if f >= q {
                return k;
            }
        }
        self.sets.len()
    }

    /// Lifetimes (as trace fractions) of all sets (Figure 3.5 samples).
    pub fn lifetimes(&self) -> Vec<f64> {
        self.sets
            .iter()
            .map(|s| s.lifetime_frac(self.trace_len))
            .collect()
    }

    /// Weighted lifetimes: (lifetime fraction, reference count) pairs
    /// (Figure 3.6 samples).
    pub fn lifetimes_weighted(&self) -> Vec<(f64, f64)> {
        self.sets
            .iter()
            .map(|s| (s.lifetime_frac(self.trace_len), s.size as f64))
            .collect()
    }
}

/// Union-find over uids.
struct Uf {
    parent: Vec<u32>,
}

impl Uf {
    fn new(n: usize) -> Uf {
        Uf {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// Partition a trace's list reference stream into list sets.
pub fn partition(trace: &Trace, constraint: SeparationConstraint) -> Partition {
    let n_uids = trace.uids.len();
    let mut uf = Uf::new(n_uids);

    // Pass 1: structural closure over the car/cdr relation only
    // (§3.3.2.1: "two list references are related if one is the car or
    // cdr of the other").
    for (prim, args, result) in trace.prims() {
        if matches!(prim, Prim::Car | Prim::Cdr) {
            if let (Some(arg), true) = (args.first(), result.is_list()) {
                if arg.is_list() {
                    uf.union(arg.uid, result.uid);
                }
            }
        }
    }

    // Pass 2: temporal split under the separation constraint.
    // Reference stream: every list operand occurrence, positioned by its
    // primitive-event index.
    let trace_len = trace.primitive_count();
    let window = constraint.window(trace_len).max(1);

    // Per structural class: the currently open set and its stats.
    #[derive(Clone, Copy)]
    struct Open {
        set_idx: u32,
        last: usize,
    }
    let mut open: Vec<Option<Open>> = vec![None; n_uids];
    let mut sets: Vec<ListSet> = Vec::new();
    let mut ref_set_ids: Vec<u32> = Vec::new();
    let mut total_refs = 0usize;
    // Track distinct uids per set with a per-set mark (uid → set id of
    // last membership).
    let mut uid_last_set: Vec<u32> = vec![u32::MAX; n_uids];

    for (pos, (_, args, result)) in trace.prims().enumerate() {
        for r in args.iter().chain(std::iter::once(result)) {
            if !r.is_list() {
                continue;
            }
            total_refs += 1;
            let class = uf.find(r.uid) as usize;
            let set_idx = match open[class] {
                Some(o) if pos - o.last <= window => {
                    let s = &mut sets[o.set_idx as usize];
                    s.size += 1;
                    s.last = pos;
                    open[class] = Some(Open {
                        set_idx: o.set_idx,
                        last: pos,
                    });
                    o.set_idx
                }
                _ => {
                    let idx = sets.len() as u32;
                    sets.push(ListSet {
                        size: 1,
                        first: pos,
                        last: pos,
                        distinct_lists: 0,
                    });
                    open[class] = Some(Open {
                        set_idx: idx,
                        last: pos,
                    });
                    idx
                }
            };
            if uid_last_set[r.uid as usize] != set_idx {
                uid_last_set[r.uid as usize] = set_idx;
                sets[set_idx as usize].distinct_lists += 1;
            }
            ref_set_ids.push(set_idx);
        }
    }

    Partition {
        sets,
        total_refs,
        trace_len,
        ref_set_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_trace::event::{Event, ListRef, UidInfo};

    fn lref(uid: u32) -> ListRef {
        ListRef {
            uid,
            exact: Some(uid as u64),
            chained: false,
        }
    }

    fn atom_ref(uid: u32) -> ListRef {
        ListRef {
            uid,
            exact: None,
            chained: false,
        }
    }

    fn mk_trace(events: Vec<Event>, n_uids: u32) -> Trace {
        Trace {
            name: "t".into(),
            events,
            uids: (0..n_uids)
                .map(|_| UidInfo {
                    n: 2,
                    p: 0,
                    atom: false,
                })
                .collect(),
            fn_names: vec![],
        }
    }

    fn car(arg: u32, result: u32) -> Event {
        Event::Prim {
            prim: Prim::Car,
            args: vec![lref(arg)],
            result: lref(result),
        }
    }

    fn car_atom(arg: u32, result: u32) -> Event {
        Event::Prim {
            prim: Prim::Car,
            args: vec![lref(arg)],
            result: atom_ref(result),
        }
    }

    #[test]
    fn related_references_form_one_set() {
        // car(0)=1, car(1)=2 — all related: one set of 4 references.
        let t = mk_trace(vec![car(0, 1), car(1, 2)], 3);
        let p = partition(&t, SeparationConstraint::Fraction(0.10));
        assert_eq!(p.sets.len(), 1);
        assert_eq!(p.sets[0].size, 4);
        assert_eq!(p.total_refs, 4);
        assert_eq!(p.sets[0].distinct_lists, 3);
    }

    #[test]
    fn unrelated_references_form_separate_sets() {
        let t = mk_trace(vec![car(0, 1), car(2, 3)], 4);
        let p = partition(&t, SeparationConstraint::Fraction(0.10));
        assert_eq!(p.sets.len(), 2);
        assert_eq!(p.sets[0].size, 2);
    }

    #[test]
    fn separation_constraint_splits_in_time() {
        // Same structural class touched at positions 0 and 50 of a
        // 51-event trace; a 10% window (≈6 events) must split them.
        let mut events = vec![car(0, 1)];
        for _ in 0..49 {
            events.push(car(2, 3)); // unrelated filler
        }
        events.push(car(0, 1));
        let t = mk_trace(events, 4);
        let p = partition(&t, SeparationConstraint::Fraction(0.10));
        // Class {0,1}: two sets (split); class {2,3}: one set.
        assert_eq!(p.sets.len(), 3);
        // A 100% constraint keeps them together.
        let p2 = partition(&t, SeparationConstraint::Fraction(1.0));
        assert_eq!(p2.sets.len(), 2);
    }

    #[test]
    fn absolute_constraint() {
        let mut events = vec![car(0, 1)];
        for _ in 0..10 {
            events.push(car(2, 3));
        }
        events.push(car(0, 1));
        let t = mk_trace(events, 4);
        assert_eq!(
            partition(&t, SeparationConstraint::Absolute(3)).sets.len(),
            3
        );
        assert_eq!(
            partition(&t, SeparationConstraint::Absolute(100))
                .sets
                .len(),
            2
        );
    }

    #[test]
    fn atoms_are_not_references() {
        let t = mk_trace(vec![car_atom(0, 1)], 2);
        let p = partition(&t, SeparationConstraint::Fraction(0.1));
        assert_eq!(p.total_refs, 1, "only the list argument counts");
    }

    #[test]
    fn coverage_curve_is_monotone_to_one() {
        let t = mk_trace(vec![car(0, 1), car(2, 3), car(0, 1)], 4);
        let p = partition(&t, SeparationConstraint::Fraction(1.0));
        let curve = p.coverage_curve();
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert_eq!(p.sets_to_cover(0.6), 1, "largest set covers 4/6 refs");
    }

    #[test]
    fn lifetimes_reflect_first_and_last() {
        let mut events = vec![car(0, 1)];
        events.push(car(2, 3));
        events.push(car(0, 1));
        let t = mk_trace(events, 4);
        let p = partition(&t, SeparationConstraint::Fraction(1.0));
        let lifetimes = p.lifetimes();
        assert!(lifetimes.contains(&(2.0 / 3.0)));
        assert!(lifetimes.contains(&0.0));
    }

    #[test]
    fn smaller_separation_gives_more_smaller_sets() {
        // The Figure 3.8 observation.
        let suite = small_trace::Trace {
            name: "synthetic-check".into(),
            ..Default::default()
        };
        let _ = suite;
        let mut events = Vec::new();
        for k in 0..200 {
            events.push(car(k % 5, 5 + k % 5)); // 5 structural classes
        }
        let t = mk_trace(events, 10);
        let tight = partition(&t, SeparationConstraint::Absolute(2)).sets.len();
        let loose = partition(&t, SeparationConstraint::Absolute(100))
            .sets
            .len();
        assert!(tight >= loose);
    }
}
