//! Cumulative-distribution helpers shared by the Chapter 3 figures.

/// A cumulative distribution: points `(x, cumulative fraction ≤ x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    /// Sorted `(value, cumulative fraction)` points in `[0, 1]`.
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Build from raw samples.
    pub fn from_samples(mut xs: Vec<f64>) -> Cdf {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let n = xs.len().max(1) as f64;
        let mut points = Vec::new();
        for (i, x) in xs.iter().enumerate() {
            let frac = (i + 1) as f64 / n;
            match points.last_mut() {
                Some((px, pf)) if *px == *x => *pf = frac,
                _ => points.push((*x, frac)),
            }
        }
        Cdf { points }
    }

    /// Build from weighted samples `(value, weight)`.
    pub fn from_weighted(mut xs: Vec<(f64, f64)>) -> Cdf {
        xs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN samples"));
        let total: f64 = xs
            .iter()
            .map(|(_, w)| w)
            .sum::<f64>()
            .max(f64::MIN_POSITIVE);
        let mut acc = 0.0;
        let mut points: Vec<(f64, f64)> = Vec::new();
        for (x, w) in xs {
            acc += w;
            match points.last_mut() {
                Some((px, pf)) if *px == x => *pf = acc / total,
                _ => points.push((x, acc / total)),
            }
        }
        Cdf { points }
    }

    /// Fraction of mass at or below `x`.
    pub fn at(&self, x: f64) -> f64 {
        match self.points.iter().rev().find(|(px, _)| *px <= x) {
            Some((_, f)) => *f,
            None => 0.0,
        }
    }

    /// Smallest `x` whose cumulative fraction reaches `q` (quantile).
    pub fn quantile(&self, q: f64) -> f64 {
        for (x, f) in &self.points {
            if *f >= q {
                return *x;
            }
        }
        self.points.last().map_or(0.0, |(x, _)| *x)
    }

    /// Render as fixed-width rows for the repro CLI.
    pub fn rows(&self, max_rows: usize) -> Vec<(f64, f64)> {
        if self.points.len() <= max_rows {
            return self.points.clone();
        }
        let step = self.points.len() as f64 / max_rows as f64;
        (0..max_rows)
            .map(|k| self.points[((k as f64 + 1.0) * step) as usize - 1])
            .chain(std::iter::once(*self.points.last().expect("nonempty")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_from_samples() {
        let c = Cdf::from_samples(vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.0), 0.75);
        assert_eq!(c.at(10.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let c = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.quantile(0.5), 2.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.quantile(0.01), 1.0);
    }

    #[test]
    fn weighted_mass() {
        let c = Cdf::from_weighted(vec![(1.0, 9.0), (2.0, 1.0)]);
        assert!((c.at(1.0) - 0.9).abs() < 1e-12);
        assert!((c.at(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rows_subsample_monotonically() {
        let c = Cdf::from_samples((0..1000).map(f64::from).collect());
        let rows = c.rows(10);
        assert!(rows.len() <= 11);
        assert!(rows.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(rows.last().unwrap().1, 1.0);
    }
}
