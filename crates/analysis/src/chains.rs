//! Primitive function chaining (§3.3.2.3, Table 3.2).
//!
//! "Primitive function chaining has occurred if the value returned by
//! one primitive function is immediately passed to another primitive
//! function." Table 3.2 reports the percentage of CAR and CDR calls that
//! occurred *inside* such a chain — i.e. the call either consumed the
//! previous primitive's result or fed its own result to the next one.

use small_trace::{Prim, Trace};

/// Chaining statistics for one trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChainStats {
    /// CAR calls inside a chain / total CAR calls.
    pub car_chained: u64,
    /// Total CAR calls.
    pub car_total: u64,
    /// CDR calls inside a chain / total CDR calls.
    pub cdr_chained: u64,
    /// Total CDR calls.
    pub cdr_total: u64,
    /// All primitives inside a chain.
    pub all_chained: u64,
    /// All primitive calls.
    pub all_total: u64,
}

impl ChainStats {
    /// Compute chaining statistics.
    pub fn of(trace: &Trace) -> ChainStats {
        let prims: Vec<(Prim, bool)> = trace
            .prims()
            .map(|(p, args, _)| (p, args.iter().any(|a| a.chained)))
            .collect();
        let mut s = ChainStats::default();
        for (i, (p, consumed_prev)) in prims.iter().enumerate() {
            // Fed the next primitive?
            let fed_next = prims.get(i + 1).is_some_and(|(_, c)| *c);
            let in_chain = *consumed_prev || fed_next;
            s.all_total += 1;
            s.all_chained += u64::from(in_chain);
            match p {
                Prim::Car => {
                    s.car_total += 1;
                    s.car_chained += u64::from(in_chain);
                }
                Prim::Cdr => {
                    s.cdr_total += 1;
                    s.cdr_chained += u64::from(in_chain);
                }
                _ => {}
            }
        }
        s
    }

    /// Percentage of CAR calls inside a chain (Table 3.2 column).
    pub fn car_pct(&self) -> f64 {
        pct(self.car_chained, self.car_total)
    }

    /// Percentage of CDR calls inside a chain (Table 3.2 column).
    pub fn cdr_pct(&self) -> f64 {
        pct(self.cdr_chained, self.cdr_total)
    }

    /// Percentage of all primitive calls inside a chain.
    pub fn all_pct(&self) -> f64 {
        pct(self.all_chained, self.all_total)
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_trace::event::{Event, ListRef, UidInfo};

    fn lref(uid: u32, chained: bool) -> ListRef {
        ListRef {
            uid,
            exact: Some(uid as u64),
            chained,
        }
    }

    fn prim(p: Prim, arg_chained: bool) -> Event {
        Event::Prim {
            prim: p,
            args: vec![lref(0, arg_chained)],
            result: lref(1, false),
        }
    }

    fn trace(events: Vec<Event>) -> Trace {
        Trace {
            name: "t".into(),
            events,
            uids: vec![UidInfo::default(); 4],
            fn_names: vec![],
        }
    }

    #[test]
    fn consumer_and_producer_both_count() {
        // cdr (feeds next) → car (consumes prev): both in the chain.
        let t = trace(vec![prim(Prim::Cdr, false), prim(Prim::Car, true)]);
        let s = ChainStats::of(&t);
        assert_eq!(s.car_pct(), 100.0);
        assert_eq!(s.cdr_pct(), 100.0);
    }

    #[test]
    fn isolated_calls_do_not_count() {
        let t = trace(vec![prim(Prim::Car, false), prim(Prim::Cdr, false)]);
        let s = ChainStats::of(&t);
        assert_eq!(s.car_pct(), 0.0);
        assert_eq!(s.cdr_pct(), 0.0);
    }

    #[test]
    fn mixed_stream() {
        let t = trace(vec![
            prim(Prim::Car, false), // feeds nothing
            prim(Prim::Cdr, false), // feeds next
            prim(Prim::Car, true),  // consumes
            prim(Prim::Car, false), // isolated
        ]);
        let s = ChainStats::of(&t);
        assert_eq!(s.cdr_pct(), 100.0);
        assert!((s.car_pct() - 100.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.all_total, 4);
        assert_eq!(s.all_chained, 2);
    }
}
