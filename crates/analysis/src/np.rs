//! Distributions of the n/p list-complexity measures over the lists a
//! trace encounters (Table 3.1 means, Figures 3.3a/b distributions).

use crate::hist::Cdf;
use small_trace::Trace;

/// Summary of n/p over the lists a trace encounters.
#[derive(Debug, Clone, PartialEq)]
pub struct NpSummary {
    /// Mean n per list *encounter* (§3.3.1 notes n and p "for each list
    /// encountered") — Table 3.1.
    pub mean_n: f64,
    /// Mean p per list encounter (Table 3.1).
    pub mean_p: f64,
    /// Distribution of n over encounters (Figure 3.3a).
    pub n_cdf: Cdf,
    /// Distribution of p over encounters (Figure 3.3b).
    pub p_cdf: Cdf,
    /// Number of distinct lists seen.
    pub lists: usize,
    /// Number of list encounters weighted into the means.
    pub encounters: usize,
}

/// Compute n/p statistics over every list encounter in the trace
/// (argument operands of the traced primitives).
pub fn np_summary(trace: &Trace) -> NpSummary {
    let mut ns: Vec<f64> = Vec::new();
    let mut ps: Vec<f64> = Vec::new();
    for (_, args, _) in trace.prims() {
        for r in args {
            if r.is_list() {
                let u = trace.uids[r.uid as usize];
                ns.push(u.n as f64);
                ps.push(u.p as f64);
            }
        }
    }
    let count = ns.len().max(1) as f64;
    NpSummary {
        mean_n: ns.iter().sum::<f64>() / count,
        mean_p: ps.iter().sum::<f64>() / count,
        n_cdf: Cdf::from_samples(ns.clone()),
        p_cdf: Cdf::from_samples(ps),
        lists: trace.uids.iter().filter(|u| !u.atom).count(),
        encounters: ns.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_trace::event::UidInfo;

    #[test]
    fn summary_weights_by_encounter() {
        use small_trace::event::{Event, ListRef};
        use small_trace::Prim;
        let lref = |uid: u32| ListRef {
            uid,
            exact: Some(uid as u64),
            chained: false,
        };
        let car = |arg: u32| Event::Prim {
            prim: Prim::Car,
            args: vec![lref(arg)],
            result: lref(2),
        };
        let t = Trace {
            // uid 0 encountered twice, uid 1 once.
            events: vec![car(0), car(0), car(1)],
            uids: vec![
                UidInfo {
                    n: 10,
                    p: 2,
                    atom: false,
                },
                UidInfo {
                    n: 40,
                    p: 8,
                    atom: false,
                },
                UidInfo {
                    n: 1,
                    p: 0,
                    atom: false,
                },
            ],
            ..Default::default()
        };
        let s = np_summary(&t);
        assert_eq!(s.encounters, 3);
        assert_eq!(s.lists, 3);
        assert!((s.mean_n - 20.0).abs() < 1e-12, "weighted: (10+10+40)/3");
        assert!((s.mean_p - 4.0).abs() < 1e-12);
    }
}
