//! LRU stack-distance analysis (§3.3.2.3, Figure 3.7).
//!
//! The Mattson et al. one-pass algorithm: maintain the LRU stack of
//! items; each reference's *stack distance* is the depth at which the
//! item is found (1 = most recently used). One pass yields hit counts
//! for every stack size at once. The thesis applies it to the stream of
//! list-set ids (Figure 3.7); Clark applied it to list cells — both
//! supported here since the input is any id stream.

/// Stack-distance profile of an id stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StackDistances {
    /// `hist[d-1]` = number of references found at depth `d`.
    pub hist: Vec<u64>,
    /// References to items never seen before (infinite distance).
    pub cold: u64,
    /// Total references.
    pub total: u64,
}

impl StackDistances {
    /// Run the one-pass algorithm over `ids`.
    pub fn of<I: IntoIterator<Item = u32>>(ids: I) -> StackDistances {
        let mut stack: Vec<u32> = Vec::new();
        let mut out = StackDistances::default();
        for id in ids {
            out.total += 1;
            match stack.iter().rposition(|&x| x == id) {
                Some(pos) => {
                    let depth = stack.len() - pos; // 1 = top
                    if out.hist.len() < depth {
                        out.hist.resize(depth, 0);
                    }
                    out.hist[depth - 1] += 1;
                    stack.remove(pos);
                    stack.push(id);
                }
                None => {
                    out.cold += 1;
                    stack.push(id);
                }
            }
        }
        out
    }

    /// Fraction of references with stack distance ≤ `d` (the success
    /// rate of an LRU buffer of size `d`).
    pub fn hit_rate(&self, d: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self.hist.iter().take(d).sum();
        hits as f64 / self.total as f64
    }

    /// Cumulative curve points `(depth, fraction ≤ depth)` up to `max_d`.
    pub fn curve(&self, max_d: usize) -> Vec<(usize, f64)> {
        (1..=max_d).map(|d| (d, self.hit_rate(d))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_classic_example() {
        // Stream a b c a: a is at depth 3 when re-referenced.
        let s = StackDistances::of([0, 1, 2, 0]);
        assert_eq!(s.cold, 3);
        assert_eq!(s.hist, vec![0, 0, 1]);
        assert_eq!(s.total, 4);
    }

    #[test]
    fn repeated_reference_is_depth_one() {
        let s = StackDistances::of([5, 5, 5]);
        assert_eq!(s.cold, 1);
        assert_eq!(s.hist, vec![2]);
        assert!((s.hit_rate(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn one_pass_gives_all_sizes() {
        // Property of the Mattson algorithm: hit_rate is monotone in d
        // and equals the simulation of each LRU size.
        let stream = [0u32, 1, 2, 1, 0, 3, 2, 1, 0, 0, 4, 1];
        let s = StackDistances::of(stream);
        let mut prev = 0.0;
        for d in 1..8 {
            let r = s.hit_rate(d);
            assert!(r >= prev);
            prev = r;
        }
        assert_eq!(s.total, 12);
        assert_eq!(s.cold, 5);
    }

    #[test]
    fn curve_shape() {
        let s = StackDistances::of([0, 1, 0, 1, 0, 1]);
        let c = s.curve(3);
        assert_eq!(c.len(), 3);
        assert!(c[1].1 > 0.6, "depth-2 captures the alternating pair");
    }
}
