#![warn(missing_docs)]
//! Structural-locality analyses of Lisp list access streams (Chapter 3).
//!
//! The thesis's methodological contribution is the study of list access
//! at the *data structure* level, independent of representation and
//! implementation (§3.3): partitioning a reference stream into **list
//! sets** — closures of car/cdr-related references subject to a temporal
//! separation constraint — and characterizing their sizes, lifetimes,
//! and LRU temporal locality. This crate implements:
//!
//! * [`np`] — n/p distributions over lists (Table 3.1, Figures 3.3a/b),
//! * [`list_sets`] — the list-set partition (Figures 3.4–3.6) with
//!   configurable separation constraints (Figures 3.8–3.13),
//! * [`lru`] — Mattson one-pass LRU stack-distance profiles
//!   (Figure 3.7),
//! * [`chains`] — primitive function chaining (Table 3.2),
//! * [`hist`] — shared cumulative-distribution helpers.

pub mod chains;
pub mod hist;
pub mod list_sets;
pub mod lru;
pub mod np;

pub use chains::ChainStats;
pub use list_sets::{partition, ListSet, Partition, SeparationConstraint};
pub use lru::StackDistances;
