#![warn(missing_docs)]
//! **small-metrics** — the instrumentation layer of the SMALL
//! reproduction.
//!
//! The thesis's entire evaluation is parameter sweeps over the machine's
//! memory-operation stream; this crate makes that stream a first-class
//! observable. It has three pieces:
//!
//! * **Primitives** — [`Counter`] (a monotonic `u64`) and [`Histogram`]
//!   (power-of-two buckets, constant-time record, mergeable) for cheap
//!   occupancy/latency/size distributions;
//! * **Events** — the [`Event`] enum names every observable the List
//!   Processor, heap controller, and VM backend emit (hits, misses,
//!   splits, merges, compression runs, overflow collections,
//!   lazy-decrement drains, occupancy samples);
//! * **Sinks** — the [`EventSink`] trait, with [`NoopSink`] (statically
//!   dispatched no-op: instrumented code monomorphizes to the
//!   uninstrumented machine code), [`CountingSink`] (per-kind counters),
//!   [`RecordingSink`] (counters plus histograms, snapshottable to
//!   deterministic JSON), and [`FnSink`] (stream every event to a
//!   closure).
//!
//! Instrumented components take a `S: EventSink` type parameter
//! defaulting to [`NoopSink`], so existing call sites pay nothing —
//! neither at the call site (no code change) nor at run time (the no-op
//! sink compiles away).
//!
//! Snapshots serialize through [`MetricsSnapshot::to_json`], a
//! hand-rolled, dependency-free writer with a fixed key order, so two
//! runs that record the same events byte-compare equal — the property
//! the parallel sweep engine's determinism check relies on.

use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// A monotonic event counter.
///
/// A transparent `u64` with increment/add; exists to make counter fields
/// self-describing and to centralize saturating arithmetic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Fold another counter in (for cross-cell aggregation).
    pub fn merge(&mut self, other: Counter) {
        self.add(other.0);
    }
}

/// Number of buckets in a [`Histogram`]: one per power of two of a
/// `u64`, plus a zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `k ≥ 1` holds values in
/// `[2^(k-1), 2^k)`. Recording is a branch-free bit-scan plus an
/// increment — cheap enough for per-operation occupancy sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the bucket containing the `q`-quantile sample.
    ///
    /// `q` is clamped to `[0, 1]` and mapped to the
    /// `min(count, ⌊q·count⌋+1)`-th sample in sorted order — the
    /// *exclusive* nearest rank, which resolves an exact boundary to
    /// the sample *above* it. (The previous inclusive rank `⌈q·count⌉`
    /// resolved boundaries downward, so a histogram with half its
    /// samples at 0 reported `quantile(0.5) == 0` no matter how large
    /// the upper half was — the soak trajectory's `eval_p50_cycles: 0`
    /// bug.) The edges stay exact: `quantile(0.0)` is the minimum
    /// sample's bucket bound, `quantile(1.0)` the maximum sample's. An
    /// empty histogram reports 0 for every `q`. Because the answer
    /// depends only on the bucket array and the count, it is invariant
    /// under recording order and under any sequence of
    /// [`Histogram::merge`] calls producing the same sample multiset.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).floor() as u64 + 1).min(self.count);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if k == 0 { 0 } else { 1u64 << (k - 1) };
            }
        }
        self.max
    }

    /// Fold another histogram in (for cross-cell aggregation).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| (if k == 0 { 0 } else { 1u64 << (k - 1) }, n))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// One observable step of the machine's memory-operation stream.
///
/// Emitted by the List Processor (which is also the single chokepoint
/// for heap-controller traffic, so `Heap*` events cover the controller
/// too), the VM backend, and the simulator driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A car/cdr request was satisfied from LPT fields.
    LptHit,
    /// A car/cdr request required a heap split to materialize fields.
    LptMiss,
    /// A reference-count update performed in the LPT (EP–LP bus traffic).
    RefOp,
    /// A reference-count update performed EP-side (split-count mode).
    EpRefOp,
    /// An LPT entry was allocated ("Get").
    EntryAllocated,
    /// An LPT entry's count reached zero and it was freed.
    EntryFreed,
    /// Deferred (lazy) child decrements ran at reallocation time.
    LazyDrain {
        /// Number of child references decremented.
        children: u32,
    },
    /// Pseudo overflow: a compression pass ran.
    PseudoOverflow {
        /// Entries reclaimed by merging structure back to the heap.
        reclaimed: u32,
    },
    /// True overflow: a cycle-breaking mark/sweep ran.
    CycleCollection {
        /// Entries of circular garbage reclaimed.
        reclaimed: u32,
    },
    /// Allocation failed even after compression and cycle breaking; the
    /// machine degrades to overflow mode.
    TrueOverflow,
    /// The heap controller split an object into the LPT.
    HeapSplit,
    /// The heap controller merged LPT structure back into an object.
    HeapMerge,
    /// The heap controller read an s-expression in.
    HeapReadIn,
    /// A heap object was queued for reclamation.
    HeapFree,
    /// An occupancy sample at an operation boundary.
    Occupancy {
        /// Live LPT entries at the sample point.
        live: u32,
    },
    /// A transient heap fault surfaced from the controller and was
    /// caught by a recovery layer (the bounded-retry wrapper or the
    /// compression path).
    HeapFaultDetected,
    /// A detected transient fault was recovered from (a retry
    /// succeeded, or compression abandoned the merge and carried on).
    HeapFaultRecovered,
    /// The LP entered §4.3.2.3 overflow mode: the table is full beyond
    /// recovery and new structure degrades to heap-direct operation.
    OverflowModeEntered,
    /// The LP left overflow mode: occupancy recovered and allocation
    /// re-entered the table.
    OverflowModeExited,
}

impl Event {
    /// Stable snake_case name of the event kind (payload-independent);
    /// doubles as the JSON key in snapshots.
    pub fn kind_name(self) -> &'static str {
        match self {
            Event::LptHit => "lpt_hit",
            Event::LptMiss => "lpt_miss",
            Event::RefOp => "refop",
            Event::EpRefOp => "ep_refop",
            Event::EntryAllocated => "entry_allocated",
            Event::EntryFreed => "entry_freed",
            Event::LazyDrain { .. } => "lazy_drain",
            Event::PseudoOverflow { .. } => "pseudo_overflow",
            Event::CycleCollection { .. } => "cycle_collection",
            Event::TrueOverflow => "true_overflow",
            Event::HeapSplit => "heap_split",
            Event::HeapMerge => "heap_merge",
            Event::HeapReadIn => "heap_read_in",
            Event::HeapFree => "heap_free",
            Event::Occupancy { .. } => "occupancy",
            Event::HeapFaultDetected => "heap_fault_detected",
            Event::HeapFaultRecovered => "heap_fault_recovered",
            Event::OverflowModeEntered => "overflow_mode_entered",
            Event::OverflowModeExited => "overflow_mode_exited",
        }
    }
}

// ---------------------------------------------------------------------
// Operation boundaries
// ---------------------------------------------------------------------

/// The LP request a sink is currently observing (attribution key for
/// span/profile sinks). Announced by [`EventSink::op_begin`] before the
/// List Processor starts serving the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrimKind {
    /// `readlist` (§4.3.2.2.1).
    ReadList,
    /// `car` (§4.3.2.2.2).
    Car,
    /// `cdr` (§4.3.2.2.2).
    Cdr,
    /// `cons` (§4.3.2.2.4).
    Cons,
    /// `rplaca` (§4.3.2.2.3).
    Rplaca,
    /// `rplacd` (§4.3.2.2.3).
    Rplacd,
}

impl PrimKind {
    /// All kinds, in the stable attribution-table order.
    pub const ALL: [PrimKind; 6] = [
        PrimKind::ReadList,
        PrimKind::Car,
        PrimKind::Cdr,
        PrimKind::Cons,
        PrimKind::Rplaca,
        PrimKind::Rplacd,
    ];

    /// Stable lowercase name (doubles as the JSON/folded-stack key).
    pub fn name(self) -> &'static str {
        match self {
            PrimKind::ReadList => "readlist",
            PrimKind::Car => "car",
            PrimKind::Cdr => "cdr",
            PrimKind::Cons => "cons",
            PrimKind::Rplaca => "rplaca",
            PrimKind::Rplacd => "rplacd",
        }
    }

    /// Position in [`PrimKind::ALL`] (dense attribution-array index).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The resolved timing class of a completed LP request — the
/// Figure 4.10–4.13 decomposition the request followed. Announced by
/// [`EventSink::op_end`] once the List Processor knows how the request
/// was served (a `car` only becomes an `AccessHit` or `AccessMiss`
/// after the field lookup).
///
/// Mirrors `small_core::timing::TimedOp`; it lives here so sinks can
/// hear about operations without depending on the core crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Figure 4.10: list input; the EP idles for the heap I/O.
    ReadList,
    /// Figure 4.11: car/cdr satisfied from LPT fields.
    AccessHit,
    /// Figure 4.11 with splitting: car/cdr that went to the heap.
    AccessMiss,
    /// Figure 4.12: rplaca/rplacd.
    Modify,
    /// Figure 4.13: cons.
    Cons,
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// A pluggable consumer of [`Event`]s.
///
/// Instrumented components are generic over `S: EventSink` with
/// [`NoopSink`] as the default, so the disabled configuration
/// monomorphizes to no instrumentation at all.
///
/// Beyond the raw event stream, the List Processor brackets every timed
/// request with [`op_begin`](EventSink::op_begin) /
/// [`op_end`](EventSink::op_end) so span/profile sinks can attribute
/// events to primitives and advance a virtual clock. Both hooks default
/// to no-ops: counting sinks ignore them at zero cost.
pub trait EventSink {
    /// Consume one event.
    fn record(&mut self, event: Event);

    /// The LP started serving a timed request. Events recorded until
    /// the matching [`op_end`](EventSink::op_end) belong to it.
    #[inline(always)]
    fn op_begin(&mut self, _prim: PrimKind) {}

    /// The LP finished the request announced by the last
    /// [`op_begin`](EventSink::op_begin), resolved to a timing class.
    /// Called on the error path too (a request that dies in a true
    /// overflow still consumed its timing-class cycles).
    #[inline(always)]
    fn op_end(&mut self, _class: OpClass) {}

    /// A wall-clock-only accelerator (the LPT inline field cache)
    /// probed its fast path. Strictly host-side telemetry: probes are
    /// **not** [`Event`]s, advance no virtual clock, and appear in no
    /// deterministic counter — the modeled machine behaves identically
    /// whether the accelerator is on or off, so default sinks ignore
    /// them at zero cost.
    #[inline(always)]
    fn cache_probe(&mut self, _hit: bool) {}
}

/// The default sink: discards every event. With this sink the compiler
/// erases all instrumentation (there is no branch, no store, no call).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NoopSink;

impl EventSink for NoopSink {
    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// Per-kind event counts, the common core of the recording sinks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EventCounts {
    /// car/cdr requests satisfied by LPT fields.
    pub lpt_hits: Counter,
    /// car/cdr requests that required a heap split.
    pub lpt_misses: Counter,
    /// LPT-side reference-count updates.
    pub refops: Counter,
    /// EP-side reference-count updates (split mode).
    pub ep_refops: Counter,
    /// LPT entries allocated.
    pub entries_allocated: Counter,
    /// LPT entries freed.
    pub entries_freed: Counter,
    /// Lazy-decrement drains performed.
    pub lazy_drains: Counter,
    /// Child references decremented by lazy drains.
    pub lazy_children: Counter,
    /// Pseudo-overflow compression passes.
    pub pseudo_overflows: Counter,
    /// Entries reclaimed by compression.
    pub compressed: Counter,
    /// True-overflow cycle collections.
    pub cycle_collections: Counter,
    /// Entries reclaimed by cycle breaking.
    pub cycles_reclaimed: Counter,
    /// Unrecoverable overflows observed.
    pub true_overflows: Counter,
    /// Heap splits.
    pub heap_splits: Counter,
    /// Heap merges.
    pub heap_merges: Counter,
    /// Heap read-ins.
    pub heap_read_ins: Counter,
    /// Heap frees queued.
    pub heap_frees: Counter,
    /// Occupancy samples taken.
    pub occupancy_samples: Counter,
    /// Transient heap faults caught by a recovery layer.
    pub heap_faults_detected: Counter,
    /// Transient heap faults recovered from.
    pub heap_faults_recovered: Counter,
    /// Times the LP entered overflow (heap-direct) mode.
    pub overflow_mode_entries: Counter,
    /// Times the LP re-entered table mode after overflow.
    pub overflow_mode_exits: Counter,
}

impl EventCounts {
    /// Fold one event into the counters (the body of
    /// [`CountingSink::record`], public so composite sinks can reuse
    /// it).
    pub fn record(&mut self, event: Event) {
        match event {
            Event::LptHit => self.lpt_hits.inc(),
            Event::LptMiss => self.lpt_misses.inc(),
            Event::RefOp => self.refops.inc(),
            Event::EpRefOp => self.ep_refops.inc(),
            Event::EntryAllocated => self.entries_allocated.inc(),
            Event::EntryFreed => self.entries_freed.inc(),
            Event::LazyDrain { children } => {
                self.lazy_drains.inc();
                self.lazy_children.add(u64::from(children));
            }
            Event::PseudoOverflow { reclaimed } => {
                self.pseudo_overflows.inc();
                self.compressed.add(u64::from(reclaimed));
            }
            Event::CycleCollection { reclaimed } => {
                self.cycle_collections.inc();
                self.cycles_reclaimed.add(u64::from(reclaimed));
            }
            Event::TrueOverflow => self.true_overflows.inc(),
            Event::HeapSplit => self.heap_splits.inc(),
            Event::HeapMerge => self.heap_merges.inc(),
            Event::HeapReadIn => self.heap_read_ins.inc(),
            Event::HeapFree => self.heap_frees.inc(),
            Event::Occupancy { .. } => self.occupancy_samples.inc(),
            Event::HeapFaultDetected => self.heap_faults_detected.inc(),
            Event::HeapFaultRecovered => self.heap_faults_recovered.inc(),
            Event::OverflowModeEntered => self.overflow_mode_entries.inc(),
            Event::OverflowModeExited => self.overflow_mode_exits.inc(),
        }
    }

    /// Fold another set of counts in.
    pub fn merge(&mut self, other: &EventCounts) {
        self.lpt_hits.merge(other.lpt_hits);
        self.lpt_misses.merge(other.lpt_misses);
        self.refops.merge(other.refops);
        self.ep_refops.merge(other.ep_refops);
        self.entries_allocated.merge(other.entries_allocated);
        self.entries_freed.merge(other.entries_freed);
        self.lazy_drains.merge(other.lazy_drains);
        self.lazy_children.merge(other.lazy_children);
        self.pseudo_overflows.merge(other.pseudo_overflows);
        self.compressed.merge(other.compressed);
        self.cycle_collections.merge(other.cycle_collections);
        self.cycles_reclaimed.merge(other.cycles_reclaimed);
        self.true_overflows.merge(other.true_overflows);
        self.heap_splits.merge(other.heap_splits);
        self.heap_merges.merge(other.heap_merges);
        self.heap_read_ins.merge(other.heap_read_ins);
        self.heap_frees.merge(other.heap_frees);
        self.occupancy_samples.merge(other.occupancy_samples);
        self.heap_faults_detected.merge(other.heap_faults_detected);
        self.heap_faults_recovered
            .merge(other.heap_faults_recovered);
        self.overflow_mode_entries
            .merge(other.overflow_mode_entries);
        self.overflow_mode_exits.merge(other.overflow_mode_exits);
    }

    /// Field names matching [`EventCounts::to_words`] order, for
    /// labeling flattened word vectors.
    pub const WORD_NAMES: [&'static str; 22] = [
        "lpt_hits",
        "lpt_misses",
        "refops",
        "ep_refops",
        "entries_allocated",
        "entries_freed",
        "lazy_drains",
        "lazy_children",
        "pseudo_overflows",
        "compressed",
        "cycle_collections",
        "cycles_reclaimed",
        "true_overflows",
        "heap_splits",
        "heap_merges",
        "heap_read_ins",
        "heap_frees",
        "occupancy_samples",
        "heap_faults_detected",
        "heap_faults_recovered",
        "overflow_mode_entries",
        "overflow_mode_exits",
    ];

    /// Flatten into the canonical fixed-order word vector (the same
    /// field order as the JSON serialization). The inverse is
    /// [`EventCounts::from_words`]; persistence layers use the pair to
    /// carry per-session sink state through suspend/resume images.
    pub fn to_words(&self) -> [u64; 22] {
        [
            self.lpt_hits.get(),
            self.lpt_misses.get(),
            self.refops.get(),
            self.ep_refops.get(),
            self.entries_allocated.get(),
            self.entries_freed.get(),
            self.lazy_drains.get(),
            self.lazy_children.get(),
            self.pseudo_overflows.get(),
            self.compressed.get(),
            self.cycle_collections.get(),
            self.cycles_reclaimed.get(),
            self.true_overflows.get(),
            self.heap_splits.get(),
            self.heap_merges.get(),
            self.heap_read_ins.get(),
            self.heap_frees.get(),
            self.occupancy_samples.get(),
            self.heap_faults_detected.get(),
            self.heap_faults_recovered.get(),
            self.overflow_mode_entries.get(),
            self.overflow_mode_exits.get(),
        ]
    }

    /// Rebuild from a word vector produced by [`EventCounts::to_words`].
    pub fn from_words(w: &[u64; 22]) -> EventCounts {
        let mut c = EventCounts::default();
        c.lpt_hits.add(w[0]);
        c.lpt_misses.add(w[1]);
        c.refops.add(w[2]);
        c.ep_refops.add(w[3]);
        c.entries_allocated.add(w[4]);
        c.entries_freed.add(w[5]);
        c.lazy_drains.add(w[6]);
        c.lazy_children.add(w[7]);
        c.pseudo_overflows.add(w[8]);
        c.compressed.add(w[9]);
        c.cycle_collections.add(w[10]);
        c.cycles_reclaimed.add(w[11]);
        c.true_overflows.add(w[12]);
        c.heap_splits.add(w[13]);
        c.heap_merges.add(w[14]);
        c.heap_read_ins.add(w[15]);
        c.heap_frees.add(w[16]);
        c.occupancy_samples.add(w[17]);
        c.heap_faults_detected.add(w[18]);
        c.heap_faults_recovered.add(w[19]);
        c.overflow_mode_entries.add(w[20]);
        c.overflow_mode_exits.add(w[21]);
        c
    }

    fn json_fields(&self, out: &mut JsonObject) {
        out.field_u64("lpt_hits", self.lpt_hits.get());
        out.field_u64("lpt_misses", self.lpt_misses.get());
        out.field_u64("refops", self.refops.get());
        out.field_u64("ep_refops", self.ep_refops.get());
        out.field_u64("entries_allocated", self.entries_allocated.get());
        out.field_u64("entries_freed", self.entries_freed.get());
        out.field_u64("lazy_drains", self.lazy_drains.get());
        out.field_u64("lazy_children", self.lazy_children.get());
        out.field_u64("pseudo_overflows", self.pseudo_overflows.get());
        out.field_u64("compressed", self.compressed.get());
        out.field_u64("cycle_collections", self.cycle_collections.get());
        out.field_u64("cycles_reclaimed", self.cycles_reclaimed.get());
        out.field_u64("true_overflows", self.true_overflows.get());
        out.field_u64("heap_splits", self.heap_splits.get());
        out.field_u64("heap_merges", self.heap_merges.get());
        out.field_u64("heap_read_ins", self.heap_read_ins.get());
        out.field_u64("heap_frees", self.heap_frees.get());
        out.field_u64("occupancy_samples", self.occupancy_samples.get());
        out.field_u64("heap_faults_detected", self.heap_faults_detected.get());
        out.field_u64("heap_faults_recovered", self.heap_faults_recovered.get());
        out.field_u64("overflow_mode_entries", self.overflow_mode_entries.get());
        out.field_u64("overflow_mode_exits", self.overflow_mode_exits.get());
    }
}

/// A sink that counts events by kind and nothing else.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// The per-kind counts.
    pub counts: EventCounts,
}

impl EventSink for CountingSink {
    #[inline]
    fn record(&mut self, event: Event) {
        self.counts.record(event);
    }
}

/// A sink that counts events *and* keeps distribution histograms:
/// occupancy over time, compression-run and cycle-collection reclaim
/// sizes, and lazy-drain sizes.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RecordingSink {
    /// The per-kind counts.
    pub counts: EventCounts,
    /// Distribution of live-entry occupancy samples.
    pub occupancy: Histogram,
    /// Distribution of entries reclaimed per compression pass.
    pub compress_reclaim: Histogram,
    /// Distribution of entries reclaimed per cycle collection.
    pub cycle_reclaim: Histogram,
    /// Distribution of children decremented per lazy drain.
    pub drain_size: Histogram,
}

impl EventSink for RecordingSink {
    #[inline]
    fn record(&mut self, event: Event) {
        self.counts.record(event);
        match event {
            Event::Occupancy { live } => self.occupancy.record(u64::from(live)),
            Event::PseudoOverflow { reclaimed } => {
                self.compress_reclaim.record(u64::from(reclaimed))
            }
            Event::CycleCollection { reclaimed } => self.cycle_reclaim.record(u64::from(reclaimed)),
            Event::LazyDrain { children } => self.drain_size.record(u64::from(children)),
            _ => {}
        }
    }
}

impl RecordingSink {
    /// Freeze the current state into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counts: self.counts,
            occupancy: self.occupancy.clone(),
            compress_reclaim: self.compress_reclaim.clone(),
            cycle_reclaim: self.cycle_reclaim.clone(),
            drain_size: self.drain_size.clone(),
        }
    }
}

/// A sink that streams every event to a closure (log lines, channels,
/// cross-thread aggregation — anything).
pub struct FnSink<F: FnMut(Event)>(pub F);

impl<F: FnMut(Event)> EventSink for FnSink<F> {
    #[inline]
    fn record(&mut self, event: Event) {
        (self.0)(event);
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    #[inline]
    fn record(&mut self, event: Event) {
        (**self).record(event);
    }

    #[inline]
    fn op_begin(&mut self, prim: PrimKind) {
        (**self).op_begin(prim);
    }

    #[inline]
    fn op_end(&mut self, class: OpClass) {
        (**self).op_end(class);
    }

    #[inline]
    fn cache_probe(&mut self, hit: bool) {
        (**self).cache_probe(hit);
    }
}

/// Tee: a pair of sinks both observe the same stream (e.g. a
/// [`RecordingSink`] for counters next to a span profiler).
impl<A: EventSink, B: EventSink> EventSink for (A, B) {
    #[inline]
    fn record(&mut self, event: Event) {
        self.0.record(event);
        self.1.record(event);
    }

    #[inline]
    fn op_begin(&mut self, prim: PrimKind) {
        self.0.op_begin(prim);
        self.1.op_begin(prim);
    }

    #[inline]
    fn op_end(&mut self, class: OpClass) {
        self.0.op_end(class);
        self.1.op_end(class);
    }

    #[inline]
    fn cache_probe(&mut self, hit: bool) {
        self.0.cache_probe(hit);
        self.1.cache_probe(hit);
    }
}

// ---------------------------------------------------------------------
// Snapshots and JSON
// ---------------------------------------------------------------------

/// A frozen, serializable view of a [`RecordingSink`].
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-kind event counts.
    pub counts: EventCounts,
    /// Occupancy distribution.
    pub occupancy: Histogram,
    /// Compression reclaim-size distribution.
    pub compress_reclaim: Histogram,
    /// Cycle-collection reclaim-size distribution.
    pub cycle_reclaim: Histogram,
    /// Lazy-drain size distribution.
    pub drain_size: Histogram,
}

impl MetricsSnapshot {
    /// Fold another snapshot in (cross-cell aggregation).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.counts.merge(&other.counts);
        self.occupancy.merge(&other.occupancy);
        self.compress_reclaim.merge(&other.compress_reclaim);
        self.cycle_reclaim.merge(&other.cycle_reclaim);
        self.drain_size.merge(&other.drain_size);
    }

    /// Serialize to JSON with a fixed key order. Two snapshots of the
    /// same event stream byte-compare equal.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        self.counts.json_fields(&mut o);
        o.field_raw("occupancy", &histogram_json(&self.occupancy));
        o.field_raw("compress_reclaim", &histogram_json(&self.compress_reclaim));
        o.field_raw("cycle_reclaim", &histogram_json(&self.cycle_reclaim));
        o.field_raw("drain_size", &histogram_json(&self.drain_size));
        o.finish()
    }
}

/// Serialize one histogram with the fixed key order every snapshot
/// consumer relies on: `count`, `sum`, `min`, `max`, `p50`, `p99`,
/// `buckets` (non-empty buckets as `[lower_bound, count]` pairs).
pub fn histogram_json(h: &Histogram) -> String {
    let mut o = JsonObject::new();
    o.field_u64("count", h.count());
    o.field_u64("sum", h.sum());
    o.field_u64("min", h.min());
    o.field_u64("max", h.max());
    o.field_u64("p50", h.quantile(0.5));
    o.field_u64("p99", h.quantile(0.99));
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .into_iter()
        .map(|(lo, n)| format!("[{lo},{n}]"))
        .collect();
    o.field_raw("buckets", &format!("[{}]", buckets.join(",")));
    o.finish()
}

/// Incremental writer for a JSON object with caller-controlled key
/// order. Dependency-free and deterministic: field order is insertion
/// order, numbers are formatted with fixed rules (six decimal places
/// for floats), strings are escaped per RFC 8259.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        let _ = write!(self.buf, "\"{}\":", escape_json(k));
    }

    /// Add an unsigned integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field, formatted to six decimal places (stable
    /// across platforms and runs).
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v:.6}");
        self
    }

    /// Add a string field (escaped).
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape_json(v));
        self
    }

    /// Add a boolean field.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a pre-serialized JSON value verbatim (nested objects/arrays).
    pub fn field_raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.push('}');
        buf
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 8, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.quantile(0.0), 0);
        assert!(h.quantile(0.5) <= 8);
        assert!(h.quantile(1.0) >= 512);
        let mut other = Histogram::new();
        other.record(7);
        h.merge(&other);
        assert_eq!(h.count(), 9);
    }

    #[test]
    fn median_of_half_zero_half_large_is_the_upper_half() {
        // The `eval_p50_cycles: 0` soak bug: with exactly half the
        // samples at 0, the inclusive rank ⌈0.5·count⌉ landed on the
        // last zero, reporting p50 = 0 against a p99 of 64. The
        // exclusive rank ⌊0.5·count⌋+1 resolves the boundary upward.
        let mut h = Histogram::new();
        for _ in 0..8 {
            h.record(0);
        }
        for _ in 0..8 {
            h.record(64);
        }
        assert_eq!(h.quantile(0.5), 64, "p50 must be the upper half");
        assert_eq!(h.quantile(0.99), 64);
        // Just below the boundary still resolves to the zeros; the
        // exact endpoints stay pinned to min and max.
        assert_eq!(h.quantile(0.49), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 64);
        // A strict zero-majority median is still legitimately 0.
        h.record(0);
        assert_eq!(h.quantile(0.5), 0, "9 zeros of 17 put the median at 0");
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let mut s = CountingSink::default();
        s.record(Event::LptHit);
        s.record(Event::LptHit);
        s.record(Event::LptMiss);
        s.record(Event::PseudoOverflow { reclaimed: 5 });
        s.record(Event::LazyDrain { children: 2 });
        assert_eq!(s.counts.lpt_hits.get(), 2);
        assert_eq!(s.counts.lpt_misses.get(), 1);
        assert_eq!(s.counts.pseudo_overflows.get(), 1);
        assert_eq!(s.counts.compressed.get(), 5);
        assert_eq!(s.counts.lazy_drains.get(), 1);
        assert_eq!(s.counts.lazy_children.get(), 2);
    }

    #[test]
    fn recording_sink_snapshot_json_is_deterministic() {
        let run = || {
            let mut s = RecordingSink::default();
            for k in 0..50u32 {
                s.record(Event::Occupancy { live: k % 7 });
                s.record(Event::RefOp);
            }
            s.record(Event::CycleCollection { reclaimed: 3 });
            s.snapshot().to_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.contains("\"refops\":50"));
        assert!(a.contains("\"cycle_collections\":1"));
    }

    #[test]
    fn fn_sink_streams_events() {
        let mut seen = Vec::new();
        {
            let mut s = FnSink(|e: Event| seen.push(e.kind_name()));
            s.record(Event::HeapSplit);
            s.record(Event::TrueOverflow);
        }
        assert_eq!(seen, vec!["heap_split", "true_overflow"]);
    }

    #[test]
    fn json_object_escapes_and_orders() {
        let mut o = JsonObject::new();
        o.field_str("name", "a\"b\\c");
        o.field_u64("n", 3);
        o.field_f64("r", 0.5);
        o.field_bool("ok", true);
        assert_eq!(
            o.finish(),
            r#"{"name":"a\"b\\c","n":3,"r":0.500000,"ok":true}"#
        );
    }

    #[test]
    fn empty_histogram_edges() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0, "empty min reports 0, not u64::MAX");
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "empty quantile({q})");
        }
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn single_sample_histogram() {
        for v in [0u64, 1, 7, 1 << 20] {
            let mut h = Histogram::new();
            h.record(v);
            assert_eq!(h.count(), 1);
            assert_eq!(h.sum(), v);
            assert_eq!((h.min(), h.max()), (v, v));
            assert_eq!(h.mean(), v as f64);
            // Every quantile of a one-sample distribution — p0 and p100
            // included — lands in the sample's bucket: the reported bound
            // is the bucket's lower bound, which is ≤ v and within a
            // factor of two of it.
            for q in [0.0, 0.5, 1.0] {
                let b = h.quantile(q);
                assert!(b <= v, "quantile({q}) = {b} above sample {v}");
                assert!(v < 2 * b.max(1), "quantile({q}) = {b} not v's bucket");
            }
            assert_eq!(h.nonzero_buckets().len(), 1);
        }
    }

    #[test]
    fn saturating_bucket_percentile_edges() {
        // u64::MAX lands in the last bucket (lower bound 2^63) and both
        // sum and merge saturate instead of wrapping.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.5), 1u64 << 63);
        assert_eq!(h.quantile(1.0), 1u64 << 63);
        assert_eq!(h.nonzero_buckets(), vec![(1u64 << 63, 2)]);
        // Quantiles outside [0,1] clamp rather than panic or scan past
        // the last bucket.
        assert_eq!(h.quantile(2.0), 1u64 << 63);
        assert_eq!(h.quantile(-1.0), 1u64 << 63, "q<0 clamps to q=0");
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.sum(), u64::MAX, "merge saturates too");
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_endpoints_track_min_and_max_buckets() {
        let mut h = Histogram::new();
        for v in [3u64, 900, 17, 64] {
            h.record(v);
        }
        // p0 is the minimum sample's bucket lower bound, p100 the
        // maximum's — neither collapses to 0.
        assert_eq!(h.quantile(0.0), 2, "3 lives in [2,4)");
        assert_eq!(h.quantile(1.0), 512, "900 lives in [512,1024)");
        // Single-bucket data: every quantile is that bucket's bound.
        let mut one = Histogram::new();
        one.record(5);
        one.record(6);
        one.record(7);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 4, "all samples in [4,8)");
        }
    }

    #[test]
    fn merge_and_quantile_are_order_independent() {
        let samples: [u64; 8] = [0, 1, 5, 5, 12, 80, 80, 4000];
        let mut forward = Histogram::new();
        let mut reverse = Histogram::new();
        for &v in &samples {
            forward.record(v);
        }
        for &v in samples.iter().rev() {
            reverse.record(v);
        }
        assert_eq!(forward, reverse, "recording order is invisible");
        // Split the same multiset across shards in two different ways;
        // merging in any order must agree bucket-for-bucket, so every
        // quantile agrees too.
        let mut split_a = Histogram::new();
        let mut split_b = Histogram::new();
        for (k, &v) in samples.iter().enumerate() {
            if k % 2 == 0 {
                split_a.record(v);
            } else {
                split_b.record(v);
            }
        }
        let mut ab = split_a.clone();
        ab.merge(&split_b);
        let mut ba = split_b.clone();
        ba.merge(&split_a);
        assert_eq!(ab, ba);
        assert_eq!(ab, forward);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(ab.quantile(q), forward.quantile(q));
            assert_eq!(ba.quantile(q), forward.quantile(q));
        }
        // Merging an empty histogram is the identity, edges included.
        let mut with_empty = forward.clone();
        with_empty.merge(&Histogram::new());
        assert_eq!(with_empty, forward);
        assert_eq!(with_empty.min(), 0);
        assert_eq!(with_empty.quantile(0.0), forward.quantile(0.0));
    }

    // A minimal JSON reader for the round-trip test: parses objects into
    // insertion-ordered key/value lists so key *order* is assertable.
    #[derive(Debug, PartialEq)]
    enum Json {
        Num(String),
        Str(String),
        Bool(bool),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    fn parse_json(s: &str) -> Json {
        let b = s.as_bytes();
        let (v, rest) = parse_value(b, 0);
        assert_eq!(rest, b.len(), "trailing garbage after JSON value");
        v
    }

    fn parse_value(b: &[u8], mut i: usize) -> (Json, usize) {
        match b[i] {
            b'{' => {
                let mut fields = Vec::new();
                i += 1;
                if b[i] == b'}' {
                    return (Json::Obj(fields), i + 1);
                }
                loop {
                    let (k, j) = parse_string(b, i);
                    assert_eq!(b[j], b':');
                    let (v, j) = parse_value(b, j + 1);
                    fields.push((k, v));
                    match b[j] {
                        b',' => i = j + 1,
                        b'}' => return (Json::Obj(fields), j + 1),
                        c => panic!("bad object separator {:?}", c as char),
                    }
                }
            }
            b'[' => {
                let mut items = Vec::new();
                i += 1;
                if b[i] == b']' {
                    return (Json::Arr(items), i + 1);
                }
                loop {
                    let (v, j) = parse_value(b, i);
                    items.push(v);
                    match b[j] {
                        b',' => i = j + 1,
                        b']' => return (Json::Arr(items), j + 1),
                        c => panic!("bad array separator {:?}", c as char),
                    }
                }
            }
            b'"' => {
                let (s, j) = parse_string(b, i);
                (Json::Str(s), j)
            }
            b't' => (Json::Bool(true), i + 4),
            b'f' => (Json::Bool(false), i + 5),
            _ => {
                let start = i;
                while i < b.len() && matches!(b[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    i += 1;
                }
                assert!(i > start, "expected a JSON value at byte {start}");
                (
                    Json::Num(std::str::from_utf8(&b[start..i]).unwrap().to_string()),
                    i,
                )
            }
        }
    }

    fn parse_string(b: &[u8], i: usize) -> (String, usize) {
        assert_eq!(b[i], b'"');
        let mut out = String::new();
        let mut j = i + 1;
        while b[j] != b'"' {
            if b[j] == b'\\' {
                j += 1;
                out.push(match b[j] {
                    b'n' => '\n',
                    b'r' => '\r',
                    b't' => '\t',
                    c => c as char,
                });
            } else {
                out.push(b[j] as char);
            }
            j += 1;
        }
        (out, j + 1)
    }

    impl Json {
        fn obj(&self) -> &[(String, Json)] {
            match self {
                Json::Obj(fields) => fields,
                other => panic!("expected object, got {other:?}"),
            }
        }

        fn get(&self, key: &str) -> &Json {
            self.obj()
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing key {key}"))
        }

        fn num_u64(&self) -> u64 {
            match self {
                Json::Num(s) => s.parse().unwrap(),
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    #[test]
    fn snapshot_json_reparses_with_stable_keys() {
        let mut s = RecordingSink::default();
        for k in 0..20u32 {
            s.record(Event::Occupancy { live: k });
            s.record(Event::LptHit);
        }
        s.record(Event::LptMiss);
        s.record(Event::LazyDrain { children: 2 });
        s.record(Event::PseudoOverflow { reclaimed: 4 });
        let snap = s.snapshot();
        let text = snap.to_json();
        let parsed = parse_json(&text);

        // Key order is the fixed serialization order — the property the
        // sweep engine's byte-compare determinism rests on.
        let keys: Vec<&str> = parsed.obj().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "lpt_hits",
                "lpt_misses",
                "refops",
                "ep_refops",
                "entries_allocated",
                "entries_freed",
                "lazy_drains",
                "lazy_children",
                "pseudo_overflows",
                "compressed",
                "cycle_collections",
                "cycles_reclaimed",
                "true_overflows",
                "heap_splits",
                "heap_merges",
                "heap_read_ins",
                "heap_frees",
                "occupancy_samples",
                "heap_faults_detected",
                "heap_faults_recovered",
                "overflow_mode_entries",
                "overflow_mode_exits",
                "occupancy",
                "compress_reclaim",
                "cycle_reclaim",
                "drain_size",
            ]
        );

        // Values round-trip.
        assert_eq!(parsed.get("lpt_hits").num_u64(), 20);
        assert_eq!(parsed.get("lpt_misses").num_u64(), 1);
        assert_eq!(parsed.get("compressed").num_u64(), 4);
        let occ = parsed.get("occupancy");
        assert_eq!(occ.get("count").num_u64(), snap.occupancy.count());
        assert_eq!(occ.get("sum").num_u64(), snap.occupancy.sum());
        assert_eq!(occ.get("max").num_u64(), snap.occupancy.max());
        let hist_keys: Vec<&str> = occ.obj().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            hist_keys,
            ["count", "sum", "min", "max", "p50", "p99", "buckets"]
        );

        // Reserializing the same state reproduces the bytes exactly.
        assert_eq!(s.snapshot().to_json(), text);
    }

    #[test]
    fn empty_snapshot_json_reparses() {
        let snap = RecordingSink::default().snapshot();
        let parsed = parse_json(&snap.to_json());
        assert_eq!(parsed.get("lpt_hits").num_u64(), 0);
        let occ = parsed.get("occupancy");
        assert_eq!(occ.get("count").num_u64(), 0);
        assert_eq!(occ.get("min").num_u64(), 0, "empty min serializes as 0");
        assert_eq!(occ.get("buckets"), &Json::Arr(vec![]));
    }

    #[test]
    fn tee_sink_feeds_both_halves() {
        let mut tee = (CountingSink::default(), CountingSink::default());
        tee.record(Event::LptHit);
        tee.op_begin(PrimKind::Car);
        tee.op_end(OpClass::AccessHit);
        assert_eq!(tee.0.counts.lpt_hits.get(), 1);
        assert_eq!(tee.1.counts.lpt_hits.get(), 1);
    }

    #[test]
    fn prim_kind_names_and_indices_are_dense() {
        for (k, p) in PrimKind::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), k);
        }
        let names: Vec<&str> = PrimKind::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["readlist", "car", "cdr", "cons", "rplaca", "rplacd"]
        );
    }

    #[test]
    fn snapshot_merge_adds() {
        let mut a = RecordingSink::default();
        a.record(Event::LptHit);
        a.record(Event::Occupancy { live: 4 });
        let mut b = RecordingSink::default();
        b.record(Event::LptHit);
        b.record(Event::Occupancy { live: 9 });
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counts.lpt_hits.get(), 2);
        assert_eq!(snap.occupancy.count(), 2);
        assert_eq!(snap.occupancy.max(), 9);
    }
}
