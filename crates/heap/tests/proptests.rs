//! Property-based tests across all four list representations and the
//! heap controller: every representation must round-trip arbitrary
//! s-expressions, and split/merge must be mutually inverse.

use proptest::prelude::*;
use small_heap::cdr_coded::CdrCodedHeap;
use small_heap::controller::{HeapController, TwoPointerController};
use small_heap::gc::{CopyingHeap, MarkSweep};
use small_heap::linked_vector::LinkedVectorHeap;
use small_heap::structure_coded::StructureCodedHeap;
use small_heap::{TwoPointerHeap, Word};
use small_sexpr::{parse, print, Interner};

fn arb_list_src() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        prop::sample::select(vec!["a", "b", "c", "d"]).prop_map(str::to_owned),
        (0i64..100).prop_map(|i| i.to_string()),
        Just("nil".to_owned()),
    ];
    leaf.prop_recursive(4, 48, 5, |inner| {
        prop::collection::vec(inner, 1..5).prop_map(|items| format!("({})", items.join(" ")))
    })
    // Ensure top level is a list (heaps intern atoms trivially).
    .prop_map(|s| {
        if s.starts_with('(') {
            s
        } else {
            format!("({s})")
        }
    })
}

proptest! {
    #[test]
    fn two_pointer_roundtrip(src in arb_list_src()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let mut h = TwoPointerHeap::with_capacity(4096);
        let w = h.intern(&e).unwrap();
        prop_assert_eq!(print(&h.extract(w), &i), print(&e, &i));
    }

    #[test]
    fn cdr_coded_roundtrip(src in arb_list_src()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let mut h = CdrCodedHeap::with_capacity(4096);
        let w = h.intern(&e).unwrap();
        prop_assert_eq!(print(&h.extract(w), &i), print(&e, &i));
    }

    #[test]
    fn linked_vector_roundtrip(src in arb_list_src()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let mut h = LinkedVectorHeap::with_capacity(4096);
        let w = h.intern(&e).unwrap();
        prop_assert_eq!(print(&h.extract(w), &i), print(&e, &i));
    }

    #[test]
    fn structure_coded_roundtrip(src in arb_list_src()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let mut h = StructureCodedHeap::new();
        let w = h.intern(&e);
        prop_assert_eq!(print(&h.extract(w), &i), print(&e, &i));
    }

    #[test]
    fn cdr_coding_never_uses_more_cells_than_two_pointer(src in arb_list_src()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let mut tp = TwoPointerHeap::with_capacity(4096);
        tp.intern(&e).unwrap();
        let mut cc = CdrCodedHeap::with_capacity(4096);
        cc.intern(&e).unwrap();
        // Each two-pointer cell is 2 words; each cdr-coded cell ~1 word.
        prop_assert!(cc.used() <= 2 * tp.live() + 1);
    }

    #[test]
    fn controller_split_merge_inverse(src in arb_list_src()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let mut c = TwoPointerController::new(8192, 64);
        let w = c.read_in(&e).unwrap();
        if w.is_ptr() {
            let s = c.split(w.addr()).unwrap();
            let m = c.merge(s.car, s.cdr).unwrap();
            prop_assert_eq!(print(&c.extract(Word::ptr(m)), &i), print(&e, &i));
        }
    }

    #[test]
    fn structure_coded_split_merge_inverse(src in arb_list_src()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let mut h = StructureCodedHeap::new();
        let w = h.intern(&e);
        if w.is_ptr() {
            let (car, cdr) = h.split(w.addr());
            let m = h.merge(car, cdr);
            prop_assert_eq!(print(&h.extract(Word::ptr(m)), &i), print(&e, &i));
        }
    }

    #[test]
    fn mark_sweep_preserves_roots_frees_garbage(
        keep_src in arb_list_src(),
        drop_src in arb_list_src(),
    ) {
        let mut i = Interner::new();
        let keep = parse(&keep_src, &mut i).unwrap();
        let drop = parse(&drop_src, &mut i).unwrap();
        let mut h = TwoPointerHeap::with_capacity(8192);
        let kw = h.intern(&keep).unwrap();
        let dw = h.intern(&drop).unwrap();
        let drop_cells = if dw.is_ptr() { h.live() } else { 0 };
        let mut gc = MarkSweep::new();
        gc.collect(&mut h, &[kw]);
        prop_assert_eq!(print(&h.extract(kw), &i), print(&keep, &i));
        if dw.is_ptr() {
            prop_assert!(h.live() < drop_cells);
        }
    }

    #[test]
    fn copying_preserves_roots(src in arb_list_src()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let mut h = CopyingHeap::with_capacity(8192);
        let mut roots = vec![h.intern(&e).unwrap()];
        h.collect(&mut roots);
        prop_assert_eq!(print(&h.extract(roots[0]), &i), print(&e, &i));
    }
}
