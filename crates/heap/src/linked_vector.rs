//! The linked-vector list representation (Figure 2.7, after Li & Hudak).
//!
//! Lists are stored as vectors of tagged elements. Each element carries a
//! 2-bit tag distinguishing the four cases the thesis enumerates
//! (§2.3.3.1): *cdr is nil*, *cdr starts at the next cell*, *this cell is
//! an indirection*, and *this cell is unused*. Indirection cells let a
//! vector point into another vector (or at `nil`), which is how
//! destructive updates and list extension are represented without
//! recopying; unused cells make deletion possible without immediate
//! compaction.

use crate::controller::HeapError;
use crate::word::{HeapAddr, Tag, Word};

/// 2-bit element tag of the linked-vector scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum VTag {
    /// Default cell: holds a list element; cdr is the next cell.
    Default = 0,
    /// Default cell that ends the list: holds an element; cdr is nil.
    DefaultNil = 1,
    /// Indirection: the word is a pointer to an element in another vector
    /// (or nil); this cell holds no element itself.
    Indirect = 2,
    /// Unused cell: skipped during traversal.
    Unused = 3,
}

/// Result of chasing indirections from an address.
enum Resolved {
    /// A data cell at this address.
    Data(HeapAddr),
    /// The chain ended at a non-pointer value (nil or a dotted atom).
    Value(Word),
}

/// A linked-vector heap: one global arena in which vectors are contiguous
/// runs of tagged elements.
pub struct LinkedVectorHeap {
    words: Vec<Word>,
    tags: Vec<VTag>,
    top: usize,
}

impl LinkedVectorHeap {
    /// Create a heap with capacity for `cells` vector elements.
    pub fn with_capacity(cells: usize) -> Self {
        LinkedVectorHeap {
            words: vec![Word::UNUSED; cells],
            tags: vec![VTag::Unused; cells],
            top: 0,
        }
    }

    /// Elements allocated so far.
    pub fn used(&self) -> usize {
        self.top
    }

    fn bump(&mut self, n: usize) -> Option<usize> {
        if self.top + n > self.words.len() {
            return None;
        }
        let at = self.top;
        self.top += n;
        Some(at)
    }

    /// Skip unused cells and chase indirections. The chain ends either at
    /// a data cell ([`Resolved::Data`]) or at a non-pointer value stored
    /// in an indirection cell — nil or a dotted atom ([`Resolved::Value`]).
    ///
    /// Out-of-bounds addresses and indirection cycles surface as
    /// [`HeapError::BadAddress`] rather than panicking.
    fn resolve(&self, mut addr: HeapAddr) -> Result<Resolved, HeapError> {
        let mut hops = 0usize;
        loop {
            match self.tags.get(addr.index()).ok_or(HeapError::BadAddress)? {
                VTag::Unused => addr = HeapAddr(addr.0 + 1),
                VTag::Indirect => {
                    let w = self.words[addr.index()];
                    if w.is_ptr() {
                        addr = w.addr();
                    } else {
                        return Ok(Resolved::Value(w));
                    }
                }
                VTag::Default | VTag::DefaultNil => return Ok(Resolved::Data(addr)),
            }
            hops += 1;
            if hops > self.tags.len() {
                // Walked more cells than the heap holds: a cycle.
                return Err(HeapError::BadAddress);
            }
        }
    }

    /// Resolve to a data cell; a chain ending at a non-cell value is a
    /// type error ([`HeapError::NotAnObject`]).
    fn data(&self, addr: HeapAddr) -> Result<HeapAddr, HeapError> {
        match self.resolve(addr)? {
            Resolved::Data(a) => Ok(a),
            Resolved::Value(_) => Err(HeapError::NotAnObject),
        }
    }

    /// The car (element) at `addr`.
    pub fn car(&self, addr: HeapAddr) -> Result<Word, HeapError> {
        let a = self.data(addr)?;
        Ok(self.words[a.index()])
    }

    /// The cdr at `addr`: a pointer to the rest of the vector, nil, or a
    /// dotted atom.
    pub fn cdr(&self, addr: HeapAddr) -> Result<Word, HeapError> {
        let a = match self.resolve(addr)? {
            Resolved::Data(a) => a,
            Resolved::Value(w) => return Ok(w),
        };
        match self.tags[a.index()] {
            VTag::Default => Ok(match self.resolve(HeapAddr(a.0 + 1))? {
                Resolved::Data(b) => Word::ptr(b),
                Resolved::Value(w) => w,
            }),
            VTag::DefaultNil => Ok(Word::NIL),
            _ => unreachable!("resolve returns data cells only"),
        }
    }

    /// Replace the element at `addr` in place.
    pub fn rplaca(&mut self, addr: HeapAddr, w: Word) -> Result<(), HeapError> {
        let a = self.data(addr)?;
        self.words[a.index()] = w;
        Ok(())
    }

    /// Replace the cdr at `addr`.
    ///
    /// The cell keeps its element; the *following* cell is rewritten as an
    /// indirection to `w`'s target (allocating a fresh 2-cell vector when
    /// the cell was the last of its run). Reports
    /// [`HeapError::Exhausted`] when that allocation fails.
    pub fn rplacd(&mut self, addr: HeapAddr, w: Word) -> Result<(), HeapError> {
        let a = self.data(addr)?.index();
        match self.tags[a] {
            VTag::Default => {
                if a + 1 >= self.words.len() {
                    return Err(HeapError::BadAddress);
                }
                // Next cell becomes an indirection; anything it chained to
                // is now unreachable from here.
                self.words[a + 1] = w;
                self.tags[a + 1] = VTag::Indirect;
                self.tags[a] = VTag::Default;
                Ok(())
            }
            VTag::DefaultNil => {
                let at = self.bump(2).ok_or(HeapError::Exhausted)?;
                self.words[at] = self.words[a];
                self.tags[at] = VTag::Default;
                self.words[at + 1] = w;
                self.tags[at + 1] = VTag::Indirect;
                // Old cell indirects to the new pair.
                self.words[a] = Word::ptr(HeapAddr(at as u32));
                self.tags[a] = VTag::Indirect;
                Ok(())
            }
            _ => unreachable!(),
        }
    }

    /// Cons an element onto an existing chain: a fresh 2-cell vector
    /// `[element, indirection→cdr]` (1 cell when cdr is nil).
    pub fn cons(&mut self, car: Word, cdr: Word) -> Option<HeapAddr> {
        if cdr.is_nil() {
            let at = self.bump(1)?;
            self.words[at] = car;
            self.tags[at] = VTag::DefaultNil;
            return Some(HeapAddr(at as u32));
        }
        let at = self.bump(2)?;
        self.words[at] = car;
        self.tags[at] = VTag::Default;
        self.words[at + 1] = cdr;
        self.tags[at + 1] = VTag::Indirect;
        Some(HeapAddr(at as u32))
    }

    /// Intern an s-expression; proper lists become contiguous vectors.
    pub fn intern(&mut self, expr: &small_sexpr::SExpr) -> Option<Word> {
        use small_sexpr::{Atom, SExpr};
        match expr {
            SExpr::Nil => Some(Word::NIL),
            SExpr::Atom(Atom::Int(i)) => Some(Word::int(*i)),
            SExpr::Atom(Atom::Sym(s)) => Some(Word::sym(s.0)),
            SExpr::Cons(_) => {
                let mut elems = Vec::new();
                let mut cur = expr.clone();
                let dotted = loop {
                    match cur {
                        SExpr::Cons(c) => {
                            elems.push(c.0.clone());
                            cur = c.1.clone();
                        }
                        SExpr::Nil => break None,
                        atom => break Some(atom),
                    }
                };
                let words: Vec<Word> = elems
                    .iter()
                    .map(|e| self.intern(e))
                    .collect::<Option<_>>()?;
                let tail = match &dotted {
                    // A dotted tail cannot be expressed as a vector run;
                    // it is stored behind a trailing indirection. True
                    // dotted *atoms* are rare (Clark: cdrs rarely point at
                    // atoms) so this path stays cold.
                    Some(t) => Some(self.intern(t)?),
                    None => None,
                };
                let extra = usize::from(tail.is_some());
                let at = self.bump(words.len() + extra)?;
                for (i, w) in words.iter().enumerate() {
                    self.words[at + i] = *w;
                    self.tags[at + i] = VTag::Default;
                }
                match tail {
                    None => self.tags[at + words.len() - 1] = VTag::DefaultNil,
                    Some(tw) => {
                        self.words[at + words.len()] = tw;
                        self.tags[at + words.len()] = VTag::Indirect;
                    }
                }
                Some(Word::ptr(HeapAddr(at as u32)))
            }
        }
    }

    /// Reconstruct an s-expression from a value word.
    pub fn extract(&self, w: Word) -> small_sexpr::SExpr {
        use small_sexpr::SExpr;
        match w.tag() {
            Tag::Nil => SExpr::Nil,
            Tag::Int => SExpr::int(w.as_int()),
            Tag::Sym => SExpr::sym(small_sexpr::Symbol(w.as_sym())),
            Tag::Ptr => {
                // Words produced by this heap always resolve; a failure
                // here means the caller handed in a foreign address.
                match self.resolve(w.addr()).expect("extract of bad address") {
                    Resolved::Value(v) => self.extract(v),
                    Resolved::Data(a) => SExpr::cons(
                        self.extract(self.words[a.index()]),
                        self.extract(self.cdr(a).expect("extract of unresolvable cdr")),
                    ),
                }
            }
            t => panic!("extract of tag {t:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::{parse, print, Interner};

    fn setup(src: &str) -> (Interner, LinkedVectorHeap, Word, String) {
        let mut i = Interner::new();
        let e = parse(src, &mut i).unwrap();
        let mut h = LinkedVectorHeap::with_capacity(256);
        let w = h.intern(&e).unwrap();
        let printed = print(&e, &i);
        (i, h, w, printed)
    }

    #[test]
    fn intern_extract_roundtrips() {
        for src in ["(a b c (d e) f g)", "(a (b (c)))", "(nil a nil)", "(x . y)"] {
            let (i, h, w, printed) = setup(src);
            assert_eq!(print(&h.extract(w), &i), printed, "{src}");
        }
    }

    #[test]
    fn linear_list_is_one_vector() {
        let (_i, h, _w, _) = setup("(a b c d)");
        assert_eq!(h.used(), 4);
    }

    #[test]
    fn cdr_traversal() {
        let (_i, h, w, _) = setup("(1 2 3)");
        let a = w.addr();
        assert_eq!(h.car(a).unwrap().as_int(), 1);
        let b = h.cdr(a).unwrap().addr();
        assert_eq!(h.car(b).unwrap().as_int(), 2);
        let c = h.cdr(b).unwrap().addr();
        assert_eq!(h.car(c).unwrap().as_int(), 3);
        assert!(h.cdr(c).unwrap().is_nil());
    }

    #[test]
    fn rplacd_mid_vector_uses_indirection() {
        let (mut i, mut h, w, _) = setup("(1 2 3 4)");
        let other = h.intern(&parse("(9 9)", &mut i).unwrap()).unwrap();
        h.rplacd(w.addr(), other).unwrap();
        assert_eq!(print(&h.extract(w), &i), "(1 9 9)");
    }

    #[test]
    fn rplacd_at_end_extends() {
        let (mut i, mut h, w, _) = setup("(1)");
        let other = h.intern(&parse("(2)", &mut i).unwrap()).unwrap();
        h.rplacd(w.addr(), other).unwrap();
        assert_eq!(print(&h.extract(w), &i), "(1 2)");
    }

    #[test]
    fn rplaca_in_place() {
        let (i, mut h, w, _) = setup("(1 2)");
        let used = h.used();
        h.rplaca(w.addr(), Word::int(7)).unwrap();
        assert_eq!(h.used(), used);
        assert_eq!(print(&h.extract(w), &i), "(7 2)");
    }

    #[test]
    fn cons_prepends() {
        let (i, mut h, w, _) = setup("(2 3)");
        let a = h.cons(Word::int(1), w).unwrap();
        assert_eq!(print(&h.extract(Word::ptr(a)), &i), "(1 2 3)");
    }

    #[test]
    fn exhaustion() {
        let mut i = Interner::new();
        let mut h = LinkedVectorHeap::with_capacity(2);
        assert!(h.intern(&parse("(1 2 3)", &mut i).unwrap()).is_none());
    }

    #[test]
    fn bad_addresses_are_typed_errors_not_panics() {
        let (_i, mut h, w, _) = setup("(1 2)");
        let oob = HeapAddr(999);
        assert_eq!(h.car(oob), Err(HeapError::BadAddress));
        assert_eq!(h.cdr(oob), Err(HeapError::BadAddress));
        assert_eq!(h.rplaca(oob, Word::int(0)), Err(HeapError::BadAddress));
        assert_eq!(h.rplacd(oob, Word::int(0)), Err(HeapError::BadAddress));
        // A trailing run of Unused cells walks off the end: typed error.
        let last = HeapAddr((h.used()) as u32);
        assert_eq!(h.car(last), Err(HeapError::BadAddress));
        // car of a value chain (indirection to an atom) is a type error.
        h.rplacd(w.addr(), Word::int(7)).unwrap();
        let dotted_tail = h.cdr(w.addr()).unwrap();
        assert!(!dotted_tail.is_ptr());
        assert_eq!(h.car(w.addr()).unwrap().as_int(), 1);
    }
}
