//! MIT-Lisp-machine style cdr-coded list representation (Figure 2.8).
//!
//! Each cell is a full-width car word plus a 2-bit *cdr code*:
//!
//! * [`CdrCode::Next`] — the cdr is the cell at the next address,
//! * [`CdrCode::Nil`] — the cdr is `nil` (end of a vector run),
//! * [`CdrCode::Normal`] — the cdr *pointer* is stored in the car word of
//!   the next cell, which is tagged [`CdrCode::Error`]; the pair together
//!   behaves like one two-pointer cell,
//! * [`CdrCode::Error`] — the second half of a `Normal` pair.
//!
//! Linear lists are laid out as contiguous `Next…Next Nil` runs, giving
//! the space efficiency and prefetchable addressing of a vector-coded
//! representation. Destructive `rplacd` on a `Next`/`Nil` cell cannot be
//! done in place; following the MIT scheme the cell is rewritten as an
//! **invisible pointer** to a freshly allocated `Normal`/`Error` pair
//! (§2.3.3.1), which accessors chase transparently.

use crate::controller::HeapError;
use crate::word::{HeapAddr, Tag, Word};

/// The 2-bit cdr code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CdrCode {
    /// Cdr is the next cell.
    Next = 0,
    /// Cdr is nil.
    Nil = 1,
    /// Cdr pointer is in the next cell (which is `Error`).
    Normal = 2,
    /// Second word of a `Normal` pair.
    Error = 3,
}

/// A cdr-coded heap: parallel arrays of car words and cdr codes with a
/// bump allocator (compacting reclamation is left to a copying collector;
/// the SMALL machine itself reclaims via the LPT instead, §5.3.2).
pub struct CdrCodedHeap {
    cars: Vec<Word>,
    codes: Vec<CdrCode>,
    /// Next free slot (bump pointer).
    top: usize,
}

impl CdrCodedHeap {
    /// Create a heap with room for `cells` cdr-coded cells.
    pub fn with_capacity(cells: usize) -> Self {
        CdrCodedHeap {
            cars: vec![Word::UNUSED; cells],
            codes: vec![CdrCode::Nil; cells],
            top: 0,
        }
    }

    /// Cells allocated so far.
    pub fn used(&self) -> usize {
        self.top
    }

    /// Total capacity in cells.
    pub fn capacity(&self) -> usize {
        self.cars.len()
    }

    fn bump(&mut self, n: usize) -> Option<usize> {
        if self.top + n > self.cars.len() {
            return None;
        }
        let at = self.top;
        self.top += n;
        Some(at)
    }

    /// Chase invisible pointers to the cell that actually holds data.
    ///
    /// Out-of-bounds addresses and forwarding cycles surface as
    /// [`HeapError::BadAddress`] rather than panicking, so corrupted
    /// or injected-fault addresses degrade through typed errors.
    fn resolve(&self, mut addr: HeapAddr) -> Result<HeapAddr, HeapError> {
        let mut hops = 0usize;
        loop {
            let w = self.cars.get(addr.index()).ok_or(HeapError::BadAddress)?;
            if w.tag() != Tag::Invisible {
                return Ok(addr);
            }
            addr = w.addr();
            hops += 1;
            if hops > self.cars.len() {
                // Forwarding chain longer than the heap: a cycle.
                return Err(HeapError::BadAddress);
            }
        }
    }

    /// The car of the cell at `addr`.
    pub fn car(&self, addr: HeapAddr) -> Result<Word, HeapError> {
        let a = self.resolve(addr)?;
        Ok(self.cars[a.index()])
    }

    /// The cdr of the cell at `addr`, interpreted per its cdr code.
    ///
    /// Addressing the second word of a `Normal` pair (a `CdrCode::Error`
    /// cell) is not a list operation; it reports [`HeapError::BadAddress`].
    pub fn cdr(&self, addr: HeapAddr) -> Result<Word, HeapError> {
        let a = self.resolve(addr)?.index();
        match self.codes[a] {
            CdrCode::Next if a + 1 < self.cars.len() => Ok(Word::ptr(HeapAddr((a + 1) as u32))),
            CdrCode::Next => Err(HeapError::BadAddress),
            CdrCode::Nil => Ok(Word::NIL),
            CdrCode::Normal => self.cars.get(a + 1).copied().ok_or(HeapError::BadAddress),
            CdrCode::Error => Err(HeapError::BadAddress),
        }
    }

    /// Replace the car (`rplaca`): always possible in place.
    pub fn rplaca(&mut self, addr: HeapAddr, w: Word) -> Result<(), HeapError> {
        let a = self.resolve(addr)?;
        self.cars[a.index()] = w;
        Ok(())
    }

    /// Replace the cdr (`rplacd`).
    ///
    /// For a `Normal` cell this is an in-place write of the second word.
    /// For `Next`/`Nil` cells a fresh `Normal`/`Error` pair is allocated,
    /// the old cell becomes an invisible pointer to it, and subsequent
    /// accesses are forwarded. Reports [`HeapError::Exhausted`] if the
    /// pair allocation failed and [`HeapError::BadAddress`] for an
    /// `Error`-cell or unresolvable operand.
    pub fn rplacd(&mut self, addr: HeapAddr, w: Word) -> Result<(), HeapError> {
        let a = self.resolve(addr)?.index();
        match self.codes[a] {
            CdrCode::Normal => {
                if a + 1 >= self.cars.len() {
                    return Err(HeapError::BadAddress);
                }
                self.cars[a + 1] = w;
                Ok(())
            }
            CdrCode::Next | CdrCode::Nil => {
                let at = self.bump(2).ok_or(HeapError::Exhausted)?;
                self.cars[at] = self.cars[a];
                self.codes[at] = CdrCode::Normal;
                self.cars[at + 1] = w;
                self.codes[at + 1] = CdrCode::Error;
                self.cars[a] = Word::invisible(HeapAddr(at as u32));
                Ok(())
            }
            CdrCode::Error => Err(HeapError::BadAddress),
        }
    }

    /// Cons: allocate a `Normal`/`Error` pair (or a single `Nil` cell when
    /// the cdr is nil — the linearizing special case that keeps freshly
    /// consed lists compact, cf. Clark's linearization findings §3.2.1).
    pub fn cons(&mut self, car: Word, cdr: Word) -> Option<HeapAddr> {
        if cdr.is_nil() {
            let at = self.bump(1)?;
            self.cars[at] = car;
            self.codes[at] = CdrCode::Nil;
            Some(HeapAddr(at as u32))
        } else {
            let at = self.bump(2)?;
            self.cars[at] = car;
            self.codes[at] = CdrCode::Normal;
            self.cars[at + 1] = cdr;
            self.codes[at + 1] = CdrCode::Error;
            Some(HeapAddr(at as u32))
        }
    }

    /// Read a whole s-expression in, laying each proper-list level out as
    /// a contiguous cdr-coded run. Returns the value word.
    pub fn intern(&mut self, expr: &small_sexpr::SExpr) -> Option<Word> {
        use small_sexpr::{Atom, SExpr};
        match expr {
            SExpr::Nil => Some(Word::NIL),
            SExpr::Atom(Atom::Int(i)) => Some(Word::int(*i)),
            SExpr::Atom(Atom::Sym(s)) => Some(Word::sym(s.0)),
            SExpr::Cons(_) => {
                // Collect the top-level elements and any dotted tail.
                let mut elems = Vec::new();
                let mut cur = expr.clone();
                let tail = loop {
                    match cur {
                        SExpr::Cons(c) => {
                            elems.push(c.0.clone());
                            cur = c.1.clone();
                        }
                        SExpr::Nil => break None,
                        atom => break Some(atom),
                    }
                };
                // Intern elements first (their runs live elsewhere).
                let words: Vec<Word> = elems
                    .iter()
                    .map(|e| self.intern(e))
                    .collect::<Option<_>>()?;
                let tail_word = match &tail {
                    Some(t) => Some(self.intern(t)?),
                    None => None,
                };
                let extra = usize::from(tail_word.is_some());
                let at = self.bump(words.len() + extra)?;
                for (i, w) in words.iter().enumerate() {
                    self.cars[at + i] = *w;
                    self.codes[at + i] = CdrCode::Next;
                }
                match tail_word {
                    None => self.codes[at + words.len() - 1] = CdrCode::Nil,
                    Some(tw) => {
                        self.codes[at + words.len() - 1] = CdrCode::Normal;
                        self.cars[at + words.len()] = tw;
                        self.codes[at + words.len()] = CdrCode::Error;
                    }
                }
                Some(Word::ptr(HeapAddr(at as u32)))
            }
        }
    }

    /// Reconstruct the s-expression for a value word.
    pub fn extract(&self, w: Word) -> small_sexpr::SExpr {
        use small_sexpr::SExpr;
        match w.tag() {
            Tag::Nil => SExpr::Nil,
            Tag::Int => SExpr::int(w.as_int()),
            Tag::Sym => SExpr::sym(small_sexpr::Symbol(w.as_sym())),
            Tag::Ptr => {
                let a = w.addr();
                // Words produced by this heap always resolve; a failure
                // here means the caller handed in a foreign address.
                let car = self.car(a).expect("extract of unresolvable car");
                let cdr = self.cdr(a).expect("extract of unresolvable cdr");
                SExpr::cons(self.extract(car), self.extract(cdr))
            }
            Tag::Invisible => {
                let w = self
                    .cars
                    .get(w.addr().index())
                    .copied()
                    .expect("extract of out-of-bounds forward");
                self.extract(w)
            }
            t => panic!("extract of tag {t:?}"),
        }
    }

    /// Space used, in memory *words*, counting each cdr code as 1/32 of a
    /// word (codes pack 16-to-a-32-bit-word in hardware). Used by the
    /// representation-comparison bench.
    pub fn words_used(&self) -> f64 {
        self.top as f64 * (1.0 + 2.0 / 64.0)
    }
}

/// A [`crate::controller::HeapController`] over the cdr-coded store —
/// the third representation behind the generic LP. Splitting a
/// cdr-coded object is cheap (§4.3.3.2: the car is the element word and
/// the cdr is simply the next cell of the run); merging allocates a
/// `Normal`/`Error` pair. The store is bump-allocated, so `free_object`
/// only counts reclaimable cells — compaction would be a copying
/// collector's job, which the SMALL machine replaces with LPT
/// reclamation (§5.3.2); suitable for benches and bounded runs.
pub struct CdrCodedController {
    heap: CdrCodedHeap,
    stats: crate::controller::ControllerStats,
}

impl CdrCodedController {
    /// A controller over a heap of `cells` cdr-coded cells.
    pub fn new(cells: usize) -> Self {
        CdrCodedController {
            heap: CdrCodedHeap::with_capacity(cells),
            stats: crate::controller::ControllerStats::default(),
        }
    }

    /// The backing store.
    pub fn heap(&self) -> &CdrCodedHeap {
        &self.heap
    }
}

impl crate::controller::HeapController for CdrCodedController {
    fn read_in(&mut self, expr: &small_sexpr::SExpr) -> Result<Word, crate::controller::HeapError> {
        self.stats.read_ins += 1;
        self.heap
            .intern(expr)
            .ok_or(crate::controller::HeapError::Exhausted)
    }

    fn split(
        &mut self,
        addr: HeapAddr,
    ) -> Result<crate::controller::SplitResult, crate::controller::HeapError> {
        self.stats.splits += 1;
        let car = self.heap.car(addr)?;
        let cdr = self.heap.cdr(addr)?;
        // The consumed head cell of the run is not compacted away (bump
        // store); count it as logically freed.
        self.stats.cells_freed += 1;
        Ok(crate::controller::SplitResult { car, cdr })
    }

    fn peek(
        &self,
        addr: HeapAddr,
    ) -> Result<crate::controller::SplitResult, crate::controller::HeapError> {
        // Cdr-coded car/cdr are naturally non-consuming.
        Ok(crate::controller::SplitResult {
            car: self.heap.car(addr)?,
            cdr: self.heap.cdr(addr)?,
        })
    }

    fn merge(&mut self, car: Word, cdr: Word) -> Result<HeapAddr, crate::controller::HeapError> {
        self.stats.merges += 1;
        self.heap
            .cons(car, cdr)
            .ok_or(crate::controller::HeapError::Exhausted)
    }

    fn free_object(&mut self, _addr: HeapAddr) {
        // Logical free only (see type-level docs).
        self.stats.frees_queued += 1;
    }

    fn extract(&self, w: Word) -> small_sexpr::SExpr {
        self.heap.extract(w)
    }

    fn stats(&self) -> crate::controller::ControllerStats {
        self.stats
    }
}

impl crate::persist::PersistableController for CdrCodedController {
    const KIND: &'static str = "cdr-coded";

    fn export_image(&self) -> crate::persist::ControllerImage {
        crate::persist::ControllerImage {
            kind: Self::KIND,
            sections: vec![
                ("cars", self.heap.cars.iter().map(|w| w.bits()).collect()),
                ("codes", self.heap.codes.iter().map(|c| *c as u64).collect()),
                ("misc", vec![self.heap.top as u64]),
                ("ctrl", crate::persist::stats_to_words(&self.stats)),
            ],
        }
    }

    fn import_image(
        image: &crate::persist::ControllerImage,
    ) -> Result<Self, crate::persist::ImageError> {
        use crate::persist::ImageError;
        if image.kind != Self::KIND {
            return Err(ImageError::WrongKind);
        }
        let cars: Vec<Word> = image
            .section("cars")?
            .iter()
            .map(|&b| Word::from_bits(b))
            .collect();
        let codes = image
            .section("codes")?
            .iter()
            .map(|&b| match b {
                0 => Ok(CdrCode::Next),
                1 => Ok(CdrCode::Nil),
                2 => Ok(CdrCode::Normal),
                3 => Ok(CdrCode::Error),
                _ => Err(ImageError::Malformed),
            })
            .collect::<Result<Vec<CdrCode>, _>>()?;
        let misc = image.section("misc")?;
        if codes.len() != cars.len() || misc.len() != 1 {
            return Err(ImageError::Malformed);
        }
        let top = usize::try_from(misc[0]).map_err(|_| ImageError::Malformed)?;
        if top > cars.len() {
            return Err(ImageError::Malformed);
        }
        Ok(CdrCodedController {
            heap: CdrCodedHeap { cars, codes, top },
            stats: crate::persist::stats_from_words(image.section("ctrl")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::{parse, print, Interner};

    fn roundtrip(src: &str) {
        let mut i = Interner::new();
        let e = parse(src, &mut i).unwrap();
        let mut h = CdrCodedHeap::with_capacity(256);
        let w = h.intern(&e).unwrap();
        assert_eq!(print(&h.extract(w), &i), print(&e, &i), "{src}");
    }

    #[test]
    fn intern_extract_roundtrips() {
        roundtrip("(a b c (d e) f g)");
        roundtrip("(a (b (c (d e f) g)))");
        roundtrip("(a . b)");
        roundtrip("(a b . c)");
        roundtrip("nil");
        roundtrip("(nil nil)");
    }

    #[test]
    fn linear_list_is_compact() {
        let mut i = Interner::new();
        let e = parse("(a b c d e f g h)", &mut i).unwrap();
        let mut h = CdrCodedHeap::with_capacity(64);
        h.intern(&e).unwrap();
        // 8 elements → exactly 8 cells (two-pointer needs 8 cells = 16 words).
        assert_eq!(h.used(), 8);
    }

    #[test]
    fn cdr_walk_follows_codes() {
        let mut i = Interner::new();
        let e = parse("(1 2 3)", &mut i).unwrap();
        let mut h = CdrCodedHeap::with_capacity(64);
        let w = h.intern(&e).unwrap();
        let a = w.addr();
        assert_eq!(h.car(a).unwrap().as_int(), 1);
        let b = h.cdr(a).unwrap().addr();
        assert_eq!(h.car(b).unwrap().as_int(), 2);
        let c = h.cdr(b).unwrap().addr();
        assert_eq!(h.car(c).unwrap().as_int(), 3);
        assert!(h.cdr(c).unwrap().is_nil());
    }

    #[test]
    fn rplaca_in_place() {
        let mut i = Interner::new();
        let e = parse("(1 2)", &mut i).unwrap();
        let mut h = CdrCodedHeap::with_capacity(64);
        let w = h.intern(&e).unwrap();
        let used = h.used();
        h.rplaca(w.addr(), Word::int(99)).unwrap();
        assert_eq!(h.used(), used, "rplaca must not allocate");
        assert_eq!(h.car(w.addr()).unwrap().as_int(), 99);
    }

    #[test]
    fn rplacd_on_compact_cell_forwards_invisibly() {
        let mut i = Interner::new();
        let e = parse("(1 2 3)", &mut i).unwrap();
        let mut h = CdrCodedHeap::with_capacity(64);
        let w = h.intern(&e).unwrap();
        let a = w.addr();
        // (rplacd x '(9)) → list becomes (1 9)
        let nine = h.intern(&parse("(9)", &mut i).unwrap()).unwrap();
        h.rplacd(a, nine).unwrap();
        let got = h.extract(w);
        assert_eq!(print(&got, &i), "(1 9)");
        // Old cell now forwards; car still accessible through it.
        assert_eq!(h.car(a).unwrap().as_int(), 1);
    }

    #[test]
    fn cons_onto_existing_list() {
        let mut i = Interner::new();
        let mut h = CdrCodedHeap::with_capacity(64);
        let tail = h.intern(&parse("(2 3)", &mut i).unwrap()).unwrap();
        let a = h.cons(Word::int(1), tail).unwrap();
        assert_eq!(print(&h.extract(Word::ptr(a)), &i), "(1 2 3)");
    }

    #[test]
    fn allocation_failure_reported() {
        let mut i = Interner::new();
        let mut h = CdrCodedHeap::with_capacity(2);
        assert!(h.intern(&parse("(1 2 3)", &mut i).unwrap()).is_none());
    }

    #[test]
    fn bad_addresses_are_typed_errors_not_panics() {
        let mut i = Interner::new();
        let mut h = CdrCodedHeap::with_capacity(8);
        let w = h.intern(&parse("(1 . 2)", &mut i).unwrap()).unwrap();
        // Out of bounds.
        let oob = HeapAddr(999);
        assert_eq!(h.car(oob), Err(HeapError::BadAddress));
        assert_eq!(h.cdr(oob), Err(HeapError::BadAddress));
        assert_eq!(h.rplaca(oob, Word::int(0)), Err(HeapError::BadAddress));
        assert_eq!(h.rplacd(oob, Word::int(0)), Err(HeapError::BadAddress));
        // The Error half of the Normal pair backing (1 . 2).
        let err_cell = HeapAddr(w.addr().0 + 1);
        assert_eq!(h.cdr(err_cell), Err(HeapError::BadAddress));
        assert_eq!(h.rplacd(err_cell, Word::int(0)), Err(HeapError::BadAddress));
        // The good cell still works.
        assert_eq!(h.car(w.addr()).unwrap().as_int(), 1);
    }

    #[test]
    fn controller_split_of_bad_address_is_typed() {
        use crate::controller::HeapController;
        let mut c = CdrCodedController::new(8);
        assert_eq!(c.split(HeapAddr(77)), Err(HeapError::BadAddress));
    }
}
