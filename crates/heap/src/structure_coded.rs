//! Structure-coded list representations (§2.3.3.2, Figures 2.9–2.10).
//!
//! A structure-coded scheme tags each symbol with its *position in the
//! list structure* so elements can be addressed independently, without
//! walking pointer chains:
//!
//! * **Minsky / BLAST node numbers** — map the list to a binary tree
//!   (Figure 2.9) and compress the `(l, k)` level/position pair into
//!   `N = 2^l + k`; a list is then a set of `(node number, symbol)`
//!   tuples stored in an *exception table* with associative lookup.
//! * **CDAR codes** — the string of car (`0`) / cdr (`1`) steps that
//!   reach the symbol, read right-to-left (Figure 2.10); this is exactly
//!   the node number's path bits reversed.
//! * **EPS** (explicit parenthesis storage) — each symbol is tagged with
//!   the number of left parens before it, right parens before or
//!   immediately after it, and its ordinal position (Figure 2.10).
//!
//! [`StructureCodedHeap`] implements the BLAST exception-table object
//! store with the **split** and **merge** operations the SMALL heap
//! controller needs (§4.3.3.2): split partitions a table by subtree and
//! renumbers; merge allocates a two-entry table of forwarding pointers.

use crate::word::{HeapAddr, Tag, Word};
use small_sexpr::{Atom, SExpr};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Node numbers and CDAR codes
// ---------------------------------------------------------------------

/// A Minsky/BLAST node number `N = 2^l + k`. The root is 1; the car child
/// of `N` is `2N`, the cdr child `2N + 1`.
pub type NodeNum = u64;

/// The car child of a node.
#[inline]
pub fn car_child(n: NodeNum) -> NodeNum {
    n * 2
}

/// The cdr child of a node.
#[inline]
pub fn cdr_child(n: NodeNum) -> NodeNum {
    n * 2 + 1
}

/// The level `l` of a node (root = 0). Equals the CDAR code length.
#[inline]
pub fn level(n: NodeNum) -> u32 {
    63 - n.leading_zeros()
}

/// Render the CDAR code of a node as the thesis prints it (Figure 2.10):
/// the sequence of car (`0`) / cdr (`1`) operations applied, *rightmost
/// first*, left-padded with `0` to `width` characters.
pub fn cdar_code(n: NodeNum, width: usize) -> String {
    let l = level(n) as usize;
    let path = n - (1u64 << l);
    // Top-down path: bit (l-1-i) of `path` is the i-th step from the root
    // (0 = car, 1 = cdr). Figure 2.10 writes the code with the *first*
    // step from the root rightmost, i.e. the top-down path reversed,
    // left-padded with '0'.
    let mut out = vec![b'0'; width.saturating_sub(l)];
    out.extend((0..l).rev().map(|i| {
        if path >> (l - 1 - i) & 1 == 1 {
            b'1'
        } else {
            b'0'
        }
    }));
    String::from_utf8(out).expect("ascii")
}

// ---------------------------------------------------------------------
// EPS representation
// ---------------------------------------------------------------------

/// One EPS tuple: a symbol tagged with explicit parenthesis counts
/// (Figure 2.10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpsEntry {
    /// Number of left parentheses in the list to the left of the atom.
    pub left: u32,
    /// Number of right parentheses to the left of *and immediately
    /// following* the atom.
    pub right: u32,
    /// 1-based position of the atom in the list.
    pub position: u32,
    /// The atom itself.
    pub atom: Atom,
}

/// Encode a proper list into its EPS tuples.
pub fn eps_encode(expr: &SExpr) -> Vec<EpsEntry> {
    let mut out = Vec::new();
    let mut left = 0u32;
    let mut right = 0u32;
    let mut position = 0u32;
    fn go(e: &SExpr, out: &mut Vec<EpsEntry>, left: &mut u32, right: &mut u32, position: &mut u32) {
        *left += 1; // opening paren of this list
        for item in e.iter() {
            match item {
                SExpr::Atom(a) => {
                    *position += 1;
                    out.push(EpsEntry {
                        left: *left,
                        right: *right,
                        position: *position,
                        atom: *a,
                    });
                }
                SExpr::Cons(_) => go(item, out, left, right, position),
                SExpr::Nil => {
                    // `nil` prints as an atom-like token; EPS has no slot
                    // for it — we skip, as the scheme stores symbols only.
                }
            }
        }
        *right += 1; // closing paren
        if let Some(last) = out.last_mut() {
            // The close paren immediately follows the last emitted atom.
            if last.right < *right {
                last.right = *right;
            }
        }
    }
    go(expr, &mut out, &mut left, &mut right, &mut position);
    out
}

// ---------------------------------------------------------------------
// Exception tables (BLAST-style object store)
// ---------------------------------------------------------------------

/// An entry value in an exception table: a leaf atom/nil, or a forwarding
/// pointer to another table (created by merge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableValue {
    /// A leaf holding a tagged word (nil / int / sym).
    Leaf(Word),
    /// The entire subtree rooted here lives in another table.
    Forward(HeapAddr),
}

/// One list object: a map from node numbers to leaf values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExceptionTable {
    entries: BTreeMap<NodeNum, TableValue>,
}

impl ExceptionTable {
    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no tuples are stored (the object is `nil`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The store of exception-table objects.
#[derive(Default)]
pub struct StructureCodedHeap {
    tables: Vec<Option<ExceptionTable>>,
    free: Vec<HeapAddr>,
    /// Forwarding-pointer dereferences performed (the indirect-access
    /// cost §4.3.3.2 warns about; exposed for benches). A `Cell` so
    /// read-side operations can count without `&mut`.
    pub forward_derefs: std::cell::Cell<u64>,
}

impl StructureCodedHeap {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live tables.
    pub fn live(&self) -> usize {
        self.tables.iter().flatten().count()
    }

    fn alloc_table(&mut self, t: ExceptionTable) -> HeapAddr {
        if let Some(a) = self.free.pop() {
            self.tables[a.index()] = Some(t);
            a
        } else {
            self.tables.push(Some(t));
            HeapAddr((self.tables.len() - 1) as u32)
        }
    }

    /// Free a table.
    pub fn free_table(&mut self, a: HeapAddr) {
        debug_assert!(self.tables[a.index()].is_some(), "double free of {a}");
        self.tables[a.index()] = None;
        self.free.push(a);
    }

    /// Intern an s-expression as one exception table; returns its word
    /// (atoms are immediate).
    pub fn intern(&mut self, expr: &SExpr) -> Word {
        match expr {
            SExpr::Nil => Word::NIL,
            SExpr::Atom(Atom::Int(i)) => Word::int(*i),
            SExpr::Atom(Atom::Sym(s)) => Word::sym(s.0),
            SExpr::Cons(_) => {
                let mut t = ExceptionTable::default();
                fn go(e: &SExpr, num: NodeNum, t: &mut ExceptionTable) {
                    match e {
                        SExpr::Cons(c) => {
                            go(&c.0, car_child(num), t);
                            go(&c.1, cdr_child(num), t);
                        }
                        SExpr::Nil => {
                            t.entries.insert(num, TableValue::Leaf(Word::NIL));
                        }
                        SExpr::Atom(Atom::Int(i)) => {
                            t.entries.insert(num, TableValue::Leaf(Word::int(*i)));
                        }
                        SExpr::Atom(Atom::Sym(s)) => {
                            t.entries.insert(num, TableValue::Leaf(Word::sym(s.0)));
                        }
                    }
                }
                go(expr, 1, &mut t);
                Word::ptr(self.alloc_table(t))
            }
        }
    }

    /// Look up the value at `num` in the object at `a`, chasing
    /// forwarding pointers. Returns:
    ///
    /// * `Some(Ok(word))` — a leaf,
    /// * `Some(Err(()))` — an internal node (subtree exists below),
    /// * `None` — no such node.
    fn lookup(&self, mut a: HeapAddr, mut num: NodeNum) -> Option<Result<Word, ()>> {
        'tables: loop {
            let t = self.tables[a.index()].as_ref().expect("freed table");
            // Exact hit.
            if let Some(v) = t.entries.get(&num).copied() {
                match v {
                    TableValue::Leaf(w) => return Some(Ok(w)),
                    TableValue::Forward(fa) => {
                        self.forward_derefs.set(self.forward_derefs.get() + 1);
                        a = fa;
                        num = 1;
                        continue 'tables;
                    }
                }
            }
            // Deepest stored ancestor, if any, covers `num`.
            let mut anc = num >> 1;
            while anc >= 1 {
                match t.entries.get(&anc).copied() {
                    Some(TableValue::Forward(fa)) => {
                        self.forward_derefs.set(self.forward_derefs.get() + 1);
                        // Replay the path from `anc` down to `num` from
                        // the forwarded table's root.
                        let depth = level(num) - level(anc);
                        let rel = num - (anc << depth);
                        a = fa;
                        num = (1u64 << depth) + rel;
                        continue 'tables;
                    }
                    Some(TableValue::Leaf(_)) => return None, // below a leaf
                    None => {}
                }
                if anc == 1 {
                    break;
                }
                anc >>= 1;
            }
            // No covering entry: `num` is internal iff some stored key
            // lies strictly below it.
            let dn = level(num);
            let has_descendant = t.entries.keys().any(|k| {
                let dk = level(*k);
                dk > dn && (*k >> (dk - dn)) == num
            });
            return if has_descendant { Some(Err(())) } else { None };
        }
    }

    /// `car` of the object at `a`: a leaf word, or a freshly split-out
    /// object pointer. In this store sub-objects are addressed as
    /// (table, node) pairs; [`StructureCodedHeap::split`] materializes the
    /// two halves as independent tables as the SMALL controller requires.
    pub fn car_word(&self, a: HeapAddr) -> Option<Word> {
        // None when internal: the caller must split.
        self.lookup(a, 2)?.ok()
    }

    /// Split the object at `a` into its car and cdr parts (§4.3.3.2):
    /// every tuple is copied into one of two new tables, renumbered one
    /// level up; `a` is freed. Returns the value words for both halves.
    pub fn split(&mut self, a: HeapAddr) -> (Word, Word) {
        let t = self.tables[a.index()].take().expect("freed table");
        self.free.push(a);
        let mut left = ExceptionTable::default();
        let mut right = ExceptionTable::default();
        for (num, v) in t.entries {
            debug_assert!(num >= 2, "root leaf cannot be split");
            let l = level(num);
            let path = num - (1 << l);
            let first_step = path >> (l - 1) & 1;
            let rest = path & !(1u64 << (l - 1));
            let new_num = (1 << (l - 1)) + rest;
            if first_step == 0 {
                left.entries.insert(new_num, v);
            } else {
                right.entries.insert(new_num, v);
            }
        }
        let mk = |heap: &mut Self, t: ExceptionTable| -> Word {
            if t.entries.len() == 1 {
                if let Some((&1, &TableValue::Leaf(w))) = t.entries.iter().next() {
                    return w; // single leaf at the root: an atom
                }
            }
            if let Some((&1, &TableValue::Forward(fa))) = t.entries.iter().next() {
                if t.entries.len() == 1 {
                    return Word::ptr(fa); // collapse trivial forwarding
                }
            }
            Word::ptr(heap.alloc_table(t))
        };
        let lw = mk(self, left);
        let rw = mk(self, right);
        (lw, rw)
    }

    /// Merge two values into a new object (§4.3.3.2): the fast path
    /// allocates a table with just two forwarding (or leaf) entries.
    pub fn merge(&mut self, car: Word, cdr: Word) -> HeapAddr {
        let mut t = ExceptionTable::default();
        let put = |entries: &mut BTreeMap<NodeNum, TableValue>, num: NodeNum, w: Word| {
            if w.tag() == Tag::Ptr {
                entries.insert(num, TableValue::Forward(w.addr()));
            } else {
                entries.insert(num, TableValue::Leaf(w));
            }
        };
        put(&mut t.entries, 2, car);
        put(&mut t.entries, 3, cdr);
        self.alloc_table(t)
    }

    /// Reconstruct the s-expression for a value word.
    pub fn extract(&self, w: Word) -> SExpr {
        match w.tag() {
            Tag::Nil => SExpr::Nil,
            Tag::Int => SExpr::int(w.as_int()),
            Tag::Sym => SExpr::sym(small_sexpr::Symbol(w.as_sym())),
            Tag::Ptr => {
                let a = w.addr();
                self.extract_node(a, 1)
            }
            t => panic!("extract of tag {t:?}"),
        }
    }

    fn extract_node(&self, a: HeapAddr, num: NodeNum) -> SExpr {
        match self.lookup(a, num) {
            Some(Ok(w)) => match w.tag() {
                Tag::Nil => SExpr::Nil,
                Tag::Int => SExpr::int(w.as_int()),
                Tag::Sym => SExpr::sym(small_sexpr::Symbol(w.as_sym())),
                t => panic!("leaf with tag {t:?}"),
            },
            Some(Err(())) => SExpr::cons(
                self.extract_node(a, car_child(num)),
                self.extract_node(a, cdr_child(num)),
            ),
            None => panic!("dangling node {num} in table {a}"),
        }
    }

    /// Free the object at `a` together with every table reachable
    /// through forwarding pointers (a merged object owns its parts).
    pub fn free_object_recursive(&mut self, a: HeapAddr) {
        let Some(t) = self.tables[a.index()].take() else {
            return; // already reclaimed via another path
        };
        self.free.push(a);
        for v in t.entries.values() {
            if let TableValue::Forward(fa) = v {
                self.free_object_recursive(*fa);
            }
        }
    }
}

/// A [`crate::controller::HeapController`] over the structure-coded
/// store: the LP is generic over its backing representation (§4.3.3
/// discusses exactly this trade-off — exception-table split is a table
/// partition, merge a two-entry forwarding table).
pub struct StructureCodedController {
    heap: StructureCodedHeap,
    stats: crate::controller::ControllerStats,
}

impl StructureCodedController {
    /// Create an empty controller.
    pub fn new() -> Self {
        StructureCodedController {
            heap: StructureCodedHeap::new(),
            stats: crate::controller::ControllerStats::default(),
        }
    }

    /// The backing store (for deref-cost inspection).
    pub fn heap(&self) -> &StructureCodedHeap {
        &self.heap
    }
}

impl Default for StructureCodedController {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::controller::HeapController for StructureCodedController {
    fn read_in(&mut self, expr: &SExpr) -> Result<Word, crate::controller::HeapError> {
        self.stats.read_ins += 1;
        Ok(self.heap.intern(expr))
    }

    fn split(
        &mut self,
        addr: HeapAddr,
    ) -> Result<crate::controller::SplitResult, crate::controller::HeapError> {
        if self.heap.tables[addr.index()].is_none() {
            return Err(crate::controller::HeapError::NotAnObject);
        }
        self.stats.splits += 1;
        let (car, cdr) = self.heap.split(addr);
        self.stats.cells_freed += 1;
        Ok(crate::controller::SplitResult { car, cdr })
    }

    fn merge(&mut self, car: Word, cdr: Word) -> Result<HeapAddr, crate::controller::HeapError> {
        self.stats.merges += 1;
        Ok(self.heap.merge(car, cdr))
    }

    fn free_object(&mut self, addr: HeapAddr) {
        self.stats.frees_queued += 1;
        let before = self.heap.live();
        self.heap.free_object_recursive(addr);
        self.stats.cells_freed += (before - self.heap.live()) as u64;
    }

    fn extract(&self, w: Word) -> SExpr {
        self.heap.extract(w)
    }

    fn stats(&self) -> crate::controller::ControllerStats {
        self.stats
    }
}

impl crate::persist::PersistableController for StructureCodedController {
    const KIND: &'static str = "structure-coded";

    fn export_image(&self) -> crate::persist::ControllerImage {
        // Flat table stream: [n_tables] then, per slot, a present flag
        // followed (when present) by the entry count and `(node,
        // variant, payload)` triples. BTreeMap iteration keeps entry
        // order canonical, so equal stores export equal images.
        let mut tables = vec![self.heap.tables.len() as u64];
        for slot in &self.heap.tables {
            match slot {
                None => tables.push(0),
                Some(t) => {
                    tables.push(1);
                    tables.push(t.entries.len() as u64);
                    for (num, v) in &t.entries {
                        tables.push(*num);
                        match v {
                            TableValue::Leaf(w) => {
                                tables.push(0);
                                tables.push(w.bits());
                            }
                            TableValue::Forward(a) => {
                                tables.push(1);
                                tables.push(u64::from(a.0));
                            }
                        }
                    }
                }
            }
        }
        crate::persist::ControllerImage {
            kind: Self::KIND,
            sections: vec![
                ("tables", tables),
                (
                    "free",
                    self.heap.free.iter().map(|a| u64::from(a.0)).collect(),
                ),
                ("misc", vec![self.heap.forward_derefs.get()]),
                ("ctrl", crate::persist::stats_to_words(&self.stats)),
            ],
        }
    }

    fn import_image(
        image: &crate::persist::ControllerImage,
    ) -> Result<Self, crate::persist::ImageError> {
        use crate::persist::ImageError;
        if image.kind != Self::KIND {
            return Err(ImageError::WrongKind);
        }
        let stream = image.section("tables")?;
        let mut at = 0usize;
        let mut next = || -> Result<u64, ImageError> {
            let w = stream.get(at).copied().ok_or(ImageError::Malformed)?;
            at += 1;
            Ok(w)
        };
        let n_tables = usize::try_from(next()?).map_err(|_| ImageError::Malformed)?;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            match next()? {
                0 => tables.push(None),
                1 => {
                    let count = next()?;
                    let mut entries = BTreeMap::new();
                    for _ in 0..count {
                        let num = next()?;
                        let value = match next()? {
                            0 => TableValue::Leaf(Word::from_bits(next()?)),
                            1 => TableValue::Forward(HeapAddr(
                                u32::try_from(next()?).map_err(|_| ImageError::Malformed)?,
                            )),
                            _ => return Err(ImageError::Malformed),
                        };
                        entries.insert(num, value);
                    }
                    tables.push(Some(ExceptionTable { entries }));
                }
                _ => return Err(ImageError::Malformed),
            }
        }
        if at != stream.len() {
            return Err(ImageError::Malformed);
        }
        let free = image
            .section("free")?
            .iter()
            .map(|&w| {
                u32::try_from(w)
                    .map(HeapAddr)
                    .map_err(|_| ImageError::Malformed)
            })
            .collect::<Result<Vec<HeapAddr>, _>>()?;
        let misc = image.section("misc")?;
        if misc.len() != 1 {
            return Err(ImageError::Malformed);
        }
        Ok(StructureCodedController {
            heap: StructureCodedHeap {
                tables,
                free,
                forward_derefs: std::cell::Cell::new(misc[0]),
            },
            stats: crate::persist::stats_from_words(image.section("ctrl")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::{parse, print, Interner};

    #[test]
    fn cdar_codes_match_figure_2_10() {
        // (A B C (D E) F G) — codes from Figure 2.10, width 6.
        // Node numbers: A=2, B=car(cdr)=2*3=6... compute via tree walk.
        let mut i = Interner::new();
        let e = parse("(A B C (D E) F G)", &mut i).unwrap();
        let mut atoms: Vec<(String, NodeNum)> = Vec::new();
        fn walk(e: &SExpr, num: NodeNum, i: &Interner, out: &mut Vec<(String, NodeNum)>) {
            match e {
                SExpr::Cons(c) => {
                    walk(&c.0, car_child(num), i, out);
                    walk(&c.1, cdr_child(num), i, out);
                }
                SExpr::Atom(Atom::Sym(s)) => out.push((i.name(*s).to_owned(), num)),
                _ => {}
            }
        }
        walk(&e, 1, &i, &mut atoms);
        let codes: Vec<(String, String)> = atoms
            .iter()
            .map(|(name, n)| (name.clone(), cdar_code(*n, 6)))
            .collect();
        let expected = [
            ("A", "000000"),
            ("B", "000001"),
            ("C", "000011"),
            ("D", "000111"),
            ("E", "010111"),
            ("F", "001111"),
            ("G", "011111"),
        ];
        for ((name, code), (en, ec)) in codes.iter().zip(expected.iter()) {
            assert_eq!(name, en);
            assert_eq!(code, ec, "CDAR code of {name}");
        }
    }

    #[test]
    fn eps_matches_figure_2_10() {
        let mut i = Interner::new();
        let e = parse("(A B C (D E) F G)", &mut i).unwrap();
        let eps = eps_encode(&e);
        let expected = [
            (1, 0, 1),
            (1, 0, 2),
            (1, 0, 3),
            (2, 0, 4),
            (2, 1, 5),
            (2, 1, 6),
            (2, 2, 7),
        ];
        assert_eq!(eps.len(), expected.len());
        for (got, (l, r, p)) in eps.iter().zip(expected.iter()) {
            assert_eq!((got.left, got.right, got.position), (*l, *r, *p));
        }
    }

    #[test]
    fn intern_extract_roundtrip() {
        let mut i = Interner::new();
        let mut h = StructureCodedHeap::new();
        for src in ["(A B C (D E) F G)", "(((A B) C D) E F G)", "(x)", "(a . b)"] {
            let e = parse(src, &mut i).unwrap();
            let w = h.intern(&e);
            assert_eq!(print(&h.extract(w), &i), print(&e, &i), "{src}");
        }
    }

    #[test]
    fn split_partitions_and_renumbers() {
        let mut i = Interner::new();
        let mut h = StructureCodedHeap::new();
        let e = parse("((A B) C D)", &mut i).unwrap();
        let w = h.intern(&e);
        let (car, cdr) = h.split(w.addr());
        assert_eq!(print(&h.extract(car), &i), "(A B)");
        assert_eq!(print(&h.extract(cdr), &i), "(C D)");
    }

    #[test]
    fn split_yields_atoms_at_leaves() {
        let mut i = Interner::new();
        let mut h = StructureCodedHeap::new();
        let e = parse("(A)", &mut i).unwrap();
        let w = h.intern(&e);
        let (car, cdr) = h.split(w.addr());
        assert_eq!(car.tag(), Tag::Sym);
        assert!(cdr.is_nil());
    }

    #[test]
    fn merge_is_inverse_of_split() {
        let mut i = Interner::new();
        let mut h = StructureCodedHeap::new();
        let e = parse("((A B) (C D))", &mut i).unwrap();
        let w = h.intern(&e);
        let (car, cdr) = h.split(w.addr());
        let merged = h.merge(car, cdr);
        assert_eq!(print(&h.extract(Word::ptr(merged)), &i), "((A B) (C D))");
    }

    #[test]
    fn merge_uses_forwarding_and_access_pays_derefs() {
        let mut i = Interner::new();
        let mut h = StructureCodedHeap::new();
        let a = h.intern(&parse("(A B)", &mut i).unwrap());
        let b = h.intern(&parse("(C)", &mut i).unwrap());
        let m = h.merge(a, b);
        h.forward_derefs.set(0);
        let _ = h.extract(Word::ptr(m));
        assert!(
            h.forward_derefs.get() > 0,
            "merged access should chase forwards"
        );
    }

    #[test]
    fn free_and_reuse_table_slots() {
        let mut i = Interner::new();
        let mut h = StructureCodedHeap::new();
        let a = h.intern(&parse("(A)", &mut i).unwrap());
        h.free_table(a.addr());
        assert_eq!(h.live(), 0);
        let b = h.intern(&parse("(B)", &mut i).unwrap());
        assert_eq!(a.addr(), b.addr());
    }
}
