//! Deterministic fault injection for heap controllers.
//!
//! [`FaultyController`] wraps any [`HeapController`] and injects
//! *transient* faults — failed read-ins (cons), failed splits, failed
//! merges, and delayed frees — on a schedule derived entirely from a
//! seed, so every chaos run is exactly reproducible. A wrapper built
//! with [`FaultyController::passthrough`] carries no schedule state and
//! reduces to a delegation shim the optimizer removes (guarded by the
//! `faulty_controller_disabled` bench case).
//!
//! Faults are *transient* by construction: a bounded burst limit
//! guarantees that after at most [`FaultPlan::max_burst`] consecutive
//! injected failures the next attempt reaches the real controller, so
//! bounded retry (machine.rs) always makes progress.

use crate::controller::{ControllerStats, HeapController, HeapError, SplitResult};
use crate::word::{HeapAddr, Word};
use small_sexpr::SExpr;

/// Which operation a fault was injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A `read_in` (cons / readlist) request failed.
    ReadIn,
    /// A `split` request failed.
    Split,
    /// A `merge` request failed.
    Merge,
    /// A `free_object` request was withheld (serviced later).
    DelayedFree,
}

/// A seeded, reproducible fault schedule. Rates are in parts per 1024
/// per operation of that kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the internal deterministic generator.
    pub seed: u64,
    /// Fault rate for `read_in`, parts per 1024.
    pub read_in_ppk: u32,
    /// Fault rate for `split`, parts per 1024.
    pub split_ppk: u32,
    /// Fault rate for `merge`, parts per 1024.
    pub merge_ppk: u32,
    /// Rate at which frees are withheld, parts per 1024.
    pub delay_free_ppk: u32,
    /// Operations a withheld free is delayed before being forwarded.
    pub delay_ops: u64,
    /// Maximum consecutive injected failures; the next attempt after a
    /// full burst always reaches the inner controller.
    pub max_burst: u32,
}

impl FaultPlan {
    /// A moderate all-kinds schedule: ~3% faults on each fallible op,
    /// ~6% delayed frees, bursts capped at 2.
    pub fn standard(seed: u64) -> Self {
        FaultPlan {
            seed,
            read_in_ppk: 32,
            split_ppk: 32,
            merge_ppk: 32,
            delay_free_ppk: 64,
            delay_ops: 8,
            max_burst: 2,
        }
    }

    /// A hostile schedule (~12% faults, longer free delays) for stress
    /// tests; bursts still bounded.
    pub fn aggressive(seed: u64) -> Self {
        FaultPlan {
            seed,
            read_in_ppk: 128,
            split_ppk: 128,
            merge_ppk: 128,
            delay_free_ppk: 256,
            delay_ops: 24,
            max_burst: 3,
        }
    }
}

/// Counters kept by the injection layer, for reconciling
/// injected-vs-detected-vs-recovered in chaos reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient `read_in` failures injected.
    pub read_in_faults: u64,
    /// Transient `split` failures injected.
    pub split_faults: u64,
    /// Transient `merge` failures injected.
    pub merge_faults: u64,
    /// Frees withheld past their request.
    pub delayed_frees: u64,
    /// Withheld frees since forwarded to the inner controller.
    pub flushed_frees: u64,
}

impl FaultStats {
    /// Total transient failures injected (excludes delayed frees, which
    /// are reordering faults, not failures).
    pub fn transient_total(&self) -> u64 {
        self.read_in_faults + self.split_faults + self.merge_faults
    }
}

/// splitmix64: a tiny deterministic generator private to the schedule,
/// so fault decisions never perturb any workload RNG stream.
#[derive(Debug, Clone)]
struct Schedule {
    state: u64,
}

impl Schedule {
    fn new(seed: u64) -> Self {
        Schedule {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// True with probability `ppk`/1024.
    fn roll(&mut self, ppk: u32) -> bool {
        (self.next_u64() >> 10) % 1024 < u64::from(ppk)
    }
}

struct FaultState {
    plan: FaultPlan,
    schedule: Schedule,
    stats: FaultStats,
    /// Consecutive injected failures; reset when an op goes through.
    burst: u32,
    /// Operation clock for aging withheld frees.
    ops: u64,
    /// Withheld frees: (address, op count at which it was withheld).
    delayed: Vec<(HeapAddr, u64)>,
}

/// A fault-injecting wrapper around any [`HeapController`].
pub struct FaultyController<C> {
    inner: C,
    state: Option<Box<FaultState>>,
}

impl<C> FaultyController<C> {
    /// Wrap `inner` with the given fault plan.
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        FaultyController {
            inner,
            state: Some(Box::new(FaultState {
                plan,
                schedule: Schedule::new(plan.seed),
                stats: FaultStats::default(),
                burst: 0,
                ops: 0,
                delayed: Vec::new(),
            })),
        }
    }

    /// Wrap `inner` with no fault schedule: pure delegation, which
    /// monomorphizes away (see the `faulty_controller_disabled` bench).
    pub fn passthrough(inner: C) -> Self {
        FaultyController { inner, state: None }
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The wrapped controller, mutably.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    /// Injection counters (all zero for a passthrough wrapper).
    pub fn fault_stats(&self) -> FaultStats {
        self.state.as_ref().map(|s| s.stats).unwrap_or_default()
    }

    /// Decide whether to fault the current fallible op of `kind`.
    fn should_fault(&mut self, kind: FaultKind) -> bool {
        let Some(st) = self.state.as_deref_mut() else {
            return false;
        };
        st.ops += 1;
        if st.burst >= st.plan.max_burst {
            st.burst = 0;
            return false;
        }
        let ppk = match kind {
            FaultKind::ReadIn => st.plan.read_in_ppk,
            FaultKind::Split => st.plan.split_ppk,
            FaultKind::Merge => st.plan.merge_ppk,
            FaultKind::DelayedFree => st.plan.delay_free_ppk,
        };
        if st.schedule.roll(ppk) {
            st.burst += 1;
            match kind {
                FaultKind::ReadIn => st.stats.read_in_faults += 1,
                FaultKind::Split => st.stats.split_faults += 1,
                FaultKind::Merge => st.stats.merge_faults += 1,
                FaultKind::DelayedFree => st.stats.delayed_frees += 1,
            }
            true
        } else {
            st.burst = 0;
            false
        }
    }
}

impl<C: HeapController> FaultyController<C> {
    /// Forward withheld frees whose delay has elapsed.
    fn flush_aged(&mut self) {
        let Some(st) = self.state.as_deref_mut() else {
            return;
        };
        if st.delayed.is_empty() {
            return;
        }
        let now = st.ops;
        let delay = st.plan.delay_ops;
        let mut aged = Vec::new();
        st.delayed.retain(|&(addr, at)| {
            if now.saturating_sub(at) >= delay {
                aged.push(addr);
                false
            } else {
                true
            }
        });
        st.stats.flushed_frees += aged.len() as u64;
        for addr in aged {
            self.inner.free_object(addr);
        }
    }

    /// Forward every withheld free immediately (end of run, or before a
    /// teardown that checks reclamation).
    pub fn flush_all_delayed(&mut self) {
        if let Some(st) = self.state.as_deref_mut() {
            let pending: Vec<HeapAddr> = st.delayed.drain(..).map(|(a, _)| a).collect();
            st.stats.flushed_frees += pending.len() as u64;
            for a in pending {
                self.inner.free_object(a);
            }
        }
    }

    /// Frees currently withheld.
    pub fn pending_delayed(&self) -> usize {
        self.state.as_ref().map(|s| s.delayed.len()).unwrap_or(0)
    }
}

impl<C: HeapController> HeapController for FaultyController<C> {
    fn read_in(&mut self, expr: &SExpr) -> Result<Word, HeapError> {
        if self.should_fault(FaultKind::ReadIn) {
            return Err(HeapError::Transient);
        }
        self.flush_aged();
        self.inner.read_in(expr)
    }

    fn split(&mut self, addr: HeapAddr) -> Result<SplitResult, HeapError> {
        if self.should_fault(FaultKind::Split) {
            return Err(HeapError::Transient);
        }
        self.flush_aged();
        self.inner.split(addr)
    }

    fn merge(&mut self, car: Word, cdr: Word) -> Result<HeapAddr, HeapError> {
        if self.should_fault(FaultKind::Merge) {
            return Err(HeapError::Transient);
        }
        self.flush_aged();
        self.inner.merge(car, cdr)
    }

    fn peek(&self, addr: HeapAddr) -> Result<SplitResult, HeapError> {
        // Read-only access: no fault injection (peeks take no locks in
        // the modeled hardware), no aging (needs `&mut`).
        self.inner.peek(addr)
    }

    fn free_object(&mut self, addr: HeapAddr) {
        if self.should_fault(FaultKind::DelayedFree) {
            // Withhold: the free happens, just later than requested.
            let st = self.state.as_deref_mut().expect("faulting implies state");
            let now = st.ops;
            st.delayed.push((addr, now));
            return;
        }
        self.flush_aged();
        self.inner.free_object(addr)
    }

    fn extract(&self, w: Word) -> SExpr {
        self.inner.extract(w)
    }

    fn stats(&self) -> ControllerStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::TwoPointerController;
    use small_sexpr::{parse, print, Interner};

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            read_in_ppk: 512, // ~50%: plenty of faults in few ops
            split_ppk: 512,
            merge_ppk: 512,
            delay_free_ppk: 512,
            delay_ops: 4,
            max_burst: 2,
        }
    }

    #[test]
    fn schedules_are_reproducible() {
        let run = |seed| {
            let mut i = Interner::new();
            let mut c = FaultyController::new(TwoPointerController::new(256, 8), plan(seed));
            let mut outcomes = Vec::new();
            for k in 0..40 {
                let e = parse(&format!("({k} {k})"), &mut i).unwrap();
                outcomes.push(c.read_in(&e).is_ok());
            }
            (outcomes, c.fault_stats())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds, different schedules");
    }

    #[test]
    fn bursts_are_bounded_so_retry_succeeds() {
        let mut i = Interner::new();
        let mut c = FaultyController::new(
            TwoPointerController::new(256, 8),
            FaultPlan {
                read_in_ppk: 1024, // always fault...
                max_burst: 2,      // ...but never more than twice in a row
                ..plan(1)
            },
        );
        let e = parse("(a)", &mut i).unwrap();
        let mut failures = 0;
        loop {
            match c.read_in(&e) {
                Ok(_) => break,
                Err(HeapError::Transient) => failures += 1,
                Err(other) => panic!("unexpected error {other}"),
            }
            assert!(failures <= 2, "burst limit must bound consecutive faults");
        }
        assert_eq!(failures, 2);
    }

    #[test]
    fn delayed_frees_are_eventually_forwarded() {
        let mut i = Interner::new();
        let mut c = FaultyController::new(
            TwoPointerController::new(256, 64),
            FaultPlan {
                read_in_ppk: 0,
                split_ppk: 0,
                merge_ppk: 0,
                delay_free_ppk: 1024,
                delay_ops: 2,
                max_burst: 1,
                seed: 3,
            },
        );
        let w = c.read_in(&parse("(a b)", &mut i).unwrap()).unwrap();
        c.free_object(w.addr());
        let delayed = c.pending_delayed();
        // Subsequent traffic ages the withheld free out.
        for k in 0..16 {
            let _ = c.read_in(&parse(&format!("({k})"), &mut i).unwrap());
        }
        c.flush_all_delayed();
        assert_eq!(c.pending_delayed(), 0);
        let st = c.fault_stats();
        assert_eq!(st.delayed_frees, st.flushed_frees);
        assert!(delayed <= 1);
        // The free reached the real controller.
        assert!(c.inner().pending_frees() > 0 || c.inner_mut().drain_and_free() > 0);
    }

    #[test]
    fn passthrough_is_transparent() {
        let mut i = Interner::new();
        let mut c = FaultyController::passthrough(TwoPointerController::new(256, 8));
        let e = parse("(a (b) c)", &mut i).unwrap();
        let w = c.read_in(&e).unwrap();
        assert_eq!(print(&c.extract(w), &i), "(a (b) c)");
        assert_eq!(c.fault_stats(), FaultStats::default());
        let s = c.split(w.addr()).unwrap();
        let m = c.merge(s.car, s.cdr).unwrap();
        c.free_object(m);
        assert_eq!(c.pending_delayed(), 0);
    }
}
