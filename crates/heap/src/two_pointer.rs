//! The classic two-pointer list cell heap (Figure 2.6).
//!
//! Each cell is a pair of tagged words (car, cdr) stored at consecutive
//! arena slots. This is the *uniform* representation of §3.1 — every
//! s-expression has exactly one encoding, `car`/`cdr` are single memory
//! reads, `rplaca`/`rplacd` single writes, and `cons` is an allocation
//! plus two writes. Its drawbacks (the addressing bottleneck during
//! traversal, and space cost) motivate the compact representations in the
//! sibling modules.
//!
//! Invisible pointers ([`Tag::Invisible`]) are dereferenced transparently
//! by [`TwoPointerHeap::car`]/[`TwoPointerHeap::cdr`], as the Lisp-machine
//! hardware does (§2.3.2).

use crate::word::{Arena, HeapAddr, Tag, Word};
use small_sexpr::{Atom, SExpr};

/// Allocation statistics for a heap.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HeapStats {
    /// Cells ever allocated (including recycled ones).
    pub allocs: u64,
    /// Cells returned to the free list.
    pub frees: u64,
    /// Maximum simultaneously-live cell count observed.
    pub high_water: usize,
}

/// A two-pointer cons-cell heap.
///
/// The free list is threaded lazily: `frontier` marks the low-water
/// boundary below which every cell has been allocated at least once
/// (and so carries real words or an explicit free link), while cells at
/// or above it are *virgin* — never written, conceptually still on the
/// tail of the initial ascending free list. Eagerly threading a link
/// word through every cell of a multi-megabyte arena dominated heap
/// construction time; the lazy scheme allocates, frees, and exports in
/// exactly the same order and with byte-identical images (virgin links
/// are synthesized on export).
pub struct TwoPointerHeap {
    arena: Arena,
    /// Head of the explicit free list, threaded through car words.
    /// Holds only cells below `frontier`; the virgin suffix
    /// `frontier..capacity` logically follows it.
    free_head: Option<HeapAddr>,
    /// First never-allocated cell (see type docs).
    frontier: usize,
    /// Number of cells currently allocated.
    live: usize,
    /// Total cell capacity.
    capacity: usize,
    stats: HeapStats,
}

impl TwoPointerHeap {
    /// Initial arena backing, in words. The arena grows geometrically
    /// toward `capacity * 2` as the frontier advances: a multi-megabyte
    /// mmap/munmap pair per heap construction costs around a
    /// millisecond even untouched, while typical runs use a few percent
    /// of the cell budget. Small enough that a short-lived serving
    /// session (a few dozen cells) never pays for backing it won't
    /// touch; the doubling copies on a growth-heavy run total less
    /// than one flat allocation at final size.
    const INITIAL_ARENA_WORDS: usize = 1 << 10;

    /// Create a heap with room for `cells` list cells.
    pub fn with_capacity(cells: usize) -> Self {
        TwoPointerHeap {
            // Zero-backed and deliberately undersized: virgin words are
            // never read (every access is gated on `is_free`/the
            // frontier), and `alloc` grows the backing before the
            // frontier crosses it.
            arena: Arena::new_zeroed((cells * 2).min(Self::INITIAL_ARENA_WORDS)),
            free_head: None,
            frontier: 0,
            live: 0,
            capacity: cells,
            stats: HeapStats::default(),
        }
    }

    /// Total capacity in cells.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently-allocated cell count.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Free cells remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.live
    }

    /// Allocation statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Allocate a cons cell. Returns `None` when the heap is exhausted —
    /// the caller is expected to garbage collect and retry.
    pub fn alloc(&mut self, car: Word, cdr: Word) -> Option<HeapAddr> {
        let addr = match self.free_head {
            Some(a) => {
                let next = self.arena.read(a.index() * 2).free_next();
                // A link naming a never-allocated cell is the terminal
                // link onto the virgin suffix; it was written when its
                // target was the frontier, and explicit-list cells are
                // always consumed before the frontier advances, so the
                // target still *is* the frontier.
                self.free_head = match next {
                    Some(n) if n.index() >= self.frontier => {
                        debug_assert_eq!(n.index(), self.frontier);
                        None
                    }
                    n => n,
                };
                a
            }
            None if self.frontier < self.capacity => {
                let a = HeapAddr(self.frontier as u32);
                self.frontier += 1;
                if self.arena.len() < self.frontier * 2 {
                    // Double (at least) up to the true footprint so
                    // growth cost amortizes to O(peak usage).
                    let target = (self.arena.len().max(1) * 2)
                        .max(self.frontier * 2)
                        .min(self.capacity * 2);
                    self.arena.grow_to(target);
                }
                a
            }
            None => return None,
        };
        self.arena.write(addr.index() * 2, car);
        self.arena.write(addr.index() * 2 + 1, cdr);
        self.live += 1;
        self.stats.allocs += 1;
        self.stats.high_water = self.stats.high_water.max(self.live);
        Some(addr)
    }

    /// Return a cell to the free list.
    ///
    /// # Panics
    /// Debug-panics if the cell is already free.
    pub fn free_cell(&mut self, addr: HeapAddr) {
        debug_assert!(!self.is_free(addr), "double free of {addr}");
        // Link to the effective head: the explicit list, or — when it
        // is empty — the virgin suffix, exactly the word the eagerly
        // threaded heap would have had in `free_head` here.
        let head = self
            .free_head
            .or_else(|| (self.frontier < self.capacity).then_some(HeapAddr(self.frontier as u32)));
        self.arena.write(addr.index() * 2, Word::free_link(head));
        self.arena.write(addr.index() * 2 + 1, Word::UNUSED);
        self.free_head = Some(addr);
        self.live -= 1;
        self.stats.frees += 1;
    }

    /// Whether the cell is on the free list (virgin cells are; below
    /// the frontier, by tag inspection).
    pub fn is_free(&self, addr: HeapAddr) -> bool {
        addr.index() >= self.frontier || self.arena.read(addr.index() * 2).tag() == Tag::FreeLink
    }

    /// Raw car word — no invisible-pointer dereference (for collectors).
    #[inline]
    pub fn raw_car(&self, addr: HeapAddr) -> Word {
        self.arena.read(addr.index() * 2)
    }

    /// Raw cdr word — no invisible-pointer dereference (for collectors).
    #[inline]
    pub fn raw_cdr(&self, addr: HeapAddr) -> Word {
        self.arena.read(addr.index() * 2 + 1)
    }

    /// Overwrite the raw car word (for collectors).
    #[inline]
    pub fn set_raw_car(&mut self, addr: HeapAddr, w: Word) {
        self.arena.write(addr.index() * 2, w);
    }

    /// Overwrite the raw cdr word (for collectors).
    #[inline]
    pub fn set_raw_cdr(&mut self, addr: HeapAddr, w: Word) {
        self.arena.write(addr.index() * 2 + 1, w);
    }

    /// Dereference invisible pointers until an ordinary word remains.
    fn chase(&self, mut w: Word) -> Word {
        while w.tag() == Tag::Invisible {
            w = self.arena.read(w.addr().index() * 2);
        }
        w
    }

    /// `car` of the cell at `addr`, chasing invisible pointers.
    #[inline]
    pub fn car(&self, addr: HeapAddr) -> Word {
        self.chase(self.raw_car(addr))
    }

    /// `cdr` of the cell at `addr`, chasing invisible pointers.
    #[inline]
    pub fn cdr(&self, addr: HeapAddr) -> Word {
        self.chase(self.raw_cdr(addr))
    }

    /// Replace the car pointer (`rplaca`).
    #[inline]
    pub fn rplaca(&mut self, addr: HeapAddr, w: Word) {
        self.set_raw_car(addr, w);
    }

    /// Replace the cdr pointer (`rplacd`).
    #[inline]
    pub fn rplacd(&mut self, addr: HeapAddr, w: Word) {
        self.set_raw_cdr(addr, w);
    }

    /// Read an s-expression into the heap, returning its tagged word
    /// (atoms are immediate; lists return a pointer). This is the heap
    /// side of the `readlist` operation (§4.3.2.2.1).
    ///
    /// Returns `None` if the heap fills up mid-construction (partial
    /// structure is left allocated; callers running a collector should
    /// retry after a GC with the same expression).
    pub fn intern(&mut self, expr: &SExpr) -> Option<Word> {
        match expr {
            SExpr::Nil => Some(Word::NIL),
            SExpr::Atom(Atom::Int(i)) => Some(Word::int(*i)),
            SExpr::Atom(Atom::Sym(s)) => Some(Word::sym(s.0)),
            SExpr::Cons(c) => {
                let car = self.intern(&c.0)?;
                let cdr = self.intern(&c.1)?;
                self.alloc(car, cdr).map(Word::ptr)
            }
        }
    }

    /// Reconstruct the s-expression rooted at `w` (inverse of
    /// [`TwoPointerHeap::intern`]); used by `writelist` and tests.
    pub fn extract(&self, w: Word) -> SExpr {
        match self.chase(w).tag() {
            Tag::Nil => SExpr::Nil,
            Tag::Int => SExpr::int(w.as_int()),
            Tag::Sym => SExpr::sym(small_sexpr::Symbol(w.as_sym())),
            Tag::Ptr => {
                let a = self.chase(w).addr();
                SExpr::cons(self.extract(self.car(a)), self.extract(self.cdr(a)))
            }
            t => panic!("extract of non-value word with tag {t:?}"),
        }
    }

    /// Flatten the full heap state (arena words + scalars) for an image
    /// export. The scalar layout is fixed: `[free_head, live, capacity,
    /// allocs, frees, high_water]` with `u64::MAX` encoding a `None`
    /// free-list head.
    pub(crate) fn export_state(&self) -> (Vec<u64>, Vec<u64>) {
        // Materialize the image of the equivalent eagerly-threaded
        // heap: virgin cells carry their untouched initial links (cell
        // i → i+1, last cell → none), and the exported head covers the
        // virgin suffix when the explicit list is empty. Images are
        // byte-identical to those of a heap threaded at construction.
        let mut arena = self.arena.raw_words().to_vec();
        // The backing may be shorter than the full footprint; the loop
        // below overwrites every extended word.
        arena.resize(self.capacity * 2, 0);
        for i in self.frontier..self.capacity {
            let next = (i + 1 < self.capacity).then(|| HeapAddr((i + 1) as u32));
            arena[2 * i] = Word::free_link(next).bits();
            arena[2 * i + 1] = Word::UNUSED.bits();
        }
        let head = self
            .free_head
            .or_else(|| (self.frontier < self.capacity).then_some(HeapAddr(self.frontier as u32)));
        let scalars = vec![
            crate::persist::opt_addr_to_word(head),
            self.live as u64,
            self.capacity as u64,
            self.stats.allocs,
            self.stats.frees,
            self.stats.high_water as u64,
        ];
        (arena, scalars)
    }

    /// Inverse of [`TwoPointerHeap::export_state`].
    pub(crate) fn import_state(
        arena: &[u64],
        scalars: &[u64],
    ) -> Result<Self, crate::persist::ImageError> {
        use crate::persist::ImageError;
        if scalars.len() != 6 {
            return Err(ImageError::Malformed);
        }
        let capacity = usize::try_from(scalars[2]).map_err(|_| ImageError::Malformed)?;
        if arena.len() != capacity * 2 {
            return Err(ImageError::Malformed);
        }
        let live = usize::try_from(scalars[1]).map_err(|_| ImageError::Malformed)?;
        if live > capacity {
            return Err(ImageError::Malformed);
        }
        Ok(TwoPointerHeap {
            arena: Arena::from_raw_words(arena.to_vec()),
            free_head: crate::persist::word_to_opt_addr(scalars[0])?,
            // Imported arenas are fully threaded (see `export_state`);
            // no virgin suffix remains.
            frontier: capacity,
            live,
            capacity,
            stats: HeapStats {
                allocs: scalars[3],
                frees: scalars[4],
                high_water: usize::try_from(scalars[5]).map_err(|_| ImageError::Malformed)?,
            },
        })
    }

    /// Iterate the addresses of all live (non-free) cells.
    pub fn live_cells(&self) -> impl Iterator<Item = HeapAddr> + '_ {
        (0..self.capacity).filter_map(|i| {
            let a = HeapAddr(i as u32);
            (!self.is_free(a)).then_some(a)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::{parse, print, Interner};

    #[test]
    fn alloc_until_exhaustion() {
        let mut h = TwoPointerHeap::with_capacity(3);
        assert_eq!(h.free(), 3);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        let b = h.alloc(Word::int(2), Word::ptr(a)).unwrap();
        let _c = h.alloc(Word::int(3), Word::ptr(b)).unwrap();
        assert_eq!(h.free(), 0);
        assert!(h.alloc(Word::NIL, Word::NIL).is_none());
        assert_eq!(h.stats().high_water, 3);
    }

    #[test]
    fn free_and_reuse() {
        let mut h = TwoPointerHeap::with_capacity(2);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        h.free_cell(a);
        assert_eq!(h.live(), 0);
        let b = h.alloc(Word::int(2), Word::NIL).unwrap();
        assert_eq!(a, b, "LIFO free list reuses the last freed cell");
    }

    #[test]
    fn car_cdr_rplac() {
        let mut h = TwoPointerHeap::with_capacity(4);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        assert_eq!(h.car(a).as_int(), 1);
        assert!(h.cdr(a).is_nil());
        h.rplaca(a, Word::int(9));
        h.rplacd(a, Word::ptr(a));
        assert_eq!(h.car(a).as_int(), 9);
        assert_eq!(h.cdr(a).addr(), a);
    }

    #[test]
    fn invisible_pointer_chased() {
        let mut h = TwoPointerHeap::with_capacity(4);
        let real = h.alloc(Word::int(5), Word::NIL).unwrap();
        let holder = h.alloc(Word::invisible(real), Word::NIL).unwrap();
        let outer = h.alloc(Word::ptr(holder), Word::NIL).unwrap();
        // car(outer) is a pointer to holder; car(holder) chases the
        // invisible pointer down to cell `real`'s car.
        let w = h.car(outer);
        assert_eq!(w.addr(), holder);
        assert_eq!(h.car(w.addr()).as_int(), 5);
    }

    #[test]
    fn intern_extract_roundtrip() {
        let mut i = Interner::new();
        let mut h = TwoPointerHeap::with_capacity(64);
        for src in ["(a b c (d e) f g)", "((1 2) (3 4) . tail)", "nil", "77"] {
            let e = parse(src, &mut i).unwrap();
            let w = h.intern(&e).unwrap();
            let back = h.extract(w);
            assert_eq!(print(&back, &i), print(&e, &i), "{src}");
        }
    }

    #[test]
    fn intern_fails_when_full_but_is_retryable() {
        let mut i = Interner::new();
        let mut h = TwoPointerHeap::with_capacity(2);
        let e = parse("(a b c)", &mut i).unwrap();
        assert!(h.intern(&e).is_none());
    }

    #[test]
    fn live_cells_iteration() {
        let mut h = TwoPointerHeap::with_capacity(4);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        let b = h.alloc(Word::int(2), Word::NIL).unwrap();
        h.free_cell(a);
        let live: Vec<_> = h.live_cells().collect();
        assert_eq!(live, vec![b]);
    }
}
