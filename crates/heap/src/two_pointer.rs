//! The classic two-pointer list cell heap (Figure 2.6).
//!
//! Each cell is a pair of tagged words (car, cdr) stored at consecutive
//! arena slots. This is the *uniform* representation of §3.1 — every
//! s-expression has exactly one encoding, `car`/`cdr` are single memory
//! reads, `rplaca`/`rplacd` single writes, and `cons` is an allocation
//! plus two writes. Its drawbacks (the addressing bottleneck during
//! traversal, and space cost) motivate the compact representations in the
//! sibling modules.
//!
//! Invisible pointers ([`Tag::Invisible`]) are dereferenced transparently
//! by [`TwoPointerHeap::car`]/[`TwoPointerHeap::cdr`], as the Lisp-machine
//! hardware does (§2.3.2).

use crate::word::{Arena, HeapAddr, Tag, Word};
use small_sexpr::{Atom, SExpr};

/// Allocation statistics for a heap.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HeapStats {
    /// Cells ever allocated (including recycled ones).
    pub allocs: u64,
    /// Cells returned to the free list.
    pub frees: u64,
    /// Maximum simultaneously-live cell count observed.
    pub high_water: usize,
}

/// A two-pointer cons-cell heap.
pub struct TwoPointerHeap {
    arena: Arena,
    /// Head of the free list, threaded through car words.
    free_head: Option<HeapAddr>,
    /// Number of cells currently allocated.
    live: usize,
    /// Total cell capacity.
    capacity: usize,
    stats: HeapStats,
}

impl TwoPointerHeap {
    /// Create a heap with room for `cells` list cells.
    pub fn with_capacity(cells: usize) -> Self {
        let mut heap = TwoPointerHeap {
            arena: Arena::new(cells * 2),
            free_head: None,
            live: 0,
            capacity: cells,
            stats: HeapStats::default(),
        };
        // Thread the free list through the car words, last cell first so
        // that allocation proceeds from address 0 upward.
        for i in (0..cells).rev() {
            heap.arena.write(2 * i, Word::free_link(heap.free_head));
            heap.free_head = Some(HeapAddr(i as u32));
        }
        heap
    }

    /// Total capacity in cells.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently-allocated cell count.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Free cells remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.live
    }

    /// Allocation statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Allocate a cons cell. Returns `None` when the heap is exhausted —
    /// the caller is expected to garbage collect and retry.
    pub fn alloc(&mut self, car: Word, cdr: Word) -> Option<HeapAddr> {
        let addr = self.free_head?;
        self.free_head = self.arena.read(addr.index() * 2).free_next();
        self.arena.write(addr.index() * 2, car);
        self.arena.write(addr.index() * 2 + 1, cdr);
        self.live += 1;
        self.stats.allocs += 1;
        self.stats.high_water = self.stats.high_water.max(self.live);
        Some(addr)
    }

    /// Return a cell to the free list.
    ///
    /// # Panics
    /// Debug-panics if the cell is already free.
    pub fn free_cell(&mut self, addr: HeapAddr) {
        debug_assert!(!self.is_free(addr), "double free of {addr}");
        self.arena
            .write(addr.index() * 2, Word::free_link(self.free_head));
        self.arena.write(addr.index() * 2 + 1, Word::UNUSED);
        self.free_head = Some(addr);
        self.live -= 1;
        self.stats.frees += 1;
    }

    /// Whether the cell is on the free list (by tag inspection).
    pub fn is_free(&self, addr: HeapAddr) -> bool {
        self.arena.read(addr.index() * 2).tag() == Tag::FreeLink
    }

    /// Raw car word — no invisible-pointer dereference (for collectors).
    #[inline]
    pub fn raw_car(&self, addr: HeapAddr) -> Word {
        self.arena.read(addr.index() * 2)
    }

    /// Raw cdr word — no invisible-pointer dereference (for collectors).
    #[inline]
    pub fn raw_cdr(&self, addr: HeapAddr) -> Word {
        self.arena.read(addr.index() * 2 + 1)
    }

    /// Overwrite the raw car word (for collectors).
    #[inline]
    pub fn set_raw_car(&mut self, addr: HeapAddr, w: Word) {
        self.arena.write(addr.index() * 2, w);
    }

    /// Overwrite the raw cdr word (for collectors).
    #[inline]
    pub fn set_raw_cdr(&mut self, addr: HeapAddr, w: Word) {
        self.arena.write(addr.index() * 2 + 1, w);
    }

    /// Dereference invisible pointers until an ordinary word remains.
    fn chase(&self, mut w: Word) -> Word {
        while w.tag() == Tag::Invisible {
            w = self.arena.read(w.addr().index() * 2);
        }
        w
    }

    /// `car` of the cell at `addr`, chasing invisible pointers.
    #[inline]
    pub fn car(&self, addr: HeapAddr) -> Word {
        self.chase(self.raw_car(addr))
    }

    /// `cdr` of the cell at `addr`, chasing invisible pointers.
    #[inline]
    pub fn cdr(&self, addr: HeapAddr) -> Word {
        self.chase(self.raw_cdr(addr))
    }

    /// Replace the car pointer (`rplaca`).
    #[inline]
    pub fn rplaca(&mut self, addr: HeapAddr, w: Word) {
        self.set_raw_car(addr, w);
    }

    /// Replace the cdr pointer (`rplacd`).
    #[inline]
    pub fn rplacd(&mut self, addr: HeapAddr, w: Word) {
        self.set_raw_cdr(addr, w);
    }

    /// Read an s-expression into the heap, returning its tagged word
    /// (atoms are immediate; lists return a pointer). This is the heap
    /// side of the `readlist` operation (§4.3.2.2.1).
    ///
    /// Returns `None` if the heap fills up mid-construction (partial
    /// structure is left allocated; callers running a collector should
    /// retry after a GC with the same expression).
    pub fn intern(&mut self, expr: &SExpr) -> Option<Word> {
        match expr {
            SExpr::Nil => Some(Word::NIL),
            SExpr::Atom(Atom::Int(i)) => Some(Word::int(*i)),
            SExpr::Atom(Atom::Sym(s)) => Some(Word::sym(s.0)),
            SExpr::Cons(c) => {
                let car = self.intern(&c.0)?;
                let cdr = self.intern(&c.1)?;
                self.alloc(car, cdr).map(Word::ptr)
            }
        }
    }

    /// Reconstruct the s-expression rooted at `w` (inverse of
    /// [`TwoPointerHeap::intern`]); used by `writelist` and tests.
    pub fn extract(&self, w: Word) -> SExpr {
        match self.chase(w).tag() {
            Tag::Nil => SExpr::Nil,
            Tag::Int => SExpr::int(w.as_int()),
            Tag::Sym => SExpr::sym(small_sexpr::Symbol(w.as_sym())),
            Tag::Ptr => {
                let a = self.chase(w).addr();
                SExpr::cons(self.extract(self.car(a)), self.extract(self.cdr(a)))
            }
            t => panic!("extract of non-value word with tag {t:?}"),
        }
    }

    /// Flatten the full heap state (arena words + scalars) for an image
    /// export. The scalar layout is fixed: `[free_head, live, capacity,
    /// allocs, frees, high_water]` with `u64::MAX` encoding a `None`
    /// free-list head.
    pub(crate) fn export_state(&self) -> (Vec<u64>, Vec<u64>) {
        let scalars = vec![
            crate::persist::opt_addr_to_word(self.free_head),
            self.live as u64,
            self.capacity as u64,
            self.stats.allocs,
            self.stats.frees,
            self.stats.high_water as u64,
        ];
        (self.arena.raw_words().to_vec(), scalars)
    }

    /// Inverse of [`TwoPointerHeap::export_state`].
    pub(crate) fn import_state(
        arena: &[u64],
        scalars: &[u64],
    ) -> Result<Self, crate::persist::ImageError> {
        use crate::persist::ImageError;
        if scalars.len() != 6 {
            return Err(ImageError::Malformed);
        }
        let capacity = usize::try_from(scalars[2]).map_err(|_| ImageError::Malformed)?;
        if arena.len() != capacity * 2 {
            return Err(ImageError::Malformed);
        }
        let live = usize::try_from(scalars[1]).map_err(|_| ImageError::Malformed)?;
        if live > capacity {
            return Err(ImageError::Malformed);
        }
        Ok(TwoPointerHeap {
            arena: Arena::from_raw_words(arena.to_vec()),
            free_head: crate::persist::word_to_opt_addr(scalars[0])?,
            live,
            capacity,
            stats: HeapStats {
                allocs: scalars[3],
                frees: scalars[4],
                high_water: usize::try_from(scalars[5]).map_err(|_| ImageError::Malformed)?,
            },
        })
    }

    /// Iterate the addresses of all live (non-free) cells.
    pub fn live_cells(&self) -> impl Iterator<Item = HeapAddr> + '_ {
        (0..self.capacity).filter_map(|i| {
            let a = HeapAddr(i as u32);
            (!self.is_free(a)).then_some(a)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::{parse, print, Interner};

    #[test]
    fn alloc_until_exhaustion() {
        let mut h = TwoPointerHeap::with_capacity(3);
        assert_eq!(h.free(), 3);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        let b = h.alloc(Word::int(2), Word::ptr(a)).unwrap();
        let _c = h.alloc(Word::int(3), Word::ptr(b)).unwrap();
        assert_eq!(h.free(), 0);
        assert!(h.alloc(Word::NIL, Word::NIL).is_none());
        assert_eq!(h.stats().high_water, 3);
    }

    #[test]
    fn free_and_reuse() {
        let mut h = TwoPointerHeap::with_capacity(2);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        h.free_cell(a);
        assert_eq!(h.live(), 0);
        let b = h.alloc(Word::int(2), Word::NIL).unwrap();
        assert_eq!(a, b, "LIFO free list reuses the last freed cell");
    }

    #[test]
    fn car_cdr_rplac() {
        let mut h = TwoPointerHeap::with_capacity(4);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        assert_eq!(h.car(a).as_int(), 1);
        assert!(h.cdr(a).is_nil());
        h.rplaca(a, Word::int(9));
        h.rplacd(a, Word::ptr(a));
        assert_eq!(h.car(a).as_int(), 9);
        assert_eq!(h.cdr(a).addr(), a);
    }

    #[test]
    fn invisible_pointer_chased() {
        let mut h = TwoPointerHeap::with_capacity(4);
        let real = h.alloc(Word::int(5), Word::NIL).unwrap();
        let holder = h.alloc(Word::invisible(real), Word::NIL).unwrap();
        let outer = h.alloc(Word::ptr(holder), Word::NIL).unwrap();
        // car(outer) is a pointer to holder; car(holder) chases the
        // invisible pointer down to cell `real`'s car.
        let w = h.car(outer);
        assert_eq!(w.addr(), holder);
        assert_eq!(h.car(w.addr()).as_int(), 5);
    }

    #[test]
    fn intern_extract_roundtrip() {
        let mut i = Interner::new();
        let mut h = TwoPointerHeap::with_capacity(64);
        for src in ["(a b c (d e) f g)", "((1 2) (3 4) . tail)", "nil", "77"] {
            let e = parse(src, &mut i).unwrap();
            let w = h.intern(&e).unwrap();
            let back = h.extract(w);
            assert_eq!(print(&back, &i), print(&e, &i), "{src}");
        }
    }

    #[test]
    fn intern_fails_when_full_but_is_retryable() {
        let mut i = Interner::new();
        let mut h = TwoPointerHeap::with_capacity(2);
        let e = parse("(a b c)", &mut i).unwrap();
        assert!(h.intern(&e).is_none());
    }

    #[test]
    fn live_cells_iteration() {
        let mut h = TwoPointerHeap::with_capacity(4);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        let b = h.alloc(Word::int(2), Word::NIL).unwrap();
        h.free_cell(a);
        let live: Vec<_> = h.live_cells().collect();
        assert_eq!(live, vec![b]);
    }
}
