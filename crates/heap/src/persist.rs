//! Serializable images of heap backends.
//!
//! Checkpointing the machine (the `small-persist` crate) needs the full
//! contents of whichever heap representation backs the List Processor.
//! Each controller exports a [`ControllerImage`]: a `kind` string naming
//! the representation plus named sections of `u64` words, produced in a
//! deterministic order so that two exports of identical state are
//! identical images. Import validates the kind and section shapes and
//! reconstructs a controller observationally equal to the exported one —
//! including allocator free lists and statistics counters, so ledgers
//! survive a crash/recovery cycle bit-for-bit.
//!
//! The image is *structured*, not serialized: byte encoding (framing,
//! checksums, versioning) is the persistence crate's job. Keeping the
//! word-level view here means every backend module can flatten its own
//! private state without exposing it.

use crate::controller::{ControllerStats, HeapController};
use std::fmt;

/// A structured snapshot of a heap controller's complete state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerImage {
    /// Stable name of the representation (`"two-pointer"`,
    /// `"cdr-coded"`, `"structure-coded"`).
    pub kind: &'static str,
    /// Named word sections, in a fixed per-kind order.
    pub sections: Vec<(&'static str, Vec<u64>)>,
}

impl ControllerImage {
    /// Look up a section by name.
    pub fn section(&self, name: &str) -> Result<&[u64], ImageError> {
        self.sections
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, words)| words.as_slice())
            .ok_or(ImageError::MissingSection)
    }
}

/// Errors from [`PersistableController::import_image`]. All import
/// failures are typed — a malformed image never yields a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageError {
    /// The image's `kind` does not name this representation.
    WrongKind,
    /// A required section is absent.
    MissingSection,
    /// A section exists but its contents do not decode.
    Malformed,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::WrongKind => write!(f, "image kind does not match this controller"),
            ImageError::MissingSection => write!(f, "image is missing a required section"),
            ImageError::Malformed => write!(f, "image section contents are malformed"),
        }
    }
}

impl std::error::Error for ImageError {}

/// A heap controller whose complete state round-trips through a
/// [`ControllerImage`].
pub trait PersistableController: HeapController + Sized {
    /// The stable `kind` string this controller writes and accepts.
    const KIND: &'static str;

    /// Export the full state. Deterministic: equal states produce equal
    /// images.
    fn export_image(&self) -> ControllerImage;

    /// Rebuild a controller from an exported image. Fails closed with a
    /// typed [`ImageError`] on any mismatch.
    fn import_image(image: &ControllerImage) -> Result<Self, ImageError>;
}

/// Flatten [`ControllerStats`] into its canonical five-word form.
pub(crate) fn stats_to_words(s: &ControllerStats) -> Vec<u64> {
    vec![
        s.splits,
        s.merges,
        s.read_ins,
        s.frees_queued,
        s.cells_freed,
    ]
}

/// Inverse of [`stats_to_words`].
pub(crate) fn stats_from_words(w: &[u64]) -> Result<ControllerStats, ImageError> {
    if w.len() != 5 {
        return Err(ImageError::Malformed);
    }
    Ok(ControllerStats {
        splits: w[0],
        merges: w[1],
        read_ins: w[2],
        frees_queued: w[3],
        cells_freed: w[4],
    })
}

/// Encode an optional heap address as a word (`u64::MAX` = none).
pub(crate) fn opt_addr_to_word(a: Option<crate::word::HeapAddr>) -> u64 {
    a.map_or(u64::MAX, |h| u64::from(h.0))
}

/// Inverse of [`opt_addr_to_word`].
pub(crate) fn word_to_opt_addr(w: u64) -> Result<Option<crate::word::HeapAddr>, ImageError> {
    if w == u64::MAX {
        Ok(None)
    } else if w <= u64::from(u32::MAX) {
        Ok(Some(crate::word::HeapAddr(w as u32)))
    } else {
        Err(ImageError::Malformed)
    }
}
