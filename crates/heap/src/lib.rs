#![warn(missing_docs)]
//! Lisp heap substrate for the SMALL reproduction.
//!
//! Chapter 2 of the thesis surveys how Lisp machines represent lists and
//! manage heap space; Chapter 4 requires a *heap memory controller* able
//! to read lists in, **split** a list object into its car and cdr parts,
//! and **merge** two objects back into one (§4.3.3). This crate builds all
//! of that from scratch:
//!
//! * [`word`] — compact 64-bit tagged memory words (uses `unsafe` raw
//!   arena access; the thesis machines are tagged architectures, §2.3.4),
//! * [`two_pointer`] — the classic two-pointer list cell heap
//!   (Figure 2.6),
//! * [`cdr_coded`] — MIT-Lisp-machine style cdr-coding with invisible
//!   pointers (Figure 2.8),
//! * [`linked_vector`] — the linked-vector representation (Figure 2.7),
//! * [`structure_coded`] — CDAR-coded exception tables in the BLAST style
//!   (Figures 2.9 and 2.10),
//! * [`gc`] — mark-sweep, reference-counting, and semispace copying
//!   collectors (§2.3.4),
//! * [`controller`] — the split/merge heap controller the List Processor
//!   talks to (§4.3.3), with a bounded queue of pending frees,
//! * [`faulty`] — a deterministic fault-injecting controller wrapper for
//!   chaos testing (transient failures, delayed frees),
//! * [`persist`] — deterministic full-state images of every controller
//!   for crash-consistent checkpointing.

pub mod cdr_coded;
pub mod controller;
pub mod faulty;
pub mod gc;
pub mod linked_vector;
pub mod persist;
pub mod structure_coded;
pub mod two_pointer;
pub mod word;

pub use cdr_coded::CdrCodedController;
pub use controller::{HeapController, Piece, SplitResult, TwoPointerController};
pub use faulty::{FaultKind, FaultPlan, FaultStats, FaultyController};
pub use persist::{ControllerImage, ImageError, PersistableController};
pub use structure_coded::StructureCodedController;
pub use two_pointer::TwoPointerHeap;
pub use word::{HeapAddr, Tag, Word};
