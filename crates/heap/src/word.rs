//! Compact tagged memory words.
//!
//! Lisp machines are tagged architectures (§2.3.4): every memory word
//! carries a small type tag so the hardware can distinguish pointers from
//! data, dispatch on runtime types, and support invisible pointers. We
//! pack a 3-bit tag and a 61-bit payload into a single `u64`, and back the
//! heap with a raw arena accessed through unchecked reads/writes in
//! release builds — this is the "compact tagged cell" layer the
//! reproduction brief calls for.

use std::fmt;

/// A heap address: an index into a cell arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct HeapAddr(pub u32);

impl HeapAddr {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HeapAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// The 3-bit word tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Tag {
    /// The `nil` atom.
    Nil = 0,
    /// A fixnum (61-bit signed integer).
    Int = 1,
    /// An interned symbol.
    Sym = 2,
    /// An ordinary pointer to a list cell.
    Ptr = 3,
    /// An invisible pointer: dereferenced automatically by the memory
    /// system on access (§2.3.2, §2.3.3.1).
    Invisible = 4,
    /// A free-list link (internal to allocators).
    FreeLink = 5,
    /// A forwarding pointer left behind by the copying collector.
    Forward = 6,
    /// An unused / uninitialized word.
    Unused = 7,
}

impl Tag {
    #[inline]
    fn from_bits(bits: u64) -> Tag {
        // SAFETY: `bits & 7` is always in 0..=7 and Tag is a fieldless
        // repr(u8) enum covering exactly those discriminants.
        unsafe { std::mem::transmute::<u8, Tag>((bits & 7) as u8) }
    }
}

/// A tagged 64-bit word: 3-bit tag in the low bits, payload above.
///
/// Integers occupy the high 61 bits with sign, so the fixnum range is
/// `[-2^60, 2^60)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Word(u64);

impl Word {
    /// The nil word.
    pub const NIL: Word = Word(Tag::Nil as u64);
    /// An unused word.
    pub const UNUSED: Word = Word(Tag::Unused as u64);

    /// Pack a fixnum.
    ///
    /// # Panics
    /// Panics (in debug builds) if `i` exceeds the 61-bit fixnum range.
    #[inline]
    pub fn int(i: i64) -> Word {
        debug_assert!(
            (-(1i64 << 60)..(1i64 << 60)).contains(&i),
            "fixnum overflow: {i}"
        );
        Word(((i as u64) << 3) | Tag::Int as u64)
    }

    /// Pack a symbol id.
    #[inline]
    pub fn sym(id: u32) -> Word {
        Word(((id as u64) << 3) | Tag::Sym as u64)
    }

    /// Pack an ordinary pointer.
    #[inline]
    pub fn ptr(a: HeapAddr) -> Word {
        Word(((a.0 as u64) << 3) | Tag::Ptr as u64)
    }

    /// Pack an invisible pointer.
    #[inline]
    pub fn invisible(a: HeapAddr) -> Word {
        Word(((a.0 as u64) << 3) | Tag::Invisible as u64)
    }

    /// Pack a free-list link. `next` of `None` encodes the end of list as
    /// the all-ones address.
    #[inline]
    pub fn free_link(next: Option<HeapAddr>) -> Word {
        let a = next.map_or(u32::MAX, |h| h.0);
        Word(((a as u64) << 3) | Tag::FreeLink as u64)
    }

    /// Pack a forwarding pointer.
    #[inline]
    pub fn forward(a: HeapAddr) -> Word {
        Word(((a.0 as u64) << 3) | Tag::Forward as u64)
    }

    /// The tag of this word.
    #[inline]
    pub fn tag(self) -> Tag {
        Tag::from_bits(self.0)
    }

    /// Integer payload (sign-extended).
    ///
    /// # Panics
    /// Debug-panics if the tag is not [`Tag::Int`].
    #[inline]
    pub fn as_int(self) -> i64 {
        debug_assert_eq!(self.tag(), Tag::Int);
        (self.0 as i64) >> 3
    }

    /// Symbol payload.
    #[inline]
    pub fn as_sym(self) -> u32 {
        debug_assert_eq!(self.tag(), Tag::Sym);
        (self.0 >> 3) as u32
    }

    /// Address payload for pointer-like tags.
    #[inline]
    pub fn addr(self) -> HeapAddr {
        debug_assert!(matches!(
            self.tag(),
            Tag::Ptr | Tag::Invisible | Tag::Forward
        ));
        HeapAddr((self.0 >> 3) as u32)
    }

    /// Free-link payload.
    #[inline]
    pub fn free_next(self) -> Option<HeapAddr> {
        debug_assert_eq!(self.tag(), Tag::FreeLink);
        let a = (self.0 >> 3) as u32;
        (a != u32::MAX).then_some(HeapAddr(a))
    }

    /// True for `nil`.
    #[inline]
    pub fn is_nil(self) -> bool {
        self.tag() == Tag::Nil
    }

    /// True for ordinary pointers.
    #[inline]
    pub fn is_ptr(self) -> bool {
        self.tag() == Tag::Ptr
    }

    /// True for atoms in the Lisp sense (nil, int, sym).
    #[inline]
    pub fn is_atom(self) -> bool {
        matches!(self.tag(), Tag::Nil | Tag::Int | Tag::Sym)
    }

    /// Raw bits, for hashing/serialization.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstruct a word from raw bits previously produced by
    /// [`Word::bits`]. Every bit pattern is a valid word (the low three
    /// bits select a [`Tag`]), so this is total; callers deserializing
    /// untrusted bytes should still validate tags against context.
    #[inline]
    pub fn from_bits(bits: u64) -> Word {
        Word(bits)
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tag() {
            Tag::Nil => write!(f, "nil"),
            Tag::Int => write!(f, "{}", self.as_int()),
            Tag::Sym => write!(f, "#sym{}", self.as_sym()),
            Tag::Ptr => write!(f, "*{}", self.addr()),
            Tag::Invisible => write!(f, "~{}", self.addr()),
            Tag::FreeLink => write!(f, "free->{:?}", self.free_next()),
            Tag::Forward => write!(f, "fwd->{}", self.addr()),
            Tag::Unused => write!(f, "?"),
        }
    }
}

/// A raw arena of tagged words with unchecked access on the hot path.
///
/// Bounds are validated with `debug_assert!`; release builds use
/// `get_unchecked`, which is sound because every `HeapAddr` handed out by
/// the allocators in this crate indexes a live slot and slots are never
/// removed (only recycled through free lists).
pub struct Arena {
    words: Vec<u64>,
}

impl Arena {
    /// Create an arena of `len` words, all [`Word::UNUSED`].
    pub fn new(len: usize) -> Self {
        Arena {
            words: vec![Word::UNUSED.bits(); len],
        }
    }

    /// Create an arena of `len` zero words, straight from the
    /// allocator's zero pages — no memset touches the arena, so a
    /// multi-megabyte arena costs nothing until written. Only for
    /// allocators that never read a word before writing it (a zero word
    /// decodes as tagged data, not [`Word::UNUSED`]).
    pub fn new_zeroed(len: usize) -> Self {
        Arena {
            words: vec![0u64; len],
        }
    }

    /// Number of words.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Grow to at least `len` words.
    pub fn grow_to(&mut self, len: usize) {
        if len > self.words.len() {
            self.words.resize(len, Word::UNUSED.bits());
        }
    }

    /// Read word `i`.
    #[inline]
    pub fn read(&self, i: usize) -> Word {
        debug_assert!(i < self.words.len(), "arena read {i} out of bounds");
        // SAFETY: allocators only hand out in-bounds indices; checked in
        // debug builds above.
        Word(unsafe { *self.words.get_unchecked(i) })
    }

    /// Write word `i`.
    #[inline]
    pub fn write(&mut self, i: usize, w: Word) {
        debug_assert!(i < self.words.len(), "arena write {i} out of bounds");
        // SAFETY: as in `read`.
        unsafe {
            *self.words.get_unchecked_mut(i) = w.bits();
        }
    }

    /// Raw word storage, for checkpoint serialization.
    pub(crate) fn raw_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild an arena from words captured by [`Arena::raw_words`].
    pub(crate) fn from_raw_words(words: Vec<u64>) -> Arena {
        Arena { words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip_with_sign() {
        for i in [
            0i64,
            1,
            -1,
            123456789,
            -123456789,
            (1 << 60) - 1,
            -(1 << 60),
        ] {
            let w = Word::int(i);
            assert_eq!(w.tag(), Tag::Int);
            assert_eq!(w.as_int(), i, "roundtrip of {i}");
        }
    }

    #[test]
    fn sym_roundtrip() {
        let w = Word::sym(42);
        assert_eq!(w.tag(), Tag::Sym);
        assert_eq!(w.as_sym(), 42);
    }

    #[test]
    fn ptr_roundtrip() {
        let w = Word::ptr(HeapAddr(7));
        assert!(w.is_ptr());
        assert_eq!(w.addr(), HeapAddr(7));
    }

    #[test]
    fn free_link_roundtrip() {
        assert_eq!(
            Word::free_link(Some(HeapAddr(9))).free_next(),
            Some(HeapAddr(9))
        );
        assert_eq!(Word::free_link(None).free_next(), None);
    }

    #[test]
    fn tag_discrimination() {
        assert!(Word::NIL.is_nil());
        assert!(Word::NIL.is_atom());
        assert!(Word::int(3).is_atom());
        assert!(Word::sym(0).is_atom());
        assert!(!Word::ptr(HeapAddr(0)).is_atom());
        assert_eq!(Word::invisible(HeapAddr(3)).tag(), Tag::Invisible);
        assert_eq!(Word::forward(HeapAddr(3)).tag(), Tag::Forward);
    }

    #[test]
    fn arena_read_write() {
        let mut a = Arena::new(4);
        assert_eq!(a.read(0).tag(), Tag::Unused);
        a.write(2, Word::int(-5));
        assert_eq!(a.read(2).as_int(), -5);
        a.grow_to(10);
        assert_eq!(a.len(), 10);
        assert_eq!(a.read(9).tag(), Tag::Unused);
    }
}
