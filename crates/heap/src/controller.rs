//! The heap memory controller (§4.3.3).
//!
//! The List Processor never touches raw cells; it asks the controller to
//! **read in** a list, **split** an object into its car and cdr parts,
//! **merge** two objects back into one, and **free** an object. Frees are
//! queued and serviced "whenever convenient", with a bounded queue for
//! flow control so that large amounts of heap never sit unreclaimed
//! (§4.3.3.1).

use crate::two_pointer::TwoPointerHeap;
use crate::word::{HeapAddr, Tag, Word};
use small_sexpr::SExpr;
use std::collections::VecDeque;

/// Result of splitting a heap object: the car and cdr pieces, each an
/// immediate atom or a pointer to a heap object of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitResult {
    /// The car piece.
    pub car: Word,
    /// The cdr piece.
    pub cdr: Word,
}

/// A piece handed across the LP/heap interface: an atom word or an
/// object address. (`Word` subsumes both; this alias documents intent.)
pub type Piece = Word;

/// Errors from the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The heap has no free cells.
    Exhausted,
    /// The operand word was an atom where an object was required.
    NotAnObject,
    /// The operand address does not name a well-formed heap cell
    /// (out of bounds, a forwarding cycle, or the second word of a
    /// coded pair). Surfaced instead of panicking so injected faults
    /// and corrupted structures degrade through typed errors.
    BadAddress,
    /// A transient fault: the operation failed this time but may succeed
    /// if retried (a bus glitch, a busy memory bank). Produced by the
    /// fault-injection layer ([`crate::faulty::FaultyController`]); the
    /// machine's bounded retry treats exactly this variant as retryable.
    Transient,
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::Exhausted => write!(f, "heap exhausted"),
            HeapError::NotAnObject => write!(f, "operand is not a heap object"),
            HeapError::BadAddress => write!(f, "operand address is not a well-formed heap cell"),
            HeapError::Transient => write!(f, "transient heap fault"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Activity counters for the controller.
#[derive(Debug, Default, Clone, Copy)]
pub struct ControllerStats {
    /// Split operations performed.
    pub splits: u64,
    /// Merge operations performed.
    pub merges: u64,
    /// Objects read in.
    pub read_ins: u64,
    /// Free requests queued.
    pub frees_queued: u64,
    /// Individual cells actually reclaimed.
    pub cells_freed: u64,
}

/// The interface the List Processor sees (§4.3.3). Implementations:
/// [`TwoPointerController`] here; the SMALL simulator also provides a
/// synthetic address-model implementation for the cache comparison.
pub trait HeapController {
    /// Read an s-expression into the heap; returns its value word.
    fn read_in(&mut self, expr: &SExpr) -> Result<Word, HeapError>;

    /// Split the object at `addr` into car and cdr pieces, consuming it.
    fn split(&mut self, addr: HeapAddr) -> Result<SplitResult, HeapError>;

    /// Read both pieces of the object at `addr` *without* consuming it.
    ///
    /// This is the access path of §4.3.2.3 overflow mode, where the LP
    /// operates heap-direct like a conventional machine. Stores whose
    /// split is inherently destructive (the structure-coded tables) keep
    /// the default, which reports the object as unreadable in place.
    fn peek(&self, addr: HeapAddr) -> Result<SplitResult, HeapError> {
        let _ = addr;
        Err(HeapError::NotAnObject)
    }

    /// Merge two pieces into a new object; inverse of split.
    fn merge(&mut self, car: Word, cdr: Word) -> Result<HeapAddr, HeapError>;

    /// Queue the object at `addr` for reclamation.
    fn free_object(&mut self, addr: HeapAddr);

    /// Reconstruct the s-expression for a value word (`writelist`).
    fn extract(&self, w: Word) -> SExpr;

    /// Activity counters.
    fn stats(&self) -> ControllerStats;
}

/// The reference controller over a [`TwoPointerHeap`].
pub struct TwoPointerController {
    heap: TwoPointerHeap,
    free_queue: VecDeque<HeapAddr>,
    /// Max queued frees before requests are serviced synchronously.
    queue_limit: usize,
    stats: ControllerStats,
}

impl TwoPointerController {
    /// Create a controller over a heap of `cells` cells with the given
    /// free-queue bound.
    pub fn new(cells: usize, queue_limit: usize) -> Self {
        TwoPointerController {
            heap: TwoPointerHeap::with_capacity(cells),
            free_queue: VecDeque::new(),
            queue_limit,
            stats: ControllerStats::default(),
        }
    }

    /// Read-only view of the backing heap.
    pub fn heap(&self) -> &TwoPointerHeap {
        &self.heap
    }

    /// Service up to `limit` queued free requests ("whenever
    /// convenient"). Each request reclaims a whole object by traversal.
    pub fn process_frees(&mut self, limit: usize) {
        for _ in 0..limit {
            let Some(root) = self.free_queue.pop_front() else {
                return;
            };
            self.reclaim(root);
        }
    }

    /// Pending free requests.
    pub fn pending_frees(&self) -> usize {
        self.free_queue.len()
    }

    /// Reclaim the object rooted at `root`, traversing its cells with an
    /// explicit stack (the "stack used temporarily" of §4.3.3.1).
    fn reclaim(&mut self, root: HeapAddr) {
        let mut stack = vec![root];
        while let Some(a) = stack.pop() {
            if self.heap.is_free(a) {
                // Defensive: already reclaimed via another queued request.
                continue;
            }
            let car = self.heap.raw_car(a);
            let cdr = self.heap.raw_cdr(a);
            if matches!(car.tag(), Tag::Ptr | Tag::Invisible) {
                stack.push(car.addr());
            }
            if matches!(cdr.tag(), Tag::Ptr | Tag::Invisible) {
                stack.push(cdr.addr());
            }
            self.heap.free_cell(a);
            self.stats.cells_freed += 1;
        }
    }

    /// Drain the whole free queue, then report free cell count.
    pub fn drain_and_free(&mut self) -> usize {
        self.process_frees(usize::MAX);
        self.heap.free()
    }
}

impl HeapController for TwoPointerController {
    fn read_in(&mut self, expr: &SExpr) -> Result<Word, HeapError> {
        self.stats.read_ins += 1;
        match self.heap.intern(expr) {
            Some(w) => Ok(w),
            None => {
                // Try to reclaim queued garbage, then retry once.
                self.process_frees(usize::MAX);
                self.heap.intern(expr).ok_or(HeapError::Exhausted)
            }
        }
    }

    fn split(&mut self, addr: HeapAddr) -> Result<SplitResult, HeapError> {
        if self.heap.is_free(addr) {
            return Err(HeapError::NotAnObject);
        }
        self.stats.splits += 1;
        let car = self.heap.car(addr);
        let cdr = self.heap.cdr(addr);
        // The original object ceases to exist; its root cell is freed.
        self.heap.free_cell(addr);
        self.stats.cells_freed += 1;
        Ok(SplitResult { car, cdr })
    }

    fn peek(&self, addr: HeapAddr) -> Result<SplitResult, HeapError> {
        if addr.index() >= self.heap.capacity() || self.heap.is_free(addr) {
            return Err(HeapError::NotAnObject);
        }
        Ok(SplitResult {
            car: self.heap.car(addr),
            cdr: self.heap.cdr(addr),
        })
    }

    fn merge(&mut self, car: Word, cdr: Word) -> Result<HeapAddr, HeapError> {
        self.stats.merges += 1;
        match self.heap.alloc(car, cdr) {
            Some(a) => Ok(a),
            None => {
                self.process_frees(usize::MAX);
                self.heap.alloc(car, cdr).ok_or(HeapError::Exhausted)
            }
        }
    }

    fn free_object(&mut self, addr: HeapAddr) {
        self.stats.frees_queued += 1;
        self.free_queue.push_back(addr);
        if self.free_queue.len() > self.queue_limit {
            // Flow control: service synchronously when the queue is full.
            self.process_frees(self.free_queue.len() - self.queue_limit);
        }
    }

    fn extract(&self, w: Word) -> SExpr {
        self.heap.extract(w)
    }

    fn stats(&self) -> ControllerStats {
        self.stats
    }
}

impl crate::persist::PersistableController for TwoPointerController {
    const KIND: &'static str = "two-pointer";

    fn export_image(&self) -> crate::persist::ControllerImage {
        let (arena, heap_scalars) = self.heap.export_state();
        let queue: Vec<u64> = self.free_queue.iter().map(|a| u64::from(a.0)).collect();
        let mut ctrl = vec![self.queue_limit as u64];
        ctrl.extend(crate::persist::stats_to_words(&self.stats));
        crate::persist::ControllerImage {
            kind: Self::KIND,
            sections: vec![
                ("arena", arena),
                ("heap", heap_scalars),
                ("queue", queue),
                ("ctrl", ctrl),
            ],
        }
    }

    fn import_image(
        image: &crate::persist::ControllerImage,
    ) -> Result<Self, crate::persist::ImageError> {
        use crate::persist::ImageError;
        if image.kind != Self::KIND {
            return Err(ImageError::WrongKind);
        }
        let heap = TwoPointerHeap::import_state(image.section("arena")?, image.section("heap")?)?;
        let queue = image
            .section("queue")?
            .iter()
            .map(|&w| {
                u32::try_from(w)
                    .map(HeapAddr)
                    .map_err(|_| ImageError::Malformed)
            })
            .collect::<Result<VecDeque<HeapAddr>, _>>()?;
        let ctrl = image.section("ctrl")?;
        if ctrl.len() != 6 {
            return Err(ImageError::Malformed);
        }
        Ok(TwoPointerController {
            heap,
            free_queue: queue,
            queue_limit: usize::try_from(ctrl[0]).map_err(|_| ImageError::Malformed)?,
            stats: crate::persist::stats_from_words(&ctrl[1..])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::{parse, print, Interner};

    fn ctl() -> (Interner, TwoPointerController) {
        (Interner::new(), TwoPointerController::new(256, 8))
    }

    #[test]
    fn read_in_and_extract() {
        let (mut i, mut c) = ctl();
        let e = parse("(a (b) c)", &mut i).unwrap();
        let w = c.read_in(&e).unwrap();
        assert_eq!(print(&c.extract(w), &i), "(a (b) c)");
        assert_eq!(c.stats().read_ins, 1);
    }

    #[test]
    fn split_returns_car_and_cdr_pieces() {
        let (mut i, mut c) = ctl();
        let e = parse("((a b) c d)", &mut i).unwrap();
        let w = c.read_in(&e).unwrap();
        let live_before = c.heap().live();
        let s = c.split(w.addr()).unwrap();
        assert_eq!(c.heap().live(), live_before - 1, "split consumes one cell");
        assert_eq!(print(&c.extract(s.car), &i), "(a b)");
        assert_eq!(print(&c.extract(s.cdr), &i), "(c d)");
    }

    #[test]
    fn split_of_single_element_list_yields_atoms() {
        let (mut i, mut c) = ctl();
        let w = c.read_in(&parse("(a)", &mut i).unwrap()).unwrap();
        let s = c.split(w.addr()).unwrap();
        assert_eq!(s.car.tag(), Tag::Sym);
        assert!(s.cdr.is_nil());
    }

    #[test]
    fn merge_is_inverse_of_split() {
        let (mut i, mut c) = ctl();
        let w = c.read_in(&parse("((a) (b))", &mut i).unwrap()).unwrap();
        let s = c.split(w.addr()).unwrap();
        let m = c.merge(s.car, s.cdr).unwrap();
        assert_eq!(print(&c.extract(Word::ptr(m)), &i), "((a) (b))");
    }

    #[test]
    fn frees_are_queued_then_serviced() {
        let (mut i, mut c) = ctl();
        let w = c.read_in(&parse("(a b c d)", &mut i).unwrap()).unwrap();
        let live = c.heap().live();
        c.free_object(w.addr());
        assert_eq!(c.heap().live(), live, "free is asynchronous");
        assert_eq!(c.pending_frees(), 1);
        c.process_frees(1);
        assert_eq!(c.heap().live(), 0);
        assert_eq!(c.stats().cells_freed, 4);
    }

    #[test]
    fn queue_limit_forces_synchronous_service() {
        let mut i = Interner::new();
        let mut c = TwoPointerController::new(256, 2);
        for _ in 0..4 {
            let w = c.read_in(&parse("(x)", &mut i).unwrap()).unwrap();
            c.free_object(w.addr());
        }
        assert!(c.pending_frees() <= 2, "queue must respect its bound");
    }

    #[test]
    fn read_in_reclaims_queued_garbage_under_pressure() {
        let mut i = Interner::new();
        let mut c = TwoPointerController::new(4, 16);
        let w = c.read_in(&parse("(a b c d)", &mut i).unwrap()).unwrap();
        c.free_object(w.addr());
        // Heap is "full" but the queue holds reclaimable garbage.
        let w2 = c.read_in(&parse("(e f g)", &mut i).unwrap()).unwrap();
        assert_eq!(print(&c.extract(w2), &i), "(e f g)");
    }

    #[test]
    fn split_of_freed_object_is_an_error() {
        let (mut i, mut c) = ctl();
        let w = c.read_in(&parse("(a)", &mut i).unwrap()).unwrap();
        c.free_object(w.addr());
        c.process_frees(usize::MAX);
        assert_eq!(c.split(w.addr()), Err(HeapError::NotAnObject));
    }
}
