//! Reference-counting heap management (Collins, §2.3.4).
//!
//! A count per cell of the extant pointers to it; a cell is garbage the
//! moment its count reaches zero. This wrapper mediates all pointer
//! writes so the counts stay consistent (the "distributed cost" the
//! thesis describes: every heap user pays a little on every operation).
//!
//! The classic drawbacks are faithfully reproduced and tested:
//!
//! * releasing a cell can trigger an **unbounded cascade** of child
//!   releases (the real-time hazard SMALL's lazy free-stack avoids),
//! * **circular garbage is never reclaimed** (see
//!   `cycles_leak_without_marking`).

use crate::two_pointer::TwoPointerHeap;
use crate::word::{HeapAddr, Tag, Word};

/// A reference-counted two-pointer heap.
pub struct RefCountHeap {
    heap: TwoPointerHeap,
    counts: Vec<u32>,
    /// Statistics: reference-count update operations performed.
    pub refops: u64,
    /// Statistics: the longest release cascade observed (in cells).
    pub max_cascade: usize,
}

impl RefCountHeap {
    /// Create a heap with room for `cells` cells.
    pub fn with_capacity(cells: usize) -> Self {
        RefCountHeap {
            heap: TwoPointerHeap::with_capacity(cells),
            counts: vec![0; cells],
            refops: 0,
            max_cascade: 0,
        }
    }

    /// Access the underlying heap read-only.
    pub fn heap(&self) -> &TwoPointerHeap {
        &self.heap
    }

    /// The reference count of a cell.
    pub fn count(&self, a: HeapAddr) -> u32 {
        self.counts[a.index()]
    }

    #[inline]
    fn incref_word(&mut self, w: Word) {
        if matches!(w.tag(), Tag::Ptr | Tag::Invisible) {
            self.counts[w.addr().index()] += 1;
            self.refops += 1;
        }
    }

    /// Allocate a cons whose result is held by the caller (count = 1).
    /// The pointees' counts are incremented.
    pub fn cons(&mut self, car: Word, cdr: Word) -> Option<HeapAddr> {
        let a = self.heap.alloc(car, cdr)?;
        self.counts[a.index()] = 1;
        self.incref_word(car);
        self.incref_word(cdr);
        Some(a)
    }

    /// Take an additional reference to a value.
    pub fn retain(&mut self, w: Word) {
        self.incref_word(w);
    }

    /// Release one reference to a value, cascading frees as counts hit
    /// zero. Returns the number of cells reclaimed by this release.
    pub fn release(&mut self, w: Word) -> usize {
        let mut stack: Vec<HeapAddr> = Vec::new();
        if matches!(w.tag(), Tag::Ptr | Tag::Invisible) {
            stack.push(w.addr());
        }
        let mut freed = 0;
        let mut cascade = 0;
        while let Some(a) = stack.pop() {
            self.refops += 1;
            let c = &mut self.counts[a.index()];
            debug_assert!(*c > 0, "release of zero-count cell {a}");
            *c -= 1;
            if *c == 0 {
                cascade += 1;
                let car = self.heap.raw_car(a);
                let cdr = self.heap.raw_cdr(a);
                if matches!(car.tag(), Tag::Ptr | Tag::Invisible) {
                    stack.push(car.addr());
                }
                if matches!(cdr.tag(), Tag::Ptr | Tag::Invisible) {
                    stack.push(cdr.addr());
                }
                self.heap.free_cell(a);
                freed += 1;
            }
        }
        self.max_cascade = self.max_cascade.max(cascade);
        freed
    }

    /// `car` with no count change (reading does not create a reference in
    /// this model; the caller retains if it stores the value).
    pub fn car(&self, a: HeapAddr) -> Word {
        self.heap.car(a)
    }

    /// `cdr` with no count change.
    pub fn cdr(&self, a: HeapAddr) -> Word {
        self.heap.cdr(a)
    }

    /// `rplaca` with write barrier: old car released, new car retained.
    pub fn rplaca(&mut self, a: HeapAddr, w: Word) {
        let old = self.heap.raw_car(a);
        self.incref_word(w);
        self.heap.rplaca(a, w);
        self.release(old);
    }

    /// `rplacd` with write barrier.
    pub fn rplacd(&mut self, a: HeapAddr, w: Word) {
        let old = self.heap.raw_cdr(a);
        self.incref_word(w);
        self.heap.rplacd(a, w);
        self.release(old);
    }

    /// Live cell count.
    pub fn live(&self) -> usize {
        self.heap.live()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_frees_immediately() {
        let mut h = RefCountHeap::with_capacity(8);
        let a = h.cons(Word::int(1), Word::NIL).unwrap();
        assert_eq!(h.live(), 1);
        assert_eq!(h.release(Word::ptr(a)), 1);
        assert_eq!(h.live(), 0);
    }

    #[test]
    fn shared_cell_survives_one_release() {
        let mut h = RefCountHeap::with_capacity(8);
        let shared = h.cons(Word::int(7), Word::NIL).unwrap();
        let a = h.cons(Word::ptr(shared), Word::NIL).unwrap();
        let b = h.cons(Word::ptr(shared), Word::NIL).unwrap();
        assert_eq!(h.count(shared), 3); // caller + a + b
        h.release(Word::ptr(shared)); // caller drops its reference
        assert_eq!(h.release(Word::ptr(a)), 1);
        assert_eq!(h.live(), 2); // b and shared
        assert_eq!(h.release(Word::ptr(b)), 2);
        assert_eq!(h.live(), 0);
    }

    #[test]
    fn release_cascade_is_unbounded() {
        // A 100-cell list releases in one cascade — the real-time hazard.
        let mut h = RefCountHeap::with_capacity(128);
        let mut tail = Word::NIL;
        for i in 0..100 {
            let a = h.cons(Word::int(i), tail).unwrap();
            if matches!(tail.tag(), Tag::Ptr) {
                // list spine holds the only ref now
                h.release(tail);
            }
            tail = Word::ptr(a);
        }
        assert_eq!(h.live(), 100);
        assert_eq!(h.release(tail), 100);
        assert_eq!(h.max_cascade, 100);
        assert_eq!(h.live(), 0);
    }

    #[test]
    fn cycles_leak_without_marking() {
        let mut h = RefCountHeap::with_capacity(8);
        let a = h.cons(Word::int(1), Word::NIL).unwrap();
        let b = h.cons(Word::int(2), Word::ptr(a)).unwrap();
        h.rplacd(a, Word::ptr(b)); // cycle a <-> b
                                   // Drop both external references.
        h.release(Word::ptr(a));
        h.release(Word::ptr(b));
        // Both cells leak: counts never hit zero.
        assert_eq!(h.live(), 2, "reference counting cannot reclaim cycles");
        assert!(h.count(a) > 0 && h.count(b) > 0);
    }

    #[test]
    fn rplaca_write_barrier_frees_old_target() {
        let mut h = RefCountHeap::with_capacity(8);
        let old = h.cons(Word::int(1), Word::NIL).unwrap();
        let holder = h.cons(Word::ptr(old), Word::NIL).unwrap();
        h.release(Word::ptr(old)); // only holder refers to `old` now
        assert_eq!(h.live(), 2);
        h.rplaca(holder, Word::int(5));
        assert_eq!(h.live(), 1, "old car must be reclaimed by the barrier");
    }

    #[test]
    fn refops_are_counted() {
        let mut h = RefCountHeap::with_capacity(8);
        let a = h.cons(Word::int(1), Word::NIL).unwrap();
        let before = h.refops;
        h.retain(Word::ptr(a));
        assert_eq!(h.refops, before + 1);
    }
}
