//! Mark-and-sweep collection (Schorr/Waite lineage, §2.3.4).
//!
//! All accessible cells are marked starting from a root set, following
//! car/cdr pointers; unmarked live cells are swept onto the free list.
//! Marking costs one bit per cell, kept in a side bitmap (the thesis
//! machines keep it in the tag word).

use crate::two_pointer::TwoPointerHeap;
use crate::word::{HeapAddr, Tag, Word};

/// A reusable mark-and-sweep collector for a [`TwoPointerHeap`].
#[derive(Default)]
pub struct MarkSweep {
    marks: Vec<u64>,
    /// Explicit mark stack (avoids unbounded recursion on long lists).
    stack: Vec<HeapAddr>,
    /// Statistics: collections run.
    pub collections: u64,
    /// Statistics: total cells reclaimed.
    pub reclaimed: u64,
}

impl MarkSweep {
    /// Create a collector.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn mark_bit(&mut self, a: HeapAddr) -> bool {
        let (w, b) = (a.index() / 64, a.index() % 64);
        let old = self.marks[w] >> b & 1 == 1;
        self.marks[w] |= 1 << b;
        old
    }

    /// Collect garbage: mark from `roots`, sweep everything unmarked.
    /// Returns the number of cells reclaimed.
    pub fn collect(&mut self, heap: &mut TwoPointerHeap, roots: &[Word]) -> usize {
        self.collections += 1;
        self.marks.clear();
        self.marks.resize(heap.capacity().div_ceil(64), 0);

        // Mark phase.
        for r in roots {
            self.push_word(*r);
        }
        while let Some(a) = self.stack.pop() {
            if self.mark_bit(a) {
                continue;
            }
            let car = heap.raw_car(a);
            let cdr = heap.raw_cdr(a);
            self.push_word(car);
            self.push_word(cdr);
        }

        // Sweep phase.
        let mut freed = 0;
        let live: Vec<HeapAddr> = heap.live_cells().collect();
        for a in live {
            let (w, b) = (a.index() / 64, a.index() % 64);
            if self.marks[w] >> b & 1 == 0 {
                heap.free_cell(a);
                freed += 1;
            }
        }
        self.reclaimed += freed as u64;
        freed
    }

    #[inline]
    fn push_word(&mut self, w: Word) {
        if matches!(w.tag(), Tag::Ptr | Tag::Invisible) {
            self.stack.push(w.addr());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::{parse, print, Interner};

    #[test]
    fn unreferenced_cells_are_reclaimed() {
        let mut h = TwoPointerHeap::with_capacity(16);
        let keep = h.alloc(Word::int(1), Word::NIL).unwrap();
        let _drop1 = h.alloc(Word::int(2), Word::NIL).unwrap();
        let _drop2 = h.alloc(Word::int(3), Word::NIL).unwrap();
        let mut gc = MarkSweep::new();
        let freed = gc.collect(&mut h, &[Word::ptr(keep)]);
        assert_eq!(freed, 2);
        assert_eq!(h.live(), 1);
        assert_eq!(h.car(keep).as_int(), 1);
    }

    #[test]
    fn reachable_structure_survives() {
        let mut i = Interner::new();
        let mut h = TwoPointerHeap::with_capacity(64);
        let e = parse("(a (b c) d)", &mut i).unwrap();
        let w = h.intern(&e).unwrap();
        let _garbage = h.intern(&parse("(x y z)", &mut i).unwrap()).unwrap();
        let mut gc = MarkSweep::new();
        let freed = gc.collect(&mut h, &[w]);
        assert_eq!(freed, 3);
        assert_eq!(print(&h.extract(w), &i), "(a (b c) d)");
    }

    #[test]
    fn cycles_are_collected() {
        // Mark-sweep reclaims circular garbage — the advantage over
        // reference counting the thesis highlights (§2.3.4).
        let mut h = TwoPointerHeap::with_capacity(8);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        let b = h.alloc(Word::int(2), Word::ptr(a)).unwrap();
        h.rplacd(a, Word::ptr(b)); // a <-> b cycle
        let mut gc = MarkSweep::new();
        let freed = gc.collect(&mut h, &[]);
        assert_eq!(freed, 2);
        assert_eq!(h.live(), 0);
    }

    #[test]
    fn cycles_reachable_from_roots_survive() {
        let mut h = TwoPointerHeap::with_capacity(8);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        let b = h.alloc(Word::int(2), Word::ptr(a)).unwrap();
        h.rplacd(a, Word::ptr(b));
        let mut gc = MarkSweep::new();
        assert_eq!(gc.collect(&mut h, &[Word::ptr(a)]), 0);
        assert_eq!(h.live(), 2);
    }

    #[test]
    fn shared_structure_marked_once() {
        let mut h = TwoPointerHeap::with_capacity(8);
        let shared = h.alloc(Word::int(7), Word::NIL).unwrap();
        let a = h.alloc(Word::ptr(shared), Word::NIL).unwrap();
        let b = h.alloc(Word::ptr(shared), Word::NIL).unwrap();
        let mut gc = MarkSweep::new();
        assert_eq!(gc.collect(&mut h, &[Word::ptr(a), Word::ptr(b)]), 0);
    }

    #[test]
    fn collect_then_allocate_reuses_space() {
        let mut h = TwoPointerHeap::with_capacity(4);
        for _ in 0..4 {
            h.alloc(Word::int(0), Word::NIL).unwrap();
        }
        assert!(h.alloc(Word::int(1), Word::NIL).is_none());
        let mut gc = MarkSweep::new();
        gc.collect(&mut h, &[]);
        assert!(h.alloc(Word::int(1), Word::NIL).is_some());
    }
}
