//! Garbage collection for the two-pointer heap (§2.3.4).
//!
//! The thesis surveys the two families of garbage detection — **marking**
//! and **reference counting** — plus **copying** collectors (Baker-style,
//! incremental). All three are implemented here as substrates/baselines;
//! the SMALL machine itself reclaims transient cells through the LPT
//! (§5.3.2) and only needs the heap-level collectors for long-lived
//! structure.

pub mod copying;
pub mod mark_sweep;
pub mod refcount;

pub use copying::CopyingHeap;
pub use mark_sweep::MarkSweep;
pub use refcount::RefCountHeap;
