//! Semispace copying collection, with Baker-style incremental operation
//! (§2.3.4, after Baker 1978).
//!
//! The heap is divided into two semispaces, *fromspace* and *tospace*.
//! A **flip** evacuates reachable cells from fromspace to tospace
//! (Cheney scan), leaving forwarding pointers behind. In incremental
//! mode the scan is metered: a bounded number of cells is relocated per
//! allocation, and a **read barrier** on `car`/`cdr` evacuates any
//! fromspace cell the mutator touches — so the mutator only ever sees
//! tospace pointers, Baker's invariant.

use crate::word::{HeapAddr, Tag, Word};

const SPACE_SHIFT: u32 = 30;
const IDX_MASK: u32 = (1 << SPACE_SHIFT) - 1;

#[inline]
fn make_addr(space: usize, idx: usize) -> HeapAddr {
    HeapAddr(((space as u32) << SPACE_SHIFT) | idx as u32)
}

#[inline]
fn space_of(a: HeapAddr) -> usize {
    (a.0 >> SPACE_SHIFT) as usize
}

#[inline]
fn idx_of(a: HeapAddr) -> usize {
    (a.0 & IDX_MASK) as usize
}

/// A self-contained copying heap (it owns its cells rather than wrapping
/// [`crate::TwoPointerHeap`], because cell addresses move under it).
pub struct CopyingHeap {
    spaces: [Vec<[Word; 2]>; 2],
    /// Index of the current tospace (allocation space).
    to: usize,
    /// Cheney scan pointer into tospace.
    scan: usize,
    gc_active: bool,
    semi_capacity: usize,
    /// Statistics: flips performed.
    pub flips: u64,
    /// Statistics: cells evacuated.
    pub evacuated: u64,
    /// Statistics: read-barrier evacuations (incremental mode).
    pub barrier_hits: u64,
}

impl CopyingHeap {
    /// Create a heap whose semispaces hold `cells` cells each.
    pub fn with_capacity(cells: usize) -> Self {
        assert!(cells < IDX_MASK as usize, "semispace too large");
        CopyingHeap {
            spaces: [Vec::with_capacity(cells), Vec::with_capacity(cells)],
            to: 0,
            scan: 0,
            gc_active: false,
            semi_capacity: cells,
            flips: 0,
            evacuated: 0,
            barrier_hits: 0,
        }
    }

    /// Cells allocated in the current tospace.
    pub fn used(&self) -> usize {
        self.spaces[self.to].len()
    }

    /// Whether an incremental collection is in progress.
    pub fn gc_active(&self) -> bool {
        self.gc_active
    }

    /// Allocate a cons cell. `None` when tospace is full (flip, or — in
    /// incremental mode — finish the scan, then retry).
    pub fn alloc(&mut self, car: Word, cdr: Word) -> Option<HeapAddr> {
        if self.spaces[self.to].len() >= self.semi_capacity {
            return None;
        }
        let idx = self.spaces[self.to].len();
        self.spaces[self.to].push([car, cdr]);
        Some(make_addr(self.to, idx))
    }

    /// Evacuate the cell at `a` (must be a fromspace address) and return
    /// its tospace address; idempotent via forwarding pointers.
    fn evacuate(&mut self, a: HeapAddr) -> HeapAddr {
        debug_assert_ne!(space_of(a), self.to, "evacuate of tospace cell");
        let from = 1 - self.to;
        let cell = self.spaces[from][idx_of(a)];
        if cell[0].tag() == Tag::Forward {
            return cell[0].addr();
        }
        let idx = self.spaces[self.to].len();
        assert!(idx < self.semi_capacity, "tospace overflow during GC");
        self.spaces[self.to].push(cell);
        let new = make_addr(self.to, idx);
        self.spaces[from][idx_of(a)][0] = Word::forward(new);
        self.evacuated += 1;
        new
    }

    /// Evacuate the target of a word if it points into fromspace.
    fn forward_word(&mut self, w: Word) -> Word {
        if self.gc_active
            && matches!(w.tag(), Tag::Ptr | Tag::Invisible)
            && space_of(w.addr()) != self.to
        {
            let new = self.evacuate(w.addr());
            match w.tag() {
                Tag::Ptr => Word::ptr(new),
                _ => Word::invisible(new),
            }
        } else {
            w
        }
    }

    /// Begin a collection: flip semispaces and evacuate the roots. In
    /// incremental mode follow with [`CopyingHeap::step`] calls; or call
    /// [`CopyingHeap::finish`] to complete eagerly.
    pub fn begin_collect(&mut self, roots: &mut [Word]) {
        assert!(!self.gc_active, "collection already in progress");
        self.flips += 1;
        self.to = 1 - self.to;
        self.spaces[self.to].clear();
        self.scan = 0;
        self.gc_active = true;
        for r in roots {
            *r = self.forward_word(*r);
        }
    }

    /// Scan up to `budget` tospace cells, evacuating their pointees.
    /// Returns `true` when the collection completed.
    pub fn step(&mut self, budget: usize) -> bool {
        if !self.gc_active {
            return true;
        }
        let mut done = 0;
        while self.scan < self.spaces[self.to].len() && done < budget {
            let [car, cdr] = self.spaces[self.to][self.scan];
            let ncar = self.forward_word(car);
            let ncdr = self.forward_word(cdr);
            self.spaces[self.to][self.scan] = [ncar, ncdr];
            self.scan += 1;
            done += 1;
        }
        if self.scan == self.spaces[self.to].len() {
            self.gc_active = false;
            // Fromspace is now entirely garbage.
            self.spaces[1 - self.to].clear();
            true
        } else {
            false
        }
    }

    /// Run the collection to completion.
    pub fn finish(&mut self) {
        while !self.step(usize::MAX) {}
    }

    /// Stop-and-copy convenience: begin + finish.
    pub fn collect(&mut self, roots: &mut [Word]) {
        self.begin_collect(roots);
        self.finish();
    }

    /// Resolve `a` through the read barrier (evacuating if needed), then
    /// chase invisible pointers.
    fn resolve(&mut self, mut a: HeapAddr) -> HeapAddr {
        loop {
            if self.gc_active && space_of(a) != self.to {
                self.barrier_hits += 1;
                a = self.evacuate(a);
            }
            let w = self.spaces[space_of(a)][idx_of(a)][0];
            if w.tag() == Tag::Invisible {
                a = w.addr();
            } else {
                return a;
            }
        }
    }

    /// `car` with read barrier: the returned word is always a tospace
    /// pointer (Baker's invariant).
    pub fn car(&mut self, a: HeapAddr) -> Word {
        let a = self.resolve(a);
        let w = self.spaces[space_of(a)][idx_of(a)][0];
        let w = self.forward_word(w);
        self.spaces[space_of(a)][idx_of(a)][0] = w;
        w
    }

    /// `cdr` with read barrier.
    pub fn cdr(&mut self, a: HeapAddr) -> Word {
        let a = self.resolve(a);
        let w = self.spaces[space_of(a)][idx_of(a)][1];
        let w = self.forward_word(w);
        self.spaces[space_of(a)][idx_of(a)][1] = w;
        w
    }

    /// `rplaca`.
    pub fn rplaca(&mut self, a: HeapAddr, w: Word) {
        let a = self.resolve(a);
        self.spaces[space_of(a)][idx_of(a)][0] = w;
    }

    /// `rplacd`.
    pub fn rplacd(&mut self, a: HeapAddr, w: Word) {
        let a = self.resolve(a);
        self.spaces[space_of(a)][idx_of(a)][1] = w;
    }

    /// Intern an s-expression. `None` on tospace exhaustion.
    pub fn intern(&mut self, expr: &small_sexpr::SExpr) -> Option<Word> {
        use small_sexpr::{Atom, SExpr};
        match expr {
            SExpr::Nil => Some(Word::NIL),
            SExpr::Atom(Atom::Int(i)) => Some(Word::int(*i)),
            SExpr::Atom(Atom::Sym(s)) => Some(Word::sym(s.0)),
            SExpr::Cons(c) => {
                let car = self.intern(&c.0)?;
                let cdr = self.intern(&c.1)?;
                self.alloc(car, cdr).map(Word::ptr)
            }
        }
    }

    /// Reconstruct the s-expression for a value word.
    pub fn extract(&mut self, w: Word) -> small_sexpr::SExpr {
        use small_sexpr::SExpr;
        match w.tag() {
            Tag::Nil => SExpr::Nil,
            Tag::Int => SExpr::int(w.as_int()),
            Tag::Sym => SExpr::sym(small_sexpr::Symbol(w.as_sym())),
            Tag::Ptr | Tag::Invisible => {
                let a = w.addr();
                let car = self.car(a);
                let cdr = self.cdr(a);
                SExpr::cons(self.extract(car), self.extract(cdr))
            }
            t => panic!("extract of tag {t:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::{parse, print, Interner};

    #[test]
    fn stop_and_copy_preserves_structure() {
        let mut i = Interner::new();
        let mut h = CopyingHeap::with_capacity(64);
        let e = parse("(a (b c) (d (e)))", &mut i).unwrap();
        let mut roots = vec![h.intern(&e).unwrap()];
        let _garbage = h.intern(&parse("(x y z)", &mut i).unwrap());
        let used_before = h.used();
        h.collect(&mut roots);
        assert!(h.used() < used_before, "garbage must not be copied");
        assert_eq!(print(&h.extract(roots[0]), &i), "(a (b c) (d (e)))");
    }

    #[test]
    fn roots_are_updated_in_place() {
        let mut h = CopyingHeap::with_capacity(16);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        let mut roots = vec![Word::ptr(a)];
        h.collect(&mut roots);
        assert_ne!(roots[0].addr(), a, "address must move to the new space");
        assert_eq!(h.car(roots[0].addr()).as_int(), 1);
    }

    #[test]
    fn shared_structure_copied_once() {
        let mut h = CopyingHeap::with_capacity(16);
        let shared = h.alloc(Word::int(7), Word::NIL).unwrap();
        let a = h.alloc(Word::ptr(shared), Word::NIL).unwrap();
        let b = h.alloc(Word::ptr(shared), Word::NIL).unwrap();
        let mut roots = vec![Word::ptr(a), Word::ptr(b)];
        h.collect(&mut roots);
        assert_eq!(h.used(), 3, "shared cell must be evacuated exactly once");
        let sa = h.car(roots[0].addr());
        let sb = h.car(roots[1].addr());
        assert_eq!(sa.addr(), sb.addr(), "sharing must be preserved");
    }

    #[test]
    fn cycles_survive_copying() {
        let mut h = CopyingHeap::with_capacity(16);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        let b = h.alloc(Word::int(2), Word::ptr(a)).unwrap();
        h.rplacd(a, Word::ptr(b));
        let mut roots = vec![Word::ptr(a)];
        h.collect(&mut roots);
        assert_eq!(h.used(), 2);
        let na = roots[0].addr();
        let nb = h.cdr(na).addr();
        assert_eq!(h.cdr(nb).addr(), na, "cycle preserved");
    }

    #[test]
    fn incremental_read_barrier_maintains_invariant() {
        let mut i = Interner::new();
        let mut h = CopyingHeap::with_capacity(128);
        let e = parse("(1 2 3 4 5 6 7 8)", &mut i).unwrap();
        let mut roots = vec![h.intern(&e).unwrap()];
        h.begin_collect(&mut roots);
        // Mutator touches the list mid-collection: every word it sees
        // must already be a tospace pointer.
        let mut cur = roots[0];
        let mut seen = Vec::new();
        while cur.is_ptr() {
            let a = cur.addr();
            assert_eq!(space_of(a), h.to, "mutator saw a fromspace pointer");
            seen.push(h.car(a).as_int());
            cur = h.cdr(a);
            // Interleave a little scan work, as alloc would.
            h.step(1);
        }
        h.finish();
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(print(&h.extract(roots[0]), &i), "(1 2 3 4 5 6 7 8)");
    }

    #[test]
    fn incremental_steps_bound_work() {
        let mut i = Interner::new();
        let mut h = CopyingHeap::with_capacity(256);
        let e = parse("(1 2 3 4 5 6 7 8 9 10)", &mut i).unwrap();
        let mut roots = vec![h.intern(&e).unwrap()];
        h.begin_collect(&mut roots);
        let mut steps = 0;
        while !h.step(2) {
            steps += 1;
            assert!(steps < 1000, "collection must terminate");
        }
        assert!(steps >= 2, "a 10-cell list needs several 2-cell steps");
    }

    #[test]
    fn alloc_during_incremental_gc() {
        let mut h = CopyingHeap::with_capacity(64);
        let a = h.alloc(Word::int(1), Word::NIL).unwrap();
        let mut roots = vec![Word::ptr(a)];
        h.begin_collect(&mut roots);
        // New allocation goes to tospace and survives the finish.
        let fresh = h.alloc(Word::int(42), Word::NIL).unwrap();
        h.finish();
        assert_eq!(h.car(fresh).as_int(), 42);
    }
}
