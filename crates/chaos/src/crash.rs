//! Crash-point chaos: kill/recover/resume campaigns over the durable
//! simulator path.
//!
//! Complements the heap-fault campaigns in the crate root with the
//! crash-consistency contract of `small-persist` +
//! [`run_sim_resumable`]:
//!
//! * for every planned kill point — the k-th journal append, with and
//!   without a torn partial write of the dying frame — the run dies
//!   with a typed [`PersistError::Crash`], is recovered from exactly
//!   the bytes the crash left durable, resumes, and finishes with the
//!   **byte-identical final checkpoint** and the **identical
//!   [`LptStats`] ledger** of the uninterrupted run;
//! * deliberate corruption — a flipped byte inside a committed journal
//!   frame, a truncated checkpoint — makes recovery **fail closed**
//!   with the matching typed [`PersistError`], never a panic and never
//!   a silently blended state.
//!
//! Everything is seeded and wall-clock-free: the same trace, parameters
//! and kill schedule reproduce the same report byte-for-byte, so a
//! failing case from CI replays locally with the `crash` binary.

use small_core::LptStats;
use small_metrics::JsonObject;
use small_persist::{CrashPlan, CrashStore, PersistError};
use small_simulator::{run_sim_resumable, SimParams, SimResult};
use small_trace::Trace;

/// The uninterrupted reference run a crash case is compared against.
#[derive(Debug, Clone)]
pub struct CrashBaseline {
    /// Final checkpoint bytes of the clean durable run.
    pub checkpoint: Vec<u8>,
    /// Its LPT counter ledger.
    pub lpt: LptStats,
    /// Primitives it executed.
    pub prims_executed: usize,
    /// Journal appends the clean run performed (the space of valid
    /// kill points).
    pub appends: u64,
}

/// Run the uninterrupted durable run and capture what recovery must
/// reproduce. Returns `None` if the clean run itself ends in a true
/// overflow or typed failure (campaign parameters should avoid that).
pub fn run_baseline(trace: &Trace, params: SimParams) -> Option<CrashBaseline> {
    let mut store = CrashStore::new();
    let r = run_sim_resumable(trace, params, &mut store).ok()?;
    if r.true_overflow || r.failure.is_some() {
        return None;
    }
    Some(CrashBaseline {
        checkpoint: store.checkpoint()?.to_vec(),
        lpt: r.lpt,
        prims_executed: r.prims_executed,
        appends: store.appends(),
    })
}

/// One kill/recover/resume case.
#[derive(Debug, Clone)]
pub struct CrashCaseOutcome {
    /// Workload seed.
    pub seed: u64,
    /// The 1-based journal append the crash plan killed.
    pub kill_at_append: u64,
    /// Bytes of the dying frame left durable (`None` = frame lost
    /// whole).
    pub torn_keep: Option<usize>,
    /// The plan actually fired ([`PersistError::Crash`] surfaced).
    pub crashed: bool,
    /// The recovered run's final checkpoint is byte-identical to the
    /// uninterrupted run's.
    pub state_identical: bool,
    /// The recovered run's [`LptStats`] ledger equals the baseline's.
    pub stats_identical: bool,
    /// The recovered run executed the same primitive count, with no
    /// overflow and no typed failure.
    pub result_identical: bool,
    /// Typed recovery error, if recovery itself failed (always a
    /// contract violation for a kill case).
    pub recovery_error: Option<String>,
}

impl CrashCaseOutcome {
    /// The crash-consistency contract for this kill point.
    pub fn pass(&self) -> bool {
        self.crashed
            && self.recovery_error.is_none()
            && self.state_identical
            && self.stats_identical
            && self.result_identical
    }

    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("seed", self.seed);
        o.field_u64("kill_at_append", self.kill_at_append);
        o.field_bool("torn", self.torn_keep.is_some());
        o.field_u64("torn_keep", self.torn_keep.unwrap_or(0) as u64);
        o.field_bool("crashed", self.crashed);
        o.field_bool("state_identical", self.state_identical);
        o.field_bool("stats_identical", self.stats_identical);
        o.field_bool("result_identical", self.result_identical);
        o.field_str(
            "recovery_error",
            self.recovery_error.as_deref().unwrap_or(""),
        );
        o.field_bool("pass", self.pass());
        o.finish()
    }
}

/// Kill the run at one planned append, recover, resume, and compare
/// the completed run against `base`.
pub fn run_crash_case(
    trace: &Trace,
    params: SimParams,
    base: &CrashBaseline,
    plan: CrashPlan,
) -> CrashCaseOutcome {
    let mut out = CrashCaseOutcome {
        seed: params.seed,
        kill_at_append: plan.kill_at_append,
        torn_keep: plan.torn_keep,
        crashed: false,
        state_identical: false,
        stats_identical: false,
        result_identical: false,
        recovery_error: None,
    };
    let mut store = CrashStore::with_plan(plan);
    match run_sim_resumable(trace, params, &mut store) {
        Err(PersistError::Crash { .. }) => out.crashed = true,
        Err(e) => {
            out.recovery_error = Some(format!("pre-crash error: {e}"));
            return out;
        }
        Ok(_) => return out, // plan never fired: kill point out of range
    }
    store.disarm();
    let r: SimResult = match run_sim_resumable(trace, params, &mut store) {
        Ok(r) => r,
        Err(e) => {
            out.recovery_error = Some(e.to_string());
            return out;
        }
    };
    out.state_identical = store.checkpoint() == Some(base.checkpoint.as_slice());
    out.stats_identical = r.lpt == base.lpt;
    out.result_identical = r.prims_executed == base.prims_executed
        && !r.true_overflow
        && r.failure.is_none()
        && store.journal().is_empty();
    out
}

/// One fail-closed corruption probe.
#[derive(Debug, Clone)]
pub struct CorruptionOutcome {
    /// Workload seed.
    pub seed: u64,
    /// What was damaged (`"journal-flip"` or `"checkpoint-truncate"`).
    pub kind: &'static str,
    /// The typed error recovery returned (empty if it wrongly
    /// succeeded).
    pub error: String,
    /// Recovery refused with the expected typed error.
    pub failed_closed: bool,
}

impl CorruptionOutcome {
    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("seed", self.seed);
        o.field_str("kind", self.kind);
        o.field_str("error", &self.error);
        o.field_bool("failed_closed", self.failed_closed);
        o.finish()
    }
}

/// Crash mid-run, damage the durable bytes, and require recovery to
/// fail closed with the matching typed [`PersistError`].
///
/// The crash is planned with `checkpoint_every = 0` so the journal is
/// guaranteed non-empty at the kill point (no rotation has emptied it).
pub fn run_corruption_cases(trace: &Trace, params: SimParams) -> Vec<CorruptionOutcome> {
    let params = params.with_checkpoint_every(0);
    let mut crashed = CrashStore::with_plan(CrashPlan {
        kill_at_append: 8,
        torn_keep: None,
    });
    let died = run_sim_resumable(trace, params, &mut crashed);
    crashed.disarm();
    let mut cases = Vec::new();
    if !matches!(died, Err(PersistError::Crash { .. })) || crashed.journal().is_empty() {
        cases.push(CorruptionOutcome {
            seed: params.seed,
            kind: "setup",
            error: "crash plan did not leave a journaled store".to_string(),
            failed_closed: false,
        });
        return cases;
    }

    // A flipped byte inside the first committed frame's payload: the
    // frame CRC must catch it.
    let mut flipped = crashed.clone();
    flipped.flip_journal_byte(8);
    let err = run_sim_resumable(trace, params, &mut flipped);
    cases.push(CorruptionOutcome {
        seed: params.seed,
        kind: "journal-flip",
        error: err
            .as_ref()
            .err()
            .map(|e| e.to_string())
            .unwrap_or_default(),
        failed_closed: matches!(err, Err(PersistError::CorruptJournal { .. })),
    });

    // A checkpoint chopped mid-payload: the envelope must refuse it.
    let mut chopped = crashed.clone();
    let len = chopped.checkpoint().map_or(0, <[u8]>::len);
    chopped.truncate_checkpoint(len / 2);
    let err = run_sim_resumable(trace, params, &mut chopped);
    cases.push(CorruptionOutcome {
        seed: params.seed,
        kind: "checkpoint-truncate",
        error: err
            .as_ref()
            .err()
            .map(|e| e.to_string())
            .unwrap_or_default(),
        failed_closed: matches!(err, Err(PersistError::CorruptCheckpoint(_))),
    });
    cases
}

/// A whole crash-point campaign: per seed, an uninterrupted baseline,
/// a sweep of kill points across the append space (cycling torn-write
/// offsets), and the corruption probes.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Name of the trace the campaign replayed.
    pub trace: String,
    /// Kill/recover/resume cases, in (seed, kill point) order.
    pub cases: Vec<CrashCaseOutcome>,
    /// Fail-closed corruption probes.
    pub corruption: Vec<CorruptionOutcome>,
    /// Seeds whose clean run was unusable as a baseline (aborted or
    /// overflowed — a campaign-parameter bug).
    pub skipped_seeds: Vec<u64>,
}

impl CrashReport {
    /// Every kill point recovered byte-identically, every corruption
    /// probe failed closed, and no seed was skipped.
    pub fn all_pass(&self) -> bool {
        self.skipped_seeds.is_empty()
            && self.cases.iter().all(CrashCaseOutcome::pass)
            && self.corruption.iter().all(|c| c.failed_closed)
    }

    /// Deterministic JSON: no wall-clock data, stable ordering —
    /// byte-identical across runs for the same campaign.
    pub fn to_json(&self) -> String {
        let cases: Vec<String> = self.cases.iter().map(CrashCaseOutcome::to_json).collect();
        let corruption: Vec<String> = self
            .corruption
            .iter()
            .map(CorruptionOutcome::to_json)
            .collect();
        let mut o = JsonObject::new();
        o.field_str("trace", &self.trace);
        o.field_u64("kill_points", self.cases.len() as u64);
        o.field_u64(
            "kill_points_passed",
            self.cases.iter().filter(|c| c.pass()).count() as u64,
        );
        o.field_u64("skipped_seeds", self.skipped_seeds.len() as u64);
        o.field_bool("all_pass", self.all_pass());
        o.field_raw("cases", &format!("[{}]", cases.join(",")));
        o.field_raw("corruption", &format!("[{}]", corruption.join(",")));
        o.finish()
    }

    /// A human-readable summary, one line per failing case.
    pub fn summary_table(&self) -> String {
        let mut s = format!(
            "crash campaign over '{}': {} kill points ({} passed), {} corruption probes, all_pass={}\n",
            self.trace,
            self.cases.len(),
            self.cases.iter().filter(|c| c.pass()).count(),
            self.corruption.len(),
            self.all_pass(),
        );
        for c in self.cases.iter().filter(|c| !c.pass()) {
            s.push_str(&format!(
                "  FAIL seed {} kill {} torn {:?}: crashed={} state={} stats={} result={} err={:?}\n",
                c.seed,
                c.kill_at_append,
                c.torn_keep,
                c.crashed,
                c.state_identical,
                c.stats_identical,
                c.result_identical,
                c.recovery_error,
            ));
        }
        for c in self.corruption.iter().filter(|c| !c.failed_closed) {
            s.push_str(&format!(
                "  FAIL seed {} corruption {}: did not fail closed ({})\n",
                c.seed, c.kind, c.error
            ));
        }
        s
    }
}

/// The torn-write offsets kill points cycle through: a lost frame, an
/// empty torn prefix, a cut inside the length header, and a cut inside
/// the payload.
const TORN_CYCLE: [Option<usize>; 4] = [None, Some(0), Some(3), Some(11)];

/// Spread `per_seed` kill points evenly across an `appends`-long run,
/// cycling torn-write offsets so both lost and torn tails are hit.
pub fn kill_points(appends: u64, per_seed: usize) -> Vec<CrashPlan> {
    let n = per_seed.max(1) as u64;
    let stride = (appends / n).max(1);
    (0..n)
        .map(|k| CrashPlan {
            kill_at_append: (k * stride + 1).min(appends),
            torn_keep: TORN_CYCLE[(k as usize) % TORN_CYCLE.len()],
        })
        .take(appends.min(n) as usize)
        .collect()
}

/// Run the full campaign: for each seed, an uninterrupted baseline,
/// `per_seed` kill/recover/resume cases spread across its append
/// space, and the two corruption probes.
pub fn run_crash_campaign(
    trace: &Trace,
    base_params: SimParams,
    seeds: &[u64],
    per_seed: usize,
) -> CrashReport {
    let mut report = CrashReport {
        trace: trace.name.clone(),
        cases: Vec::new(),
        corruption: Vec::new(),
        skipped_seeds: Vec::new(),
    };
    for &seed in seeds {
        let params = base_params.with_seed(seed);
        let Some(base) = run_baseline(trace, params) else {
            report.skipped_seeds.push(seed);
            continue;
        };
        for plan in kill_points(base.appends, per_seed) {
            report
                .cases
                .push(run_crash_case(trace, params, &base, plan));
        }
        report
            .corruption
            .extend(run_corruption_cases(trace, params));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_workloads::synthetic;

    fn trace(prims: usize) -> Trace {
        let mut p = synthetic::table_5_1("slang");
        p.primitives = prims;
        p.functions = (prims / 4).max(8);
        synthetic::generate(&p)
    }

    fn params() -> SimParams {
        // A small backing heap keeps checkpoint images (which embed the
        // whole arena) cheap; these workloads use a few thousand cells.
        SimParams {
            heap_cells: 1 << 14,
            ..SimParams::default()
        }
        .with_table(512)
        .with_checkpoint_every(48)
    }

    /// The acceptance gate: ≥100 seeded kill points (including torn
    /// tails), every one recovering to the byte-identical final
    /// checkpoint and identical stats ledger, and every corruption
    /// probe failing closed with the right typed error.
    #[test]
    fn hundred_kill_points_recover_byte_identically() {
        let t = trace(150);
        let r = run_crash_campaign(&t, params(), &[11, 23, 47], 35);
        assert!(r.cases.len() >= 100, "only {} kill points", r.cases.len());
        assert!(
            r.cases.iter().any(|c| c.torn_keep.is_some())
                && r.cases.iter().any(|c| c.torn_keep.is_none()),
            "both torn and lost tails must be exercised"
        );
        assert_eq!(r.corruption.len(), 6);
        assert!(r.all_pass(), "{}", r.summary_table());
    }

    #[test]
    fn report_json_is_deterministic() {
        let t = trace(120);
        let a = run_crash_campaign(&t, params(), &[11], 6);
        let b = run_crash_campaign(&t, params(), &[11], 6);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.all_pass(), "{}", a.summary_table());
    }

    #[test]
    fn corruption_probes_fail_closed() {
        let t = trace(120);
        let cases = run_corruption_cases(&t, params().with_seed(11));
        assert_eq!(cases.len(), 2);
        assert!(cases.iter().all(|c| c.failed_closed), "{cases:?}");
        assert!(cases.iter().all(|c| !c.error.is_empty()));
    }
}
