//! `crash` — seeded crash-point campaigns over the durable simulator.
//!
//! ```text
//! crash [--seeds 11,23,47] [--per-seed N] [--prims P]
//!       [--checkpoint-every K] [--out PATH]
//! ```
//!
//! For each seed: run the workload to completion through
//! `run_sim_resumable` (checkpoints + write-ahead journal), then kill
//! it at `--per-seed` planned journal appends — cycling lost and torn
//! tails — recover, resume, and require the final checkpoint bytes and
//! LPT stats ledger to equal the uninterrupted run's. Two corruption
//! probes per seed (flipped journal byte, truncated checkpoint) must
//! fail closed with typed errors. The report is deterministic JSON
//! (byte-identical across runs for the same arguments); the process
//! exits nonzero on any contract violation.

use small_chaos::crash::run_crash_campaign;
use small_simulator::SimParams;
use small_workloads::synthetic;
use std::process::ExitCode;

/// The CI crash-smoke job's pinned seeds.
const PINNED_SEEDS: [u64; 3] = [11, 23, 47];

struct Args {
    seeds: Vec<u64>,
    per_seed: usize,
    prims: usize,
    checkpoint_every: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: PINNED_SEEDS.to_vec(),
        per_seed: 35,
        prims: 300,
        checkpoint_every: 48,
        out: "results/crash_report.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--seeds" => {
                args.seeds = val("--seeds")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u64>()
                            .map_err(|e| format!("bad seed: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--per-seed" => {
                args.per_seed = val("--per-seed")?
                    .parse()
                    .map_err(|e| format!("bad per-seed: {e}"))?;
            }
            "--prims" => {
                args.prims = val("--prims")?
                    .parse()
                    .map_err(|e| format!("bad prims: {e}"))?;
            }
            "--checkpoint-every" => {
                args.checkpoint_every = val("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("bad checkpoint-every: {e}"))?;
            }
            "--out" => args.out = val("--out")?,
            "--help" | "-h" => {
                return Err("usage: crash [--seeds a,b,c] [--per-seed N] [--prims P] \
                     [--checkpoint-every K] [--out PATH]"
                    .to_string())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.seeds.is_empty() {
        return Err("no seeds given".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut p = synthetic::table_5_1("slang");
    p.primitives = args.prims;
    p.functions = (args.prims / 4).max(8);
    let trace = synthetic::generate(&p);

    // A small backing heap keeps checkpoint images (which embed the
    // whole arena) cheap; these workloads use a few thousand cells.
    let params = SimParams {
        heap_cells: 1 << 14,
        ..SimParams::default()
    }
    .with_table(512)
    .with_checkpoint_every(args.checkpoint_every);
    let report = run_crash_campaign(&trace, params, &args.seeds, args.per_seed);

    print!("{}", report.summary_table());

    let json = format!("{}\n", report.to_json());
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!("report written to {}", args.out);

    if report.all_pass() {
        ExitCode::SUCCESS
    } else {
        eprintln!("crash-consistency contract violated — see report");
        ExitCode::FAILURE
    }
}
