//! `netchaos` — deterministic network-fault chaos campaign for the
//! serving stack, with a byte-deterministic JSON report.
//!
//! ```text
//! netchaos [--seeds N | --seeds a,b,c] [--sessions N] [--requests N]
//!          [--kill-points a,b,c] [--out PATH]
//! ```
//!
//! For every `(seed, kill point)` pair: run a replicating primary
//! behind a seeded fault plan (torn frames, pinned-offset connection
//! resets under a retrying client, duplicated / delayed / corrupted
//! replica pulls), kill the primary at the pinned operation index, let
//! the standby's lease expire and self-promote, and compare every
//! reply byte-for-byte against an uninterrupted serial twin — plus
//! prove a re-sent pre-kill request is answered from the replicated
//! dedup window, not re-executed. Exit is nonzero on any divergence or
//! unsurvived fault. CI runs this twice and `cmp`s the reports.

use small_serve::gen::PINNED_SEEDS;
use small_serve::netchaos::{run_netchaos, NetChaosParams};
use std::process::ExitCode;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_list<T: std::str::FromStr>(spec: &str, what: &str) -> Result<Vec<T>, String> {
    spec.split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad {what}: {s}")))
        .collect()
}

fn parse_seeds(spec: &str) -> Result<Vec<u64>, String> {
    if spec.contains(',') {
        return parse_list(spec, "seed");
    }
    let n: usize = spec
        .parse()
        .map_err(|_| format!("bad seed count: {spec}"))?;
    if n == 0 || n > PINNED_SEEDS.len() {
        return Err(format!("--seeds must be 1..={}", PINNED_SEEDS.len()));
    }
    Ok(PINNED_SEEDS[..n].to_vec())
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut p = NetChaosParams::default();
    if let Some(s) = arg_value(&args, "--seeds") {
        p.seeds = parse_seeds(&s)?;
    }
    if let Some(s) = arg_value(&args, "--sessions") {
        p.sessions = s.parse().map_err(|_| "bad --sessions")?;
    }
    if let Some(s) = arg_value(&args, "--requests") {
        p.requests = s.parse().map_err(|_| "bad --requests")?;
    }
    if let Some(s) = arg_value(&args, "--kill-points") {
        p.kill_points = parse_list(&s, "kill point")?;
    }
    if p.kill_points.is_empty() {
        return Err("need at least one kill point".to_string());
    }
    let out =
        arg_value(&args, "--out").unwrap_or_else(|| "results/netchaos_report.json".to_string());

    let outcome = run_netchaos(&p).map_err(|e| e.to_string())?;
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
    }
    std::fs::write(&out, &outcome.report).map_err(|e| e.to_string())?;

    eprintln!(
        "netchaos: {} seeds x {} kill points ({} sessions x {} requests) -> {}",
        p.seeds.len(),
        p.kill_points.len(),
        p.sessions,
        p.requests,
        out
    );
    eprintln!(
        "netchaos: fault_points={} mismatches={}",
        outcome.fault_points, outcome.mismatches
    );
    if outcome.mismatches > 0 {
        eprintln!("netchaos: FAILED: a fault was not survived or the twin diverged");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("netchaos: {e}");
            ExitCode::FAILURE
        }
    }
}
