//! `clusterchaos` — replication-chain chaos campaign: kill the primary
//! twice, survive both, with a byte-deterministic JSON report.
//!
//! ```text
//! clusterchaos [--seeds N | --seeds a,b,c] [--sessions N] [--requests N]
//!              [--kill-points a,b,c] [--out PATH]
//! ```
//!
//! For every `(seed, first kill point)` pair: run a three-node chain —
//! sharded primary → relay standby S1 → relay standby S2 — under the
//! seeded netchaos fault discipline (torn frames, pinned-offset resets
//! under a cluster-aware failing-over client, duplicated / delayed /
//! corrupted pulls on both hops). Kill the primary at the pinned index;
//! S1's lease expires and S1 promotes on its own listener while still
//! shipping WAL to S2. Then kill the promoted node too; S2 promotes the
//! same way and serves the rest of the script plus a fully sequenced
//! epilogue. Every reply must be byte-identical to an uninterrupted
//! serial twin, and re-sent pre-kill mutations must be answered from
//! the replicated dedup windows across one and two promotions. Exit is
//! nonzero on any divergence. CI runs this twice and `cmp`s the
//! reports; retry/reconnect/redial counters are timing-dependent and
//! appear on stderr only.

use small_serve::clusterchaos::{run_clusterchaos, ClusterChaosParams};
use small_serve::gen::PINNED_SEEDS;
use std::process::ExitCode;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_list<T: std::str::FromStr>(spec: &str, what: &str) -> Result<Vec<T>, String> {
    spec.split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad {what}: {s}")))
        .collect()
}

fn parse_seeds(spec: &str) -> Result<Vec<u64>, String> {
    if spec.contains(',') {
        return parse_list(spec, "seed");
    }
    let n: usize = spec
        .parse()
        .map_err(|_| format!("bad seed count: {spec}"))?;
    if n == 0 || n > PINNED_SEEDS.len() {
        return Err(format!("--seeds must be 1..={}", PINNED_SEEDS.len()));
    }
    Ok(PINNED_SEEDS[..n].to_vec())
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut p = ClusterChaosParams::default();
    if let Some(s) = arg_value(&args, "--seeds") {
        p.seeds = parse_seeds(&s)?;
    }
    if let Some(s) = arg_value(&args, "--sessions") {
        p.sessions = s.parse().map_err(|_| "bad --sessions")?;
    }
    if let Some(s) = arg_value(&args, "--requests") {
        p.requests = s.parse().map_err(|_| "bad --requests")?;
    }
    if let Some(s) = arg_value(&args, "--kill-points") {
        p.kill_points = parse_list(&s, "kill point")?;
    }
    if p.kill_points.is_empty() {
        return Err("need at least one kill point".to_string());
    }
    let out =
        arg_value(&args, "--out").unwrap_or_else(|| "results/clusterchaos_report.json".to_string());

    let outcome = run_clusterchaos(&p).map_err(|e| e.to_string())?;
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
    }
    std::fs::write(&out, &outcome.report).map_err(|e| e.to_string())?;

    eprintln!(
        "clusterchaos: {} seeds x {} kill points ({} sessions x {} requests, chain of 3) -> {}",
        p.seeds.len(),
        p.kill_points.len(),
        p.sessions,
        p.requests,
        out
    );
    eprintln!(
        "clusterchaos: fault_points={} mismatches={}",
        outcome.fault_points, outcome.mismatches
    );
    // Timing-dependent client-side telemetry: stderr only, never in
    // the byte-compared report.
    eprintln!(
        "clusterchaos: client retries={} reconnects={} redials={}",
        outcome.client_retries, outcome.client_reconnects, outcome.client_redials
    );
    if outcome.mismatches > 0 {
        eprintln!("clusterchaos: FAILED: a fault was not survived or the twin diverged");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("clusterchaos: {e}");
            ExitCode::FAILURE
        }
    }
}
