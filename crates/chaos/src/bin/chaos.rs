//! `chaos` — replay seeded heap-fault schedules over the simulator.
//!
//! ```text
//! chaos [--seeds 11,23,47] [--count N] [--aggressive] [--prims P] [--out PATH]
//! ```
//!
//! Each seed drives one case at each of the two presets (mid-sized
//! abort-policy table, tiny degrade-policy table); the report is
//! written as deterministic JSON (byte-identical across runs for the
//! same arguments) and the process exits nonzero if any case violated
//! the robustness contract.

use small_chaos::{run_campaign, Severity};
use small_workloads::synthetic;
use std::process::ExitCode;

/// The CI smoke job's pinned seeds.
const PINNED_SEEDS: [u64; 3] = [11, 23, 47];

struct Args {
    seeds: Vec<u64>,
    severity: Severity,
    prims: usize,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: PINNED_SEEDS.to_vec(),
        severity: Severity::Standard,
        prims: 2_000,
        out: "results/chaos_report.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--seeds" => {
                args.seeds = val("--seeds")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u64>()
                            .map_err(|e| format!("bad seed: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--count" => {
                let n: u64 = val("--count")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
                args.seeds = (1..=n).collect();
            }
            "--aggressive" => args.severity = Severity::Aggressive,
            "--prims" => {
                args.prims = val("--prims")?
                    .parse()
                    .map_err(|e| format!("bad prims: {e}"))?;
            }
            "--out" => args.out = val("--out")?,
            "--help" | "-h" => {
                return Err("usage: chaos [--seeds a,b,c | --count N] [--aggressive] \
                     [--prims P] [--out PATH]"
                    .to_string())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.seeds.is_empty() {
        return Err("no seeds given".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut p = synthetic::table_5_1("slang");
    p.primitives = args.prims;
    p.functions = (args.prims / 4).max(8);
    let trace = synthetic::generate(&p);

    let (abort, degrade) = small_chaos::preset_params();
    let abort_r = run_campaign(&trace, abort, &args.seeds, args.severity);
    let degrade_r = run_campaign(&trace, degrade, &args.seeds, args.severity);

    print!("{}", abort_r.summary_table());
    print!("{}", degrade_r.summary_table());

    let json = format!(
        "{{\"abort\":{},\"degrade\":{}}}\n",
        abort_r.to_json(),
        degrade_r.to_json()
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!("report written to {}", args.out);

    if abort_r.all_pass() && degrade_r.all_pass() {
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos contract violated — see report");
        ExitCode::FAILURE
    }
}
