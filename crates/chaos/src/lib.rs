#![warn(missing_docs)]
//! Deterministic chaos harness for the SMALL reproduction.
//!
//! Replays a simulator workload twice per case — once over the plain
//! two-pointer heap controller and once over a
//! [`small_heap::FaultyController`] running a seeded, reproducible
//! fault schedule — and checks the robustness contract:
//!
//! * the faulted run **never panics**: it either completes with the
//!   same observable outcome as the fault-free run, or ends in a typed
//!   degraded state (`true_overflow` or a reported [`SimResult::failure`]);
//! * the fault ledger **reconciles exactly**: every transient failure
//!   the schedule injected was detected by the LP's retry machinery,
//!   and a run that completed recovered every one of them;
//! * withheld (delayed) frees all reach the heap once the injection
//!   window is flushed.
//!
//! Everything is seeded: the same trace + parameters + fault plan
//! reproduce the same case byte-for-byte, so a failing seed from CI can
//! be replayed locally with the `chaos` binary.
//!
//! The [`crash`] module extends the same discipline to crash
//! consistency: seeded kill points over the durable simulator path
//! (`run_sim_resumable`), byte-identity of recovered state, and
//! fail-closed corruption probes — replayable with the `crash` binary.

pub mod crash;

use small_core::OverflowPolicy;
use small_heap::controller::TwoPointerController;
use small_heap::{FaultPlan, FaultyController};
use small_metrics::{JsonObject, NoopSink};
use small_simulator::{run_sim, run_sim_on_controller, SimParams, SimResult};
use small_trace::Trace;

/// How hostile a case's fault schedule is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// [`FaultPlan::standard`] — ~3% faults per fallible op.
    Standard,
    /// [`FaultPlan::aggressive`] — ~12% faults, longer free delays.
    Aggressive,
}

impl Severity {
    fn plan(self, seed: u64) -> FaultPlan {
        match self {
            Severity::Standard => FaultPlan::standard(seed),
            Severity::Aggressive => FaultPlan::aggressive(seed),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Severity::Standard => "standard",
            Severity::Aggressive => "aggressive",
        }
    }
}

/// The observable outcome of one simulator run, reduced to the fields
/// the robustness contract compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Primitive events executed before completion/abort.
    pub prims_executed: usize,
    /// Whether the run ended on an unrecoverable LPT overflow.
    pub true_overflow: bool,
    /// A typed failure that ended the run early, if any.
    pub failure: Option<String>,
    /// Whether the LP entered §4.3.2.3 heap-direct overflow mode.
    pub degraded: bool,
}

impl RunSummary {
    fn of(r: &SimResult) -> Self {
        RunSummary {
            prims_executed: r.prims_executed,
            true_overflow: r.true_overflow,
            failure: r.failure.clone(),
            degraded: r.lpt.overflow_entries > 0,
        }
    }
}

/// One chaos case: a clean run and a faulted run of the same workload,
/// plus the reconciled fault ledger.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Seed of this case (drives both the workload and, mixed, the
    /// fault schedule).
    pub seed: u64,
    /// Fault-schedule severity.
    pub severity: Severity,
    /// The fault-free reference run.
    pub clean: RunSummary,
    /// The faulted run.
    pub faulty: RunSummary,
    /// Transient failures the schedule injected.
    pub injected: u64,
    /// Transient failures the LP detected.
    pub detected: u64,
    /// Transient failures the LP recovered from.
    pub recovered: u64,
    /// Frees the schedule withheld.
    pub delayed_frees: u64,
    /// Withheld frees that reached the heap after the final flush.
    pub flushed_frees: u64,
}

impl CaseOutcome {
    /// The faulted run reproduced the fault-free outcome exactly —
    /// including the case where the fault-free run itself ended in a
    /// typed failure (e.g. snapshotting a cyclic structure while
    /// degraded) and the faulted run reports the identical one.
    pub fn matches_clean(&self) -> bool {
        self.faulty.prims_executed == self.clean.prims_executed
            && self.faulty.true_overflow == self.clean.true_overflow
            && self.faulty.failure == self.clean.failure
    }

    /// The faulted run ended in an *accepted* typed degraded state:
    /// a reported true overflow, a typed failure, or heap-direct
    /// overflow-mode operation — never a panic, never silent
    /// divergence.
    pub fn degraded_through_typed_errors(&self) -> bool {
        self.faulty.true_overflow || self.faulty.failure.is_some() || self.faulty.degraded
    }

    /// Injected/detected/recovered reconcile exactly: every injected
    /// fault was detected, and a run that completed recovered all of
    /// them (a run that surfaced a failure is allowed unrecovered
    /// faults — they are exactly what it reported).
    pub fn counters_reconcile(&self) -> bool {
        self.injected == self.detected
            && (self.recovered == self.detected || self.faulty.failure.is_some())
            && self.delayed_frees == self.flushed_frees
    }

    /// The whole robustness contract for this case.
    pub fn pass(&self) -> bool {
        (self.matches_clean() || self.degraded_through_typed_errors()) && self.counters_reconcile()
    }

    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("seed", self.seed);
        o.field_str("severity", self.severity.name());
        o.field_u64("clean_prims", self.clean.prims_executed as u64);
        o.field_u64("faulty_prims", self.faulty.prims_executed as u64);
        o.field_bool("clean_true_overflow", self.clean.true_overflow);
        o.field_bool("faulty_true_overflow", self.faulty.true_overflow);
        o.field_str("failure", self.faulty.failure.as_deref().unwrap_or(""));
        o.field_bool("degraded", self.faulty.degraded);
        o.field_u64("injected", self.injected);
        o.field_u64("detected", self.detected);
        o.field_u64("recovered", self.recovered);
        o.field_u64("delayed_frees", self.delayed_frees);
        o.field_u64("flushed_frees", self.flushed_frees);
        o.field_bool("matches_clean", self.matches_clean());
        o.field_bool("counters_reconcile", self.counters_reconcile());
        o.field_bool("pass", self.pass());
        o.finish()
    }
}

/// Run one chaos case: `params.seed` drives the workload, and the fault
/// schedule is seeded from a fixed mix of the same seed so schedules
/// differ from workload RNG streams but stay reproducible.
pub fn run_case(trace: &Trace, params: SimParams, severity: Severity) -> CaseOutcome {
    let seed = params.seed;
    let plan = severity.plan(seed ^ 0x00C0_FFEE_F00D_CAFE);
    let clean = run_sim(trace, params, None);
    let controller = FaultyController::new(TwoPointerController::new(params.heap_cells, 256), plan);
    let (faulty, mut controller, _sink) =
        run_sim_on_controller(trace, params, None, controller, NoopSink);
    // Close the injection window: every withheld free must reach the
    // inner controller.
    controller.flush_all_delayed();
    let fs = controller.fault_stats();
    CaseOutcome {
        seed,
        severity,
        clean: RunSummary::of(&clean),
        faulty: RunSummary::of(&faulty),
        injected: fs.transient_total(),
        detected: faulty.lpt.faults_detected,
        recovered: faulty.lpt.faults_recovered,
        delayed_frees: fs.delayed_frees,
        flushed_frees: fs.flushed_frees,
    }
}

/// The outcome of a whole seeded chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Name of the trace the campaign replayed.
    pub trace: String,
    /// Per-case outcomes, in seed order.
    pub cases: Vec<CaseOutcome>,
}

impl ChaosReport {
    /// Whether every case upheld the robustness contract.
    pub fn all_pass(&self) -> bool {
        self.cases.iter().all(CaseOutcome::pass)
    }

    /// Cases whose faulted run reproduced the clean outcome exactly.
    pub fn matched(&self) -> usize {
        self.cases.iter().filter(|c| c.matches_clean()).count()
    }

    /// Deterministic JSON: no wall-clock data, cases in stable seed
    /// order — byte-identical across runs and machines for the same
    /// campaign.
    pub fn to_json(&self) -> String {
        let cases: Vec<String> = self.cases.iter().map(CaseOutcome::to_json).collect();
        let mut o = JsonObject::new();
        o.field_str("trace", &self.trace);
        o.field_u64("cases_total", self.cases.len() as u64);
        o.field_u64("cases_matched", self.matched() as u64);
        o.field_bool("all_pass", self.all_pass());
        o.field_raw("cases", &format!("[{}]", cases.join(",")));
        o.finish()
    }

    /// A human-readable summary line per case.
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "chaos campaign over '{}': {} cases, {} matched clean, all_pass={}\n",
            self.trace,
            self.cases.len(),
            self.matched(),
            self.all_pass()
        ));
        s.push_str("seed        sev         inj   det   rec  delayed  outcome\n");
        for c in &self.cases {
            let outcome = if c.matches_clean() {
                "match".to_string()
            } else if let Some(f) = &c.faulty.failure {
                format!("typed-failure: {f}")
            } else if c.faulty.true_overflow {
                "true-overflow".to_string()
            } else if c.faulty.degraded {
                "degraded".to_string()
            } else {
                "DIVERGED".to_string()
            };
            s.push_str(&format!(
                "{:>10}  {:<10}  {:>4}  {:>4}  {:>4}  {:>7}  {}{}\n",
                c.seed,
                c.severity.name(),
                c.injected,
                c.detected,
                c.recovered,
                c.delayed_frees,
                outcome,
                if c.pass() { "" } else { "  [FAIL]" },
            ));
        }
        s
    }
}

/// Replay `trace` under every seed at the given severity. Each case
/// uses the seed for the workload RNG *and* (mixed) the fault schedule.
pub fn run_campaign(
    trace: &Trace,
    base: SimParams,
    seeds: &[u64],
    severity: Severity,
) -> ChaosReport {
    let cases = seeds
        .iter()
        .map(|&s| run_case(trace, base.with_seed(s), severity))
        .collect();
    ChaosReport {
        trace: trace.name.clone(),
        cases,
    }
}

/// The campaign parameter presets the `chaos` binary (and the CI smoke
/// job) use: a mid-sized table under the abort policy, and a deliberately
/// small table under [`OverflowPolicy::Degrade`] so the §4.3.2.3
/// heap-direct path is exercised under faults too.
pub fn preset_params() -> (SimParams, SimParams) {
    let abort = SimParams::default().with_table(512);
    let degrade = SimParams::default()
        .with_table(16)
        .with_overflow(OverflowPolicy::Degrade);
    (abort, degrade)
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_workloads::synthetic;

    fn trace(prims: usize) -> Trace {
        let mut p = synthetic::table_5_1("slang");
        p.primitives = prims;
        p.functions = (prims / 4).max(8);
        synthetic::generate(&p)
    }

    #[test]
    fn standard_case_matches_clean_run() {
        let t = trace(400);
        let c = run_case(&t, SimParams::default().with_table(512), Severity::Standard);
        assert!(c.injected > 0, "the schedule must actually inject");
        assert!(c.pass(), "{c:?}");
        assert!(c.matches_clean(), "{c:?}");
    }

    #[test]
    fn report_json_is_deterministic() {
        let t = trace(200);
        let (abort, _) = preset_params();
        let a = run_campaign(&t, abort, &[1, 2, 3], Severity::Standard);
        let b = run_campaign(&t, abort, &[1, 2, 3], Severity::Standard);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.all_pass(), "{}", a.summary_table());
    }

    #[test]
    fn degrade_preset_exercises_overflow_mode() {
        let t = trace(600);
        let (_, degrade) = preset_params();
        let r = run_campaign(&t, degrade, &[1, 2, 3, 4, 5, 6, 7, 8], Severity::Aggressive);
        assert!(r.all_pass(), "{}", r.summary_table());
        assert!(
            r.cases
                .iter()
                .any(|c| c.faulty.degraded || c.clean.degraded),
            "a 48-entry table over this trace must hit overflow mode:\n{}",
            r.summary_table()
        );
    }

    /// The acceptance gate: 100 seeded fault schedules, zero panics,
    /// every run matching the fault-free output or ending in a typed
    /// degraded state, and the fault ledger reconciling exactly.
    #[test]
    fn hundred_seeded_schedules_uphold_the_contract() {
        let t = trace(150);
        let seeds: Vec<u64> = (1..=50).collect();
        let (abort, degrade) = preset_params();
        let std_r = run_campaign(&t, abort, &seeds, Severity::Standard);
        assert!(std_r.all_pass(), "{}", std_r.summary_table());
        let agg_r = run_campaign(&t, degrade, &seeds, Severity::Aggressive);
        assert!(agg_r.all_pass(), "{}", agg_r.summary_table());
        assert!(
            std_r.cases.iter().map(|c| c.injected).sum::<u64>() > 0,
            "schedules must fire"
        );
    }
}
