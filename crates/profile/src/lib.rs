//! Cycle-stamped span tracing and profiling for the EP/LP machine.
//!
//! The §4.3.2.5 timing diagrams (Figures 4.10–4.13) are *temporal*
//! claims: the EP idles here, the LP tail overlaps there, a chained
//! request stalls for so-many cycles. The aggregate counters of
//! `small-metrics` cannot answer those questions; this crate turns the
//! diagrams into queryable data.
//!
//! [`SpanSink`] is an [`EventSink`] that drives a virtual clock — the
//! *same* arithmetic as [`TimingModel::run_stream`], applied one
//! operation at a time as the List Processor announces request
//! boundaries via [`EventSink::op_begin`]/[`EventSink::op_end`] — and
//! records open/close span intervals for EP requests, LP busy windows,
//! LP tail (post-response) work, heap splits/merges/read-ins, and
//! overflow/cycle-collection episodes. Because the clock replicates
//! `run_stream` exactly, the profile's totals (elapsed cycles, EP idle,
//! chaining-stall cycles, overlapped LP tail work) are *equal*, not
//! merely close, to the batch accounting on the same operation stream —
//! a property tested here and asserted by the `profile_timeline`
//! example.
//!
//! Three exporters are provided on the finished [`Profile`]:
//!
//! 1. [`Profile::chrome_trace_json`] — Chrome Trace Format JSON with EP,
//!    LP, heap, and GC as separate tracks; loadable in Perfetto or
//!    `chrome://tracing`.
//! 2. [`Profile::folded_stacks`] — folded-stack text
//!    (`workload;primitive;phase cycles`) for `flamegraph.pl`-style
//!    tools.
//! 3. [`Profile::attribution_table`] / [`Profile::attribution_json`] —
//!    a deterministic per-primitive table of cycles and event counts.
//!
//! Like `NoopSink`, a disabled sink (`SpanSink<false>`) must cost
//! nothing: every method body is behind `if !ACTIVE`, a const the
//! compiler erases (the `metrics_overhead` bench pins this down).

use small_core::timing::{StreamTiming, TimedOp, TimingModel};
use small_metrics::{Event, EventSink, JsonObject, OpClass, PrimKind};

/// Trace tracks: one per hardware agent of the §4.3 machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// The Evaluation Processor: request issue, stalls, blocked waits.
    Ep = 1,
    /// The List Processor: request service and tail work.
    Lp = 2,
    /// The heap controller: splits, merges, list input.
    Heap = 3,
    /// Storage-reclamation episodes: pseudo/true overflow, cycle breaks.
    Gc = 4,
}

impl Track {
    /// All tracks, in tid order.
    pub const ALL: [Track; 4] = [Track::Ep, Track::Lp, Track::Heap, Track::Gc];

    /// Thread id in the exported trace.
    pub fn tid(self) -> u32 {
        self as u32
    }

    /// Human-readable track name (trace thread-name metadata).
    pub fn name(self) -> &'static str {
        match self {
            Track::Ep => "EP (evaluation processor)",
            Track::Lp => "LP (list processor)",
            Track::Heap => "heap controller",
            Track::Gc => "reclamation",
        }
    }
}

/// One closed interval on a track, in virtual cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The track the interval lives on.
    pub track: Track,
    /// Span label (primitive name or phase name).
    pub name: &'static str,
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles (0-length spans are not recorded).
    pub dur: u64,
    /// The primitive this span is attributed to, if any.
    pub prim: Option<PrimKind>,
}

impl Span {
    /// End cycle (exclusive).
    pub fn end(&self) -> u64 {
        self.start + self.dur
    }
}

/// Cycle and event attribution for one primitive.
///
/// The interval identities: `blocked` is the Figure 4.10–4.13 response
/// latency (the LP's service window seen from the EP side), so
/// `blocked + lp_tail` is total LP busy time and `stall + blocked` is
/// the primitive's contribution to EP idle time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PrimAttribution {
    /// Operations executed.
    pub ops: u64,
    /// EP cycles interrogating the environment before the request.
    pub ep_pre: u64,
    /// Chaining-stall cycles: the EP waited for the previous
    /// operation's LP tail before the LP would accept this request.
    pub stall: u64,
    /// Cycles the EP spent blocked on the response (= LP service).
    pub blocked: u64,
    /// LP tail cycles overlapped with continued EP execution.
    pub lp_tail: u64,
    /// Metrics events recorded while this primitive was in flight.
    pub events: u64,
    /// The subset of `events` that touched the heap controller.
    pub heap_events: u64,
}

impl PrimAttribution {
    /// Total LP busy cycles for this primitive.
    pub fn lp_busy(&self) -> u64 {
        self.blocked + self.lp_tail
    }

    fn add_event(&mut self, event: &Event) {
        self.events += 1;
        if matches!(
            event,
            Event::HeapSplit | Event::HeapMerge | Event::HeapReadIn | Event::HeapFree
        ) {
            self.heap_events += 1;
        }
    }
}

/// A cycle-stamped tracing sink.
///
/// `ACTIVE = false` compiles to a no-op (all state updates are behind a
/// const condition); use [`SpanSink::disabled`] where a statically-dead
/// profiler is wanted without changing the processor's type structure.
#[derive(Debug, Clone)]
pub struct SpanSink<const ACTIVE: bool = true> {
    model: TimingModel,
    ep_gap: u64,
    workload: String,
    keep_spans: bool,
    // run_stream state, advanced one operation at a time.
    now: u64,
    lp_free_at: u64,
    ep_idle: u64,
    lp_busy: u64,
    // Monotone placement cursors for the heap and GC tracks.
    heap_cursor: u64,
    gc_cursor: u64,
    cur: Option<PrimKind>,
    /// Scratch buffer for the open operation's events, reused across
    /// operations (a per-op `Vec` was measurable on the sweep path).
    buf: Vec<Event>,
    classes: Vec<OpClass>,
    spans: Vec<Span>,
    attr: [PrimAttribution; PrimKind::ALL.len()],
    outside: PrimAttribution,
}

/// EP evaluation cycles between list operations fed to the virtual
/// clock, matching the `ep_gap` argument of [`TimingModel::run_stream`].
/// Two environment interrogations' worth of EP-side work is the default
/// the repository's timing experiments use.
pub const DEFAULT_EP_GAP: u64 = 4;

impl SpanSink<true> {
    /// A full-fidelity profiler: spans, attribution, and the class
    /// stream, under the default [`TimingModel`].
    pub fn new(workload: &str) -> Self {
        Self::with_model(workload, TimingModel::default(), DEFAULT_EP_GAP)
    }
}

impl<const ACTIVE: bool> SpanSink<ACTIVE> {
    /// A profiler under an explicit cost model and inter-operation EP
    /// gap (the `run_stream` parameters).
    pub fn with_model(workload: &str, model: TimingModel, ep_gap: u64) -> Self {
        SpanSink {
            model,
            ep_gap,
            workload: workload.to_string(),
            keep_spans: true,
            now: 0,
            lp_free_at: 0,
            ep_idle: 0,
            lp_busy: 0,
            heap_cursor: 0,
            gc_cursor: 0,
            cur: None,
            buf: Vec::new(),
            classes: Vec::new(),
            spans: Vec::new(),
            attr: [PrimAttribution::default(); PrimKind::ALL.len()],
            outside: PrimAttribution::default(),
        }
    }

    /// Drop per-span storage: the virtual clock, class stream, and
    /// attribution still run, but no timeline is kept. This is the
    /// configuration the sweep engine uses — O(1) memory per cell.
    pub fn summary_only(mut self) -> Self {
        self.keep_spans = false;
        self
    }

    /// Close the books and return the finished [`Profile`].
    pub fn finish(self) -> Profile {
        let total = self.now.max(self.lp_free_at);
        let timing = StreamTiming {
            total,
            ep_idle: self.ep_idle,
            lp_idle: total - self.lp_busy.min(total),
            ops: self.classes.len() as u64,
        };
        Profile {
            workload: self.workload,
            model: self.model,
            ep_gap: self.ep_gap,
            timing,
            classes: self.classes,
            spans: self.spans,
            attribution: self.attr,
            outside: self.outside,
        }
    }

    /// Advance the virtual clock over one completed operation — the loop
    /// body of [`TimingModel::run_stream`], verbatim.
    fn close_op(&mut self, prim: PrimKind, class: OpClass, events: &[Event]) {
        self.classes.push(class);
        let t = self.model.op(TimedOp::from_class(class));
        let op_start = self.now;
        let pre_end = op_start + t.ep_pre;
        // §4.3.2.5 chaining stall: the LP accepts a new request only
        // after finishing the previous operation's tail.
        let stall = self.lp_free_at.saturating_sub(pre_end);
        let service_start = pre_end + stall;
        let service_end = service_start + t.latency;
        let tail_end = service_end + t.lp_tail;
        self.ep_idle += stall + t.latency;
        self.lp_busy += t.latency + t.lp_tail;
        self.lp_free_at = tail_end;
        self.now = service_end + self.ep_gap;

        let a = &mut self.attr[prim.index()];
        a.ops += 1;
        a.ep_pre += t.ep_pre;
        a.stall += stall;
        a.blocked += t.latency;
        a.lp_tail += t.lp_tail;
        for e in events {
            a.add_event(e);
        }

        if self.keep_spans {
            // EP track: the op owns [issue, response); phases nest inside.
            self.spans.push(Span {
                track: Track::Ep,
                name: prim.name(),
                start: op_start,
                dur: service_end - op_start,
                prim: Some(prim),
            });
            for (name, start, dur) in [
                ("ep_pre", op_start, t.ep_pre),
                ("stall", pre_end, stall),
                ("blocked", service_start, t.latency),
            ] {
                if dur > 0 {
                    self.spans.push(Span {
                        track: Track::Ep,
                        name,
                        start,
                        dur,
                        prim: Some(prim),
                    });
                }
            }
            // LP track: service plus overlapped tail.
            self.spans.push(Span {
                track: Track::Lp,
                name: prim.name(),
                start: service_start,
                dur: tail_end - service_start,
                prim: Some(prim),
            });
            for (name, start, dur) in [
                ("service", service_start, t.latency),
                ("tail", service_end, t.lp_tail),
            ] {
                if dur > 0 {
                    self.spans.push(Span {
                        track: Track::Lp,
                        name,
                        start,
                        dur,
                        prim: Some(prim),
                    });
                }
            }
        }
        self.place_episode_spans(events, service_start, Some(prim));
    }

    /// Heap and reclamation episodes get their own tracks. They are
    /// placed at a monotone cursor anchored to the service window that
    /// caused them and priced by the cost model — *illustrative*
    /// placement that deliberately does not feed back into the EP/LP
    /// clock, so the run_stream equality is untouched.
    fn place_episode_spans(&mut self, events: &[Event], anchor: u64, prim: Option<PrimKind>) {
        if !self.keep_spans {
            return;
        }
        for e in events {
            let (track, name, dur) = match e {
                Event::HeapSplit => (Track::Heap, "heap_split", self.model.heap_split),
                Event::HeapMerge => (Track::Heap, "heap_merge", self.model.heap_split),
                Event::HeapReadIn => (Track::Heap, "heap_read_in", self.model.heap_io),
                Event::PseudoOverflow { reclaimed } => (
                    Track::Gc,
                    "pseudo_overflow",
                    (*reclaimed).max(1) as u64 * self.model.heap_split,
                ),
                Event::CycleCollection { reclaimed } => (
                    Track::Gc,
                    "cycle_collection",
                    (*reclaimed).max(1) as u64 * self.model.lpt_access,
                ),
                Event::TrueOverflow => (Track::Gc, "true_overflow", self.model.heap_io),
                _ => continue,
            };
            let cursor = match track {
                Track::Heap => &mut self.heap_cursor,
                _ => &mut self.gc_cursor,
            };
            let start = (*cursor).max(anchor);
            *cursor = start + dur;
            self.spans.push(Span {
                track,
                name,
                start,
                dur,
                prim,
            });
        }
    }
}

impl SpanSink<false> {
    /// A statically-dead profiler: every sink method compiles away.
    pub fn disabled() -> Self {
        Self::with_model("", TimingModel::default(), DEFAULT_EP_GAP)
    }
}

impl<const ACTIVE: bool> EventSink for SpanSink<ACTIVE> {
    fn record(&mut self, event: Event) {
        if !ACTIVE {
            return;
        }
        if self.cur.is_some() {
            self.buf.push(event);
        } else {
            self.outside.add_event(&event);
            self.place_episode_spans(&[event], self.now, None);
        }
    }

    fn op_begin(&mut self, prim: PrimKind) {
        if !ACTIVE {
            return;
        }
        self.cur = Some(prim);
        self.buf.clear();
    }

    fn op_end(&mut self, class: OpClass) {
        if !ACTIVE {
            return;
        }
        if let Some(prim) = self.cur.take() {
            // The scratch buffer is moved out for the duration of the
            // close (borrow discipline) and returned to keep its
            // allocation warm for the next operation.
            let events = std::mem::take(&mut self.buf);
            self.close_op(prim, class, &events);
            self.buf = events;
        }
    }
}

/// The finished, immutable result of a profiled run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Workload label (folded-stack root frame).
    pub workload: String,
    /// The cost model the virtual clock ran under.
    pub model: TimingModel,
    /// EP cycles between operations fed to the clock.
    pub ep_gap: u64,
    /// Aggregate accounting — by construction identical to
    /// [`TimingModel::run_stream`] over [`Profile::classes`].
    pub timing: StreamTiming,
    /// The operation-class stream, in execution order.
    pub classes: Vec<OpClass>,
    /// The recorded timeline (empty in summary-only mode).
    pub spans: Vec<Span>,
    /// Per-primitive attribution, indexed by [`PrimKind::index`].
    pub attribution: [PrimAttribution; PrimKind::ALL.len()],
    /// Events recorded outside any operation window (drains, shutdown).
    pub outside: PrimAttribution,
}

impl Profile {
    /// Total §4.3.2.5 chaining-stall cycles.
    pub fn stall_cycles(&self) -> u64 {
        self.attribution.iter().map(|a| a.stall).sum()
    }

    /// LP tail cycles overlapped with EP execution — the concurrency
    /// win the thesis claims.
    pub fn overlap_cycles(&self) -> u64 {
        self.attribution.iter().map(|a| a.lp_tail).sum()
    }

    /// Re-run the batch accounting over the recorded class stream.
    /// Equal to [`Profile::timing`] — the incremental clock and the
    /// batch algorithm are the same arithmetic (tested, and asserted by
    /// `profile_timeline`).
    pub fn replay_stream_timing(&self) -> StreamTiming {
        self.model.run_stream(
            self.classes.iter().map(|&c| TimedOp::from_class(c)),
            self.ep_gap,
        )
    }

    /// Chrome Trace Format JSON (the array-of-events form inside an
    /// object, loadable by Perfetto and `chrome://tracing`). Each track
    /// is a named thread; spans are `B`/`E` duration events stamped in
    /// virtual cycles (1 cycle = 1 µs of trace time).
    pub fn chrome_trace_json(&self) -> String {
        fn duration_event(ph: char, name: &str, cat: &str, ts: u64, tid: u32) -> String {
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\
                 \"ts\":{ts},\"pid\":1,\"tid\":{tid}}}"
            )
        }
        let mut parts: Vec<String> = Vec::new();
        parts.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"small EP/LP machine\"}}"
                .to_string(),
        );
        for track in Track::ALL {
            parts.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                track.tid(),
                track.name()
            ));
        }
        for track in Track::ALL {
            // Spans were recorded parent-before-child with monotone
            // starts, so a stack suffices to close them in nesting order.
            let (cat, tid) = (track.name(), track.tid());
            let mut open: Vec<&Span> = Vec::new();
            for s in self.spans.iter().filter(|s| s.track == track) {
                while let Some(top) = open.last() {
                    if top.end() <= s.start {
                        parts.push(duration_event('E', top.name, cat, top.end(), tid));
                        open.pop();
                    } else {
                        break;
                    }
                }
                parts.push(duration_event('B', s.name, cat, s.start, tid));
                open.push(s);
            }
            while let Some(top) = open.pop() {
                parts.push(duration_event('E', top.name, cat, top.end(), tid));
            }
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
            parts.join(",")
        )
    }

    /// Folded-stack text for flamegraph tools: one line per
    /// `workload;primitive;phase` frame with its cycle count. Built
    /// from the attribution (works in summary-only mode too).
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for prim in PrimKind::ALL {
            let a = &self.attribution[prim.index()];
            if a.ops == 0 {
                continue;
            }
            for (phase, cycles) in [
                ("ep_pre", a.ep_pre),
                ("stall", a.stall),
                ("service", a.blocked),
                ("tail", a.lp_tail),
            ] {
                if cycles > 0 {
                    out.push_str(&format!(
                        "{};{};{} {}\n",
                        self.workload,
                        prim.name(),
                        phase,
                        cycles
                    ));
                }
            }
        }
        out
    }

    /// The per-primitive attribution as an aligned text table.
    pub fn attribution_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<9} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>7}\n",
            "prim", "ops", "ep_pre", "stall", "blocked", "lp_tail", "lp_busy", "events", "heap"
        ));
        for prim in PrimKind::ALL {
            let a = &self.attribution[prim.index()];
            if a.ops == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<9} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>7}\n",
                prim.name(),
                a.ops,
                a.ep_pre,
                a.stall,
                a.blocked,
                a.lp_tail,
                a.lp_busy(),
                a.events,
                a.heap_events
            ));
        }
        if self.outside.events > 0 {
            out.push_str(&format!(
                "{:<9} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>7}\n",
                "(outside)",
                "-",
                "-",
                "-",
                "-",
                "-",
                "-",
                self.outside.events,
                self.outside.heap_events
            ));
        }
        out
    }

    /// The attribution and aggregate timing as deterministic JSON
    /// (fixed key order, stable float formatting).
    pub fn attribution_json(&self) -> String {
        let mut root = JsonObject::new();
        root.field_str("workload", &self.workload)
            .field_u64("ep_gap", self.ep_gap)
            .field_u64("total_cycles", self.timing.total)
            .field_u64("ep_idle_cycles", self.timing.ep_idle)
            .field_u64("lp_idle_cycles", self.timing.lp_idle)
            .field_u64("stall_cycles", self.stall_cycles())
            .field_u64("overlap_cycles", self.overlap_cycles())
            .field_f64("ep_utilization", self.timing.ep_utilization())
            .field_u64("ops", self.timing.ops);
        let mut prims = String::from("{");
        let mut first = true;
        for prim in PrimKind::ALL {
            let a = &self.attribution[prim.index()];
            if a.ops == 0 {
                continue;
            }
            if !first {
                prims.push(',');
            }
            first = false;
            let mut o = JsonObject::new();
            o.field_u64("ops", a.ops)
                .field_u64("ep_pre", a.ep_pre)
                .field_u64("stall", a.stall)
                .field_u64("blocked", a.blocked)
                .field_u64("lp_tail", a.lp_tail)
                .field_u64("lp_busy", a.lp_busy())
                .field_u64("events", a.events)
                .field_u64("heap_events", a.heap_events);
            prims.push_str(&format!("\"{}\":{}", prim.name(), o.finish()));
        }
        prims.push('}');
        root.field_raw("primitives", &prims);
        root.field_u64("outside_events", self.outside.events);
        root.finish()
    }
}

// ---------------------------------------------------------------------
// CycleClock — the bare virtual clock, for callers that need elapsed
// cycles without spans or attribution (the serve layer's per-request
// latency telemetry).
// ---------------------------------------------------------------------

/// The incremental virtual clock of [`SpanSink::close_op`] /
/// [`TimingModel::run_stream`], stripped of span and attribution
/// storage: advance it one operation class at a time, read the total
/// elapsed cycles, reset.
///
/// Because the arithmetic is identical to `run_stream`, the elapsed
/// total over a class stream is a pure function of that stream — the
/// property the serving layer's deterministic latency histograms gate
/// on.
#[derive(Debug, Clone)]
pub struct CycleClock {
    model: TimingModel,
    ep_gap: u64,
    now: u64,
    lp_free_at: u64,
}

impl Default for CycleClock {
    fn default() -> Self {
        CycleClock::new(TimingModel::default(), DEFAULT_EP_GAP)
    }
}

impl CycleClock {
    /// A clock under an explicit cost model and inter-operation EP gap.
    pub fn new(model: TimingModel, ep_gap: u64) -> CycleClock {
        CycleClock {
            model,
            ep_gap,
            now: 0,
            lp_free_at: 0,
        }
    }

    /// Advance over one completed operation — the `run_stream` loop
    /// body, including the §4.3.2.5 chaining stall against the previous
    /// operation's LP tail.
    pub fn advance(&mut self, class: OpClass) {
        let t = self.model.op(TimedOp::from_class(class));
        let pre_end = self.now + t.ep_pre;
        let stall = self.lp_free_at.saturating_sub(pre_end);
        let service_end = pre_end + stall + t.latency;
        self.lp_free_at = service_end + t.lp_tail;
        self.now = service_end + self.ep_gap;
    }

    /// Total elapsed cycles so far: EP time or outstanding LP tail,
    /// whichever runs later (the `run_stream` total).
    pub fn elapsed(&self) -> u64 {
        self.now.max(self.lp_free_at)
    }

    /// Read the elapsed total and reset to zero — one call per request
    /// gives per-request cycle costs on a shared clock.
    pub fn take(&mut self) -> u64 {
        let elapsed = self.elapsed();
        self.now = 0;
        self.lp_free_at = 0;
        elapsed
    }
}

// ---------------------------------------------------------------------
// chrome — the Chrome Trace Format emitter, reusable by layers that
// trace wall-clock spans (the serve layer's shard event loops) rather
// than virtual cycles.
// ---------------------------------------------------------------------

/// Incremental Chrome Trace Format builder: named threads plus
/// complete (`"X"`) duration events, loadable in `chrome://tracing`
/// and Perfetto. [`Profile::chrome_trace_json`] emits the virtual-cycle
/// timeline in the same envelope; this builder serves wall-clock span
/// logs whose intervals are known at record time.
pub mod chrome {
    /// A trace under construction. Events appear in emission order;
    /// timestamps and durations are microseconds.
    #[derive(Debug, Default)]
    pub struct TraceBuilder {
        parts: Vec<String>,
    }

    impl TraceBuilder {
        /// A trace whose single process carries `process_name`.
        pub fn new(process_name: &str) -> TraceBuilder {
            let mut b = TraceBuilder { parts: Vec::new() };
            b.parts.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
                 \"args\":{{\"name\":\"{process_name}\"}}}}"
            ));
            b
        }

        /// Name thread `tid` in the trace viewer.
        pub fn thread(&mut self, tid: u32, name: &str) {
            self.parts.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }

        /// One complete duration event on thread `tid`.
        pub fn complete(&mut self, name: &str, cat: &str, tid: u32, ts_us: u64, dur_us: u64) {
            self.parts.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\
                 \"ts\":{ts_us},\"dur\":{dur_us},\"pid\":1,\"tid\":{tid}}}"
            ));
        }

        /// Close the trace and return the JSON text.
        pub fn finish(self) -> String {
            format!(
                "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
                self.parts.join(",")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_core::{ListProcessor, LpConfig};
    use small_heap::controller::TwoPointerController;
    use small_metrics::NoopSink;
    use small_sexpr::{parse, Interner};

    /// Run a small scripted workload through an LP instrumented with the
    /// given sink and return the sink.
    fn scripted<S: EventSink>(sink: S) -> S {
        let mut i = Interner::new();
        let mut lp = ListProcessor::with_sink(
            TwoPointerController::new(65536, 64),
            LpConfig {
                table_size: 256,
                ..LpConfig::default()
            },
            sink,
        );
        let e = parse("((a b) (c d) e)", &mut i).unwrap();
        let v = lp.readlist(None, &e).unwrap();
        let id = v.obj().unwrap();
        let car = lp.car(id).unwrap(); // miss (split)
        let cdr = lp.cdr(id).unwrap(); // hit
        let c = lp.cons(car, cdr).unwrap();
        lp.rplaca(id, c).unwrap();
        let _ = lp.car(id).unwrap(); // hit
        let cid = c.obj().unwrap();
        let _ = lp.cdr(cid).unwrap(); // hit
        lp.rplacd(cid, small_core::LpValue::Atom(small_heap::Word::NIL))
            .unwrap();
        lp.into_sink()
    }

    #[test]
    fn virtual_clock_equals_run_stream_exactly() {
        let profile = scripted(SpanSink::new("scripted")).finish();
        assert!(profile.timing.ops >= 8);
        assert_eq!(profile.timing, profile.replay_stream_timing());
        // The attribution decomposes the same totals.
        let blocked: u64 = profile.attribution.iter().map(|a| a.blocked).sum();
        assert_eq!(profile.timing.ep_idle, profile.stall_cycles() + blocked);
    }

    #[test]
    fn summary_only_keeps_accounting_drops_spans() {
        let full = scripted(SpanSink::new("w")).finish();
        let summary = scripted(SpanSink::new("w").summary_only()).finish();
        assert_eq!(summary.timing, full.timing);
        assert_eq!(summary.attribution, full.attribution);
        assert!(summary.spans.is_empty());
        assert!(!full.spans.is_empty());
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let profile = scripted(SpanSink::<false>::disabled()).finish();
        assert_eq!(profile.timing.ops, 0);
        assert_eq!(profile.timing.total, 0);
        assert!(profile.spans.is_empty());
    }

    /// Satellite: Chrome-trace invariants — every `B` has a matching
    /// `E` (same name, LIFO order) and timestamps are monotone per
    /// track.
    #[test]
    fn chrome_trace_b_e_invariants() {
        let profile = scripted(SpanSink::new("scripted")).finish();
        let json = profile.chrome_trace_json();
        // Pull out (ph, name, ts, tid) tuples with a scan over the
        // fixed emission shape.
        let mut events: Vec<(char, String, u64, u32)> = Vec::new();
        for chunk in json.split("{\"name\":\"").skip(1) {
            let name = chunk.split('"').next().unwrap().to_string();
            // Metadata events nest another {"name": inside their args;
            // those inner chunks carry no phase marker.
            let Some(ph) = chunk
                .split("\"ph\":\"")
                .nth(1)
                .and_then(|s| s.chars().next())
            else {
                continue;
            };
            if ph == 'M' {
                continue;
            }
            let ts: u64 = chunk
                .split("\"ts\":")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            let tid: u32 = chunk
                .split("\"tid\":")
                .nth(1)
                .unwrap()
                .split('}')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            events.push((ph, name, ts, tid));
        }
        assert!(!events.is_empty());
        for track in Track::ALL {
            let tid = track.tid();
            let mut stack: Vec<&str> = Vec::new();
            let mut last_ts = 0u64;
            let mut seen = 0usize;
            for (ph, name, ts, _) in events.iter().filter(|e| e.3 == tid) {
                assert!(*ts >= last_ts, "track {tid} time went backwards");
                last_ts = *ts;
                seen += 1;
                match ph {
                    'B' => stack.push(name),
                    'E' => {
                        let open = stack.pop().unwrap_or_else(|| {
                            panic!("track {tid}: E \"{name}\" without open span")
                        });
                        assert_eq!(open, name, "track {tid}: mismatched close");
                    }
                    other => panic!("unexpected phase {other}"),
                }
            }
            assert!(stack.is_empty(), "track {tid}: unclosed spans {stack:?}");
            if track == Track::Ep || track == Track::Lp {
                assert!(seen > 0, "track {tid} must carry the op timeline");
            }
        }
    }

    #[test]
    fn folded_stacks_cover_every_executed_prim() {
        let profile = scripted(SpanSink::new("wl")).finish();
        let folded = profile.folded_stacks();
        for prim in ["readlist", "car", "cdr", "cons", "rplaca", "rplacd"] {
            assert!(
                folded.contains(&format!("wl;{prim};")),
                "missing {prim} in:\n{folded}"
            );
        }
        // Total cycles in the folded stacks = everything the machine
        // spent except inter-op EP gaps (by the interval identities).
        let folded_total: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        let a_total: u64 = profile
            .attribution
            .iter()
            .map(|a| a.ep_pre + a.stall + a.blocked + a.lp_tail)
            .sum();
        assert_eq!(folded_total, a_total);
    }

    #[test]
    fn attribution_json_is_deterministic() {
        let a = scripted(SpanSink::new("w")).finish().attribution_json();
        let b = scripted(SpanSink::new("w")).finish().attribution_json();
        assert_eq!(a, b);
        assert!(a.contains("\"stall_cycles\""));
        assert!(a.contains("\"readlist\""));
    }

    #[test]
    fn spans_nest_inside_their_parents() {
        let profile = scripted(SpanSink::new("w")).finish();
        // Phase spans sit inside the op span recorded just before them.
        let mut cur_op: Option<Span> = None;
        for s in profile.spans.iter().filter(|s| s.track == Track::Ep) {
            if PrimKind::ALL.iter().any(|p| p.name() == s.name) {
                cur_op = Some(*s);
            } else {
                let op = cur_op.expect("phase span before any op span");
                assert!(s.start >= op.start && s.end() <= op.end(), "{s:?} ⊄ {op:?}");
            }
        }
        // LP spans never start before their EP issue completes: tail
        // work is the only LP activity after the response.
        let lp_busy: u64 = profile
            .spans
            .iter()
            .filter(|s| s.track == Track::Lp && (s.name == "service" || s.name == "tail"))
            .map(|s| s.dur)
            .sum();
        assert_eq!(
            lp_busy,
            profile.timing.total - profile.timing.lp_idle,
            "LP span coverage equals busy accounting"
        );
    }

    #[test]
    fn noop_and_disabled_spansink_agree() {
        // Behavioral check that the disabled profiler changes nothing
        // about the run (the perf claim is pinned by the bench).
        let a = scripted(NoopSink);
        let _ = a;
        let profile = scripted(SpanSink::<false>::disabled()).finish();
        assert_eq!(profile.timing.ops, 0);
    }

    #[test]
    fn profiles_a_full_vm_run_through_small_backend() {
        // The machine.rs wiring: a compiled Lisp program on the LP
        // backend with a SpanSink attached, recovered via into_sink.
        use small_core::machine::SmallBackend;
        use small_core::LpConfig;
        use small_lisp::compiler::compile_program;
        use small_lisp::vm::Vm;
        use small_sexpr::Interner;

        let src = "
            (def rev (lambda (a acc)
              (cond ((null a) acc)
                    (t (rev (cdr a) (cons (car a) acc))))))
            (rev (quote (1 2 3 4 5 6 7 8)) nil)";
        let mut i = Interner::new();
        let p = compile_program(src, &mut i).unwrap();
        let backend =
            SmallBackend::with_sink(1 << 14, LpConfig::default(), SpanSink::new("vm-rev"));
        let mut vm = Vm::new(p, backend);
        vm.run().unwrap();
        vm.shutdown();
        let profile = vm.backend.into_sink().finish();
        assert!(profile.timing.ops > 0, "VM primitives must be profiled");
        assert_eq!(profile.timing, profile.replay_stream_timing());
        let per_prim: u64 = profile.attribution.iter().map(|a| a.ops).sum();
        assert_eq!(per_prim, profile.timing.ops);
    }
}
