#![warn(missing_docs)]
//! Trace-driven simulation of the SMALL architecture (Chapter 5).
//!
//! The thesis evaluation drives the real LP/LPT of `small-core` with
//! pre-processed program traces, reconstructing argument selection with
//! the probability parameters of §5.2.1 (ArgProb, LocProb, BindProb,
//! ReadProb) and a simulated control-cum-binding stack. A parallel
//! fully-associative LRU **data cache** model with synthesized heap
//! addresses (Clark-style pointer-distance distributions) provides the
//! §5.2.5 comparison.
//!
//! * [`config`] — simulation parameters (§5.2.1),
//! * [`driver`] — the trace-driven simulator proper,
//! * [`cache`] — the LRU data-cache comparator (Tables 5.4, Figs 5.4–5.5),
//! * [`clark`] — synthetic pointer-distance / size distributions,
//! * [`sweep`] — table-size sweeps, knee finding, seed spreads
//!   (Figures 5.1–5.3), the Table 5.2/5.3/5.5 batteries, and the
//!   multi-threaded instrumented sweep engine ([`sweep::run_sweep`]),
//! * [`resume`] — the crash-consistent durable path
//!   ([`resume::run_sim_resumable`]): checkpointing, write-ahead
//!   journaling, and digest-verified crash recovery over a
//!   `small-persist` store.

pub mod cache;
pub mod clark;
pub mod config;
pub mod driver;
pub mod resume;
pub mod sweep;

pub use cache::LruCache;
pub use config::SimParams;
pub use driver::{run_sim, run_sim_on_controller, run_sim_profiled, run_sim_with_sink, SimResult};
pub use resume::run_sim_resumable;
pub use sweep::{run_sweep, CellReport, SweepGrid, SweepReport};
