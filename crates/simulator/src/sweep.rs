//! Parameter sweeps and experiment batteries (Figures 5.1–5.3, Tables
//! 5.2, 5.3, 5.5).

use crate::config::SimParams;
use crate::driver::{run_sim, CacheConfig, SimResult};
use small_core::{DecrementPolicy, RefcountMode};
use small_trace::Trace;

/// One point of the Figure 5.1 peak-usage curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeakPoint {
    /// LPT size for this run.
    pub table_size: usize,
    /// Peak LPT occupancy observed.
    pub peak: usize,
    /// Whether any pseudo overflow occurred.
    pub pseudo: bool,
    /// Whether the run hit a true overflow.
    pub true_overflow: bool,
}

/// The Figure 5.1 sweep: peak LPT usage against table size.
pub fn peak_curve(trace: &Trace, base: SimParams, sizes: &[usize]) -> Vec<PeakPoint> {
    sizes
        .iter()
        .map(|&size| {
            let r = run_sim(trace, base.with_table(size), None);
            PeakPoint {
                table_size: size,
                peak: r.lpt.max_occupancy,
                pseudo: r.lpt.pseudo_overflows > 0,
                true_overflow: r.true_overflow,
            }
        })
        .collect()
}

/// The knee of the Figure 5.1 curve: maximum occupancy with a table big
/// enough that no overflow of any kind occurs.
pub fn knee(trace: &Trace, base: SimParams) -> usize {
    let mut size = 4096usize;
    loop {
        let r = run_sim(trace, base.with_table(size), None);
        if !r.true_overflow && r.lpt.pseudo_overflows == 0 {
            return r.lpt.max_occupancy;
        }
        size *= 4;
        assert!(size <= 1 << 22, "knee search diverged");
    }
}

/// The Figure 5.2 experiment: knee spread over `n_seeds` different
/// seeds ("by re-seeding … we simulate totally different access
/// patterns").
pub fn knee_spread(trace: &Trace, base: SimParams, n_seeds: u64) -> (usize, usize) {
    let mut lo = usize::MAX;
    let mut hi = 0usize;
    for seed in 0..n_seeds {
        let k = knee(trace, base.with_seed(seed + 1));
        lo = lo.min(k);
        hi = hi.max(k);
    }
    (lo, hi)
}

/// Average-occupancy comparison of the two compression policies at one
/// table size (Figure 5.3 points).
pub fn compression_comparison(
    trace: &Trace,
    base: SimParams,
    table_size: usize,
) -> (f64, f64) {
    let one = run_sim(
        trace,
        SimParams {
            compression: small_core::CompressPolicy::CompressOne,
            table_size,
            ..base
        },
        None,
    );
    let all = run_sim(
        trace,
        SimParams {
            compression: small_core::CompressPolicy::CompressAll,
            table_size,
            ..base
        },
        None,
    );
    (one.lpt.avg_occupancy(), all.lpt.avg_occupancy())
}

/// Table 5.2 row: Refops/Gets/Frees under the lazy policy plus the
/// RecRefops count under the recursive policy.
#[derive(Debug, Clone, Copy)]
pub struct LptActivityRow {
    /// Reference-count operations (lazy policy).
    pub refops: u64,
    /// Entry allocations.
    pub gets: u64,
    /// Entry frees.
    pub frees: u64,
    /// Reference-count operations under immediate recursive decrement.
    pub rec_refops: u64,
}

/// Compute the Table 5.2 row for a trace.
pub fn lpt_activity(trace: &Trace, base: SimParams) -> LptActivityRow {
    let lazy = run_sim(
        trace,
        SimParams {
            decrement: DecrementPolicy::Lazy,
            ..base
        },
        None,
    );
    let rec = run_sim(
        trace,
        SimParams {
            decrement: DecrementPolicy::Recursive,
            ..base
        },
        None,
    );
    LptActivityRow {
        refops: lazy.lpt.refops,
        gets: lazy.lpt.gets,
        frees: lazy.lpt.frees,
        rec_refops: rec.lpt.refops,
    }
}

/// Table 5.3 row: bus-visible refops and max counts, unified ("Then")
/// vs split ("Now").
#[derive(Debug, Clone, Copy)]
pub struct SplitCountRow {
    /// LPT refops with unified counts.
    pub refops_then: u64,
    /// LPT refops with split counts (EP traffic removed).
    pub refops_now: u64,
    /// Max LPT count, unified.
    pub max_then: u32,
    /// Max LPT count, split (internal refs only).
    pub max_now_lpt: u32,
    /// Max EP-side count, split.
    pub max_now_ep: u32,
}

/// Compute the Table 5.3 row for a trace.
pub fn split_counts(trace: &Trace, base: SimParams) -> SplitCountRow {
    let unified = run_sim(
        trace,
        SimParams {
            refcounts: RefcountMode::Unified,
            ..base
        },
        None,
    );
    let split = run_sim(
        trace,
        SimParams {
            refcounts: RefcountMode::Split,
            ..base
        },
        None,
    );
    SplitCountRow {
        refops_then: unified.lpt.refops,
        refops_now: split.lpt.refops,
        max_then: unified.lpt.max_refcount,
        max_now_lpt: split.lpt.max_refcount,
        max_now_ep: split.lpt.max_ep_refcount,
    }
}

/// LPT vs cache at equal entry counts, unit lines (Table 5.4 row).
pub fn cache_compare(trace: &Trace, base: SimParams, size: usize) -> SimResult {
    run_sim(
        trace,
        base.with_table(size),
        Some(CacheConfig {
            lines: size,
            line_cells: 1,
        }),
    )
}

/// Figure 5.5 point: cache-miss/LPT-miss ratio with twice the entries
/// (half-size cache entries) at the given line size.
pub fn line_size_ratio(trace: &Trace, base: SimParams, size: usize, line_cells: usize) -> f64 {
    let lines = (2 * size) / line_cells.max(1);
    let r = run_sim(
        trace,
        base.with_table(size),
        Some(CacheConfig {
            lines: lines.max(1),
            line_cells,
        }),
    );
    if r.access_misses == 0 {
        return f64::INFINITY;
    }
    r.cache_misses as f64 / r.access_misses as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_workloads::synthetic;

    fn t(prims: usize) -> Trace {
        let mut p = synthetic::table_5_1("slang");
        p.primitives = prims;
        synthetic::generate(&p)
    }

    #[test]
    fn peak_curve_has_slope_one_then_knee_shape() {
        // Figure 5.1: below the knee the peak equals the table size (with
        // pseudo overflows); above it, the peak is flat.
        let trace = t(1500);
        let k = knee(&trace, SimParams::default());
        assert!(k > 8, "knee {k} too small to test");
        let sizes = [k / 2, k.saturating_sub(2).max(1), k, k + 16, k * 2];
        let curve = peak_curve(&trace, SimParams::default(), &sizes);
        // Below the knee: peak == size (the table fills).
        assert_eq!(curve[0].peak, curve[0].table_size);
        assert!(curve[0].pseudo);
        // Well above the knee: no overflow, flat peak.
        assert!(!curve[4].pseudo && !curve[4].true_overflow);
        assert_eq!(curve[4].peak, k);
        assert_eq!(curve[3].peak, k);
    }

    #[test]
    fn knee_spread_is_an_interval() {
        let trace = t(800);
        let (lo, hi) = knee_spread(&trace, SimParams::default(), 5);
        assert!(lo <= hi);
        assert!(lo > 0);
    }

    #[test]
    fn compress_one_keeps_higher_average_occupancy() {
        // Figure 5.3's direction.
        let trace = t(3000);
        let k = knee(&trace, SimParams::default());
        let (one, all) = compression_comparison(&trace, SimParams::default(), (k * 3 / 4).max(8));
        assert!(
            one >= all - 1.0,
            "Compress-One avg {one:.1} should not be below Compress-All {all:.1}"
        );
    }

    #[test]
    fn lazy_refops_below_recursive() {
        let trace = t(2000);
        let row = lpt_activity(&trace, SimParams::default());
        assert!(
            row.rec_refops > row.refops,
            "RecRefops {} must exceed Refops {} (Table 5.2)",
            row.rec_refops,
            row.refops
        );
        assert!(row.gets > 0 && row.frees > 0);
    }

    #[test]
    fn split_counts_cut_bus_traffic_by_a_lot() {
        let trace = t(2000);
        let row = split_counts(&trace, SimParams::default());
        assert!(
            (row.refops_now as f64) < row.refops_then as f64 * 0.67,
            "split {} must cut unified {} bus traffic substantially (Table 5.3)",
            row.refops_now,
            row.refops_then
        );
        assert!(row.max_now_lpt <= row.max_then);
    }

    #[test]
    fn line_size_helps_the_cache() {
        // Figure 5.5's direction: the miss ratio falls as lines grow
        // (prefetch exploits the structural locality in the addresses).
        let trace = t(3000);
        let size = 96;
        let r1 = line_size_ratio(&trace, SimParams::default(), size, 1);
        let r8 = line_size_ratio(&trace, SimParams::default(), size, 8);
        assert!(
            r8 < r1,
            "line 8 ratio {r8:.2} should be below line 1 ratio {r1:.2}"
        );
    }
}
