//! Parameter sweeps and experiment batteries (Figures 5.1–5.3, Tables
//! 5.2, 5.3, 5.5), plus the instrumented **parallel sweep engine**: a
//! config-grid runner that fans independent simulator cells across OS
//! threads, collects a full [`MetricsSnapshot`] per cell, and emits a
//! deterministic machine-readable report (see [`run_sweep`]).

use crate::config::SimParams;
use crate::driver::{run_sim, run_sim_with_sink, CacheConfig, SimResult};
use small_core::{CompressPolicy, DecrementPolicy, RefcountMode};
use small_metrics::{JsonObject, MetricsSnapshot, RecordingSink};
use small_profile::{Profile, SpanSink};
use small_trace::Trace;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One point of the Figure 5.1 peak-usage curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeakPoint {
    /// LPT size for this run.
    pub table_size: usize,
    /// Peak LPT occupancy observed.
    pub peak: usize,
    /// Whether any pseudo overflow occurred.
    pub pseudo: bool,
    /// Whether the run hit a true overflow.
    pub true_overflow: bool,
}

/// The Figure 5.1 sweep: peak LPT usage against table size.
pub fn peak_curve(trace: &Trace, base: SimParams, sizes: &[usize]) -> Vec<PeakPoint> {
    sizes
        .iter()
        .map(|&size| {
            let r = run_sim(trace, base.with_table(size), None);
            PeakPoint {
                table_size: size,
                peak: r.lpt.max_occupancy,
                pseudo: r.lpt.pseudo_overflows > 0,
                true_overflow: r.true_overflow,
            }
        })
        .collect()
}

/// The knee of the Figure 5.1 curve: maximum occupancy with a table big
/// enough that no overflow of any kind occurs.
pub fn knee(trace: &Trace, base: SimParams) -> usize {
    let mut size = 4096usize;
    loop {
        let r = run_sim(trace, base.with_table(size), None);
        if !r.true_overflow && r.lpt.pseudo_overflows == 0 {
            return r.lpt.max_occupancy;
        }
        size *= 4;
        assert!(size <= 1 << 22, "knee search diverged");
    }
}

/// The Figure 5.2 experiment: knee spread over `n_seeds` different
/// seeds ("by re-seeding … we simulate totally different access
/// patterns").
pub fn knee_spread(trace: &Trace, base: SimParams, n_seeds: u64) -> (usize, usize) {
    let mut lo = usize::MAX;
    let mut hi = 0usize;
    for seed in 0..n_seeds {
        let k = knee(trace, base.with_seed(seed + 1));
        lo = lo.min(k);
        hi = hi.max(k);
    }
    (lo, hi)
}

/// Average-occupancy comparison of the two compression policies at one
/// table size (Figure 5.3 points).
pub fn compression_comparison(trace: &Trace, base: SimParams, table_size: usize) -> (f64, f64) {
    let one = run_sim(
        trace,
        SimParams {
            compression: small_core::CompressPolicy::CompressOne,
            table_size,
            ..base
        },
        None,
    );
    let all = run_sim(
        trace,
        SimParams {
            compression: small_core::CompressPolicy::CompressAll,
            table_size,
            ..base
        },
        None,
    );
    (one.lpt.avg_occupancy(), all.lpt.avg_occupancy())
}

/// Table 5.2 row: Refops/Gets/Frees under the lazy policy plus the
/// RecRefops count under the recursive policy.
#[derive(Debug, Clone, Copy)]
pub struct LptActivityRow {
    /// Reference-count operations (lazy policy).
    pub refops: u64,
    /// Entry allocations.
    pub gets: u64,
    /// Entry frees.
    pub frees: u64,
    /// Reference-count operations under immediate recursive decrement.
    pub rec_refops: u64,
}

/// Compute the Table 5.2 row for a trace.
pub fn lpt_activity(trace: &Trace, base: SimParams) -> LptActivityRow {
    let lazy = run_sim(
        trace,
        SimParams {
            decrement: DecrementPolicy::Lazy,
            ..base
        },
        None,
    );
    let rec = run_sim(
        trace,
        SimParams {
            decrement: DecrementPolicy::Recursive,
            ..base
        },
        None,
    );
    LptActivityRow {
        refops: lazy.lpt.refops,
        gets: lazy.lpt.gets,
        frees: lazy.lpt.frees,
        rec_refops: rec.lpt.refops,
    }
}

/// Table 5.3 row: bus-visible refops and max counts, unified ("Then")
/// vs split ("Now").
#[derive(Debug, Clone, Copy)]
pub struct SplitCountRow {
    /// LPT refops with unified counts.
    pub refops_then: u64,
    /// LPT refops with split counts (EP traffic removed).
    pub refops_now: u64,
    /// Max LPT count, unified.
    pub max_then: u32,
    /// Max LPT count, split (internal refs only).
    pub max_now_lpt: u32,
    /// Max EP-side count, split.
    pub max_now_ep: u32,
}

/// Compute the Table 5.3 row for a trace.
pub fn split_counts(trace: &Trace, base: SimParams) -> SplitCountRow {
    let unified = run_sim(
        trace,
        SimParams {
            refcounts: RefcountMode::Unified,
            ..base
        },
        None,
    );
    let split = run_sim(
        trace,
        SimParams {
            refcounts: RefcountMode::Split,
            ..base
        },
        None,
    );
    SplitCountRow {
        refops_then: unified.lpt.refops,
        refops_now: split.lpt.refops,
        max_then: unified.lpt.max_refcount,
        max_now_lpt: split.lpt.max_refcount,
        max_now_ep: split.lpt.max_ep_refcount,
    }
}

/// LPT vs cache at equal entry counts, unit lines (Table 5.4 row).
pub fn cache_compare(trace: &Trace, base: SimParams, size: usize) -> SimResult {
    run_sim(
        trace,
        base.with_table(size),
        Some(CacheConfig {
            lines: size,
            line_cells: 1,
        }),
    )
}

/// Figure 5.5 point: cache-miss/LPT-miss ratio with twice the entries
/// (half-size cache entries) at the given line size.
pub fn line_size_ratio(trace: &Trace, base: SimParams, size: usize, line_cells: usize) -> f64 {
    let lines = (2 * size) / line_cells.max(1);
    let r = run_sim(
        trace,
        base.with_table(size),
        Some(CacheConfig {
            lines: lines.max(1),
            line_cells,
        }),
    );
    if r.access_misses == 0 {
        return f64::INFINITY;
    }
    r.cache_misses as f64 / r.access_misses as f64
}

// ---------------------------------------------------------------------
// The parallel sweep engine
// ---------------------------------------------------------------------

/// A sweep grid: the cartesian product of LPT sizes, compression
/// policies, reference-count modes, and decrement policies, run over
/// one trace from a common base parameter set.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Grid name (becomes the report/file name).
    pub name: String,
    /// LPT sizes to sweep.
    pub table_sizes: Vec<usize>,
    /// Compression policies to sweep.
    pub compressions: Vec<CompressPolicy>,
    /// Reference-count placements to sweep.
    pub refcounts: Vec<RefcountMode>,
    /// Decrement policies to sweep.
    pub decrements: Vec<DecrementPolicy>,
    /// Base parameters every cell starts from.
    pub base: SimParams,
}

impl SweepGrid {
    /// The standard 12-cell grid: three LPT sizes × both compression
    /// policies × both reference-count modes, lazy decrement.
    pub fn standard(name: &str) -> Self {
        SweepGrid {
            name: name.to_string(),
            table_sizes: vec![256, 512, 1024],
            compressions: vec![CompressPolicy::CompressOne, CompressPolicy::CompressAll],
            refcounts: vec![RefcountMode::Unified, RefcountMode::Split],
            decrements: vec![DecrementPolicy::Lazy],
            base: SimParams::default(),
        }
    }

    /// All cells in a stable order (the cell index is its position).
    pub fn cells(&self) -> Vec<SweepCellConfig> {
        let mut out = Vec::new();
        for &table_size in &self.table_sizes {
            for &compression in &self.compressions {
                for &refcounts in &self.refcounts {
                    for &decrement in &self.decrements {
                        out.push(SweepCellConfig {
                            index: out.len(),
                            params: SimParams {
                                table_size,
                                compression,
                                refcounts,
                                decrement,
                                ..self.base
                            },
                        });
                    }
                }
            }
        }
        out
    }
}

/// One cell of a sweep grid: a stable index plus the full parameter set
/// it runs with.
#[derive(Debug, Clone, Copy)]
pub struct SweepCellConfig {
    /// Position in the grid's stable cell order.
    pub index: usize,
    /// The parameters this cell runs with.
    pub params: SimParams,
}

/// The outcome of one sweep cell: the simulator result, the full
/// event-level metrics snapshot, and the cycle-accounting profile.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell configuration.
    pub config: SweepCellConfig,
    /// Aggregate simulator result.
    pub result: SimResult,
    /// Event-level metrics recorded during the run.
    pub metrics: MetricsSnapshot,
    /// Virtual-cycle accounting from a summary-only [`SpanSink`]
    /// (no timeline is kept; the totals are `run_stream`-exact).
    pub profile: Profile,
}

fn policy_name(p: CompressPolicy) -> String {
    match p {
        CompressPolicy::CompressOne => "compress-one".to_string(),
        CompressPolicy::CompressAll => "compress-all".to_string(),
        CompressPolicy::Hybrid { threshold, window } => format!("hybrid({threshold},{window})"),
    }
}

fn refcount_name(m: RefcountMode) -> &'static str {
    match m {
        RefcountMode::Unified => "unified",
        RefcountMode::Split => "split",
    }
}

fn decrement_name(d: DecrementPolicy) -> &'static str {
    match d {
        DecrementPolicy::Lazy => "lazy",
        DecrementPolicy::Recursive => "recursive",
    }
}

impl CellReport {
    /// Deterministic JSON for this cell: configuration, simulator
    /// aggregates, and the metrics snapshot, in a fixed key order.
    /// Deliberately excludes wall-clock time so reports are
    /// byte-identical across thread counts and machines.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("cell", self.config.index as u64);
        o.field_u64("table_size", self.config.params.table_size as u64);
        o.field_str("compression", &policy_name(self.config.params.compression));
        o.field_str("refcounts", refcount_name(self.config.params.refcounts));
        o.field_str("decrement", decrement_name(self.config.params.decrement));
        o.field_u64("seed", self.config.params.seed);
        o.field_bool("true_overflow", self.result.true_overflow);
        o.field_str("failure", self.result.failure.as_deref().unwrap_or(""));
        o.field_u64("prims_executed", self.result.prims_executed as u64);
        o.field_f64("lpt_hit_rate", self.result.lpt_hit_rate());
        o.field_u64("max_occupancy", self.result.lpt.max_occupancy as u64);
        o.field_f64("avg_occupancy", self.result.lpt.avg_occupancy());
        o.field_u64("refops", self.result.lpt.refops);
        o.field_u64("ep_refops", self.result.lpt.ep_refops);
        o.field_u64("total_cycles", self.profile.timing.total);
        o.field_u64("ep_idle_cycles", self.profile.timing.ep_idle);
        o.field_u64("lp_idle_cycles", self.profile.timing.lp_idle);
        o.field_u64("stall_cycles", self.profile.stall_cycles());
        o.field_u64("overlap_cycles", self.profile.overlap_cycles());
        o.field_f64("ep_utilization", self.profile.timing.ep_utilization());
        o.field_raw("metrics", &self.metrics.to_json());
        o.finish()
    }
}

/// The outcome of a full sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Grid name.
    pub grid: String,
    /// Trace the grid ran over.
    pub trace: String,
    /// Per-cell reports, in stable cell order.
    pub cells: Vec<CellReport>,
    /// Worker threads used (not serialized — reports are
    /// thread-count-independent).
    pub threads: usize,
    /// Total wall-clock time (not serialized).
    pub wall: Duration,
}

impl SweepReport {
    /// Deterministic JSON for the whole sweep. Byte-identical for the
    /// same grid + trace regardless of thread count: cells appear in
    /// stable grid order and no wall-clock data is included.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self.cells.iter().map(CellReport::to_json).collect();
        let mut o = JsonObject::new();
        o.field_str("grid", &self.grid);
        o.field_str("trace", &self.trace);
        o.field_u64("cells_total", self.cells.len() as u64);
        o.field_raw("cells", &format!("[{}]", cells.join(",")));
        o.finish()
    }

    /// Write the JSON report as `<dir>/<grid>.json`, creating the
    /// directory if needed. Returns the path written.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.grid));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// A human-readable summary table (this one may mention wall time).
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "sweep '{}' over trace '{}': {} cells, {} threads, {:.2}s\n",
            self.grid,
            self.trace,
            self.cells.len(),
            self.threads,
            self.wall.as_secs_f64()
        ));
        s.push_str(
            "cell  table  compression   refcounts  decrement  hit%   peak   refops     overflow\n",
        );
        for c in &self.cells {
            s.push_str(&format!(
                "{:>4}  {:>5}  {:<12}  {:<9}  {:<9}  {:>5.1}  {:>5}  {:>9}  {}\n",
                c.config.index,
                c.config.params.table_size,
                policy_name(c.config.params.compression),
                refcount_name(c.config.params.refcounts),
                decrement_name(c.config.params.decrement),
                c.result.lpt_hit_rate() * 100.0,
                c.result.lpt.max_occupancy,
                c.result.lpt.refops,
                if c.result.true_overflow { "TRUE" } else { "-" },
            ));
        }
        s
    }
}

/// Run every cell of `grid` over `trace` on up to `threads` worker
/// threads (0 selects the machine's available parallelism).
///
/// Each cell runs a completely independent [`run_sim_with_sink`] —
/// its own `ListProcessor`, heap controller, and RNG seeded from the
/// cell parameters — so per-cell results are bit-identical regardless
/// of scheduling. Workers claim cells from a shared atomic index
/// (work-stealing by competition); results land in stable grid order.
pub fn run_sweep(trace: &Trace, grid: &SweepGrid, threads: usize) -> SweepReport {
    let start = std::time::Instant::now();
    let cells = grid.cells();
    let workers = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
    .min(cells.len())
    .max(1);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CellReport>>> =
        Mutex::new((0..cells.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(k) else { break };
                // A tee sink: the RecordingSink keeps full event
                // metrics, the summary-only SpanSink runs the virtual
                // clock in O(1) memory.
                let sink = (
                    RecordingSink::default(),
                    SpanSink::new(&trace.name).summary_only(),
                );
                let (result, (recording, spans)) =
                    run_sim_with_sink(trace, cell.params, None, sink);
                let report = CellReport {
                    config: *cell,
                    result,
                    metrics: recording.snapshot(),
                    profile: spans.finish(),
                };
                // A panicking worker poisons the slot mutex; the data is
                // a plain Vec, so later workers adopt it rather than
                // cascading the failure.
                slots.lock().unwrap_or_else(|e| e.into_inner())[k] = Some(report);
            });
        }
    });
    let cells = slots
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|c| c.expect("every cell claimed and completed"))
        .collect();
    SweepReport {
        grid: grid.name.clone(),
        trace: trace.name.clone(),
        cells,
        threads: workers,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_workloads::synthetic;

    fn t(prims: usize) -> Trace {
        let mut p = synthetic::table_5_1("slang");
        p.primitives = prims;
        synthetic::generate(&p)
    }

    #[test]
    fn peak_curve_has_slope_one_then_knee_shape() {
        // Figure 5.1: below the knee the peak equals the table size (with
        // pseudo overflows); above it, the peak is flat.
        let trace = t(1500);
        let k = knee(&trace, SimParams::default());
        assert!(k > 8, "knee {k} too small to test");
        let sizes = [k / 2, k.saturating_sub(2).max(1), k, k + 16, k * 2];
        let curve = peak_curve(&trace, SimParams::default(), &sizes);
        // Below the knee: peak == size (the table fills).
        assert_eq!(curve[0].peak, curve[0].table_size);
        assert!(curve[0].pseudo);
        // Well above the knee: no overflow, flat peak.
        assert!(!curve[4].pseudo && !curve[4].true_overflow);
        assert_eq!(curve[4].peak, k);
        assert_eq!(curve[3].peak, k);
    }

    #[test]
    fn knee_spread_is_an_interval() {
        let trace = t(800);
        let (lo, hi) = knee_spread(&trace, SimParams::default(), 5);
        assert!(lo <= hi);
        assert!(lo > 0);
    }

    #[test]
    fn compress_one_keeps_higher_average_occupancy() {
        // Figure 5.3's direction.
        let trace = t(3000);
        let k = knee(&trace, SimParams::default());
        let (one, all) = compression_comparison(&trace, SimParams::default(), (k * 3 / 4).max(8));
        assert!(
            one >= all - 1.0,
            "Compress-One avg {one:.1} should not be below Compress-All {all:.1}"
        );
    }

    #[test]
    fn lazy_refops_below_recursive() {
        let trace = t(2000);
        let row = lpt_activity(&trace, SimParams::default());
        assert!(
            row.rec_refops > row.refops,
            "RecRefops {} must exceed Refops {} (Table 5.2)",
            row.rec_refops,
            row.refops
        );
        assert!(row.gets > 0 && row.frees > 0);
    }

    #[test]
    fn split_counts_cut_bus_traffic_by_a_lot() {
        let trace = t(2000);
        let row = split_counts(&trace, SimParams::default());
        assert!(
            (row.refops_now as f64) < row.refops_then as f64 * 0.67,
            "split {} must cut unified {} bus traffic substantially (Table 5.3)",
            row.refops_now,
            row.refops_then
        );
        assert!(row.max_now_lpt <= row.max_then);
    }

    #[test]
    fn standard_grid_has_twelve_cells_in_stable_order() {
        let g = SweepGrid::standard("std");
        let cells = g.cells();
        assert_eq!(cells.len(), 12);
        for (k, c) in cells.iter().enumerate() {
            assert_eq!(c.index, k);
        }
        // Size-major order: first four cells share the smallest table.
        assert!(cells[..4].iter().all(|c| c.params.table_size == 256));
    }

    #[test]
    fn sweep_report_is_identical_across_thread_counts() {
        // The acceptance bar: a 1-thread and an N-thread sweep produce
        // byte-identical reports — cells are independent and the JSON
        // carries no scheduling-dependent data.
        let trace = t(600);
        let grid = SweepGrid::standard("det");
        let serial = run_sweep(&trace, &grid, 1);
        let parallel = run_sweep(&trace, &grid, 4);
        assert_eq!(serial.to_json(), parallel.to_json());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.result.lpt.refops, b.result.lpt.refops);
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn sweep_cell_metrics_mirror_lpt_stats() {
        let trace = t(600);
        let grid = SweepGrid::standard("mirror");
        let report = run_sweep(&trace, &grid, 0);
        assert_eq!(report.cells.len(), 12);
        for c in &report.cells {
            assert_eq!(c.metrics.counts.refops.get(), c.result.lpt.refops);
            assert_eq!(c.metrics.counts.ep_refops.get(), c.result.lpt.ep_refops);
            assert_eq!(c.metrics.counts.entries_allocated.get(), c.result.lpt.gets);
            assert_eq!(c.metrics.counts.lpt_misses.get(), c.result.lpt.misses);
            assert_eq!(
                c.metrics.occupancy.max(),
                c.result.lpt.max_occupancy as u64,
                "occupancy histogram peak must equal the stats peak"
            );
        }
        // The summary table mentions every cell.
        let table = report.summary_table();
        assert_eq!(table.lines().count(), 2 + 12);
    }

    #[test]
    fn sweep_cell_timing_is_run_stream_exact() {
        let trace = t(600);
        let mut grid = SweepGrid::standard("timing");
        grid.table_sizes = vec![512];
        let report = run_sweep(&trace, &grid, 2);
        for c in &report.cells {
            assert!(c.profile.timing.ops > 0);
            // The incremental virtual clock must equal the batch
            // aggregation over the same class stream.
            assert_eq!(c.profile.timing, c.profile.replay_stream_timing());
            assert!(c.profile.spans.is_empty(), "sweep cells are summary-only");
            let json = c.to_json();
            assert!(json.contains("\"total_cycles\""));
            assert!(json.contains("\"stall_cycles\""));
        }
    }

    #[test]
    fn sweep_json_lands_on_disk() {
        let trace = t(300);
        let mut grid = SweepGrid::standard("disk-check");
        grid.table_sizes = vec![256];
        let report = run_sweep(&trace, &grid, 2);
        let dir = std::env::temp_dir().join("small-sweep-test");
        let path = report.write_json(&dir).expect("write");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(body, report.to_json());
        assert!(body.starts_with("{\"grid\":\"disk-check\""));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn line_size_helps_the_cache() {
        // Figure 5.5's direction: the miss ratio falls as lines grow
        // (prefetch exploits the structural locality in the addresses).
        let trace = t(3000);
        let size = 96;
        let r1 = line_size_ratio(&trace, SimParams::default(), size, 1);
        let r8 = line_size_ratio(&trace, SimParams::default(), size, 8);
        assert!(
            r8 < r1,
            "line 8 ratio {r8:.2} should be below line 1 ratio {r1:.2}"
        );
    }
}
