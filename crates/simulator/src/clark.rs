//! Synthetic distributions after Clark's measurements (§3.2, §5.2.1).
//!
//! Clark's 1976/79 studies found that list cell pointers overwhelmingly
//! point a *small* distance away — linearized lists have pointer
//! distance 1 — with a heavy tail; and that car pointers target
//! atoms:lists ≈ 3:1 while cdr pointers target lists:nil ≈ 3:1. The
//! original distance tables are not available, so this module provides a
//! parametric stand-in matching the published summary (see DESIGN.md
//! "Substitutions"): the simulator uses it to place split pieces when
//! synthesizing heap addresses for the cache comparison, exactly where
//! the thesis "assigned addresses to the car and cdr parts based on
//! pointer distance distributions from Clark's studies" (§5.2.1).

use rand::rngs::StdRng;
use rand::Rng;

/// Sample a signed pointer distance, in cells.
///
/// Mass: ~50% at ±1, ~30% in ±2..10, ~15% in ±10..100, ~5% in
/// ±100..1000.
pub fn pointer_distance(rng: &mut StdRng) -> i64 {
    let mag: i64 = match rng.gen_range(0..100u32) {
        0..=49 => 1,
        50..=79 => rng.gen_range(2..10),
        80..=94 => rng.gen_range(10..100),
        _ => rng.gen_range(100..1000),
    };
    if rng.gen_bool(0.5) {
        mag
    } else {
        -mag
    }
}

/// Sample an `(n, p)` size for a fresh list from a trace's observed
/// distribution (falling back to a small default when the trace carries
/// no list uids).
pub fn sample_np(rng: &mut StdRng, uids: &[small_trace::event::UidInfo]) -> (u32, u32) {
    sample_np_pooled(rng, &np_pool(uids))
}

/// The `(n, p)` pool [`sample_np`] draws from, precomputed. Callers that
/// sample repeatedly from one trace (the driver calls this per `read`
/// primitive) should build the pool once and use [`sample_np_pooled`]
/// rather than re-filtering the uid table on every draw.
pub fn np_pool(uids: &[small_trace::event::UidInfo]) -> Vec<(u32, u32)> {
    uids.iter()
        .filter(|u| !u.atom && u.n > 0)
        .map(|u| (u.n, u.p))
        .collect()
}

/// [`sample_np`] against a precomputed [`np_pool`]. Draw-for-draw
/// identical to `sample_np` on the pool's source uids: one `gen_range`
/// when the pool is non-empty, no draw for the empty fallback.
pub fn sample_np_pooled(rng: &mut StdRng, pool: &[(u32, u32)]) -> (u32, u32) {
    if pool.is_empty() {
        return (3, 0);
    }
    pool[rng.gen_range(0..pool.len())]
}

/// Generate a random proper list with approximately the given `n` atoms
/// and `p` internal sub-lists (used to materialize `read` objects whose
/// size the trace dictates but whose content it does not).
pub fn gen_sexpr(rng: &mut StdRng, n: u32, p: u32) -> small_sexpr::SExpr {
    use small_sexpr::SExpr;
    // Cap sizes to keep pathological uids (EDITOR's n≈500 documents)
    // from dominating simulation time.
    let n = n.clamp(1, 400) as usize;
    // An empty sub-list would print as `nil` and not count toward p, so
    // each of the p inner levels must hold at least one atom.
    let p = (p.min(60) as usize).min(n.saturating_sub(1));
    // Distribute the n atoms over p+1 list levels, seeding each inner
    // level with one atom first.
    let mut levels: Vec<Vec<SExpr>> = vec![Vec::new(); p + 1];
    for (k, level) in levels.iter_mut().enumerate().skip(1) {
        level.push(SExpr::int(k as i64));
    }
    for k in p..n {
        let lvl = rng.gen_range(0..levels.len());
        levels[lvl].push(SExpr::int(k as i64));
    }
    // Fold deepest level into its parent as a sub-list.
    while levels.len() > 1 {
        let inner = levels.pop().expect("len > 1");
        let inner_list = SExpr::list(inner);
        let parent = levels.last_mut().expect("len >= 1");
        let at = rng.gen_range(0..=parent.len());
        parent.insert(at, inner_list);
    }
    SExpr::list(levels.pop().expect("one level"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use small_sexpr::metrics::np;

    #[test]
    fn distances_are_small_on_average() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<i64> = (0..10_000).map(|_| pointer_distance(&mut rng)).collect();
        let ones = samples.iter().filter(|d| d.abs() == 1).count();
        assert!(
            (4000..6000).contains(&ones),
            "about half the distances should be ±1, got {ones}"
        );
        assert!(samples.iter().all(|d| d.abs() >= 1 && d.abs() < 1000));
    }

    #[test]
    fn gen_sexpr_matches_requested_size() {
        let mut rng = StdRng::seed_from_u64(3);
        for (n, p) in [(5u32, 1u32), (12, 3), (1, 0), (40, 8)] {
            let e = gen_sexpr(&mut rng, n, p);
            let m = np(&e);
            assert_eq!(m.n as u32, n, "n for ({n},{p})");
            assert_eq!(m.p as u32, p, "p for ({n},{p})");
        }
    }

    #[test]
    fn sample_np_draws_from_trace() {
        let mut rng = StdRng::seed_from_u64(5);
        let uids = vec![
            small_trace::event::UidInfo {
                n: 7,
                p: 2,
                atom: false,
            },
            small_trace::event::UidInfo {
                n: 1,
                p: 0,
                atom: true,
            },
        ];
        for _ in 0..10 {
            assert_eq!(sample_np(&mut rng, &uids), (7, 2));
        }
        assert_eq!(sample_np(&mut rng, &[]), (3, 0));
    }
}
