//! The data-cache comparator (§5.2.5).
//!
//! A fully associative, LRU-replacement data cache whose cachable unit
//! is one two-pointer list cell. The line size (cells per line) is
//! configurable: Table 5.4 uses unit lines; Figure 5.5 sweeps 1..16 with
//! each cache entry half the size of an LPT entry (twice the entry
//! count at equal storage).

use std::collections::HashMap;

/// Fully associative LRU cache over cell addresses.
pub struct LruCache {
    /// Line capacity (number of lines).
    capacity: usize,
    /// Cells per line.
    line_cells: u64,
    /// tag → last-use timestamp.
    lines: HashMap<u64, u64>,
    /// timestamp → tag (the LRU order).
    order: std::collections::BTreeMap<u64, u64>,
    clock: u64,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
}

impl LruCache {
    /// A cache of `capacity` lines of `line_cells` cells each.
    pub fn new(capacity: usize, line_cells: usize) -> Self {
        assert!(capacity > 0 && line_cells > 0);
        LruCache {
            capacity,
            line_cells: line_cells as u64,
            lines: HashMap::with_capacity(capacity + 1),
            order: std::collections::BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Access the cell at `addr`; returns true on hit. A miss fetches
    /// the whole line (the pre-fetch effect of §5.2.5).
    pub fn access(&mut self, addr: u64) -> bool {
        let tag = addr / self.line_cells;
        self.clock += 1;
        let hit = if let Some(ts) = self.lines.get_mut(&tag) {
            self.order.remove(&*ts);
            *ts = self.clock;
            self.order.insert(self.clock, tag);
            true
        } else {
            self.lines.insert(tag, self.clock);
            self.order.insert(self.clock, tag);
            if self.lines.len() > self.capacity {
                let (&oldest, &victim) = self.order.iter().next().expect("nonempty");
                self.order.remove(&oldest);
                self.lines.remove(&victim);
            }
            false
        };
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Lines currently resident.
    pub fn resident(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = LruCache::new(4, 1);
        assert!(!c.access(10));
        assert!(c.access(10));
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = LruCache::new(2, 1);
        c.access(1);
        c.access(2);
        c.access(1); // 1 now MRU
        c.access(3); // evicts 2
        assert!(c.access(1), "1 must still be resident");
        assert!(!c.access(2), "2 was evicted");
    }

    #[test]
    fn capacity_respected() {
        let mut c = LruCache::new(8, 1);
        for a in 0..100 {
            c.access(a);
        }
        assert_eq!(c.resident(), 8);
    }

    #[test]
    fn line_size_prefetches_neighbours() {
        let mut c = LruCache::new(4, 4);
        assert!(!c.access(0));
        assert!(c.access(1), "same line");
        assert!(c.access(3), "same line");
        assert!(!c.access(4), "next line");
    }

    #[test]
    fn spatial_stream_benefits_from_longer_lines() {
        // Sequential walk: longer lines → fewer misses.
        let run = |line: usize| {
            let mut c = LruCache::new(16, line);
            for a in 0..1000u64 {
                c.access(a);
            }
            c.misses
        };
        assert!(run(8) < run(2));
        assert!(run(2) < run(1));
    }

    #[test]
    fn random_stream_does_not_benefit() {
        // Pseudo-random addresses far apart: line size cannot help.
        let run = |line: usize| {
            let mut c = LruCache::new(16, line);
            let mut x = 12345u64;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                c.access(x >> 20);
            }
            c.misses
        };
        let diff = run(8) as i64 - run(1) as i64;
        assert!(diff.abs() < 50, "no spatial locality to exploit: {diff}");
    }
}
