//! The trace-driven simulator (§5.2.1).
//!
//! Drives the *real* List Processor of `small-core` with a pre-processed
//! trace. The trace supplies the primitive sequence, chaining flags, and
//! function-call structure; arguments are reconstructed exactly as in
//! the thesis:
//!
//! * a chained argument is the value on top of the simulated run-time
//!   stack (the previous primitive's result);
//! * otherwise the operand is drawn from the current function's
//!   arguments (ArgProb), its locals (LocProb), or a non-local
//!   (remainder), then — with probability ReadProb — treated as freshly
//!   re-`read`;
//! * each result is bound to a random stack variable with probability
//!   BindProb, else left on top of the stack.
//!
//! The simulated control-cum-binding stack pushes argument and local
//! slots on every `FnEnter` ("randomly bound to something older on the
//! stack") and pops them on `FnExit`, generating the reference-count
//! bursts of §5.3.3. Every slot holds a [`Rooted`] binding handle;
//! popping a frame drops its handles and the LP performs the releases
//! at its next operation boundary.
//!
//! A parallel LRU data cache (§5.2.5) observes the same car/cdr request
//! stream through synthesized heap addresses: objects read in get
//! sequential addresses sized by their n/p, split pieces land at
//! Clark-distributed offsets from their parent, conses allocate
//! sequentially.
//!
//! [`run_sim_with_sink`] threads a [`small_metrics::EventSink`] through
//! the LP, so a run can be observed event-by-event (histograms,
//! counters) at no cost to the uninstrumented [`run_sim`] path.

use crate::cache::LruCache;
use crate::clark;
use crate::config::SimParams;
use fxhash::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use small_core::LptStats;
use small_core::{Id, ListProcessor, LpConfig, LpError, LpValue, Rooted};
use small_heap::controller::{ControllerStats, HeapController, TwoPointerController};
use small_metrics::{EventSink, NoopSink};
use small_trace::{Prim, Trace};

/// Optional cache model configuration.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of cache lines.
    pub lines: usize,
    /// Cells per line.
    pub line_cells: usize,
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Trace name.
    pub name: String,
    /// LPT counters.
    pub lpt: LptStats,
    /// Heap-controller counters.
    pub heap: ControllerStats,
    /// car/cdr requests satisfied by LPT fields (Table 5.4 semantics —
    /// excludes splits triggered by rplaca/rplacd).
    pub access_hits: u64,
    /// car/cdr requests that needed a split.
    pub access_misses: u64,
    /// Cache hits over the same request stream (if a cache was attached).
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Whether the run aborted on a true LPT overflow.
    pub true_overflow: bool,
    /// A typed heap/LP failure that ended the run early (`None` for a
    /// clean completion or a plain true-overflow abort). The simulator
    /// never panics on heap failures; they surface here.
    pub failure: Option<String>,
    /// Primitive events executed before completion/abort.
    pub prims_executed: usize,
}

impl SimResult {
    /// LPT hit rate over car/cdr requests.
    pub fn lpt_hit_rate(&self) -> f64 {
        rate(self.access_hits, self.access_misses)
    }

    /// Cache hit rate over the same requests.
    pub fn cache_hit_rate(&self) -> f64 {
        rate(self.cache_hits, self.cache_misses)
    }
}

fn rate(h: u64, m: u64) -> f64 {
    if h + m == 0 {
        0.0
    } else {
        h as f64 / (h + m) as f64
    }
}

pub(crate) struct FrameSim {
    pub(crate) args: Vec<Rooted>,
    pub(crate) locals: Vec<Rooted>,
}

pub(crate) struct Driver<'t, C: HeapController, S: EventSink> {
    pub(crate) trace: &'t Trace,
    /// Precomputed `clark::np_pool` of the trace — derived, never
    /// serialized in checkpoints.
    pub(crate) np_pool: Vec<(u32, u32)>,
    pub(crate) params: SimParams,
    pub(crate) lp: ListProcessor<C, S>,
    pub(crate) rng: StdRng,
    pub(crate) frames: Vec<FrameSim>,
    pub(crate) globals: Vec<Rooted>,
    pub(crate) tos: Option<Rooted>,
    // Cache model.
    pub(crate) cache: Option<LruCache>,
    pub(crate) addrs: FxHashMap<Id, u64>,
    pub(crate) next_addr: u64,
    pub(crate) access_hits: u64,
    pub(crate) access_misses: u64,
}

/// Run the simulator over `trace` with `params`, optionally with a data
/// cache observing the same access stream.
pub fn run_sim(trace: &Trace, params: SimParams, cache: Option<CacheConfig>) -> SimResult {
    run_sim_with_sink(trace, params, cache, NoopSink).0
}

/// [`run_sim`] under a full-fidelity [`small_profile::SpanSink`]:
/// returns the finished cycle-stamped [`small_profile::Profile`]
/// (timeline spans, per-primitive attribution, and `run_stream`-exact
/// aggregate timing) alongside the ordinary result. The simulation is
/// identical to the uninstrumented path — the profiler only observes
/// the LP's operation boundaries.
pub fn run_sim_profiled(
    trace: &Trace,
    params: SimParams,
    cache: Option<CacheConfig>,
) -> (SimResult, small_profile::Profile) {
    let (r, sink) = run_sim_with_sink(
        trace,
        params,
        cache,
        small_profile::SpanSink::new(&trace.name),
    );
    (r, sink.finish())
}

/// [`run_sim`] with the LP reporting every event to `sink`; returns the
/// sink alongside the result. The simulation itself is identical — the
/// sink only observes.
pub fn run_sim_with_sink<S: EventSink>(
    trace: &Trace,
    params: SimParams,
    cache: Option<CacheConfig>,
    sink: S,
) -> (SimResult, S) {
    let controller = TwoPointerController::new(params.heap_cells, 256);
    let (result, _controller, sink) = run_sim_on_controller(trace, params, cache, controller, sink);
    (result, sink)
}

/// The generic core of [`run_sim`]: drive the trace over any heap
/// controller — notably a `small_heap::FaultyController` wrapper, which
/// is how the chaos harness replays workloads under seeded fault
/// schedules. Returns the controller alongside the result and sink so
/// fault ledgers survive the run.
pub fn run_sim_on_controller<C: HeapController, S: EventSink>(
    trace: &Trace,
    params: SimParams,
    cache: Option<CacheConfig>,
    controller: C,
    sink: S,
) -> (SimResult, C, S) {
    let lp = ListProcessor::with_sink(
        controller,
        LpConfig {
            table_size: params.table_size,
            compression: params.compression,
            decrement: params.decrement,
            refcounts: params.refcounts,
            overflow: params.overflow,
            ..LpConfig::default()
        },
        sink,
    );
    let mut d = Driver {
        trace,
        np_pool: clark::np_pool(&trace.uids),
        params,
        lp,
        rng: StdRng::seed_from_u64(params.seed),
        frames: Vec::new(),
        globals: Vec::new(),
        tos: None,
        cache: cache.map(|c| LruCache::new(c.lines, c.line_cells)),
        addrs: FxHashMap::default(),
        next_addr: 0,
        access_hits: 0,
        access_misses: 0,
    };
    let (true_overflow, prims_executed, failure) = d.run();
    let result = SimResult {
        name: trace.name.clone(),
        lpt: d.lp.stats(),
        heap: d.lp.controller.stats(),
        access_hits: d.access_hits,
        access_misses: d.access_misses,
        cache_hits: d.cache.as_ref().map_or(0, |c| c.hits),
        cache_misses: d.cache.as_ref().map_or(0, |c| c.misses),
        true_overflow,
        failure,
        prims_executed,
    };
    let (controller, sink) = d.teardown();
    (result, controller, sink)
}

impl<'t, C: HeapController, S: EventSink> Driver<'t, C, S> {
    /// Defuse outstanding handles and tear the LP down (the deferred
    /// releases would never run anyway; this keeps teardown explicit).
    pub(crate) fn teardown(mut self) -> (C, S) {
        self.tos.take().map(Rooted::leak);
        self.globals.drain(..).for_each(|h| {
            h.leak();
        });
        for f in self.frames.drain(..) {
            f.args.into_iter().chain(f.locals).for_each(|h| {
                h.leak();
            });
        }
        self.lp.into_parts()
    }

    /// Seed the global environment with a few read-in objects.
    pub(crate) fn seed_globals(&mut self) -> Result<(), LpError> {
        for _ in 0..6 {
            let v = self.fresh_object()?;
            // The read-in reference becomes the global binding.
            let h = self.lp.adopt_binding(v);
            self.globals.push(h);
        }
        Ok(())
    }

    /// Apply one trace event, counting primitives into `prims`.
    pub(crate) fn step(
        &mut self,
        ev: &small_trace::Event,
        prims: &mut usize,
    ) -> Result<(), LpError> {
        match ev {
            small_trace::Event::FnEnter { nargs, .. } => self.fn_enter(*nargs as usize),
            small_trace::Event::FnExit => {
                self.fn_exit();
                Ok(())
            }
            small_trace::Event::Prim { prim, args, .. } => {
                *prims += 1;
                self.prim(*prim, args)
            }
        }
    }

    fn run(&mut self) -> (bool, usize, Option<String>) {
        match self.seed_globals() {
            Ok(()) => {}
            Err(LpError::TrueOverflow) => return (true, 0, None),
            Err(e) => return (false, 0, Some(e.to_string())),
        }
        let trace = self.trace;
        let mut prims = 0usize;
        for ev in &trace.events {
            match self.step(ev, &mut prims) {
                Ok(()) => {}
                Err(LpError::TrueOverflow) => return (true, prims, None),
                // Any other heap/LP condition ends the run as a typed,
                // reported failure — the simulator never panics on one.
                Err(e) => return (false, prims, Some(e.to_string())),
            }
        }
        (false, prims, None)
    }

    // -- object creation ------------------------------------------------

    fn fresh_object(&mut self) -> Result<LpValue, LpError> {
        let (n, p) = clark::sample_np_pooled(&mut self.rng, &self.np_pool);
        let e = clark::gen_sexpr(&mut self.rng, n, p);
        let v = self.lp.retrying(|lp| lp.readlist(None, &e))?;
        if let LpValue::Obj(id) = v {
            // Sequential address sized by the object (§5.2.5).
            self.addrs.insert(id, self.next_addr);
            self.next_addr += u64::from(n + p).max(1);
        }
        Ok(v)
    }

    // -- simulated control stack ----------------------------------------

    fn fn_enter(&mut self, nargs: usize) -> Result<(), LpError> {
        let nlocals = self.rng.gen_range(0..=2usize);
        let mut frame = FrameSim {
            args: Vec::with_capacity(nargs),
            locals: Vec::with_capacity(nlocals),
        };
        for _ in 0..nargs {
            let v = self.older_value()?;
            frame.args.push(self.lp.root_binding(v));
        }
        for _ in 0..nlocals {
            let v = self.older_value()?;
            frame.locals.push(self.lp.root_binding(v));
        }
        self.frames.push(frame);
        Ok(())
    }

    fn fn_exit(&mut self) {
        // Dropping the frame drops its binding handles; the LP releases
        // them at its next operation boundary.
        self.frames.pop();
    }

    /// A value "older on the stack": a random existing slot, or a fresh
    /// object when none exists. The pool — TOS, then every frame's args
    /// and locals in order, then the globals — is indexed virtually;
    /// materializing it per call dominated the simulator's wall time on
    /// deep-stack traces without changing which value is drawn.
    fn older_value(&mut self) -> Result<LpValue, LpError> {
        let tos = usize::from(self.tos.is_some());
        let stack: usize = self
            .frames
            .iter()
            .map(|f| f.args.len() + f.locals.len())
            .sum();
        let len = tos + stack + self.globals.len();
        if len == 0 {
            return self.fresh_object();
        }
        let mut k = self.rng.gen_range(0..len);
        if let Some(h) = &self.tos {
            if k == 0 {
                return Ok(h.value());
            }
            k -= 1;
        }
        for f in &self.frames {
            if k < f.args.len() {
                return Ok(f.args[k].value());
            }
            k -= f.args.len();
            if k < f.locals.len() {
                return Ok(f.locals[k].value());
            }
            k -= f.locals.len();
        }
        Ok(self.globals[k].value())
    }

    // -- operand selection (§5.2.1) --------------------------------------

    fn select_slot(&mut self) -> (usize, usize, usize) {
        // Returns (class, frame index, slot index); class 0=arg, 1=local,
        // 2=global/non-local.
        let x: f64 = self.rng.gen();
        let cur = self.frames.len().checked_sub(1);
        if let Some(cur) = cur {
            if x < self.params.arg_prob && !self.frames[cur].args.is_empty() {
                let k = self.rng.gen_range(0..self.frames[cur].args.len());
                return (0, cur, k);
            }
            if x < self.params.arg_prob + self.params.loc_prob
                && !self.frames[cur].locals.is_empty()
            {
                let k = self.rng.gen_range(0..self.frames[cur].locals.len());
                return (1, cur, k);
            }
        }
        // Non-local: an outer frame slot or a global. The outer-slot
        // list (every non-current frame's args then locals, in frame
        // order) is indexed virtually — same draw, no per-call
        // materialization.
        let outer_frames = self.frames.len().saturating_sub(1);
        let outer_len: usize = self.frames[..outer_frames]
            .iter()
            .map(|f| f.args.len() + f.locals.len())
            .sum();
        let total = outer_len + self.globals.len();
        if total == 0 || self.rng.gen_range(0..total) >= outer_len {
            let k = if self.globals.is_empty() {
                0
            } else {
                self.rng.gen_range(0..self.globals.len())
            };
            (2, 0, k)
        } else {
            let mut k = self.rng.gen_range(0..outer_len);
            for (fi, f) in self.frames[..outer_frames].iter().enumerate() {
                if k < f.args.len() {
                    return (0, fi, k);
                }
                k -= f.args.len();
                if k < f.locals.len() {
                    return (1, fi, k);
                }
                k -= f.locals.len();
            }
            unreachable!("outer slot index within summed bounds")
        }
    }

    fn slot_get(&self, c: (usize, usize, usize)) -> LpValue {
        match c.0 {
            0 => self.frames[c.1].args[c.2].value(),
            1 => self.frames[c.1].locals[c.2].value(),
            _ => self.globals[c.2].value(),
        }
    }

    /// Install a binding handle in a slot; the displaced handle's
    /// reference is released at the next LP operation boundary.
    fn slot_set(&mut self, c: (usize, usize, usize), h: Rooted) {
        match c.0 {
            0 => self.frames[c.1].args[c.2] = h,
            1 => self.frames[c.1].locals[c.2] = h,
            _ => self.globals[c.2] = h,
        }
    }

    /// Pick an operand per §5.2.1. When `need_list` is set the operand
    /// must be a list object (car/cdr/rplac targets); an atom-valued
    /// slot is treated as freshly re-read.
    fn operand(&mut self, chained: bool, need_list: bool) -> Result<LpValue, LpError> {
        if chained {
            if let Some(h) = &self.tos {
                let v = h.value();
                if !need_list || v.is_list() {
                    return Ok(v);
                }
            }
        }
        if self.globals.is_empty() && self.frames.is_empty() {
            return self.fresh_object();
        }
        // Ensure a global exists for the non-local fallback.
        if self.globals.is_empty() {
            let v = self.fresh_object()?;
            let h = self.lp.adopt_binding(v);
            self.globals.push(h);
        }
        let slot = self.select_slot();
        let mut v = self.slot_get(slot);
        let reread = self.rng.gen_bool(self.params.read_prob) || (need_list && !v.is_list());
        if reread {
            let fresh = self.fresh_object()?;
            // `fresh` carries one stack reference; the slot adopts it.
            let h = self.lp.adopt_binding(fresh);
            self.slot_set(slot, h);
            v = fresh;
        }
        Ok(v)
    }

    // -- result placement -------------------------------------------------

    fn set_tos(&mut self, h: Rooted) {
        // The displaced TOS handle drops; its reference is released at
        // the next operation boundary.
        self.tos = Some(h);
    }

    fn maybe_bind(&mut self, v: LpValue) {
        if self.rng.gen_bool(self.params.bind_prob)
            && !(self.frames.is_empty() && self.globals.is_empty())
        {
            if self.globals.is_empty() {
                let h = self.lp.root_binding(v);
                self.globals.push(h);
                return;
            }
            let slot = self.select_slot();
            let h = self.lp.root_binding(v);
            self.slot_set(slot, h);
        }
    }

    // -- cache model --------------------------------------------------------

    fn addr_of(&mut self, id: Id) -> u64 {
        match self.addrs.get(&id) {
            Some(a) => *a,
            None => {
                let a = self.next_addr;
                self.next_addr += 1;
                self.addrs.insert(id, a);
                a
            }
        }
    }

    fn cache_access(&mut self, id: Id) {
        let addr = self.addr_of(id);
        if let Some(c) = self.cache.as_mut() {
            c.access(addr);
        }
    }

    /// After a split of `parent`, place both pieces at Clark-distributed
    /// offsets from the parent's address.
    fn place_children(&mut self, parent: Id) {
        let base = self.addr_of(parent);
        let (car, cdr) = self.lp.peek_fields(parent);
        for child in [car, cdr].into_iter().flatten() {
            if let LpValue::Obj(c) = child {
                if !self.addrs.contains_key(&c) {
                    let off = clark::pointer_distance(&mut self.rng);
                    self.addrs.insert(c, base.saturating_add_signed(off));
                }
            }
        }
    }

    // -- primitive execution --------------------------------------------

    fn prim(&mut self, prim: Prim, args: &[small_trace::event::ListRef]) -> Result<(), LpError> {
        let chained = |k: usize| args.get(k).is_some_and(|a| a.chained);
        match prim {
            Prim::Car | Prim::Cdr => {
                let arg = self.operand(chained(0), true)?;
                // Root the operand: selecting/re-reading other slots or
                // replacing TOS must not free it while in use. (A
                // register reference — no bus traffic.) Heap-direct
                // operands (§4.3.2.3 overflow mode) carry no table
                // reference; the handle is inert for them.
                let guard = self.lp.root(arg);
                if let LpValue::Obj(id) = arg {
                    self.cache_access(id);
                }
                let before = self.lp.stats().misses;
                let want_car = prim == Prim::Car;
                // Transient heap faults are retried with bounded
                // backoff at the call site, leaving the workload's RNG
                // stream untouched.
                let v = self.lp.retrying(|lp| {
                    if want_car {
                        lp.car_of(arg)
                    } else {
                        lp.cdr_of(arg)
                    }
                })?;
                if self.lp.stats().misses > before {
                    self.access_misses += 1;
                    if let LpValue::Obj(id) = arg {
                        self.place_children(id);
                    }
                } else {
                    self.access_hits += 1;
                }
                // Atoms carry no reference; objects arrive retained.
                let h = self.lp.adopt_binding(v);
                self.set_tos(h);
                self.maybe_bind(v);
                drop(guard);
            }
            Prim::Cons => {
                let a = self.operand(chained(0), false)?;
                let guard_a = self.lp.root(a);
                // The second selection can re-read the slot holding `a`;
                // the root reference keeps `a` alive.
                let b = self.operand(chained(1), false)?;
                let guard_b = self.lp.root(b);
                let v = self.lp.retrying(|lp| lp.cons(a, b))?;
                if let LpValue::Obj(id) = v {
                    // A conventional machine would allocate one cell.
                    let addr = self.next_addr;
                    self.next_addr += 1;
                    self.addrs.insert(id, addr);
                }
                let h = self.lp.adopt_binding(v);
                self.set_tos(h);
                self.maybe_bind(v);
                drop(guard_a);
                drop(guard_b);
            }
            Prim::Rplaca | Prim::Rplacd => {
                let target = self.operand(chained(0), true)?;
                let guard_t = self.lp.root(target);
                let v = self.operand(chained(1), false)?;
                let guard_v = self.lp.root(v);
                let before = self.lp.stats().misses;
                let is_a = prim == Prim::Rplaca;
                match self.lp.retrying(|lp| {
                    if is_a {
                        lp.rplaca_of(target, v)
                    } else {
                        lp.rplacd_of(target, v)
                    }
                }) {
                    Ok(()) => {}
                    // Heap-direct values are immutable in overflow
                    // mode: the mutation is skipped and the run goes
                    // on against the unmodified target.
                    Err(LpError::Degraded(_)) => {}
                    Err(e) => return Err(e),
                }
                if self.lp.stats().misses > before {
                    if let LpValue::Obj(id) = target {
                        self.place_children(id);
                    }
                }
                // The result is the modified list; TOS takes a fresh
                // stack reference to it.
                let h = self.lp.root_binding(target);
                self.set_tos(h);
                drop(guard_t);
                drop(guard_v);
            }
            Prim::Read => {
                let v = self.fresh_object()?;
                // `read` binds its result to a variable (Figure 4.15),
                // and its value lands on TOS.
                let bind = self.lp.root_binding(v);
                self.maybe_bind_forced(bind);
                let h = self.lp.adopt_binding(v);
                self.set_tos(h);
            }
        }
        Ok(())
    }

    fn maybe_bind_forced(&mut self, h: Rooted) {
        if self.globals.is_empty() {
            self.globals.push(h);
            return;
        }
        let slot = self.select_slot();
        self.slot_set(slot, h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_metrics::CountingSink;
    use small_workloads::synthetic;

    fn small_trace() -> Trace {
        let mut p = synthetic::table_5_1("slang");
        p.primitives = 500;
        p.functions = 120;
        synthetic::generate(&p)
    }

    #[test]
    fn completes_without_overflow_on_adequate_table() {
        let t = small_trace();
        let r = run_sim(&t, SimParams::default(), None);
        assert!(!r.true_overflow);
        assert_eq!(r.prims_executed, 500);
        assert!(r.lpt.gets > 0);
        assert!(r.access_hits + r.access_misses > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = small_trace();
        let a = run_sim(&t, SimParams::default(), None);
        let b = run_sim(&t, SimParams::default(), None);
        assert_eq!(a.lpt.refops, b.lpt.refops);
        assert_eq!(a.access_misses, b.access_misses);
        let c = run_sim(&t, SimParams::default().with_seed(99), None);
        assert_ne!(a.lpt.refops, c.lpt.refops);
    }

    #[test]
    fn instrumented_run_matches_uninstrumented() {
        // The sink only observes: stats with and without instrumentation
        // are identical, and the event counts mirror the LPT counters.
        let t = small_trace();
        let plain = run_sim(&t, SimParams::default(), None);
        let (r, sink) = run_sim_with_sink(&t, SimParams::default(), None, CountingSink::default());
        assert_eq!(plain.lpt.refops, r.lpt.refops);
        assert_eq!(plain.lpt.gets, r.lpt.gets);
        assert_eq!(plain.lpt.frees, r.lpt.frees);
        assert_eq!(plain.access_misses, r.access_misses);
        assert_eq!(sink.counts.refops.get(), r.lpt.refops);
        assert_eq!(sink.counts.entries_allocated.get(), r.lpt.gets);
        assert_eq!(sink.counts.entries_freed.get(), r.lpt.frees);
        assert_eq!(sink.counts.lpt_misses.get(), r.lpt.misses);
    }

    #[test]
    fn cache_observes_same_stream() {
        let t = small_trace();
        let r = run_sim(
            &t,
            SimParams::default(),
            Some(CacheConfig {
                lines: 256,
                line_cells: 1,
            }),
        );
        assert_eq!(
            r.cache_hits + r.cache_misses,
            r.access_hits + r.access_misses,
            "cache sees exactly the car/cdr requests"
        );
    }

    #[test]
    fn lpt_beats_unit_line_cache_at_equal_entries() {
        // The Table 5.4 direction on a longer synthetic trace.
        let mut p = synthetic::table_5_1("slang");
        p.primitives = 2304;
        let t = synthetic::generate(&p);
        let size = 120;
        let r = run_sim(
            &t,
            SimParams::default().with_table(size),
            Some(CacheConfig {
                lines: size,
                line_cells: 1,
            }),
        );
        assert!(!r.true_overflow);
        assert!(
            r.cache_misses > r.access_misses,
            "cache misses {} must exceed LPT misses {}",
            r.cache_misses,
            r.access_misses
        );
    }

    #[test]
    fn tiny_table_overflow_is_reported_or_survived() {
        let t = small_trace();
        let r = run_sim(&t, SimParams::default().with_table(8), None);
        // Either compression kept it alive or a true overflow occurred;
        // both must be reported coherently.
        if r.true_overflow {
            assert!(r.prims_executed < 500);
        } else {
            assert!(r.lpt.pseudo_overflows > 0);
        }
    }

    #[test]
    fn peak_occupancy_bounded_by_table() {
        let t = small_trace();
        for size in [32, 64, 256] {
            let r = run_sim(&t, SimParams::default().with_table(size), None);
            assert!(r.lpt.max_occupancy <= size);
        }
    }
}
