//! The trace-driven simulator (§5.2.1).
//!
//! Drives the *real* List Processor of `small-core` with a pre-processed
//! trace. The trace supplies the primitive sequence, chaining flags, and
//! function-call structure; arguments are reconstructed exactly as in
//! the thesis:
//!
//! * a chained argument is the value on top of the simulated run-time
//!   stack (the previous primitive's result);
//! * otherwise the operand is drawn from the current function's
//!   arguments (ArgProb), its locals (LocProb), or a non-local
//!   (remainder), then — with probability ReadProb — treated as freshly
//!   re-`read`;
//! * each result is bound to a random stack variable with probability
//!   BindProb, else left on top of the stack.
//!
//! The simulated control-cum-binding stack pushes argument and local
//! slots on every `FnEnter` ("randomly bound to something older on the
//! stack") and pops them on `FnExit`, generating the reference-count
//! bursts of §5.3.3.
//!
//! A parallel LRU data cache (§5.2.5) observes the same car/cdr request
//! stream through synthesized heap addresses: objects read in get
//! sequential addresses sized by their n/p, split pieces land at
//! Clark-distributed offsets from their parent, conses allocate
//! sequentially.

use crate::cache::LruCache;
use crate::clark;
use crate::config::SimParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use small_core::{Id, ListProcessor, LpConfig, LpError, LpValue};
use small_heap::controller::{ControllerStats, HeapController, TwoPointerController};
use small_core::LptStats;
use small_trace::{Prim, Trace};
use std::collections::HashMap;

/// Optional cache model configuration.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of cache lines.
    pub lines: usize,
    /// Cells per line.
    pub line_cells: usize,
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Trace name.
    pub name: String,
    /// LPT counters.
    pub lpt: LptStats,
    /// Heap-controller counters.
    pub heap: ControllerStats,
    /// car/cdr requests satisfied by LPT fields (Table 5.4 semantics —
    /// excludes splits triggered by rplaca/rplacd).
    pub access_hits: u64,
    /// car/cdr requests that needed a split.
    pub access_misses: u64,
    /// Cache hits over the same request stream (if a cache was attached).
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Whether the run aborted on a true LPT overflow.
    pub true_overflow: bool,
    /// Primitive events executed before completion/abort.
    pub prims_executed: usize,
}

impl SimResult {
    /// LPT hit rate over car/cdr requests.
    pub fn lpt_hit_rate(&self) -> f64 {
        rate(self.access_hits, self.access_misses)
    }

    /// Cache hit rate over the same requests.
    pub fn cache_hit_rate(&self) -> f64 {
        rate(self.cache_hits, self.cache_misses)
    }
}

fn rate(h: u64, m: u64) -> f64 {
    if h + m == 0 {
        0.0
    } else {
        h as f64 / (h + m) as f64
    }
}

struct FrameSim {
    args: Vec<LpValue>,
    locals: Vec<LpValue>,
}

struct Driver<'t> {
    trace: &'t Trace,
    params: SimParams,
    lp: ListProcessor<TwoPointerController>,
    rng: StdRng,
    frames: Vec<FrameSim>,
    globals: Vec<LpValue>,
    tos: Option<LpValue>,
    // Cache model.
    cache: Option<LruCache>,
    addrs: HashMap<Id, u64>,
    next_addr: u64,
    access_hits: u64,
    access_misses: u64,
}

/// Run the simulator over `trace` with `params`, optionally with a data
/// cache observing the same access stream.
pub fn run_sim(trace: &Trace, params: SimParams, cache: Option<CacheConfig>) -> SimResult {
    let lp = ListProcessor::new(
        TwoPointerController::new(params.heap_cells, 256),
        LpConfig {
            table_size: params.table_size,
            compression: params.compression,
            decrement: params.decrement,
            refcounts: params.refcounts,
            ..LpConfig::default()
        },
    );
    let mut d = Driver {
        trace,
        params,
        lp,
        rng: StdRng::seed_from_u64(params.seed),
        frames: Vec::new(),
        globals: Vec::new(),
        tos: None,
        cache: cache.map(|c| LruCache::new(c.lines, c.line_cells)),
        addrs: HashMap::new(),
        next_addr: 0,
        access_hits: 0,
        access_misses: 0,
    };
    let (true_overflow, prims_executed) = d.run();
    SimResult {
        name: trace.name.clone(),
        lpt: d.lp.stats(),
        heap: d.lp.controller.stats(),
        access_hits: d.access_hits,
        access_misses: d.access_misses,
        cache_hits: d.cache.as_ref().map_or(0, |c| c.hits),
        cache_misses: d.cache.as_ref().map_or(0, |c| c.misses),
        true_overflow,
        prims_executed,
    }
}

impl<'t> Driver<'t> {
    fn run(&mut self) -> (bool, usize) {
        // Seed the global environment with a few read-in objects.
        for _ in 0..6 {
            if self.fresh_object().map(|v| self.globals.push(v)).is_err() {
                return (true, 0);
            }
        }
        let events: Vec<_> = self.trace.events.to_vec();
        let mut prims = 0usize;
        for ev in &events {
            let r = match ev {
                small_trace::Event::FnEnter { nargs, .. } => self.fn_enter(*nargs as usize),
                small_trace::Event::FnExit => {
                    self.fn_exit();
                    Ok(())
                }
                small_trace::Event::Prim { prim, args, .. } => {
                    prims += 1;
                    self.prim(*prim, args)
                }
            };
            match r {
                Ok(()) => {}
                Err(LpError::TrueOverflow) => return (true, prims),
                Err(e) => panic!("simulator heap failure: {e}"),
            }
        }
        (false, prims)
    }

    // -- object creation ------------------------------------------------

    fn fresh_object(&mut self) -> Result<LpValue, LpError> {
        let (n, p) = clark::sample_np(&mut self.rng, &self.trace.uids);
        let e = clark::gen_sexpr(&mut self.rng, n, p);
        let v = self.lp.readlist(None, &e)?;
        if let LpValue::Obj(id) = v {
            // Sequential address sized by the object (§5.2.5).
            self.addrs.insert(id, self.next_addr);
            self.next_addr += u64::from(n + p).max(1);
        }
        Ok(v)
    }

    // -- simulated control stack ----------------------------------------

    fn fn_enter(&mut self, nargs: usize) -> Result<(), LpError> {
        let nlocals = self.rng.gen_range(0..=2usize);
        let mut frame = FrameSim {
            args: Vec::with_capacity(nargs),
            locals: Vec::with_capacity(nlocals),
        };
        for _ in 0..nargs {
            let v = self.older_value()?;
            self.lp.stack_retain(v);
            frame.args.push(v);
        }
        for _ in 0..nlocals {
            let v = self.older_value()?;
            self.lp.stack_retain(v);
            frame.locals.push(v);
        }
        self.frames.push(frame);
        Ok(())
    }

    fn fn_exit(&mut self) {
        if let Some(f) = self.frames.pop() {
            for v in f.args.into_iter().chain(f.locals) {
                self.lp.stack_release(v);
            }
        }
    }

    /// A value "older on the stack": a random existing slot, or a fresh
    /// object when none exists.
    fn older_value(&mut self) -> Result<LpValue, LpError> {
        let mut pool: Vec<LpValue> = Vec::with_capacity(8);
        if let Some(v) = self.tos {
            pool.push(v);
        }
        for f in &self.frames {
            pool.extend(f.args.iter().chain(&f.locals).copied());
        }
        pool.extend(self.globals.iter().copied());
        if pool.is_empty() {
            return self.fresh_object();
        }
        let k = self.rng.gen_range(0..pool.len());
        Ok(pool[k])
    }

    // -- operand selection (§5.2.1) --------------------------------------

    fn select_slot(&mut self) -> (usize, usize, usize) {
        // Returns (class, frame index, slot index); class 0=arg, 1=local,
        // 2=global/non-local.
        let x: f64 = self.rng.gen();
        let cur = self.frames.len().checked_sub(1);
        if let Some(cur) = cur {
            if x < self.params.arg_prob && !self.frames[cur].args.is_empty() {
                let k = self.rng.gen_range(0..self.frames[cur].args.len());
                return (0, cur, k);
            }
            if x < self.params.arg_prob + self.params.loc_prob
                && !self.frames[cur].locals.is_empty()
            {
                let k = self.rng.gen_range(0..self.frames[cur].locals.len());
                return (1, cur, k);
            }
        }
        // Non-local: an outer frame slot or a global.
        let outer: Vec<(usize, usize, usize)> = self
            .frames
            .iter()
            .enumerate()
            .take(self.frames.len().saturating_sub(1))
            .flat_map(|(fi, f)| {
                (0..f.args.len())
                    .map(move |k| (0usize, fi, k))
                    .chain((0..f.locals.len()).map(move |k| (1usize, fi, k)))
            })
            .collect();
        let total = outer.len() + self.globals.len();
        if total == 0 || self.rng.gen_range(0..total) >= outer.len() {
            let k = if self.globals.is_empty() {
                0
            } else {
                self.rng.gen_range(0..self.globals.len())
            };
            (2, 0, k)
        } else {
            outer[self.rng.gen_range(0..outer.len())]
        }
    }

    fn slot_get(&self, c: (usize, usize, usize)) -> LpValue {
        match c.0 {
            0 => self.frames[c.1].args[c.2],
            1 => self.frames[c.1].locals[c.2],
            _ => self.globals[c.2],
        }
    }

    fn slot_set(&mut self, c: (usize, usize, usize), v: LpValue) {
        let old = match c.0 {
            0 => std::mem::replace(&mut self.frames[c.1].args[c.2], v),
            1 => std::mem::replace(&mut self.frames[c.1].locals[c.2], v),
            _ => std::mem::replace(&mut self.globals[c.2], v),
        };
        self.lp.stack_release(old);
    }

    /// Pick an operand per §5.2.1. When `need_list` is set the operand
    /// must be a list object (car/cdr/rplac targets); an atom-valued
    /// slot is treated as freshly re-read.
    fn operand(&mut self, chained: bool, need_list: bool) -> Result<LpValue, LpError> {
        if chained {
            if let Some(v) = self.tos {
                if !need_list || matches!(v, LpValue::Obj(_)) {
                    return Ok(v);
                }
            }
        }
        if self.globals.is_empty() && self.frames.is_empty() {
            return self.fresh_object();
        }
        // Ensure a global exists for the non-local fallback.
        if self.globals.is_empty() {
            let v = self.fresh_object()?;
            self.globals.push(v);
        }
        let slot = self.select_slot();
        let mut v = self.slot_get(slot);
        let reread = self.rng.gen_bool(self.params.read_prob)
            || (need_list && !matches!(v, LpValue::Obj(_)));
        if reread {
            let fresh = self.fresh_object()?;
            // `fresh` carries one stack reference; the slot adopts it.
            self.slot_set(slot, fresh);
            v = fresh;
        }
        Ok(v)
    }

    // -- result placement -------------------------------------------------

    fn set_tos(&mut self, v: LpValue) {
        // `v` must arrive carrying one stack reference, which the TOS
        // register adopts.
        if let Some(old) = self.tos.replace(v) {
            self.lp.stack_release(old);
        }
    }

    fn maybe_bind(&mut self, v: LpValue) {
        if self.rng.gen_bool(self.params.bind_prob) && !(self.frames.is_empty() && self.globals.is_empty())
        {
            if self.globals.is_empty() {
                self.globals.push(v);
                self.lp.stack_retain(v);
                return;
            }
            let slot = self.select_slot();
            self.lp.stack_retain(v);
            self.slot_set(slot, v);
        }
    }

    // -- cache model --------------------------------------------------------

    fn addr_of(&mut self, id: Id) -> u64 {
        match self.addrs.get(&id) {
            Some(a) => *a,
            None => {
                let a = self.next_addr;
                self.next_addr += 1;
                self.addrs.insert(id, a);
                a
            }
        }
    }

    fn cache_access(&mut self, id: Id) {
        let addr = self.addr_of(id);
        if let Some(c) = self.cache.as_mut() {
            c.access(addr);
        }
    }

    /// After a split of `parent`, place both pieces at Clark-distributed
    /// offsets from the parent's address.
    fn place_children(&mut self, parent: Id) {
        let base = self.addr_of(parent);
        let (car, cdr) = self.lp.peek_fields(parent);
        for child in [car, cdr].into_iter().flatten() {
            if let LpValue::Obj(c) = child {
                if !self.addrs.contains_key(&c) {
                    let off = clark::pointer_distance(&mut self.rng);
                    self.addrs.insert(c, base.saturating_add_signed(off));
                }
            }
        }
    }

    // -- primitive execution --------------------------------------------

    fn prim(&mut self, prim: Prim, args: &[small_trace::event::ListRef]) -> Result<(), LpError> {
        let chained = |k: usize| args.get(k).is_some_and(|a| a.chained);
        match prim {
            Prim::Car | Prim::Cdr => {
                let arg = self.operand(chained(0), true)?;
                let id = arg.obj().expect("operand(need_list)");
                // Guard the operand: selecting/re-reading other slots or
                // replacing TOS must not free it while in use. (A
                // register reference — no bus traffic.)
                self.lp.guard(arg);
                self.cache_access(id);
                let before = self.lp.stats().misses;
                let v = if prim == Prim::Car {
                    self.lp.car(id)?
                } else {
                    self.lp.cdr(id)?
                };
                if self.lp.stats().misses > before {
                    self.access_misses += 1;
                    self.place_children(id);
                } else {
                    self.access_hits += 1;
                }
                // Atoms carry no reference; objects arrive retained.
                self.set_tos(v);
                self.maybe_bind(v);
                self.lp.unguard(arg);
            }
            Prim::Cons => {
                let a = self.operand(chained(0), false)?;
                self.lp.guard(a);
                // The second selection can re-read the slot holding `a`;
                // the guard reference keeps `a` alive.
                let b = self.operand(chained(1), false)?;
                self.lp.guard(b);
                let v = self.lp.cons(a, b)?;
                if let LpValue::Obj(id) = v {
                    // A conventional machine would allocate one cell.
                    let addr = self.next_addr;
                    self.next_addr += 1;
                    self.addrs.insert(id, addr);
                }
                self.set_tos(v);
                self.maybe_bind(v);
                self.lp.unguard(a);
                self.lp.unguard(b);
            }
            Prim::Rplaca | Prim::Rplacd => {
                let target = self.operand(chained(0), true)?;
                let id = target.obj().expect("operand(need_list)");
                self.lp.guard(target);
                let v = self.operand(chained(1), false)?;
                self.lp.guard(v);
                let before = self.lp.stats().misses;
                if prim == Prim::Rplaca {
                    self.lp.rplaca(id, v)?;
                } else {
                    self.lp.rplacd(id, v)?;
                }
                if self.lp.stats().misses > before {
                    self.place_children(id);
                }
                // The result is the modified list; TOS takes a fresh
                // stack reference to it.
                self.lp.stack_retain(target);
                self.set_tos(target);
                self.lp.unguard(target);
                self.lp.unguard(v);
            }
            Prim::Read => {
                let v = self.fresh_object()?;
                // `read` binds its result to a variable (Figure 4.15).
                self.lp.stack_retain(v);
                self.maybe_bind_forced(v);
                self.set_tos(v);
            }
        }
        Ok(())
    }

    fn maybe_bind_forced(&mut self, v: LpValue) {
        if self.globals.is_empty() {
            self.globals.push(v);
            return;
        }
        let slot = self.select_slot();
        self.slot_set(slot, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_workloads::synthetic;

    fn small_trace() -> Trace {
        let mut p = synthetic::table_5_1("slang");
        p.primitives = 500;
        p.functions = 120;
        synthetic::generate(&p)
    }

    #[test]
    fn completes_without_overflow_on_adequate_table() {
        let t = small_trace();
        let r = run_sim(&t, SimParams::default(), None);
        assert!(!r.true_overflow);
        assert_eq!(r.prims_executed, 500);
        assert!(r.lpt.gets > 0);
        assert!(r.access_hits + r.access_misses > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = small_trace();
        let a = run_sim(&t, SimParams::default(), None);
        let b = run_sim(&t, SimParams::default(), None);
        assert_eq!(a.lpt.refops, b.lpt.refops);
        assert_eq!(a.access_misses, b.access_misses);
        let c = run_sim(&t, SimParams::default().with_seed(99), None);
        assert_ne!(a.lpt.refops, c.lpt.refops);
    }

    #[test]
    fn cache_observes_same_stream() {
        let t = small_trace();
        let r = run_sim(
            &t,
            SimParams::default(),
            Some(CacheConfig {
                lines: 256,
                line_cells: 1,
            }),
        );
        assert_eq!(
            r.cache_hits + r.cache_misses,
            r.access_hits + r.access_misses,
            "cache sees exactly the car/cdr requests"
        );
    }

    #[test]
    fn lpt_beats_unit_line_cache_at_equal_entries(){
        // The Table 5.4 direction on a longer synthetic trace.
        let mut p = synthetic::table_5_1("slang");
        p.primitives = 2304;
        let t = synthetic::generate(&p);
        let size = 120;
        let r = run_sim(
            &t,
            SimParams::default().with_table(size),
            Some(CacheConfig {
                lines: size,
                line_cells: 1,
            }),
        );
        assert!(!r.true_overflow);
        assert!(
            r.cache_misses > r.access_misses,
            "cache misses {} must exceed LPT misses {}",
            r.cache_misses,
            r.access_misses
        );
    }

    #[test]
    fn tiny_table_overflow_is_reported_or_survived() {
        let t = small_trace();
        let r = run_sim(&t, SimParams::default().with_table(8), None);
        // Either compression kept it alive or a true overflow occurred;
        // both must be reported coherently.
        if r.true_overflow {
            assert!(r.prims_executed < 500);
        } else {
            assert!(r.lpt.pseudo_overflows > 0);
        }
    }

    #[test]
    fn peak_occupancy_bounded_by_table() {
        let t = small_trace();
        for size in [32, 64, 256] {
            let r = run_sim(&t, SimParams::default().with_table(size), None);
            assert!(r.lpt.max_occupancy <= size);
        }
    }
}
