//! Simulation parameters (§5.2.1).
//!
//! Six parameters govern a run: the LPT size, the pseudo-overflow
//! policy, and four probabilities used in reconstructing primitive
//! arguments from the trace:
//!
//! * **ArgProb** — probability the operand is an argument of the
//!   currently active user function,
//! * **LocProb** — probability it is a local of that function
//!   (`1 − ArgProb − LocProb` selects a non-local),
//! * **ReadProb** — probability the selected variable was re-`read`
//!   since last access (a fresh list object),
//! * **BindProb** — probability a primitive's return value is bound to a
//!   stack variable rather than just left on top of the stack.
//!
//! The thesis's control setting is `0.6 / 0.3 / 0.01 / 0.01`; Table 5.5
//! perturbs each.

use small_core::{CompressPolicy, DecrementPolicy, OverflowPolicy, RefcountMode};

/// Parameters of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimParams {
    /// LPT entries.
    pub table_size: usize,
    /// Pseudo-overflow policy.
    pub compression: CompressPolicy,
    /// Child-decrement policy (Table 5.2's Refops vs RecRefops).
    pub decrement: DecrementPolicy,
    /// Unified vs split reference counts (Table 5.3).
    pub refcounts: RefcountMode,
    /// What a true LPT overflow does: abort the run with a typed error,
    /// or degrade to §4.3.2.3 heap-direct operation.
    pub overflow: OverflowPolicy,
    /// P(operand is a function argument).
    pub arg_prob: f64,
    /// P(operand is a local variable).
    pub loc_prob: f64,
    /// P(return value gets bound to a variable).
    pub bind_prob: f64,
    /// P(variable was re-read since last access).
    pub read_prob: f64,
    /// Backing heap size in cells.
    pub heap_cells: usize,
    /// RNG seed ("by re-seeding … we simulate totally different access
    /// patterns", §5.2.2).
    pub seed: u64,
    /// Durable-run checkpoint cadence (`run_sim_resumable` only): take
    /// a checkpoint and rotate the journal every this many trace
    /// events. `0` checkpoints only at the start and end of the run.
    /// Ignored by the non-durable entry points.
    pub checkpoint_every: u64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            table_size: 2048,
            compression: CompressPolicy::CompressOne,
            decrement: DecrementPolicy::Lazy,
            refcounts: RefcountMode::Unified,
            overflow: OverflowPolicy::Abort,
            arg_prob: 0.6,
            loc_prob: 0.3,
            bind_prob: 0.01,
            read_prob: 0.01,
            heap_cells: 1 << 20,
            seed: 1,
            checkpoint_every: 0,
        }
    }
}

impl SimParams {
    /// The control setting of §5.2.6.
    pub fn control() -> Self {
        Self::default()
    }

    /// Table 5.5 "HiArg": ArgProb 0.85, LocProb 0.125.
    pub fn hi_arg() -> Self {
        SimParams {
            arg_prob: 0.85,
            loc_prob: 0.125,
            ..Self::default()
        }
    }

    /// Table 5.5 "HiLoc": LocProb 0.60, ArgProb 0.30.
    pub fn hi_loc() -> Self {
        SimParams {
            arg_prob: 0.30,
            loc_prob: 0.60,
            ..Self::default()
        }
    }

    /// Table 5.5 "HiBind": BindProb 0.03.
    pub fn hi_bind() -> Self {
        SimParams {
            bind_prob: 0.03,
            ..Self::default()
        }
    }

    /// Table 5.5 "HiRead": ReadProb 0.03.
    pub fn hi_read() -> Self {
        SimParams {
            read_prob: 0.03,
            ..Self::default()
        }
    }

    /// With a different LPT size.
    pub fn with_table(self, table_size: usize) -> Self {
        SimParams { table_size, ..self }
    }

    /// Replace the true-overflow policy.
    pub fn with_overflow(self, overflow: OverflowPolicy) -> Self {
        SimParams { overflow, ..self }
    }

    /// With a different seed.
    pub fn with_seed(self, seed: u64) -> Self {
        SimParams { seed, ..self }
    }

    /// With a periodic checkpoint cadence (durable runs).
    pub fn with_checkpoint_every(self, checkpoint_every: u64) -> Self {
        SimParams {
            checkpoint_every,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_matches_thesis_values() {
        let p = SimParams::control();
        assert_eq!(
            (p.arg_prob, p.loc_prob, p.bind_prob, p.read_prob),
            (0.6, 0.3, 0.01, 0.01)
        );
    }

    #[test]
    fn perturbations_keep_probabilities_valid() {
        for p in [
            SimParams::hi_arg(),
            SimParams::hi_loc(),
            SimParams::hi_bind(),
            SimParams::hi_read(),
        ] {
            assert!(p.arg_prob + p.loc_prob <= 1.0);
            assert!(p.bind_prob <= 1.0 && p.read_prob <= 1.0);
        }
    }
}
