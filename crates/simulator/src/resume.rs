//! Crash-consistent, resumable simulation (`run_sim_resumable`).
//!
//! Couples the trace-driven [`driver`](crate::run_sim) to
//! `small-persist`: every trace event's operations are group-committed
//! to a write-ahead journal as digest records, and a full machine
//! checkpoint (LPT image, heap-controller image, driver state, RNG) is
//! rotated into the store periodically
//! ([`SimParams::checkpoint_every`]) and at the end of the run.
//!
//! Because the simulator is deterministic, recovery does not need redo
//! records: it re-executes the trace from the last checkpoint and
//! *verifies* each re-executed operation's digest against the journal —
//! any divergence (wrong trace, wrong parameters, bit rot that slipped
//! past the CRCs) fails closed with
//! [`PersistError::ReplayDivergence`]. A torn tail (incomplete final
//! frame) is truncated and its operations simply re-execute and
//! re-journal identically; a complete frame that fails its CRC aborts
//! recovery with [`PersistError::CorruptJournal`].
//!
//! The same entry point serves both directions: an empty
//! [`CrashStore`] starts a fresh durable run, a non-empty one recovers
//! and resumes. The restored machine passes through an
//! [`audit`](small_core::ListProcessor::audit)/[`reconcile`]
//! consistency gate before replay begins.
//!
//! [`reconcile`]: small_core::ListProcessor::reconcile

use crate::config::SimParams;
use crate::driver::{Driver, FrameSim, SimResult};
use fxhash::FxHashMap;
use rand::rngs::StdRng;
use rand::SeedableRng;
use small_core::{Id, ListProcessor, LpConfig, LpError, LpValue, RootKind, Rooted};
use small_heap::controller::TwoPointerController;
use small_heap::{HeapController, PersistableController, Word};
use small_metrics::NoopSink;
use small_persist::{
    decode_checkpoint, encode_checkpoint, encode_frame, scan_journal, verify_batch, ByteReader,
    ByteWriter, Checkpoint, CrashStore, JournalBatch, JournalSink, PersistError,
};
use small_trace::Trace;

type DurableSink = JournalSink<NoopSink>;
type DurableDriver<'t> = Driver<'t, TwoPointerController, DurableSink>;

/// A run-ending LP condition: `(true_overflow, failure)`.
type Abort = (bool, Option<String>);

fn lp_config(params: &SimParams) -> LpConfig {
    LpConfig {
        table_size: params.table_size,
        compression: params.compression,
        decrement: params.decrement,
        refcounts: params.refcounts,
        overflow: params.overflow,
        ..LpConfig::default()
    }
}

// ---------------------------------------------------------------------
// Driver-state codec (the checkpoint's opaque driver section)
// ---------------------------------------------------------------------

fn put_value(w: &mut ByteWriter, v: LpValue) {
    match v {
        LpValue::Atom(word) => {
            w.put_u8(0);
            w.put_u64(word.bits());
        }
        LpValue::Obj(id) => {
            w.put_u8(1);
            w.put_u64(u64::from(id));
        }
    }
}

fn get_value(r: &mut ByteReader) -> Result<LpValue, &'static str> {
    let tag = r.u8()?;
    let payload = r.u64()?;
    match tag {
        0 => Ok(LpValue::Atom(Word::from_bits(payload))),
        1 => Ok(LpValue::Obj(
            u32::try_from(payload).map_err(|_| "driver id overflow")?,
        )),
        _ => Err("bad driver value tag"),
    }
}

fn put_handles(w: &mut ByteWriter, hs: &[Rooted]) {
    w.put_u64(hs.len() as u64);
    for h in hs {
        put_value(w, h.value());
    }
}

fn encode_driver(d: &DurableDriver<'_>, prims: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for word in d.rng.state() {
        w.put_u64(word);
    }
    match &d.tos {
        Some(h) => {
            w.put_bool(true);
            put_value(&mut w, h.value());
        }
        None => w.put_bool(false),
    }
    put_handles(&mut w, &d.globals);
    w.put_u64(d.frames.len() as u64);
    for f in &d.frames {
        put_handles(&mut w, &f.args);
        put_handles(&mut w, &f.locals);
    }
    let mut addrs: Vec<(Id, u64)> = d.addrs.iter().map(|(&k, &v)| (k, v)).collect();
    addrs.sort_unstable_by_key(|&(id, _)| id);
    w.put_u64(addrs.len() as u64);
    for (id, addr) in addrs {
        w.put_u32(id);
        w.put_u64(addr);
    }
    w.put_u64(d.next_addr);
    w.put_u64(d.access_hits);
    w.put_u64(d.access_misses);
    w.put_u64(prims);
    w.finish()
}

/// Rebuild a driver from checkpointed state. Every persisted slot holds
/// a binding reference that is *already counted* in the restored LPT
/// image, so handles are re-wrapped with
/// [`ListProcessor::resume_root`] rather than re-acquired.
fn decode_driver<'t>(
    trace: &'t Trace,
    params: SimParams,
    lp: ListProcessor<TwoPointerController, DurableSink>,
    bytes: &[u8],
) -> Result<(DurableDriver<'t>, u64), PersistError> {
    let corrupt = PersistError::CorruptCheckpoint;
    let mut r = ByteReader::new(bytes);
    let mut rng_state = [0u64; 4];
    for word in &mut rng_state {
        *word = r.u64().map_err(corrupt)?;
    }
    let resume = |lp: &ListProcessor<TwoPointerController, DurableSink>,
                  r: &mut ByteReader|
     -> Result<Rooted, &'static str> {
        Ok(lp.resume_root(get_value(r)?, RootKind::Binding))
    };
    let tos = if r.bool().map_err(corrupt)? {
        Some(resume(&lp, &mut r).map_err(corrupt)?)
    } else {
        None
    };
    let take_handles = |lp: &ListProcessor<TwoPointerController, DurableSink>,
                        r: &mut ByteReader|
     -> Result<Vec<Rooted>, &'static str> {
        let n = r.len()?;
        let mut hs = Vec::with_capacity(n);
        for _ in 0..n {
            hs.push(resume(lp, r)?);
        }
        Ok(hs)
    };
    let globals = take_handles(&lp, &mut r).map_err(corrupt)?;
    let nframes = r.len().map_err(corrupt)?;
    let mut frames = Vec::with_capacity(nframes);
    for _ in 0..nframes {
        let args = take_handles(&lp, &mut r).map_err(corrupt)?;
        let locals = take_handles(&lp, &mut r).map_err(corrupt)?;
        frames.push(FrameSim { args, locals });
    }
    let naddrs = r.len().map_err(corrupt)?;
    let mut addrs = FxHashMap::with_capacity_and_hasher(naddrs, Default::default());
    for _ in 0..naddrs {
        let id = r.u32().map_err(corrupt)?;
        let addr = r.u64().map_err(corrupt)?;
        if addrs.insert(id, addr).is_some() {
            return Err(corrupt("duplicate driver address"));
        }
    }
    let next_addr = r.u64().map_err(corrupt)?;
    let access_hits = r.u64().map_err(corrupt)?;
    let access_misses = r.u64().map_err(corrupt)?;
    let prims = r.u64().map_err(corrupt)?;
    r.expect_end().map_err(corrupt)?;
    Ok((
        Driver {
            trace,
            np_pool: crate::clark::np_pool(&trace.uids),
            params,
            lp,
            rng: StdRng::from_state(rng_state),
            frames,
            globals,
            tos,
            cache: None,
            addrs,
            next_addr,
            access_hits,
            access_misses,
        },
        prims,
    ))
}

fn export_checkpoint(d: &DurableDriver<'_>, event_index: u64, prims: u64) -> Vec<u8> {
    encode_checkpoint(&Checkpoint {
        event_index,
        journal_seq: d.lp.sink().next_seq(),
        lp: d.lp.export_image(),
        controller: d.lp.controller.export_image(),
        driver: encode_driver(d, prims),
    })
}

/// Post-recovery consistency gate: the restored table must pass
/// [`audit`](ListProcessor::audit) — the pure invariant check — before
/// any replay happens.
///
/// [`reconcile`](ListProcessor::reconcile) is deliberately *not* run
/// here: a reference-counting machine legitimately retains cyclic
/// garbage (unreachable from any root, kept live by its own internal
/// counts) until a true overflow collects it, and reconcile's
/// mark-from-roots pass would sweep those cycles. That is a repair on
/// a perfectly legal state — it would diverge the recovered machine
/// from the uninterrupted run and break digest verification. Reconcile
/// stays the *repair* tool for tables that fail the audit; recovery of
/// a valid store must be observation-only.
fn recovery_gate(d: &DurableDriver<'_>) -> Result<(), PersistError> {
    if !d.lp.audit().is_clean() {
        return Err(PersistError::CorruptCheckpoint(
            "restored table fails audit",
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The resumable run
// ---------------------------------------------------------------------

fn finish(
    d: DurableDriver<'_>,
    true_overflow: bool,
    prims: usize,
    failure: Option<String>,
) -> SimResult {
    let result = SimResult {
        name: d.trace.name.clone(),
        lpt: d.lp.stats(),
        heap: d.lp.controller.stats(),
        access_hits: d.access_hits,
        access_misses: d.access_misses,
        cache_hits: 0,
        cache_misses: 0,
        true_overflow,
        failure,
        prims_executed: prims,
    };
    d.teardown();
    result
}

/// Run (or crash-recover and resume) a durable simulation over `store`.
///
/// * **Empty store** — a fresh run: the machine is seeded, an initial
///   checkpoint installed, and every trace event's operations are
///   journaled as one group-committed frame. Every
///   [`SimParams::checkpoint_every`] events the journal is rotated into
///   a fresh checkpoint; a final checkpoint always closes the run, so
///   two runs that end in equal machine states leave byte-identical
///   store contents.
/// * **Non-empty store** — recovery: the checkpoint is validated and
///   loaded (fail-closed on any damage), the journal's torn tail is
///   truncated, the restored machine passes the `audit`/`reconcile`
///   gate, and the trace is re-executed from the checkpoint with every
///   replayed operation verified against the journaled digests before
///   live (journaling) execution resumes.
///
/// An injected crash (a [`CrashStore`] plan) surfaces as
/// [`PersistError::Crash`]; the store then holds exactly the bytes a
/// real power loss would have left, and calling this function again
/// (with the plan disarmed) recovers and completes the run.
///
/// The `trace` and `params` must be the ones the store was written
/// with — determinism is the redo log, so a mismatch is detected as
/// replay divergence rather than silently blended into the recovered
/// state. A run that ended in a true overflow or a typed LP failure is
/// checkpointed at its abort point; re-invoking on such a store resumes
/// the trace past that point and is not generally meaningful.
pub fn run_sim_resumable(
    trace: &Trace,
    params: SimParams,
    store: &mut CrashStore,
) -> Result<SimResult, PersistError> {
    let (mut d, mut prims, start, journaled) = match store.checkpoint() {
        None => {
            // Fresh run: build, seed, install the initial checkpoint.
            let lp = ListProcessor::with_sink(
                TwoPointerController::new(params.heap_cells, 256),
                lp_config(&params),
                JournalSink::new(NoopSink, 0),
            );
            let mut d = Driver {
                trace,
                np_pool: crate::clark::np_pool(&trace.uids),
                params,
                lp,
                rng: StdRng::seed_from_u64(params.seed),
                frames: Vec::new(),
                globals: Vec::new(),
                tos: None,
                cache: None,
                addrs: FxHashMap::default(),
                next_addr: 0,
                access_hits: 0,
                access_misses: 0,
            };
            match d.seed_globals() {
                Ok(()) => {}
                Err(LpError::TrueOverflow) => return Ok(finish(d, true, 0, None)),
                Err(e) => {
                    let msg = e.to_string();
                    return Ok(finish(d, false, 0, Some(msg)));
                }
            }
            // Seeding precedes the durability epoch: its effects are
            // folded into the initial checkpoint, not the journal.
            d.lp.drain_unroots();
            let _ = d.lp.sink_mut().take_batch(0);
            store.install_checkpoint(export_checkpoint(&d, 0, 0));
            (d, 0usize, 0usize, Vec::new())
        }
        Some(bytes) => {
            // Recovery: validate the checkpoint, truncate the torn
            // journal tail, rebuild the machine, gate on consistency.
            let ckpt = decode_checkpoint(bytes)?;
            let (batches, valid) = scan_journal(store.journal())?;
            store.truncate_journal(valid);
            let controller = TwoPointerController::import_image(&ckpt.controller)?;
            let lp = ListProcessor::from_image(
                controller,
                lp_config(&params),
                &ckpt.lp,
                JournalSink::new(NoopSink, ckpt.journal_seq),
            )?;
            let (d, prims) = decode_driver(trace, params, lp, &ckpt.driver)?;
            recovery_gate(&d)?;
            if ckpt.event_index > trace.events.len() as u64 {
                return Err(PersistError::CorruptCheckpoint("event index past trace"));
            }
            (d, prims as usize, ckpt.event_index as usize, batches)
        }
    };

    let mut batches = journaled.iter().peekable();
    let mut i = start;
    while i < trace.events.len() {
        let mode = match batches.peek() {
            Some(b) if (i as u64) == b.event_index => Mode::ReplayVerify(batches.next().unwrap()),
            Some(b) if (i as u64) > b.event_index => {
                return Err(PersistError::CorruptJournal {
                    offset: 0,
                    reason: "journal batches out of order",
                });
            }
            Some(_) => Mode::ReplayQuiet,
            None => Mode::Live,
        };
        let replaying = !matches!(mode, Mode::Live);
        let abort = step_boundary(&mut d, &mut prims, i, store, mode)?;
        i += 1;
        if let Some((true_overflow, failure)) = abort {
            store.rotate(export_checkpoint(&d, i as u64, prims as u64));
            return Ok(finish(d, true_overflow, prims, failure));
        }
        // Periodic rotation — but never while durable frames remain to
        // be replayed: rotating would discard them from the store.
        if params.checkpoint_every > 0
            && (i as u64).is_multiple_of(params.checkpoint_every)
            && !(replaying && batches.peek().is_some())
        {
            store.rotate(export_checkpoint(&d, i as u64, prims as u64));
        }
    }
    if batches.next().is_some() {
        return Err(PersistError::CorruptJournal {
            offset: 0,
            reason: "journal batches past end of trace",
        });
    }
    let bytes = export_checkpoint(&d, i as u64, prims as u64);
    store.rotate(bytes);
    Ok(finish(d, false, prims, None))
}

enum Mode<'b> {
    Live,
    ReplayQuiet,
    ReplayVerify(&'b JournalBatch),
}

/// Execute trace event `i` and commit (live) or verify (replay) its
/// journal batch. The unroot queue is drained before the batch is
/// taken so every event boundary is also a valid checkpoint boundary.
/// A run-ending LP condition is returned as `Ok(Some(abort))` after
/// its partial batch is committed/verified — deterministic
/// re-execution reproduces the same abort during replay.
fn step_boundary(
    d: &mut DurableDriver<'_>,
    prims: &mut usize,
    i: usize,
    store: &mut CrashStore,
    mode: Mode<'_>,
) -> Result<Option<Abort>, PersistError> {
    let ev = &d.trace.events[i];
    let abort = match d.step(ev, prims) {
        Ok(()) => None,
        Err(LpError::TrueOverflow) => Some((true, None)),
        Err(e) => Some((false, Some(e.to_string()))),
    };
    d.lp.drain_unroots();
    let produced = d.lp.sink_mut().take_batch(i as u64);
    match (mode, produced) {
        (Mode::Live, Some(batch)) => store.append_journal(&encode_frame(&batch))?,
        (Mode::Live, None) => {}
        (Mode::ReplayQuiet, None) => {}
        (Mode::ReplayQuiet, Some(batch)) => {
            return Err(PersistError::ReplayDivergence {
                seq: batch.records.first().map_or(0, |r| r.seq),
                expected: 0,
                actual: batch.records.len() as u64,
            });
        }
        (Mode::ReplayVerify(journaled), Some(batch)) => verify_batch(journaled, &batch)?,
        (Mode::ReplayVerify(journaled), None) => {
            return Err(PersistError::ReplayDivergence {
                seq: journaled.records.first().map_or(0, |r| r.seq),
                expected: journaled.records.len() as u64,
                actual: 0,
            });
        }
    }
    Ok(abort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_persist::CrashPlan;
    use small_workloads::synthetic;

    fn trace() -> Trace {
        let mut p = synthetic::table_5_1("slang");
        p.primitives = 300;
        p.functions = 80;
        synthetic::generate(&p)
    }

    fn params() -> SimParams {
        // A small backing heap keeps checkpoint images (which embed the
        // whole arena) cheap; these workloads use a few thousand cells.
        SimParams {
            heap_cells: 1 << 14,
            ..SimParams::default()
        }
        .with_table(512)
        .with_checkpoint_every(64)
    }

    #[test]
    fn durable_run_matches_plain_run_and_is_byte_identical() {
        let t = trace();
        let plain = crate::run_sim(&t, params(), None);
        let mut s1 = CrashStore::new();
        let r1 = run_sim_resumable(&t, params(), &mut s1).unwrap();
        let mut s2 = CrashStore::new();
        let r2 = run_sim_resumable(&t, params(), &mut s2).unwrap();
        // The journal sink only observes. The durable path additionally
        // drains deferred releases at every event boundary (checkpoints
        // need settled state), so the tail releases the plain run leaves
        // queued at exit are processed here: refops/frees run slightly
        // ahead, while the allocation and access streams are identical.
        assert_eq!(plain.lpt.gets, r1.lpt.gets);
        assert_eq!(plain.lpt.hits, r1.lpt.hits);
        assert_eq!(plain.lpt.misses, r1.lpt.misses);
        assert_eq!(plain.lpt.max_occupancy, r1.lpt.max_occupancy);
        assert_eq!(plain.lpt.occupancy_sum, r1.lpt.occupancy_sum);
        assert_eq!(plain.access_misses, r1.access_misses);
        assert_eq!(plain.access_hits, r1.access_hits);
        assert!(plain.lpt.refops <= r1.lpt.refops);
        assert_eq!(r1.prims_executed, 300);
        assert!(!r1.true_overflow && r1.failure.is_none());
        // Double-run byte identity of the final store.
        assert_eq!(s1.checkpoint().unwrap(), s2.checkpoint().unwrap());
        assert!(s1.journal().is_empty() && s2.journal().is_empty());
        assert_eq!(r1.lpt, r2.lpt);
    }

    #[test]
    fn reinvoking_a_completed_store_reproduces_the_run() {
        let t = trace();
        let mut s = CrashStore::new();
        let a = run_sim_resumable(&t, params(), &mut s).unwrap();
        let before = s.checkpoint().unwrap().to_vec();
        let b = run_sim_resumable(&t, params(), &mut s).unwrap();
        assert_eq!(a.lpt, b.lpt);
        assert_eq!(a.prims_executed, b.prims_executed);
        assert_eq!(before.as_slice(), s.checkpoint().unwrap());
    }

    #[test]
    fn crash_recover_resume_matches_uninterrupted() {
        let t = trace();
        let mut base = CrashStore::new();
        let clean = run_sim_resumable(&t, params(), &mut base).unwrap();
        for (kill, torn) in [(1, None), (5, Some(3)), (17, None), (40, Some(0))] {
            let mut s = CrashStore::with_plan(CrashPlan {
                kill_at_append: kill,
                torn_keep: torn,
            });
            let err = run_sim_resumable(&t, params(), &mut s).unwrap_err();
            assert!(matches!(err, PersistError::Crash { .. }), "kill {kill}");
            s.disarm();
            let r = run_sim_resumable(&t, params(), &mut s).unwrap();
            assert_eq!(clean.lpt, r.lpt, "kill {kill}");
            assert_eq!(clean.access_misses, r.access_misses, "kill {kill}");
            assert_eq!(clean.prims_executed, r.prims_executed, "kill {kill}");
            assert_eq!(
                base.checkpoint().unwrap(),
                s.checkpoint().unwrap(),
                "final store diverges after kill {kill}"
            );
            assert!(s.journal().is_empty());
        }
    }

    #[test]
    fn corrupted_journal_fails_closed() {
        let t = trace();
        // checkpoint_every 0: the journal holds every frame at crash time.
        let p = params().with_checkpoint_every(0);
        let mut s = CrashStore::with_plan(CrashPlan {
            kill_at_append: 5,
            torn_keep: None,
        });
        run_sim_resumable(&t, p, &mut s).unwrap_err();
        s.disarm();
        assert!(!s.journal().is_empty());
        // Flip a payload byte of the first complete frame: the CRC must
        // catch it and recovery must refuse to proceed.
        s.flip_journal_byte(8);
        let err = run_sim_resumable(&t, p, &mut s).unwrap_err();
        assert!(
            matches!(err, PersistError::CorruptJournal { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn truncated_checkpoint_fails_closed() {
        let t = trace();
        let p = params().with_checkpoint_every(0);
        let mut s = CrashStore::with_plan(CrashPlan {
            kill_at_append: 5,
            torn_keep: None,
        });
        run_sim_resumable(&t, p, &mut s).unwrap_err();
        s.disarm();
        let len = s.checkpoint().unwrap().len();
        s.truncate_checkpoint(len / 2);
        let err = run_sim_resumable(&t, p, &mut s).unwrap_err();
        assert!(
            matches!(err, PersistError::CorruptCheckpoint(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn mismatched_parameters_surface_as_divergence() {
        let t = trace();
        let p = params().with_checkpoint_every(0);
        let mut s = CrashStore::with_plan(CrashPlan {
            kill_at_append: 20,
            torn_keep: None,
        });
        run_sim_resumable(&t, p, &mut s).unwrap_err();
        s.disarm();
        // Recovering under a different decrement policy re-executes the
        // trace differently; the digest gate must refuse the blend.
        let wrong = SimParams {
            decrement: small_core::DecrementPolicy::Recursive,
            ..p
        };
        let err = run_sim_resumable(&t, wrong, &mut s).unwrap_err();
        assert!(
            matches!(err, PersistError::ReplayDivergence { .. }),
            "got {err:?}"
        );
    }
}
