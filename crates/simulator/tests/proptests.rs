//! Property tests: the trace-driven simulator is deterministic, never
//! exceeds its table, and its cache observes exactly the access stream,
//! across random parameters and synthetic traces.

use proptest::prelude::*;
use small_core::{CompressPolicy, DecrementPolicy, RefcountMode};
use small_simulator::driver::{run_sim, CacheConfig};
use small_simulator::SimParams;
use small_workloads::synthetic::{generate, table_5_1};

fn arb_params() -> impl Strategy<Value = SimParams> {
    (
        32usize..512,
        prop::sample::select(vec![
            CompressPolicy::CompressOne,
            CompressPolicy::CompressAll,
        ]),
        prop::sample::select(vec![DecrementPolicy::Lazy, DecrementPolicy::Recursive]),
        prop::sample::select(vec![RefcountMode::Unified, RefcountMode::Split]),
        0.3f64..0.9,
        0.0f64..0.05,
        1u64..50,
    )
        .prop_map(
            |(table_size, compression, decrement, refcounts, arg_prob, bind_prob, seed)| {
                SimParams {
                    table_size,
                    compression,
                    decrement,
                    refcounts,
                    arg_prob,
                    loc_prob: (1.0 - arg_prob) / 2.0,
                    bind_prob,
                    read_prob: bind_prob,
                    seed,
                    ..SimParams::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulator_invariants(params in arb_params(), prims in 200usize..800) {
        let mut preset = table_5_1("slang");
        preset.primitives = prims;
        preset.seed = params.seed;
        let t = generate(&preset);
        let r = run_sim(
            &t,
            params,
            Some(CacheConfig { lines: params.table_size, line_cells: 2 }),
        );
        prop_assert!(r.lpt.max_occupancy <= params.table_size);
        prop_assert_eq!(
            r.cache_hits + r.cache_misses,
            r.access_hits + r.access_misses
        );
        if !r.true_overflow {
            prop_assert_eq!(r.prims_executed, prims);
        }
        // Determinism.
        let r2 = run_sim(
            &t,
            params,
            Some(CacheConfig { lines: params.table_size, line_cells: 2 }),
        );
        prop_assert_eq!(r.lpt.refops, r2.lpt.refops);
        prop_assert_eq!(r.cache_misses, r2.cache_misses);
    }
}
