#![warn(missing_docs)]
//! **small-persist** — crash-consistent durability for the SMALL
//! reproduction.
//!
//! The simulated machine is deterministic: given a trace and a
//! [`small_simulator`-style] parameter set, every run produces the same
//! memory-operation stream. This crate exploits that determinism to make
//! runs *restartable* after a crash at any point, with three pieces:
//!
//! * **Checkpoints** ([`encode_checkpoint`] / [`decode_checkpoint`]) — a
//!   versioned, CRC-guarded binary snapshot of full machine state: the
//!   complete LPT image ([`small_core::LpImage`], including free-stack
//!   threading, pending lazy decrements, split counts, and the
//!   degraded-mode flag), the heap-controller image
//!   ([`small_heap::ControllerImage`], covering all three list
//!   representations), an opaque driver section the simulator owns
//!   (frames, bindings, RNG state), and a progress marker. Equal states
//!   encode to byte-identical checkpoints.
//! * **Write-ahead journal** ([`JournalSink`], [`encode_frame`],
//!   [`scan_journal`]) — an append-only log of per-operation digests,
//!   group-committed one frame per trace event. Because the
//!   [`small_metrics::EventSink`] op hooks carry no operands, the journal
//!   does not record *what* to redo — replay re-executes the
//!   deterministic simulator from the checkpoint — it records what the
//!   re-execution **must produce**: any divergence between a replayed
//!   operation's digest and the journaled one fails recovery closed.
//! * **Crash modeling** ([`CrashStore`], [`CrashPlan`]) — an in-memory
//!   durable store with flushed-bytes semantics. A plan kills the run at
//!   the *k*-th journal append, optionally leaving a torn prefix of the
//!   frame behind, exactly as a power loss mid-`write(2)` would.
//!
//! # Failure taxonomy
//!
//! An **incomplete frame at the journal tail** is a torn write: the
//! machine crashed mid-append, the frame's operations were never
//! acknowledged, and recovery truncates it and re-executes those
//! operations (they re-journal identically). A **complete frame whose
//! CRC fails** is corruption — a bit flipped at rest — and recovery
//! fails closed with [`PersistError::CorruptJournal`] rather than guess.
//! A corrupted length field that points past end-of-file is
//! indistinguishable from a torn write and is treated as one (safe:
//! replay regenerates whatever was lost). Checkpoint damage of any kind
//! fails closed; the journal is worthless without its base state.
//!
//! # Snapshot format versioning
//!
//! [`CHECKPOINT_VERSION`] is bumped on **any** change to the encoded
//! layout, with no in-place migration: a version mismatch fails closed
//! with [`PersistError::UnsupportedVersion`], and the run restarts from
//! the trace instead (checkpoints are derived state — the trace and
//! parameters remain the source of truth). This mirrors the
//! `BENCH_small.json` schema policy: formats evolve by explicit version
//! bump plus regeneration, never by silent reinterpretation.

use small_core::{EntryImage, FieldImage, LpImage, LptStats};
use small_heap::ControllerImage;
use small_metrics::{Event, EventSink, OpClass, PrimKind};

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a durability operation failed. Every variant is fail-closed:
/// recovery surfaces the error instead of proceeding on suspect state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistError {
    /// Recovery was requested but the store holds no checkpoint.
    NoCheckpoint,
    /// The checkpoint failed validation (bad magic, CRC mismatch,
    /// truncation, or a malformed section).
    CorruptCheckpoint(&'static str),
    /// The checkpoint was written by an unknown format version.
    UnsupportedVersion(u32),
    /// A *complete* journal frame failed validation — corruption at
    /// rest, not a torn tail.
    CorruptJournal {
        /// Byte offset of the offending frame.
        offset: usize,
        /// What failed.
        reason: &'static str,
    },
    /// Replay re-executed an operation whose digest disagrees with the
    /// journaled one: the checkpoint, journal, and trace are mutually
    /// inconsistent.
    ReplayDivergence {
        /// Journal sequence number of the diverging operation.
        seq: u64,
        /// The digest the journal promised.
        expected: u64,
        /// The digest replay produced.
        actual: u64,
    },
    /// A controller or LP image failed structural validation on import.
    MalformedImage(small_heap::ImageError),
    /// The injected crash fired (chaos harness): the simulated machine
    /// lost power during the `appends`-th journal append.
    Crash {
        /// Total appends attempted, including the one that died.
        appends: u64,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::NoCheckpoint => write!(f, "no checkpoint in store"),
            PersistError::CorruptCheckpoint(why) => {
                write!(f, "corrupt checkpoint: {why}")
            }
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            PersistError::CorruptJournal { offset, reason } => {
                write!(f, "corrupt journal frame at byte {offset}: {reason}")
            }
            PersistError::ReplayDivergence {
                seq,
                expected,
                actual,
            } => write!(
                f,
                "replay divergence at op {seq}: journal {expected:#018x}, replay {actual:#018x}"
            ),
            PersistError::MalformedImage(e) => write!(f, "malformed image: {e}"),
            PersistError::Crash { appends } => {
                write!(f, "injected crash during journal append {appends}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<small_heap::ImageError> for PersistError {
    fn from(e: small_heap::ImageError) -> Self {
        PersistError::MalformedImage(e)
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected)
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (the IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------

/// Little-endian byte writer for the checkpoint/journal formats. The
/// simulator uses it to encode its own opaque driver section with the
/// same deterministic rules.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append an `Option<u32>`: `u32::MAX` encodes `None` (table
    /// identifiers and heap addresses never reach it).
    pub fn put_opt_u32(&mut self, v: Option<u32>) {
        self.put_u32(v.unwrap_or(u32::MAX));
    }

    /// Append a length-prefixed string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes with a length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian byte reader over an untrusted buffer; every accessor
/// is bounds-checked and fails with a static reason.
#[derive(Debug)]
pub struct ByteReader<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from `bytes`, starting at offset 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { b: bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
        let end = self.at.checked_add(n).ok_or("length overflow")?;
        if end > self.b.len() {
            return Err("truncated");
        }
        let s = &self.b[self.at..end];
        self.at = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, &'static str> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, &'static str> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, &'static str> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `bool` (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, &'static str> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err("bad bool"),
        }
    }

    /// Read an `Option<u32>` (`u32::MAX` is `None`).
    pub fn opt_u32(&mut self) -> Result<Option<u32>, &'static str> {
        let v = self.u32()?;
        Ok(if v == u32::MAX { None } else { Some(v) })
    }

    /// Read a `u64` length small enough to allocate for (guards
    /// against corrupt lengths requesting terabytes). Not a container
    /// length, so there is no matching `is_empty`.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, &'static str> {
        let v = self.u64()?;
        if v > (self.b.len() - self.at.min(self.b.len())) as u64 {
            return Err("length past end of input");
        }
        Ok(v as usize)
    }

    /// Read a length-prefixed string.
    pub fn str(&mut self) -> Result<&'a str, &'static str> {
        let n = self.len()?;
        std::str::from_utf8(self.take(n)?).map_err(|_| "bad utf-8")
    }

    /// Read length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], &'static str> {
        let n = self.len()?;
        self.take(n)
    }

    /// True once every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.at == self.b.len()
    }

    /// Fail unless the input is fully consumed (trailing garbage is
    /// treated as corruption, not ignored).
    pub fn expect_end(&self) -> Result<(), &'static str> {
        if self.at_end() {
            Ok(())
        } else {
            Err("trailing bytes")
        }
    }
}

/// Section and controller names that may appear in a checkpoint; decode
/// interns against this list so [`ControllerImage`]'s `&'static str`
/// fields round-trip.
const KNOWN_NAMES: &[&str] = &[
    "two-pointer",
    "cdr-coded",
    "structure-coded",
    "arena",
    "heap",
    "queue",
    "ctrl",
    "cars",
    "codes",
    "misc",
    "tables",
    "free",
];

fn intern(name: &str) -> Result<&'static str, &'static str> {
    KNOWN_NAMES
        .iter()
        .find(|&&k| k == name)
        .copied()
        .ok_or("unknown section name")
}

// ---------------------------------------------------------------------
// Checkpoint format
// ---------------------------------------------------------------------

/// Magic bytes opening every checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"SMALLCKP";

/// Current checkpoint format version. Bumped on any layout change; old
/// versions fail closed (see the crate docs for the policy).
pub const CHECKPOINT_VERSION: u32 = 1;

/// A complete machine snapshot: everything needed to resume a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Trace events fully applied before this snapshot was taken.
    pub event_index: u64,
    /// Journal sequence number of the next operation after the
    /// snapshot (replay verification starts here).
    pub journal_seq: u64,
    /// The full LPT image.
    pub lp: LpImage,
    /// The heap-controller image.
    pub controller: ControllerImage,
    /// Opaque driver state (frames, bindings, RNG), encoded by the
    /// simulator with [`ByteWriter`].
    pub driver: Vec<u8>,
}

fn put_field(w: &mut ByteWriter, f: FieldImage) {
    match f {
        FieldImage::Empty => {
            w.put_u8(0);
            w.put_u64(0);
        }
        FieldImage::Atom(bits) => {
            w.put_u8(1);
            w.put_u64(bits);
        }
        FieldImage::Obj(id) => {
            w.put_u8(2);
            w.put_u64(u64::from(id));
        }
    }
}

fn get_field(r: &mut ByteReader) -> Result<FieldImage, &'static str> {
    let tag = r.u8()?;
    let payload = r.u64()?;
    match tag {
        0 => Ok(FieldImage::Empty),
        1 => Ok(FieldImage::Atom(payload)),
        2 => Ok(FieldImage::Obj(
            u32::try_from(payload).map_err(|_| "field id overflow")?,
        )),
        _ => Err("bad field tag"),
    }
}

fn put_stats(w: &mut ByteWriter, s: &LptStats) {
    for v in [
        s.refops,
        s.ep_refops,
        s.gets,
        s.frees,
        s.hits,
        s.misses,
        s.pseudo_overflows,
        s.compressed,
        s.cycle_collections,
        s.cycles_reclaimed,
        s.max_occupancy as u64,
        s.occupancy_sum,
        s.occupancy_samples,
        u64::from(s.max_refcount),
        u64::from(s.max_ep_refcount),
        s.faults_detected,
        s.faults_recovered,
        s.overflow_entries,
        s.overflow_exits,
        s.heap_direct_ops,
    ] {
        w.put_u64(v);
    }
}

fn get_stats(r: &mut ByteReader) -> Result<LptStats, &'static str> {
    let mut v = [0u64; 20];
    for slot in &mut v {
        *slot = r.u64()?;
    }
    Ok(LptStats {
        refops: v[0],
        ep_refops: v[1],
        gets: v[2],
        frees: v[3],
        hits: v[4],
        misses: v[5],
        pseudo_overflows: v[6],
        compressed: v[7],
        cycle_collections: v[8],
        cycles_reclaimed: v[9],
        max_occupancy: v[10] as usize,
        occupancy_sum: v[11],
        occupancy_samples: v[12],
        max_refcount: u32::try_from(v[13]).map_err(|_| "refcount overflow")?,
        max_ep_refcount: u32::try_from(v[14]).map_err(|_| "refcount overflow")?,
        faults_detected: v[15],
        faults_recovered: v[16],
        overflow_entries: v[17],
        overflow_exits: v[18],
        heap_direct_ops: v[19],
    })
}

fn put_lp_image(w: &mut ByteWriter, lp: &LpImage) {
    w.put_u64(lp.table_size as u64);
    w.put_u64(lp.entries.len() as u64);
    for e in &lp.entries {
        put_field(w, e.car);
        put_field(w, e.cdr);
        w.put_u32(e.rc);
        w.put_opt_u32(e.addr);
        w.put_opt_u32(e.free_next);
        w.put_u8(e.stack_bit as u8 | (e.live as u8) << 1 | (e.lazy as u8) << 2);
    }
    w.put_opt_u32(lp.free_head);
    w.put_opt_u32(lp.free_tail);
    w.put_u64(lp.live as u64);
    w.put_bool(lp.degraded);
    w.put_u64(lp.ep_counts.len() as u64);
    for &(id, c) in &lp.ep_counts {
        w.put_u32(id);
        w.put_u32(c);
    }
    w.put_u64(lp.recent_overflows.len() as u64);
    for &t in &lp.recent_overflows {
        w.put_u64(t);
    }
    put_stats(w, &lp.stats);
}

fn get_lp_image(r: &mut ByteReader) -> Result<LpImage, &'static str> {
    let table_size = r.u64()? as usize;
    let n = r.len()?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let car = get_field(r)?;
        let cdr = get_field(r)?;
        let rc = r.u32()?;
        let addr = r.opt_u32()?;
        let free_next = r.opt_u32()?;
        let flags = r.u8()?;
        if flags & !0b111 != 0 {
            return Err("bad entry flags");
        }
        entries.push(EntryImage {
            car,
            cdr,
            rc,
            addr,
            stack_bit: flags & 1 != 0,
            live: flags & 2 != 0,
            free_next,
            lazy: flags & 4 != 0,
        });
    }
    let free_head = r.opt_u32()?;
    let free_tail = r.opt_u32()?;
    let live = r.u64()? as usize;
    let degraded = r.bool()?;
    let n = r.len()?;
    let mut ep_counts = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u32()?;
        let c = r.u32()?;
        ep_counts.push((id, c));
    }
    let n = r.len()?;
    let mut recent_overflows = Vec::with_capacity(n);
    for _ in 0..n {
        recent_overflows.push(r.u64()?);
    }
    let stats = get_stats(r)?;
    Ok(LpImage {
        table_size,
        entries,
        free_head,
        free_tail,
        live,
        degraded,
        ep_counts,
        recent_overflows,
        stats,
    })
}

fn put_controller_image(w: &mut ByteWriter, img: &ControllerImage) {
    w.put_str(img.kind);
    w.put_u64(img.sections.len() as u64);
    for (name, words) in &img.sections {
        w.put_str(name);
        w.put_u64(words.len() as u64);
        for &word in words {
            w.put_u64(word);
        }
    }
}

fn get_controller_image(r: &mut ByteReader) -> Result<ControllerImage, &'static str> {
    let kind = intern(r.str()?)?;
    let n = r.len()?;
    let mut sections = Vec::with_capacity(n);
    for _ in 0..n {
        let name = intern(r.str()?)?;
        let len = r.u64()?;
        if len > (u32::MAX as u64) {
            return Err("section too large");
        }
        let mut words = Vec::with_capacity(len as usize);
        for _ in 0..len {
            words.push(r.u64()?);
        }
        sections.push((name, words));
    }
    Ok(ControllerImage { kind, sections })
}

/// Serialize a [`Checkpoint`]: magic, version, payload CRC, payload.
/// Deterministic — equal checkpoints encode to identical bytes.
pub fn encode_checkpoint(ckpt: &Checkpoint) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    payload.put_u64(ckpt.event_index);
    payload.put_u64(ckpt.journal_seq);
    put_lp_image(&mut payload, &ckpt.lp);
    put_controller_image(&mut payload, &ckpt.controller);
    payload.put_bytes(&ckpt.driver);
    let payload = payload.finish();

    let mut w = ByteWriter::new();
    w.buf.extend_from_slice(&CHECKPOINT_MAGIC);
    w.put_u32(CHECKPOINT_VERSION);
    w.put_u32(crc32(&payload));
    w.put_u64(payload.len() as u64);
    w.buf.extend_from_slice(&payload);
    w.finish()
}

/// Parse and validate a checkpoint. Fails closed on bad magic, unknown
/// version, wrong length, CRC mismatch, or any malformed section.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, PersistError> {
    let corrupt = PersistError::CorruptCheckpoint;
    if bytes.len() < CHECKPOINT_MAGIC.len() + 16 {
        return Err(corrupt("truncated header"));
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut r = ByteReader::new(&bytes[8..]);
    let version = r.u32().map_err(corrupt)?;
    if version != CHECKPOINT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let want_crc = r.u32().map_err(corrupt)?;
    let len = r.len().map_err(corrupt)?;
    let payload = r.bytes_exact(len).map_err(corrupt)?;
    r.expect_end().map_err(corrupt)?;
    if crc32(payload) != want_crc {
        return Err(corrupt("crc mismatch"));
    }

    let mut p = ByteReader::new(payload);
    let event_index = p.u64().map_err(corrupt)?;
    let journal_seq = p.u64().map_err(corrupt)?;
    let lp = get_lp_image(&mut p).map_err(corrupt)?;
    let controller = get_controller_image(&mut p).map_err(corrupt)?;
    let driver = p.bytes().map_err(corrupt)?.to_vec();
    p.expect_end().map_err(corrupt)?;
    Ok(Checkpoint {
        event_index,
        journal_seq,
        lp,
        controller,
        driver,
    })
}

impl<'a> ByteReader<'a> {
    /// Read exactly `n` raw bytes (no length prefix).
    pub fn bytes_exact(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
        self.take(n)
    }
}

// ---------------------------------------------------------------------
// Journal format
// ---------------------------------------------------------------------

/// `prim`/`class` code for a digest record covering events recorded
/// *outside* any op bracket (root churn between primitives).
pub const LOOSE_CODE: u8 = 0xFF;

/// One journaled operation: the digest replay must reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalRecord {
    /// Monotonic operation sequence number across the run.
    pub seq: u64,
    /// [`PrimKind`] index, or [`LOOSE_CODE`] for an out-of-bracket
    /// record.
    pub prim: u8,
    /// Resolved [`OpClass`] index, or [`LOOSE_CODE`].
    pub class: u8,
    /// FNV-1a fold of every event the operation emitted.
    pub digest: u64,
}

/// One group-committed journal frame: every operation of one trace
/// event, made durable together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalBatch {
    /// The trace event these operations implement.
    pub event_index: u64,
    /// The operations, in execution order.
    pub records: Vec<JournalRecord>,
}

/// Encode one batch as a `[len][crc][payload]` frame.
pub fn encode_frame(batch: &JournalBatch) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    payload.put_u64(batch.event_index);
    payload.put_u64(batch.records.len() as u64);
    for rec in &batch.records {
        payload.put_u64(rec.seq);
        payload.put_u8(rec.prim);
        payload.put_u8(rec.class);
        payload.put_u64(rec.digest);
    }
    let payload = payload.finish();
    let mut w = ByteWriter::new();
    w.put_u32(payload.len() as u32);
    w.put_u32(crc32(&payload));
    w.buf.extend_from_slice(&payload);
    w.finish()
}

/// Walk a journal, separating valid frames from a torn tail.
///
/// Returns the decoded batches plus the byte length of the valid
/// prefix; recovery truncates the journal to that length (scan-back)
/// and re-executes everything after it. An *incomplete* trailing frame
/// is a torn write and is silently dropped; a *complete* frame that
/// fails its CRC or decodes inconsistently is corruption and fails
/// closed.
pub fn scan_journal(bytes: &[u8]) -> Result<(Vec<JournalBatch>, usize), PersistError> {
    let mut batches = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= 8 {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        let Some(end) = at.checked_add(8).and_then(|s| s.checked_add(len)) else {
            break; // length overflow: unreadable tail, treat as torn
        };
        if end > bytes.len() {
            break; // incomplete frame: torn write at the tail
        }
        let payload = &bytes[at + 8..end];
        if crc32(payload) != want_crc {
            return Err(PersistError::CorruptJournal {
                offset: at,
                reason: "crc mismatch",
            });
        }
        let mut r = ByteReader::new(payload);
        let decoded = (|| -> Result<JournalBatch, &'static str> {
            let event_index = r.u64()?;
            let n = r.len()?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(JournalRecord {
                    seq: r.u64()?,
                    prim: r.u8()?,
                    class: r.u8()?,
                    digest: r.u64()?,
                });
            }
            r.expect_end()?;
            Ok(JournalBatch {
                event_index,
                records,
            })
        })();
        match decoded {
            Ok(b) => batches.push(b),
            Err(reason) => {
                return Err(PersistError::CorruptJournal { offset: at, reason });
            }
        }
        at = end;
    }
    Ok((batches, at))
}

// ---------------------------------------------------------------------
// Op digests and the journaling sink
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The FNV-1a offset basis — the seed value every digest chain in this
/// crate starts from. Exposed so other layers (the serving layer's
/// per-session request/reply digests) fold with the same parameters.
pub const DIGEST_SEED: u64 = FNV_OFFSET;

/// Fold `bytes` into a running FNV-1a digest `h` (start chains from
/// [`DIGEST_SEED`]). This is the digest the journal frames use; session
/// layers reuse it so "journal digest" means one thing repo-wide.
pub fn digest_bytes(h: u64, bytes: &[u8]) -> u64 {
    fnv1a(h, bytes)
}

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable code + payload of an event, the unit the digest folds over.
fn event_code(e: Event) -> (u8, u64) {
    match e {
        Event::LptHit => (0, 0),
        Event::LptMiss => (1, 0),
        Event::RefOp => (2, 0),
        Event::EpRefOp => (3, 0),
        Event::EntryAllocated => (4, 0),
        Event::EntryFreed => (5, 0),
        Event::LazyDrain { children } => (6, u64::from(children)),
        Event::PseudoOverflow { reclaimed } => (7, u64::from(reclaimed)),
        Event::CycleCollection { reclaimed } => (8, u64::from(reclaimed)),
        Event::TrueOverflow => (9, 0),
        Event::HeapSplit => (10, 0),
        Event::HeapMerge => (11, 0),
        Event::HeapReadIn => (12, 0),
        Event::HeapFree => (13, 0),
        Event::Occupancy { live } => (14, u64::from(live)),
        Event::HeapFaultDetected => (15, 0),
        Event::HeapFaultRecovered => (16, 0),
        Event::OverflowModeEntered => (17, 0),
        Event::OverflowModeExited => (18, 0),
    }
}

fn prim_code(p: PrimKind) -> u8 {
    p.index() as u8
}

fn class_code(c: OpClass) -> u8 {
    match c {
        OpClass::ReadList => 0,
        OpClass::AccessHit => 1,
        OpClass::AccessMiss => 2,
        OpClass::Modify => 3,
        OpClass::Cons => 4,
    }
}

/// An [`EventSink`] that journals the operation stream as per-op
/// digests while forwarding everything to an inner sink.
///
/// Each op bracket (`op_begin` .. `op_end`) folds its events into one
/// FNV-1a digest and yields a [`JournalRecord`]; events recorded
/// outside any bracket accumulate into a pending "loose" digest folded
/// into a [`LOOSE_CODE`] record at the next batch boundary. The driver
/// calls [`JournalSink::take_batch`] once per trace event (group
/// commit) and appends the encoded frame to the store.
#[derive(Debug)]
pub struct JournalSink<S: EventSink> {
    inner: S,
    seq: u64,
    cur: Option<(u8, u64)>,
    loose: u64,
    pending: Vec<JournalRecord>,
}

impl<S: EventSink> JournalSink<S> {
    /// Wrap `inner`, numbering the first operation `first_seq` (0 for a
    /// fresh run; the checkpoint's `journal_seq` on resume).
    pub fn new(inner: S, first_seq: u64) -> Self {
        JournalSink {
            inner,
            seq: first_seq,
            cur: None,
            loose: FNV_OFFSET,
            pending: Vec::new(),
        }
    }

    /// Sequence number the next operation will receive.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped sink.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Drain the records accumulated since the last call as one
    /// group-commit batch for `event_index`. Returns `None` when the
    /// event produced no journalable work (nothing need be written).
    pub fn take_batch(&mut self, event_index: u64) -> Option<JournalBatch> {
        debug_assert!(self.cur.is_none(), "batch taken mid-operation");
        if self.loose != FNV_OFFSET {
            let digest = std::mem::replace(&mut self.loose, FNV_OFFSET);
            self.pending.push(JournalRecord {
                seq: self.seq,
                prim: LOOSE_CODE,
                class: LOOSE_CODE,
                digest,
            });
            self.seq += 1;
        }
        if self.pending.is_empty() {
            return None;
        }
        Some(JournalBatch {
            event_index,
            records: std::mem::take(&mut self.pending),
        })
    }
}

impl<S: EventSink> EventSink for JournalSink<S> {
    fn record(&mut self, event: Event) {
        let (code, payload) = event_code(event);
        let mut buf = [0u8; 9];
        buf[0] = code;
        buf[1..9].copy_from_slice(&payload.to_le_bytes());
        match &mut self.cur {
            Some((_, digest)) => *digest = fnv1a(*digest, &buf),
            None => self.loose = fnv1a(self.loose, &buf),
        }
        self.inner.record(event);
    }

    fn op_begin(&mut self, prim: PrimKind) {
        debug_assert!(self.cur.is_none(), "nested op bracket");
        let mut digest = FNV_OFFSET;
        digest = fnv1a(digest, &[prim_code(prim)]);
        // Fold any loose events into this op's digest so ordering
        // relative to brackets is captured too.
        if self.loose != FNV_OFFSET {
            digest = fnv1a(digest, &self.loose.to_le_bytes());
            self.loose = FNV_OFFSET;
        }
        self.cur = Some((prim_code(prim), digest));
        self.inner.op_begin(prim);
    }

    fn op_end(&mut self, class: OpClass) {
        if let Some((prim, digest)) = self.cur.take() {
            let digest = fnv1a(digest, &[class_code(class)]);
            self.pending.push(JournalRecord {
                seq: self.seq,
                prim,
                class: class_code(class),
                digest,
            });
            self.seq += 1;
        }
        self.inner.op_end(class);
    }
}

/// Compare a replayed batch against the journaled one; any mismatch is
/// a fail-closed [`PersistError::ReplayDivergence`].
pub fn verify_batch(journaled: &JournalBatch, replayed: &JournalBatch) -> Result<(), PersistError> {
    if journaled.event_index != replayed.event_index
        || journaled.records.len() != replayed.records.len()
    {
        return Err(PersistError::ReplayDivergence {
            seq: journaled.records.first().map_or(0, |r| r.seq),
            expected: journaled.records.len() as u64,
            actual: replayed.records.len() as u64,
        });
    }
    for (j, r) in journaled.records.iter().zip(&replayed.records) {
        if j != r {
            return Err(PersistError::ReplayDivergence {
                seq: j.seq,
                expected: j.digest,
                actual: r.digest,
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The crash-modeling store
// ---------------------------------------------------------------------

/// When and how an injected crash fires. Appends are numbered from 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The journal append that dies (1-based). The frame is not made
    /// durable — except for an optional torn prefix.
    pub kill_at_append: u64,
    /// Bytes of the dying frame that do reach the journal (a torn
    /// write). `None` loses the frame entirely.
    pub torn_keep: Option<usize>,
}

/// An in-memory durable store with flushed-bytes semantics: what a real
/// deployment would keep in a checkpoint file plus an append-only
/// journal file. Checkpoint installation is atomic (the rename(2)
/// idiom): rotation replaces the checkpoint and empties the journal as
/// one step, so a crash never observes a half-installed snapshot.
#[derive(Debug, Default, Clone)]
pub struct CrashStore {
    checkpoint: Option<Vec<u8>>,
    journal: Vec<u8>,
    appends: u64,
    plan: Option<CrashPlan>,
}

impl CrashStore {
    /// An empty store with no crash planned.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store whose `plan` will kill a future journal append.
    pub fn with_plan(plan: CrashPlan) -> Self {
        CrashStore {
            plan: Some(plan),
            ..Self::default()
        }
    }

    /// Disarm the crash plan (the post-crash recovery run must not die
    /// again).
    pub fn disarm(&mut self) {
        self.plan = None;
    }

    /// Atomically install a checkpoint, leaving the journal alone.
    pub fn install_checkpoint(&mut self, bytes: Vec<u8>) {
        self.checkpoint = Some(bytes);
    }

    /// Atomically install a checkpoint *and* empty the journal (log
    /// rotation at a periodic checkpoint).
    pub fn rotate(&mut self, checkpoint: Vec<u8>) {
        self.checkpoint = Some(checkpoint);
        self.journal.clear();
    }

    /// Append one encoded frame to the journal. If the crash plan fires
    /// here, only the planned torn prefix (if any) becomes durable and
    /// the simulated machine dies with [`PersistError::Crash`].
    pub fn append_journal(&mut self, frame: &[u8]) -> Result<(), PersistError> {
        self.appends += 1;
        if let Some(plan) = self.plan {
            if self.appends == plan.kill_at_append {
                let keep = plan.torn_keep.unwrap_or(0).min(frame.len());
                self.journal.extend_from_slice(&frame[..keep]);
                return Err(PersistError::Crash {
                    appends: self.appends,
                });
            }
        }
        self.journal.extend_from_slice(frame);
        Ok(())
    }

    /// The durable checkpoint bytes, if any.
    pub fn checkpoint(&self) -> Option<&[u8]> {
        self.checkpoint.as_deref()
    }

    /// The durable journal bytes.
    pub fn journal(&self) -> &[u8] {
        &self.journal
    }

    /// Journal appends attempted so far (including a fatal one).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Truncate the journal to `len` bytes (recovery scan-back after
    /// [`scan_journal`] reports a torn tail).
    pub fn truncate_journal(&mut self, len: usize) {
        self.journal.truncate(len);
    }

    /// Corruption helper (tests): flip one bit of a durable journal
    /// byte.
    pub fn flip_journal_byte(&mut self, at: usize) {
        if let Some(b) = self.journal.get_mut(at) {
            *b ^= 0x40;
        }
    }

    /// Corruption helper (tests): chop the durable checkpoint to `len`
    /// bytes.
    pub fn truncate_checkpoint(&mut self, len: usize) {
        if let Some(c) = &mut self.checkpoint {
            c.truncate(len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_metrics::NoopSink;

    fn sample_lp_image() -> LpImage {
        LpImage {
            table_size: 4,
            entries: vec![
                EntryImage {
                    car: FieldImage::Atom(0x1234),
                    cdr: FieldImage::Obj(1),
                    rc: 2,
                    addr: None,
                    stack_bit: false,
                    live: true,
                    free_next: None,
                    lazy: false,
                },
                EntryImage {
                    car: FieldImage::Empty,
                    cdr: FieldImage::Empty,
                    rc: 1,
                    addr: Some(40),
                    stack_bit: true,
                    live: true,
                    free_next: None,
                    lazy: false,
                },
                EntryImage {
                    car: FieldImage::Obj(1),
                    cdr: FieldImage::Atom(7),
                    rc: 0,
                    addr: None,
                    stack_bit: false,
                    live: false,
                    free_next: Some(3),
                    lazy: true,
                },
                EntryImage {
                    car: FieldImage::Empty,
                    cdr: FieldImage::Empty,
                    rc: 0,
                    addr: None,
                    stack_bit: false,
                    live: false,
                    free_next: None,
                    lazy: false,
                },
            ],
            free_head: Some(2),
            free_tail: Some(3),
            live: 2,
            degraded: false,
            ep_counts: vec![(1, 3)],
            recent_overflows: vec![17, 99],
            stats: LptStats {
                refops: 12,
                hits: 3,
                max_occupancy: 2,
                max_refcount: 3,
                ..LptStats::default()
            },
        }
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            event_index: 42,
            journal_seq: 99,
            lp: sample_lp_image(),
            controller: ControllerImage {
                kind: "two-pointer",
                sections: vec![("arena", vec![1, 2, 3]), ("ctrl", vec![9, 0, 0, 0, 0, 0])],
            },
            driver: vec![0xAA, 0xBB, 0xCC],
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checkpoint_round_trips_byte_identically() {
        let ckpt = sample_checkpoint();
        let bytes = encode_checkpoint(&ckpt);
        assert_eq!(bytes, encode_checkpoint(&ckpt), "encoding is deterministic");
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(encode_checkpoint(&back), bytes);
    }

    #[test]
    fn checkpoint_fails_closed_on_damage() {
        let bytes = encode_checkpoint(&sample_checkpoint());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert_eq!(
            decode_checkpoint(&bad),
            Err(PersistError::CorruptCheckpoint("bad magic"))
        );
        // Future version.
        let mut bad = bytes.clone();
        bad[8] = 0xFE;
        assert!(matches!(
            decode_checkpoint(&bad),
            Err(PersistError::UnsupportedVersion(_))
        ));
        // Flipped payload bit.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x10;
        assert_eq!(
            decode_checkpoint(&bad),
            Err(PersistError::CorruptCheckpoint("crc mismatch"))
        );
        // Truncation at every prefix length never panics and never
        // succeeds.
        for n in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..n]).is_err(), "prefix {n}");
        }
    }

    #[test]
    fn journal_scan_handles_torn_tail_and_corruption() {
        let b1 = JournalBatch {
            event_index: 0,
            records: vec![JournalRecord {
                seq: 0,
                prim: 1,
                class: 1,
                digest: 0xDEAD,
            }],
        };
        let b2 = JournalBatch {
            event_index: 1,
            records: vec![
                JournalRecord {
                    seq: 1,
                    prim: 3,
                    class: 4,
                    digest: 0xBEEF,
                },
                JournalRecord {
                    seq: 2,
                    prim: 0,
                    class: 0,
                    digest: 0xF00D,
                },
            ],
        };
        let mut journal = encode_frame(&b1);
        let f2 = encode_frame(&b2);
        journal.extend_from_slice(&f2);
        let full_len = journal.len();

        // Clean journal: both batches, full length valid.
        let (batches, valid) = scan_journal(&journal).unwrap();
        assert_eq!(batches, vec![b1.clone(), b2.clone()]);
        assert_eq!(valid, full_len);

        // Torn tail at every possible cut inside the second frame: one
        // batch survives, valid length stops at the frame boundary.
        let boundary = full_len - f2.len();
        for cut in boundary..full_len {
            let (batches, valid) = scan_journal(&journal[..cut]).unwrap();
            assert_eq!(batches.len(), 1, "cut {cut}");
            assert_eq!(valid, boundary, "cut {cut}");
        }

        // A flipped bit inside a *complete* frame fails closed.
        let mut corrupt = journal.clone();
        corrupt[boundary + 9] ^= 0x40;
        assert!(matches!(
            scan_journal(&corrupt),
            Err(PersistError::CorruptJournal { .. })
        ));
        // Empty journal is trivially valid.
        assert_eq!(scan_journal(&[]).unwrap(), (vec![], 0));
    }

    #[test]
    fn journal_sink_digests_deterministically() {
        let run = || {
            let mut sink = JournalSink::new(NoopSink, 0);
            sink.record(Event::RefOp); // loose, folded into the op
            sink.op_begin(PrimKind::Car);
            sink.record(Event::LptHit);
            sink.record(Event::RefOp);
            sink.op_end(OpClass::AccessHit);
            sink.op_begin(PrimKind::Cons);
            sink.record(Event::EntryAllocated);
            sink.op_end(OpClass::Cons);
            sink.record(Event::Occupancy { live: 5 }); // trailing loose
            sink.take_batch(7).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.event_index, 7);
        assert_eq!(a.records.len(), 3, "two ops plus one loose record");
        assert_eq!(a.records[0].prim, PrimKind::Car.index() as u8);
        assert_eq!(a.records[2].prim, LOOSE_CODE);
        assert_eq!(a.records[2].seq, 2);

        // A different event stream digests differently.
        let mut sink = JournalSink::new(NoopSink, 0);
        sink.op_begin(PrimKind::Car);
        sink.record(Event::LptMiss); // miss instead of hit
        sink.record(Event::RefOp);
        sink.op_end(OpClass::AccessHit);
        let other = sink.take_batch(7).unwrap();
        assert_ne!(other.records[0].digest, a.records[0].digest);

        // Quiet events journal nothing.
        let mut sink = JournalSink::new(NoopSink, 10);
        assert!(sink.take_batch(0).is_none());
        assert_eq!(sink.next_seq(), 10);
    }

    #[test]
    fn verify_batch_flags_divergence() {
        let mut sink = JournalSink::new(NoopSink, 0);
        sink.op_begin(PrimKind::Car);
        sink.record(Event::LptHit);
        sink.op_end(OpClass::AccessHit);
        let good = sink.take_batch(0).unwrap();
        assert!(verify_batch(&good, &good).is_ok());
        let mut bad = good.clone();
        bad.records[0].digest ^= 1;
        assert!(matches!(
            verify_batch(&good, &bad),
            Err(PersistError::ReplayDivergence { seq: 0, .. })
        ));
        let mut short = good.clone();
        short.records.clear();
        assert!(verify_batch(&good, &short).is_err());
    }

    #[test]
    fn crash_store_kills_and_tears_as_planned() {
        let frame = encode_frame(&JournalBatch {
            event_index: 0,
            records: vec![JournalRecord {
                seq: 0,
                prim: 0,
                class: 0,
                digest: 1,
            }],
        });
        // Clean kill: the fatal frame leaves nothing behind.
        let mut store = CrashStore::with_plan(CrashPlan {
            kill_at_append: 2,
            torn_keep: None,
        });
        store.append_journal(&frame).unwrap();
        assert_eq!(
            store.append_journal(&frame),
            Err(PersistError::Crash { appends: 2 })
        );
        assert_eq!(store.journal().len(), frame.len());
        let (batches, valid) = scan_journal(store.journal()).unwrap();
        assert_eq!((batches.len(), valid), (1, frame.len()));

        // Torn kill: a prefix of the fatal frame is durable and scans
        // as a torn tail, not corruption.
        let mut store = CrashStore::with_plan(CrashPlan {
            kill_at_append: 1,
            torn_keep: Some(frame.len() - 3),
        });
        assert!(store.append_journal(&frame).is_err());
        let (batches, valid) = scan_journal(store.journal()).unwrap();
        assert_eq!((batches.len(), valid), (0, 0));
        store.truncate_journal(valid);
        assert!(store.journal().is_empty());

        // Disarmed, the same store survives the append and rotation
        // empties the journal atomically.
        store.disarm();
        store.append_journal(&frame).unwrap();
        store.rotate(vec![1, 2, 3]);
        assert!(store.journal().is_empty());
        assert_eq!(store.checkpoint(), Some(&[1u8, 2, 3][..]));
    }
}
