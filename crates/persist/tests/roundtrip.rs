//! Checkpoint round-trip matrix: every RefcountMode × FreeDiscipline
//! combination over all three heap representations, plus a
//! mid-degrade snapshot that restores *into* §4.3.2.3 heap-direct mode
//! and later re-enters table mode.
//!
//! Each cell drives a real workload, snapshots the full machine
//! through the versioned checkpoint codec, restores it into a fresh
//! controller + LP, and requires (a) byte-identical codec round-trips,
//! (b) image-identical restored state that passes `audit`, and (c)
//! observably identical behavior when the original and the restored
//! machine keep executing the same operations.

use small_core::{
    FreeDiscipline, ListProcessor, LpConfig, LpValue, OverflowPolicy, RefcountMode, RootKind,
    Rooted,
};
use small_heap::{
    CdrCodedController, HeapController, PersistableController, StructureCodedController,
    TwoPointerController, Word,
};
use small_metrics::NoopSink;
use small_persist::{decode_checkpoint, encode_checkpoint, Checkpoint};
use small_sexpr::{parse, Interner};

fn config(refcounts: RefcountMode, free_discipline: FreeDiscipline) -> LpConfig {
    LpConfig {
        table_size: 96,
        refcounts,
        free_discipline,
        ..LpConfig::default()
    }
}

fn read<C: HeapController>(
    lp: &mut ListProcessor<C, NoopSink>,
    i: &mut Interner,
    src: &str,
) -> LpValue {
    let e = parse(src, i).unwrap();
    lp.readlist(None, &e).unwrap()
}

/// Drive a deterministic workload leaving a nontrivial mid-run state:
/// held bindings, freed entries with pending lazy decrements, a
/// mutated structure, and (split mode) populated EP-side counts.
/// Returns the values still held, in handle order.
fn work<C: HeapController>(
    lp: &mut ListProcessor<C, NoopSink>,
    i: &mut Interner,
) -> (Vec<Rooted>, Vec<LpValue>) {
    let mut held = Vec::new();
    let keep = read(lp, i, "(alpha (beta gamma) delta)");
    held.push(lp.adopt_binding(keep));
    let tmp = read(lp, i, "((a b) (c d) e)");
    let tmp_h = lp.adopt_binding(tmp);
    let pair = lp.cons(keep, tmp).unwrap();
    held.push(lp.adopt_binding(pair));
    let kar = lp.car_of(pair).unwrap();
    held.push(lp.root_binding(kar));
    lp.rplaca_of(tmp, kar).unwrap();
    // Drop the direct reference to `tmp`: its spine survives only
    // through `pair`, and the drop's release lands at the next drain.
    drop(tmp_h);
    let dead = read(lp, i, "(x (y) z)");
    let dead_h = lp.adopt_binding(dead);
    drop(dead_h);
    lp.drain_unroots();
    let values = held.iter().map(Rooted::value).collect();
    (held, values)
}

fn snapshot<C: HeapController + PersistableController>(
    lp: &ListProcessor<C, NoopSink>,
) -> Checkpoint {
    Checkpoint {
        event_index: 7,
        journal_seq: 31,
        lp: lp.export_image(),
        controller: lp.controller.export_image(),
        driver: vec![0xAB, 0xCD],
    }
}

/// One matrix cell: work, snapshot, codec round-trip, restore, then
/// run both machines forward in lockstep and compare.
fn round_trip_cell<C, F>(make: F, refcounts: RefcountMode, free_discipline: FreeDiscipline)
where
    C: HeapController + PersistableController,
    F: Fn() -> C,
{
    let tag = format!("{}/{refcounts:?}/{free_discipline:?}", C::KIND);
    let cfg = config(refcounts, free_discipline);
    let mut i = Interner::new();
    let mut lp = ListProcessor::with_sink(make(), cfg, NoopSink);
    let (_held, values) = work(&mut lp, &mut i);

    // Codec round-trip is exact and deterministic.
    let ckpt = snapshot(&lp);
    let bytes = encode_checkpoint(&ckpt);
    assert_eq!(bytes, encode_checkpoint(&ckpt), "{tag}: encode unstable");
    let decoded = decode_checkpoint(&bytes).unwrap();
    assert_eq!(decoded, ckpt, "{tag}: decode mismatch");

    // Restore into a fresh machine: identical image, clean audit.
    let controller = C::import_image(&decoded.controller).unwrap();
    let mut restored = ListProcessor::from_image(controller, cfg, &decoded.lp, NoopSink).unwrap();
    assert_eq!(restored.export_image(), ckpt.lp, "{tag}: image drifted");
    assert_eq!(restored.stats(), lp.stats(), "{tag}: stats drifted");
    assert!(restored.audit().is_clean(), "{tag}: restored audit");
    let _restored_held: Vec<Rooted> = values
        .iter()
        .map(|&v| restored.resume_root(v, RootKind::Binding))
        .collect();

    // Both machines keep executing the same operations identically.
    let mut j = Interner::new();
    for lp in [&mut lp, &mut restored] {
        let extra = read(lp, &mut j, "(p (q r) s)");
        let h = lp.adopt_binding(extra);
        let joined = lp.cons(extra, values[0]).unwrap();
        let jh = lp.adopt_binding(joined);
        let kdr = lp.cdr_of(joined).unwrap();
        let kh = lp.root_binding(kdr);
        drop(h);
        drop(jh);
        drop(kh);
        lp.drain_unroots();
    }
    assert_eq!(
        lp.export_image(),
        restored.export_image(),
        "{tag}: behavior diverged after restore"
    );
    assert!(
        lp.audit().is_clean() && restored.audit().is_clean(),
        "{tag}"
    );
}

#[test]
fn matrix_round_trips_identically() {
    for refcounts in [RefcountMode::Unified, RefcountMode::Split] {
        for free_discipline in [FreeDiscipline::Stack, FreeDiscipline::Queue] {
            round_trip_cell(
                || TwoPointerController::new(4096, 64),
                refcounts,
                free_discipline,
            );
            round_trip_cell(|| CdrCodedController::new(4096), refcounts, free_discipline);
            round_trip_cell(StructureCodedController::new, refcounts, free_discipline);
        }
    }
}

/// A snapshot taken while the LP is degraded to heap-direct overflow
/// mode must restore *into* degraded mode, keep operating there, and
/// re-enter table mode at the same point as the original.
#[test]
fn mid_degrade_snapshot_restores_and_reenters_table_mode() {
    let cfg = LpConfig {
        table_size: 8,
        overflow: OverflowPolicy::Degrade,
        ..LpConfig::default()
    };
    let mut lp = ListProcessor::with_sink(TwoPointerController::new(4096, 64), cfg, NoopSink);
    // Fill the table with EP-rooted, incompressible pairs; the next
    // cons true-overflows and the LP degrades to §4.3.2.3 heap-direct
    // operation.
    let mut held = Vec::new();
    for k in 0..8 {
        let v = lp
            .cons(LpValue::Atom(Word::int(k)), LpValue::Atom(Word::NIL))
            .unwrap();
        held.push(lp.adopt_binding(v));
    }
    assert!(!lp.degraded());
    let d = lp
        .cons(LpValue::Atom(Word::int(99)), LpValue::Atom(Word::NIL))
        .unwrap();
    held.push(lp.adopt_binding(d));
    assert!(lp.degraded(), "the 9th pair must push the table over");
    assert!(d.is_heap_direct());
    assert!(lp.stats().overflow_entries > 0);

    // Snapshot mid-degrade and restore.
    let values: Vec<LpValue> = held.iter().map(Rooted::value).collect();
    let ckpt = snapshot(&lp);
    let decoded = decode_checkpoint(&encode_checkpoint(&ckpt)).unwrap();
    let controller = TwoPointerController::import_image(&decoded.controller).unwrap();
    let mut restored = ListProcessor::from_image(controller, cfg, &decoded.lp, NoopSink).unwrap();
    assert!(
        restored.degraded(),
        "snapshot must restore into degraded mode"
    );
    assert_eq!(restored.export_image(), ckpt.lp);
    let mut restored_held: Vec<Rooted> = values
        .iter()
        .map(|&v| restored.resume_root(v, RootKind::Binding))
        .collect();
    // Heap-direct traversal works identically on the restored machine.
    assert_eq!(restored.car_of(d).unwrap(), LpValue::Atom(Word::int(99)));
    assert_eq!(lp.car_of(d).unwrap(), LpValue::Atom(Word::int(99)));

    // Release everything on both sides: occupancy falls to half the
    // table and the next operation boundary re-enters table mode on
    // both machines in lockstep.
    held.clear();
    restored_held.clear();
    lp.drain_unroots();
    restored.drain_unroots();
    let a = lp
        .cons(LpValue::Atom(Word::int(7)), LpValue::Atom(Word::NIL))
        .unwrap();
    let b = restored
        .cons(LpValue::Atom(Word::int(7)), LpValue::Atom(Word::NIL))
        .unwrap();
    assert_eq!(a, b, "post-degrade allocation diverged");
    assert!(matches!(a, LpValue::Obj(_)), "must allocate in the table");
    assert!(!lp.degraded() && !restored.degraded(), "both must re-enter");
    assert!(lp.stats().overflow_exits > 0);
    assert_eq!(lp.export_image(), restored.export_image());
    assert!(lp.audit().is_clean() && restored.audit().is_clean());
}
