//! Workload suite shared by the repro experiments: the five organic
//! traces plus the Table 5.1-scale synthetic traces, generated once.

use small_trace::Trace;
use small_workloads as workloads;

/// The trace inventory for one repro session.
pub struct Suite {
    /// Organic traces from the five Lisp workloads (scale 1):
    /// slang, plagen, lyra, editor, pearl.
    pub organic: Vec<Trace>,
    /// Synthetic traces pinned to the Table 5.1 scale:
    /// lyra, plagen, slang, editor.
    pub synthetic: Vec<Trace>,
}

impl Suite {
    /// Generate the full suite (runs all five Lisp workloads).
    pub fn generate() -> Suite {
        let organic = workloads::standard_suite(1);
        let synthetic = ["lyra", "plagen", "slang", "editor"]
            .into_iter()
            .map(|n| workloads::synthetic::generate(&workloads::synthetic::table_5_1(n)))
            .collect();
        Suite { organic, synthetic }
    }

    /// Generate a reduced suite for fast runs (shrunken synthetic
    /// traces, same organic workloads).
    pub fn generate_quick() -> Suite {
        let organic = workloads::standard_suite(1);
        let synthetic = ["lyra", "plagen", "slang", "editor"]
            .into_iter()
            .map(|n| {
                let mut p = workloads::synthetic::table_5_1(n);
                p.primitives = p.primitives.min(8000);
                workloads::synthetic::generate(&p)
            })
            .collect();
        Suite { organic, synthetic }
    }

    /// Find an organic trace by name.
    pub fn organic_by_name(&self, name: &str) -> &Trace {
        self.organic
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("no organic trace {name}"))
    }

    /// Find a synthetic trace by name.
    pub fn synthetic_by_name(&self, name: &str) -> &Trace {
        self.synthetic
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("no synthetic trace {name}"))
    }

    /// The four Chapter 5 traces in thesis order — the synthetic,
    /// Table 5.1-calibrated versions: their primitive-to-call ratio
    /// matches the thesis traces, which the LPT activity accounting
    /// (Tables 5.2-5.5) is sensitive to. The organic workloads drive
    /// Chapter 3.
    pub fn chapter5(&self) -> Vec<&Trace> {
        ["lyra", "plagen", "slang", "editor"]
            .into_iter()
            .map(|n| self.synthetic_by_name(n))
            .collect()
    }
}

/// Right-pad to a column width.
pub fn pad(s: &str, w: usize) -> String {
    format!("{s:<w$}")
}

/// Format a whole table: header row + separator + rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            if k < widths.len() {
                widths[k] = widths[k].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let hdr: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(k, h)| pad(h, widths[k]))
        .collect();
    out.push_str(&hdr.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(out.len().saturating_sub(1).min(100)));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(k, c)| pad(c, *widths.get(k).unwrap_or(&8)))
            .collect();
        out.push_str(cells.join("  ").trim_end());
        out.push('\n');
    }
    out
}
