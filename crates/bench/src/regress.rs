//! The perf-trajectory harness: a pinned workload grid whose results are
//! appended to the repository's bench trajectory, one point per PR.
//!
//! [`run`] executes a fixed grid of simulator workloads (trace sizes ×
//! LPT sizes × EP issue gaps, fixed seed) under a summary-only
//! [`SpanSink`](small_profile::SpanSink) and produces the
//! schema-versioned report written to `BENCH_small.json` at the repo
//! root. [`run_soak_cells`] adds a second pinned grid measured through
//! the serving layer's telemetry twin
//! ([`small_serve::soak::twin_telemetry`]): per-cell eval-latency
//! p50/p99 on the virtual clock, which is a pure function of the seed's
//! request streams. The default payload contains **only virtual-cycle
//! totals, event counts, and latency quantiles** — fully deterministic,
//! byte-identical across runs and machines — so CI can diff it.
//! Wall-time medians are opt-in (`--wall`): they are measured as the
//! median of [`WALL_REPS`] repetitions and rounded to microseconds, and
//! the field stays `null` when not requested so the deterministic shape
//! never changes. [`normalize_wall`] maps a committed payload with wall
//! data back onto the deterministic shape so CI can byte-compare it
//! against a fresh `--wall`-less run.

use small_core::timing::TimingModel;
use small_metrics::JsonObject;
use small_profile::SpanSink;
use small_serve::session::ServeConfig;
use small_serve::soak::twin_telemetry;
use small_serve::telemetry::ReqKind;
use small_simulator::driver::run_sim_with_sink;
use small_simulator::SimParams;
use small_trace::Trace;
use small_workloads::synthetic;
use std::time::Instant;

/// Schema identifier; bump on any key change so trajectory consumers
/// can dispatch. v2 added `ep_gap` per cell, the `slang-4k-tight`
/// stall-exercising point, and the `soak_cells` section.
pub const SCHEMA: &str = "small-bench-trajectory/2";

/// Repetitions behind each wall-time median.
pub const WALL_REPS: usize = 5;

/// One point of the pinned grid.
#[derive(Debug, Clone, Copy)]
pub struct GridPoint {
    /// Workload label (stable across PRs; part of the schema).
    pub workload: &'static str,
    /// Primitive events in the synthetic trace.
    pub primitives: usize,
    /// LPT size the cell runs with.
    pub table_size: usize,
    /// EP cycles between successive operation issues. The default gap
    /// ([`small_profile::DEFAULT_EP_GAP`]) absorbs every LP tail; a
    /// gap of 0 makes back-to-back issues collide with the previous
    /// operation's tail work and exercises the §4.3.2.5 chaining stall.
    pub ep_gap: u64,
}

/// The pinned grid. Do not reorder or rename entries — the trajectory
/// is only comparable across PRs if the grid is stable. Append new
/// points at the end and bump [`SCHEMA`] when doing so.
pub const GRID: [GridPoint; 5] = [
    GridPoint {
        workload: "slang-2k-t512",
        primitives: 2000,
        table_size: 512,
        ep_gap: small_profile::DEFAULT_EP_GAP,
    },
    GridPoint {
        workload: "slang-2k-t48",
        primitives: 2000,
        table_size: 48,
        ep_gap: small_profile::DEFAULT_EP_GAP,
    },
    GridPoint {
        workload: "slang-8k-t512",
        primitives: 8000,
        table_size: 512,
        ep_gap: small_profile::DEFAULT_EP_GAP,
    },
    GridPoint {
        workload: "plagen-4k-t512",
        primitives: 4000,
        table_size: 512,
        ep_gap: small_profile::DEFAULT_EP_GAP,
    },
    // A zero-gap EP keeps no slack between issues, so a cons's 4-cycle
    // LP tail stalls the next 2-cycle-lookup request: the one grid
    // point where `stall_cycles` must be nonzero.
    GridPoint {
        workload: "slang-4k-tight",
        primitives: 4000,
        table_size: 512,
        ep_gap: 0,
    },
];

/// One cell of the serving-layer soak grid: a pinned
/// seed × clients × requests triple measured through the serial
/// telemetry twin.
#[derive(Debug, Clone, Copy)]
pub struct SoakCell {
    /// Workload seed (drives every client's generated request stream).
    pub seed: u64,
    /// Serial client streams replayed through the twin.
    pub clients: usize,
    /// Generated eval requests per client.
    pub requests: usize,
}

/// The pinned soak grid. Seeds are literals (not indices into
/// `PINNED_SEEDS`) so the trajectory survives changes to the seed
/// pool. Append, never reorder; bump [`SCHEMA`] when appending.
pub const SOAK_GRID: [SoakCell; 2] = [
    SoakCell {
        seed: 11,
        clients: 4,
        requests: 12,
    },
    SoakCell {
        seed: 23,
        clients: 6,
        requests: 16,
    },
];

/// The measured result for one grid point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The grid point.
    pub point: GridPoint,
    /// Virtual cycles elapsed (run_stream-exact).
    pub total_cycles: u64,
    /// Virtual cycles the EP spent idle.
    pub ep_idle_cycles: u64,
    /// §4.3.2.5 chaining-stall cycles.
    pub stall_cycles: u64,
    /// LP tail cycles overlapped with EP execution.
    pub overlap_cycles: u64,
    /// Operations executed.
    pub ops: u64,
    /// LPT hit rate over car/cdr requests.
    pub lpt_hit_rate: f64,
    /// Reference-count operations (bus traffic).
    pub refops: u64,
    /// Median wall time in microseconds, when measured.
    pub wall_us: Option<u64>,
}

/// The measured result for one soak cell.
#[derive(Debug, Clone)]
pub struct SoakCellResult {
    /// The cell.
    pub cell: SoakCell,
    /// Requests of every kind the twin served.
    pub requests_total: u64,
    /// Eval requests among them.
    pub evals: u64,
    /// Median eval latency in virtual cycles.
    pub eval_p50_cycles: u64,
    /// Tail eval latency in virtual cycles.
    pub eval_p99_cycles: u64,
    /// Median wall time of the whole cell in microseconds, when
    /// measured.
    pub wall_us: Option<u64>,
}

fn trace_for(p: &GridPoint) -> Trace {
    let family = if p.workload.starts_with("plagen") {
        "plagen"
    } else {
        "slang"
    };
    let mut params = synthetic::table_5_1(family);
    params.primitives = p.primitives;
    synthetic::generate(&params)
}

fn median_wall_us(reps: usize, mut run: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_micros() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[reps / 2]
}

fn measure(p: &GridPoint, wall: bool) -> PointResult {
    let trace = trace_for(p);
    let params = SimParams::default().with_table(p.table_size);
    let sink: SpanSink =
        SpanSink::with_model(p.workload, TimingModel::default(), p.ep_gap).summary_only();
    let (result, sink) = run_sim_with_sink(&trace, params, None, sink);
    let profile = sink.finish();
    let wall_us = wall.then(|| {
        median_wall_us(WALL_REPS, || {
            let sink: SpanSink =
                SpanSink::with_model(p.workload, TimingModel::default(), p.ep_gap).summary_only();
            let _ = run_sim_with_sink(&trace, params, None, sink);
        })
    });
    PointResult {
        point: *p,
        total_cycles: profile.timing.total,
        ep_idle_cycles: profile.timing.ep_idle,
        stall_cycles: profile.stall_cycles(),
        overlap_cycles: profile.overlap_cycles(),
        ops: profile.timing.ops,
        lpt_hit_rate: result.lpt_hit_rate(),
        refops: result.lpt.refops,
        wall_us,
    }
}

/// The serving configuration every soak cell runs under. Part of the
/// schema: changing it changes the committed latency quantiles.
fn soak_cfg() -> ServeConfig {
    ServeConfig {
        table_size: 384,
        heap_cells: 1 << 13,
        // Sizes the deterministic eviction sweep (max_resident + 2
        // sessions); the twin itself never evicts.
        max_resident: 4,
        ..ServeConfig::default()
    }
}

fn measure_soak(c: &SoakCell, wall: bool) -> SoakCellResult {
    let cfg = soak_cfg();
    let m = twin_telemetry(c.seed, c.clients, c.requests, &cfg);
    let eval = m.kind(ReqKind::Eval);
    let wall_us = wall.then(|| {
        median_wall_us(WALL_REPS, || {
            let _ = twin_telemetry(c.seed, c.clients, c.requests, &cfg);
        })
    });
    SoakCellResult {
        cell: *c,
        requests_total: m.requests(),
        evals: eval.count.get(),
        eval_p50_cycles: eval.cycles.quantile(0.5),
        eval_p99_cycles: eval.cycles.quantile(0.99),
        wall_us,
    }
}

/// Run the pinned simulator grid. `wall` opts into wall-time medians;
/// leave it off for the deterministic trajectory payload.
pub fn run(wall: bool) -> Vec<PointResult> {
    GRID.iter().map(|p| measure(p, wall)).collect()
}

/// Run the pinned serving-layer soak grid through the telemetry twin.
pub fn run_soak_cells(wall: bool) -> Vec<SoakCellResult> {
    SOAK_GRID.iter().map(|c| measure_soak(c, wall)).collect()
}

fn wall_field(o: &mut JsonObject, wall_us: Option<u64>) {
    match wall_us {
        Some(us) => o.field_u64("wall_us", us),
        None => o.field_raw("wall_us", "null"),
    };
}

/// The schema-versioned report. Key order is fixed; cells appear in
/// grid order; no raw timestamps appear in the payload (`wall_us` is a
/// rounded median or `null`).
pub fn to_json(results: &[PointResult], soak: &[SoakCellResult]) -> String {
    let cells: Vec<String> = results
        .iter()
        .map(|r| {
            let mut o = JsonObject::new();
            o.field_str("workload", r.point.workload)
                .field_u64("primitives", r.point.primitives as u64)
                .field_u64("table_size", r.point.table_size as u64)
                .field_u64("ep_gap", r.point.ep_gap)
                .field_u64("ops", r.ops)
                .field_u64("total_cycles", r.total_cycles)
                .field_u64("ep_idle_cycles", r.ep_idle_cycles)
                .field_u64("stall_cycles", r.stall_cycles)
                .field_u64("overlap_cycles", r.overlap_cycles)
                .field_f64("lpt_hit_rate", r.lpt_hit_rate)
                .field_u64("refops", r.refops);
            wall_field(&mut o, r.wall_us);
            o.finish()
        })
        .collect();
    let soak_cells: Vec<String> = soak
        .iter()
        .map(|r| {
            let mut o = JsonObject::new();
            o.field_u64("seed", r.cell.seed)
                .field_u64("clients", r.cell.clients as u64)
                .field_u64("requests", r.cell.requests as u64)
                .field_u64("requests_total", r.requests_total)
                .field_u64("evals", r.evals)
                .field_u64("eval_p50_cycles", r.eval_p50_cycles)
                .field_u64("eval_p99_cycles", r.eval_p99_cycles);
            wall_field(&mut o, r.wall_us);
            o.finish()
        })
        .collect();
    let mut root = JsonObject::new();
    root.field_str("schema", SCHEMA);
    root.field_u64("grid_points", results.len() as u64);
    root.field_raw("cells", &format!("[{}]", cells.join(",")));
    root.field_raw("soak_cells", &format!("[{}]", soak_cells.join(",")));
    root.finish()
}

/// Replace every measured `"wall_us":<n>` with `"wall_us":null`.
///
/// Wall medians are the payload's only volatile field; normalizing them
/// away maps a committed `--wall` trajectory back onto the
/// deterministic shape, so CI can byte-compare the committed file
/// against a freshly generated wall-less payload (the `--check` mode).
pub fn normalize_wall(json: &str) -> String {
    const KEY: &str = "\"wall_us\":";
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(i) = rest.find(KEY) {
        let after = i + KEY.len();
        out.push_str(&rest[..after]);
        let tail = &rest[after..];
        let digits = tail.bytes().take_while(u8::is_ascii_digit).count();
        if digits > 0 {
            out.push_str("null");
            rest = &tail[digits..];
        } else {
            rest = tail;
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_without_wall_times() {
        // The acceptance bar: two consecutive runs must serialize
        // byte-identically. Keep the grid small here — one simulator
        // point and one soak cell suffice to pin the property.
        let p = GRID[0];
        let c = SOAK_GRID[0];
        let a = to_json(&[measure(&p, false)], &[measure_soak(&c, false)]);
        let b = to_json(&[measure(&p, false)], &[measure_soak(&c, false)]);
        assert_eq!(a, b);
        assert!(a.starts_with(&format!("{{\"schema\":\"{SCHEMA}\"")));
        assert!(a.contains("\"wall_us\":null"));
        assert!(a.contains("\"soak_cells\":["));
    }

    #[test]
    fn wall_opt_in_fills_the_field() {
        let p = GridPoint {
            workload: "slang-2k-t512",
            primitives: 300,
            table_size: 512,
            ep_gap: small_profile::DEFAULT_EP_GAP,
        };
        let r = measure(&p, true);
        assert!(r.wall_us.is_some());
        let json = to_json(&[r], &[]);
        assert!(!json.contains("\"wall_us\":null"));
    }

    #[test]
    fn tight_grid_point_exercises_stalls() {
        // The whole reason slang-4k-tight exists: every other point
        // reports stall_cycles 0, so the chaining-stall accounting was
        // untested by the trajectory.
        let tight = GRID
            .iter()
            .find(|p| p.workload == "slang-4k-tight")
            .expect("tight point is pinned");
        let r = measure(tight, false);
        assert!(
            r.stall_cycles > 0,
            "zero-gap point must report chaining stalls"
        );
        let relaxed = GridPoint {
            ep_gap: small_profile::DEFAULT_EP_GAP,
            ..*tight
        };
        assert_eq!(measure(&relaxed, false).stall_cycles, 0);
    }

    #[test]
    fn soak_cells_count_evals_and_order_quantiles() {
        // The seed-23 cell: big enough that over half its evals touch
        // the LP. The seed-11 cell's p50 is 0 even under the exclusive
        // nearest rank (`Histogram::quantile`'s boundary fix): its
        // zero-cycle evals — pure-EP arithmetic records zero virtual
        // cycles by definition — are a *strict majority* of the 114
        // samples, not a rounding artifact at the 50% boundary.
        let r = measure_soak(&SOAK_GRID[1], false);
        let expected_evals = (SOAK_GRID[1].clients * SOAK_GRID[1].requests) as u64;
        // Clients contribute exactly `requests` evals each; the
        // eviction sweep adds its own on top.
        assert!(r.evals > expected_evals);
        assert!(r.requests_total > r.evals);
        assert!(r.eval_p50_cycles > 0);
        assert!(r.eval_p99_cycles >= r.eval_p50_cycles);
    }

    #[test]
    fn normalize_wall_nulls_only_measured_medians() {
        let json = r#"{"wall_us":1234,"x":{"wall_us":null,"wall_us":7}}"#;
        assert_eq!(
            normalize_wall(json),
            r#"{"wall_us":null,"x":{"wall_us":null,"wall_us":null}}"#
        );
        // A wall-run payload normalizes to the wall-less payload.
        let p = GRID[0];
        let with_wall = to_json(&[measure(&p, true)], &[]);
        let without = to_json(&[measure(&p, false)], &[]);
        assert_eq!(normalize_wall(&with_wall), without);
    }

    #[test]
    fn grid_labels_are_unique_and_stable() {
        let mut names: Vec<&str> = GRID.iter().map(|p| p.workload).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), GRID.len(), "duplicate workload labels");
    }
}
