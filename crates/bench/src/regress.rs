//! The perf-trajectory harness: a pinned workload grid whose results are
//! appended to the repository's bench trajectory, one point per PR.
//!
//! [`run`] executes a fixed grid of simulator workloads (trace sizes ×
//! LPT sizes, fixed seed) under a summary-only
//! [`SpanSink`](small_profile::SpanSink) and produces the
//! schema-versioned report written to `BENCH_small.json` at the repo
//! root. The default payload contains **only virtual-cycle totals and
//! event counts** — fully deterministic, byte-identical across runs and
//! machines — so CI can diff it. Wall-time medians are opt-in
//! (`--wall`): they are measured as the median of [`WALL_REPS`]
//! repetitions and rounded to microseconds, and the field stays `null`
//! when not requested so the deterministic shape never changes.

use small_metrics::JsonObject;
use small_profile::SpanSink;
use small_simulator::driver::run_sim_with_sink;
use small_simulator::SimParams;
use small_trace::Trace;
use small_workloads::synthetic;
use std::time::Instant;

/// Schema identifier; bump on any key change so trajectory consumers
/// can dispatch.
pub const SCHEMA: &str = "small-bench-trajectory/1";

/// Repetitions behind each wall-time median.
pub const WALL_REPS: usize = 5;

/// One point of the pinned grid.
#[derive(Debug, Clone, Copy)]
pub struct GridPoint {
    /// Workload label (stable across PRs; part of the schema).
    pub workload: &'static str,
    /// Primitive events in the synthetic trace.
    pub primitives: usize,
    /// LPT size the cell runs with.
    pub table_size: usize,
}

/// The pinned grid. Do not reorder or rename entries — the trajectory
/// is only comparable across PRs if the grid is stable. Append new
/// points at the end and bump [`SCHEMA`] when doing so.
pub const GRID: [GridPoint; 4] = [
    GridPoint {
        workload: "slang-2k-t512",
        primitives: 2000,
        table_size: 512,
    },
    GridPoint {
        workload: "slang-2k-t48",
        primitives: 2000,
        table_size: 48,
    },
    GridPoint {
        workload: "slang-8k-t512",
        primitives: 8000,
        table_size: 512,
    },
    GridPoint {
        workload: "plagen-4k-t512",
        primitives: 4000,
        table_size: 512,
    },
];

/// The measured result for one grid point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The grid point.
    pub point: GridPoint,
    /// Virtual cycles elapsed (run_stream-exact).
    pub total_cycles: u64,
    /// Virtual cycles the EP spent idle.
    pub ep_idle_cycles: u64,
    /// §4.3.2.5 chaining-stall cycles.
    pub stall_cycles: u64,
    /// LP tail cycles overlapped with EP execution.
    pub overlap_cycles: u64,
    /// Operations executed.
    pub ops: u64,
    /// LPT hit rate over car/cdr requests.
    pub lpt_hit_rate: f64,
    /// Reference-count operations (bus traffic).
    pub refops: u64,
    /// Median wall time in microseconds, when measured.
    pub wall_us: Option<u64>,
}

fn trace_for(p: &GridPoint) -> Trace {
    let family = if p.workload.starts_with("plagen") {
        "plagen"
    } else {
        "slang"
    };
    let mut params = synthetic::table_5_1(family);
    params.primitives = p.primitives;
    synthetic::generate(&params)
}

fn measure(p: &GridPoint, wall: bool) -> PointResult {
    let trace = trace_for(p);
    let params = SimParams::default().with_table(p.table_size);
    let sink: SpanSink = SpanSink::new(p.workload).summary_only();
    let (result, sink) = run_sim_with_sink(&trace, params, None, sink);
    let profile = sink.finish();
    let wall_us = wall.then(|| {
        let mut reps: Vec<u64> = (0..WALL_REPS)
            .map(|_| {
                let start = Instant::now();
                let sink: SpanSink = SpanSink::new(p.workload).summary_only();
                let _ = run_sim_with_sink(&trace, params, None, sink);
                start.elapsed().as_micros() as u64
            })
            .collect();
        reps.sort_unstable();
        reps[WALL_REPS / 2]
    });
    PointResult {
        point: *p,
        total_cycles: profile.timing.total,
        ep_idle_cycles: profile.timing.ep_idle,
        stall_cycles: profile.stall_cycles(),
        overlap_cycles: profile.overlap_cycles(),
        ops: profile.timing.ops,
        lpt_hit_rate: result.lpt_hit_rate(),
        refops: result.lpt.refops,
        wall_us,
    }
}

/// Run the pinned grid. `wall` opts into wall-time medians; leave it
/// off for the deterministic trajectory payload.
pub fn run(wall: bool) -> Vec<PointResult> {
    GRID.iter().map(|p| measure(p, wall)).collect()
}

/// The schema-versioned report. Key order is fixed; cells appear in
/// grid order; no raw timestamps appear in the payload (`wall_us` is a
/// rounded median or `null`).
pub fn to_json(results: &[PointResult]) -> String {
    let cells: Vec<String> = results
        .iter()
        .map(|r| {
            let mut o = JsonObject::new();
            o.field_str("workload", r.point.workload)
                .field_u64("primitives", r.point.primitives as u64)
                .field_u64("table_size", r.point.table_size as u64)
                .field_u64("ops", r.ops)
                .field_u64("total_cycles", r.total_cycles)
                .field_u64("ep_idle_cycles", r.ep_idle_cycles)
                .field_u64("stall_cycles", r.stall_cycles)
                .field_u64("overlap_cycles", r.overlap_cycles)
                .field_f64("lpt_hit_rate", r.lpt_hit_rate)
                .field_u64("refops", r.refops);
            match r.wall_us {
                Some(us) => o.field_u64("wall_us", us),
                None => o.field_raw("wall_us", "null"),
            };
            o.finish()
        })
        .collect();
    let mut root = JsonObject::new();
    root.field_str("schema", SCHEMA);
    root.field_u64("grid_points", results.len() as u64);
    root.field_raw("cells", &format!("[{}]", cells.join(",")));
    root.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_without_wall_times() {
        // The acceptance bar: two consecutive runs must serialize
        // byte-identically. Keep the grid small here — one point
        // suffices to pin the property.
        let p = GRID[0];
        let a = to_json(&[measure(&p, false)]);
        let b = to_json(&[measure(&p, false)]);
        assert_eq!(a, b);
        assert!(a.starts_with(&format!("{{\"schema\":\"{SCHEMA}\"")));
        assert!(a.contains("\"wall_us\":null"));
    }

    #[test]
    fn wall_opt_in_fills_the_field() {
        let p = GridPoint {
            workload: "slang-2k-t512",
            primitives: 300,
            table_size: 512,
        };
        let r = measure(&p, true);
        assert!(r.wall_us.is_some());
        let json = to_json(&[r]);
        assert!(!json.contains("\"wall_us\":null"));
    }

    #[test]
    fn grid_labels_are_unique_and_stable() {
        let mut names: Vec<&str> = GRID.iter().map(|p| p.workload).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), GRID.len(), "duplicate workload labels");
    }
}
