//! Regenerate the thesis's tables and figures.
//!
//! ```text
//! repro all            # everything, written to results/ and stdout
//! repro list           # the experiment inventory
//! repro fig3.4 …       # specific experiments to stdout
//! repro --quick all    # reduced synthetic-trace sizes (CI-fast)
//! ```

use small_bench::experiments;
use small_bench::Suite;
use std::io::Write;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    if args.is_empty() || args[0] == "help" {
        eprintln!("usage: repro [--quick] (all | list | <experiment-id>...)");
        eprintln!("experiments: {}", experiments::ALL.join(" "));
        std::process::exit(2);
    }
    if args[0] == "list" {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }
    if args[0] == "traces" {
        // Dump the workload traces as trace files (the §3.3.1 artifact)
        // and verify they reload identically.
        let _ = std::fs::create_dir_all("results/traces");
        for t in small_workloads::standard_suite(1) {
            let path = std::path::PathBuf::from(format!("results/traces/{}.trace", t.name));
            small_trace::io::save_file(&t, &path).expect("write trace");
            let back = small_trace::io::load_file(&path).expect("reload trace");
            assert_eq!(t, back, "trace file round-trip");
            println!(
                "{}: {} events -> {}",
                t.name,
                t.events.len(),
                path.display()
            );
        }
        return;
    }

    eprintln!("generating workload traces…");
    let suite = if quick {
        Suite::generate_quick()
    } else {
        Suite::generate()
    };

    let ids: Vec<&str> = if args[0] == "all" {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let write_results = args[0] == "all";
    if write_results {
        let _ = std::fs::create_dir_all("results");
    }
    for id in ids {
        match experiments::run(id, &suite) {
            Some(text) => {
                println!("================================================================");
                println!("{text}");
                if write_results {
                    let path = format!("results/{}.txt", id.replace('.', "_"));
                    if let Ok(mut f) = std::fs::File::create(&path) {
                        let _ = f.write_all(text.as_bytes());
                    }
                }
            }
            None => {
                eprintln!("unknown experiment: {id}");
                std::process::exit(2);
            }
        }
    }
}
