//! The perf-trajectory runner: executes the pinned workload grid and
//! writes `BENCH_small.json` at the repository root.
//!
//! ```text
//! cargo run -p small-bench --bin regress --release            # deterministic payload
//! cargo run -p small-bench --bin regress --release -- --wall  # + wall-time medians
//! cargo run -p small-bench --bin regress --release -- --out path.json
//! cargo run -p small-bench --bin regress --release -- --check # verify committed file
//! ```
//!
//! Without `--wall` the payload contains only virtual-cycle totals,
//! event counts, and latency quantiles and is byte-identical across
//! consecutive runs. `--check` regenerates that deterministic payload
//! and byte-compares it against the committed file with wall-time
//! medians normalized to `null` (the CI trajectory gate: committed
//! wall data is machine-local, everything else must reproduce exactly).

use small_bench::regress;

fn main() {
    let mut wall = false;
    let mut check = false;
    let mut out = String::from("BENCH_small.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--wall" => wall = true,
            "--check" => check = true,
            "--out" => match args.next() {
                Some(p) => out = p,
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: regress [--wall] [--check] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    if check && wall {
        eprintln!("--check regenerates the deterministic payload; drop --wall");
        std::process::exit(2);
    }

    let results = regress::run(wall);
    for r in &results {
        println!(
            "{:<14} ops {:>6}  cycles {:>8}  stalls {:>6}  overlap {:>6}  hit {:>5.1}%{}",
            r.point.workload,
            r.ops,
            r.total_cycles,
            r.stall_cycles,
            r.overlap_cycles,
            r.lpt_hit_rate * 100.0,
            r.wall_us
                .map(|us| format!("  wall {us}us"))
                .unwrap_or_default(),
        );
    }
    let soak = regress::run_soak_cells(wall);
    for r in &soak {
        println!(
            "soak seed {:<3} {}x{}  reqs {:>5}  evals {:>5}  eval p50 {:>5} p99 {:>5} cycles{}",
            r.cell.seed,
            r.cell.clients,
            r.cell.requests,
            r.requests_total,
            r.evals,
            r.eval_p50_cycles,
            r.eval_p99_cycles,
            r.wall_us
                .map(|us| format!("  wall {us}us"))
                .unwrap_or_default(),
        );
    }
    let json = regress::to_json(&results, &soak);

    if check {
        let committed = match std::fs::read_to_string(&out) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("could not read {out}: {e}");
                std::process::exit(1);
            }
        };
        if regress::normalize_wall(committed.trim_end()) == json {
            println!("{out} matches the regenerated trajectory (wall medians ignored)");
        } else {
            eprintln!("{out} diverges from the regenerated trajectory");
            eprintln!(
                "regenerate with: cargo run -p small-bench --bin regress --release -- --wall"
            );
            std::process::exit(1);
        }
        return;
    }

    match std::fs::write(&out, &json) {
        Ok(()) => println!(
            "wrote {out} ({} bytes, schema {})",
            json.len(),
            regress::SCHEMA
        ),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }
}
