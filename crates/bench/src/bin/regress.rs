//! The perf-trajectory runner: executes the pinned workload grid and
//! writes `BENCH_small.json` at the repository root.
//!
//! ```text
//! cargo run -p small-bench --bin regress --release            # deterministic payload
//! cargo run -p small-bench --bin regress --release -- --wall  # + wall-time medians
//! cargo run -p small-bench --bin regress --release -- --out path.json
//! ```
//!
//! Without `--wall` the payload contains only virtual-cycle totals and
//! event counts and is byte-identical across consecutive runs (the CI
//! determinism gate depends on this).

use small_bench::regress;

fn main() {
    let mut wall = false;
    let mut out = String::from("BENCH_small.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--wall" => wall = true,
            "--out" => match args.next() {
                Some(p) => out = p,
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: regress [--wall] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let results = regress::run(wall);
    for r in &results {
        println!(
            "{:<14} ops {:>6}  cycles {:>8}  stalls {:>6}  overlap {:>6}  hit {:>5.1}%{}",
            r.point.workload,
            r.ops,
            r.total_cycles,
            r.stall_cycles,
            r.overlap_cycles,
            r.lpt_hit_rate * 100.0,
            r.wall_us
                .map(|us| format!("  wall {us}us"))
                .unwrap_or_default(),
        );
    }
    let json = regress::to_json(&results);
    match std::fs::write(&out, &json) {
        Ok(()) => println!(
            "wrote {out} ({} bytes, schema {})",
            json.len(),
            regress::SCHEMA
        ),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }
}
