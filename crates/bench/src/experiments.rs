//! One function per thesis table/figure (see DESIGN.md for the index).
//!
//! Each returns the regenerated rows/series as text; the `repro` binary
//! prints them or writes them under `results/`. We reproduce *shape*,
//! not absolute 1986 numbers — see EXPERIMENTS.md for the side-by-side
//! reading.

use crate::suite::{table, Suite};
use small_analysis::list_sets::{partition, SeparationConstraint};
use small_analysis::lru::StackDistances;
use small_analysis::np::np_summary;
use small_analysis::ChainStats;
use small_core::machine::{traverse_preorder, SmallBackend};
use small_core::timing::{TimedOp, TimingModel};
use small_core::LpConfig;
use small_simulator::driver::{run_sim, CacheConfig};
use small_simulator::sweep;
use small_simulator::SimParams;
use small_trace::{Prim, TraceStats};
use std::fmt::Write as _;

/// All experiment ids, in thesis order.
pub const ALL: &[&str] = &[
    "fig3.1",
    "table3.1",
    "fig3.2",
    "fig3.3",
    "fig3.4",
    "fig3.5",
    "fig3.6",
    "fig3.7",
    "table3.2",
    "fig3.8",
    "fig3.9",
    "fig3.10",
    "fig3.11",
    "fig3.12",
    "fig3.13",
    "compile",
    "timing",
    "table5.1",
    "fig5.1",
    "fig5.2",
    "fig5.3",
    "table5.2",
    "table5.3",
    "table5.4",
    "fig5.4",
    "fig5.5",
    "table5.5",
    "fig5.6",
    "traversal",
];

/// Run one experiment by id.
pub fn run(id: &str, suite: &Suite) -> Option<String> {
    Some(match id {
        "fig3.1" => fig3_1(suite),
        "table3.1" => table3_1(suite),
        "fig3.2" => fig3_2(),
        "fig5.6" => fig5_6(),
        "fig3.3" => fig3_3(suite),
        "fig3.4" => fig3_4(suite),
        "fig3.5" => fig3_5(suite),
        "fig3.6" => fig3_6(suite),
        "fig3.7" => fig3_7(suite),
        "table3.2" => table3_2(suite),
        "fig3.8" => fig3_8_to_10(suite, Axis::Coverage),
        "fig3.9" => fig3_8_to_10(suite, Axis::SetLifetime),
        "fig3.10" => fig3_8_to_10(suite, Axis::RefLifetime),
        "fig3.11" => fig3_11_to_13(suite, Axis::Coverage),
        "fig3.12" => fig3_11_to_13(suite, Axis::SetLifetime),
        "fig3.13" => fig3_11_to_13(suite, Axis::RefLifetime),
        "compile" => compile_figures(),
        "timing" => timing_figures(),
        "table5.1" => table5_1(suite),
        "fig5.1" => fig5_1(suite),
        "fig5.2" => fig5_2(suite),
        "fig5.3" => fig5_3(suite),
        "table5.2" => table5_2(suite),
        "table5.3" => table5_3(suite),
        "table5.4" => table5_4(suite),
        "fig5.4" => fig5_4(suite),
        "fig5.5" => fig5_5(suite),
        "table5.5" => table5_5(suite),
        "traversal" => traversal_531(),
        _ => return None,
    })
}

fn pct(x: f64) -> String {
    format!("{x:.2}")
}

// ---------------------------------------------------------------------
// Chapter 3
// ---------------------------------------------------------------------

/// Figure 3.1: execution frequencies of primitive Lisp functions.
pub fn fig3_1(suite: &Suite) -> String {
    let mut rows = Vec::new();
    for t in &suite.organic {
        let s = TraceStats::of(t);
        rows.push(vec![
            t.name.clone(),
            pct(s.prim_percent(Prim::Car)),
            pct(s.prim_percent(Prim::Cdr)),
            pct(s.prim_percent(Prim::Cons)),
            pct(s.prim_percent(Prim::Rplaca) + s.prim_percent(Prim::Rplacd)),
            pct(s.prim_percent(Prim::Read)),
        ]);
    }
    format!(
        "Figure 3.1 — primitive mix (% of traced primitives)\n{}",
        table(
            &["trace", "car%", "cdr%", "cons%", "rplac%", "read%"],
            &rows
        )
    )
}

/// Table 3.1: average values of n and p.
pub fn table3_1(suite: &Suite) -> String {
    let mut rows = Vec::new();
    for t in &suite.organic {
        let s = np_summary(t);
        rows.push(vec![
            t.name.clone(),
            format!("{:.2}", s.mean_n),
            format!("{:.2}", s.mean_p),
            s.lists.to_string(),
        ]);
    }
    format!(
        "Table 3.1 — average n and p over distinct lists\n{}",
        table(&["trace", "n", "p", "lists"], &rows)
    )
}

/// Figure 3.2: significance of n and p — space cost of the two worked
/// example lists under each representation family.
pub fn fig3_2() -> String {
    let mut i = small_sexpr::Interner::new();
    let mut out =
        String::from("Figure 3.2 — significance of n and p: space cost per representation\n");
    for src in ["(A B C (D E) F G)", "(A (B (C (D E F) G)))"] {
        let e = small_sexpr::parse(src, &mut i).unwrap();
        let m = small_sexpr::metrics::np(&e);
        // Two-pointer cells actually allocated:
        let mut tp = small_heap::TwoPointerHeap::with_capacity(256);
        tp.intern(&e).unwrap();
        // cdr-coded cells:
        let mut cc = small_heap::cdr_coded::CdrCodedHeap::with_capacity(256);
        cc.intern(&e).unwrap();
        // structure-coded tuples:
        let mut sc = small_heap::structure_coded::StructureCodedHeap::new();
        sc.intern(&e);
        let _ = writeln!(
            out,
            "  {src:<24} n={} p={}  two-pointer cells={} (n+p={})  cdr-coded cells={}  CDAR tuples={}",
            m.n,
            m.p,
            tp.live(),
            m.two_pointer_cells(),
            cc.used(),
            m.n + m.p + 1, // atoms + nil leaves stored as tuples
        );
    }
    out.push_str("  (CDAR codes for the first list: ");
    for (k, code) in [("A", 2u64), ("B", 6), ("C", 14)] {
        let _ = write!(
            out,
            "{k}={} ",
            small_heap::structure_coded::cdar_code(code, 6)
        );
    }
    out.push_str(
        "… — see crates/heap/src/structure_coded.rs tests for the full Figure 2.10 check)\n",
    );
    out
}

/// Figure 5.6: the binary-tree representation of (((A B) C D) E F G)
/// and its traversal super-sequence.
pub fn fig5_6() -> String {
    let mut i = small_sexpr::Interner::new();
    let e = small_sexpr::parse("(((A B) C D) E F G)", &mut i).unwrap();
    let (internal, leaves) = small_sexpr::tree::node_counts(&e);
    let sup = small_sexpr::tree::super_sequence(&e);
    let mut out = format!(
        "Figure 5.6 — tree representation of (((A B) C D) E F G): {internal} internal nodes, {leaves} leaves\n  traversal super-sequence ({} touches): ",
        sup.len()
    );
    for node in &sup {
        match node {
            small_sexpr::tree::TreeNode::Internal(n) => {
                let _ = write!(out, "{n} ");
            }
            small_sexpr::tree::TreeNode::Leaf(_, small_sexpr::Atom::Sym(sym)) => {
                let _ = write!(out, "{} ", i.name(*sym));
            }
            small_sexpr::tree::TreeNode::Leaf(_, small_sexpr::Atom::Int(v)) => {
                let _ = write!(out, "{v} ");
            }
            small_sexpr::tree::TreeNode::NilLeaf(_) => out.push_str("nil "),
        }
    }
    out.push('\n');
    out.push_str("  each internal node is touched exactly 3 times — the basis of the 75% hit floor (§5.3.1)\n");
    out
}

/// Figures 3.3a/b: distributions of n and p over lists.
pub fn fig3_3(suite: &Suite) -> String {
    let mut out = String::from("Figure 3.3 — cumulative distributions of n (a) and p (b)\n");
    for t in &suite.organic {
        let s = np_summary(t);
        let _ = writeln!(out, "[{}]", t.name);
        for q in [0.25, 0.5, 0.75, 0.9, 0.99] {
            let _ = writeln!(
                out,
                "  q{:02}: n <= {:>5}   p <= {:>4}",
                (q * 100.0) as u32,
                s.n_cdf.quantile(q),
                s.p_cdf.quantile(q)
            );
        }
    }
    out
}

/// Figure 3.4: distribution of list references over list sets.
pub fn fig3_4(suite: &Suite) -> String {
    let mut out = String::from(
        "Figure 3.4 — cumulative % of list references vs number of list sets (10% separation)\n",
    );
    for t in &suite.organic {
        let p = partition(t, SeparationConstraint::Fraction(0.10));
        let curve = p.coverage_curve();
        let _ = writeln!(
            out,
            "[{}] {} sets, {} refs; sets to cover 50/80/95%: {} / {} / {}",
            t.name,
            p.sets.len(),
            p.total_refs,
            p.sets_to_cover(0.50),
            p.sets_to_cover(0.80),
            p.sets_to_cover(0.95),
        );
        for k in [1usize, 2, 5, 10, 20, 50, 100] {
            if let Some((_, f)) = curve.get(k.saturating_sub(1)) {
                let _ = writeln!(out, "  {k:>4} sets -> {:.1}%", f * 100.0);
            }
        }
    }
    out
}

/// Figure 3.5: distribution of list-set lifetimes over list sets.
pub fn fig3_5(suite: &Suite) -> String {
    let mut out = String::from(
        "Figure 3.5 — cumulative % of list sets with lifetime <= x (fraction of trace)\n",
    );
    for t in &suite.organic {
        let p = partition(t, SeparationConstraint::Fraction(0.10));
        let cdf = small_analysis::hist::Cdf::from_samples(p.lifetimes());
        let _ = write!(out, "[{}]", t.name);
        for x in [0.1, 0.3, 0.6, 0.9] {
            let _ = write!(out, "  <={x:.1}: {:.1}%", cdf.at(x) * 100.0);
        }
        out.push('\n');
    }
    out
}

/// Figure 3.6: distribution of list-set lifetimes over references.
pub fn fig3_6(suite: &Suite) -> String {
    let mut out =
        String::from("Figure 3.6 — cumulative % of references in sets with lifetime <= x\n");
    for t in &suite.organic {
        let p = partition(t, SeparationConstraint::Fraction(0.10));
        let cdf = small_analysis::hist::Cdf::from_weighted(p.lifetimes_weighted());
        let _ = write!(out, "[{}]", t.name);
        for x in [0.1, 0.3, 0.6, 0.9] {
            let _ = write!(out, "  <={x:.1}: {:.1}%", cdf.at(x) * 100.0);
        }
        out.push('\n');
    }
    out
}

/// Figure 3.7: LRU stack distances over list sets.
pub fn fig3_7(suite: &Suite) -> String {
    let mut out =
        String::from("Figure 3.7 — % of references within LRU stack depth d over list sets\n");
    for t in &suite.organic {
        let p = partition(t, SeparationConstraint::Fraction(0.10));
        let d = StackDistances::of(p.ref_set_ids.iter().copied());
        let _ = write!(out, "[{}]", t.name);
        for depth in [1usize, 2, 4, 8, 16] {
            let _ = write!(out, "  d{depth}: {:.1}%", d.hit_rate(depth) * 100.0);
        }
        out.push('\n');
    }
    out
}

/// Table 3.2: percentage of CxR calls inside a function chain.
pub fn table3_2(suite: &Suite) -> String {
    let mut rows = Vec::new();
    for t in &suite.organic {
        let c = ChainStats::of(t);
        rows.push(vec![
            t.name.clone(),
            pct(c.car_pct()),
            pct(c.cdr_pct()),
            pct(c.all_pct()),
        ]);
    }
    format!(
        "Table 3.2 — % of CAR/CDR calls inside a primitive chain\n{}",
        table(&["trace", "CAR%", "CDR%", "all%"], &rows)
    )
}

enum Axis {
    Coverage,
    SetLifetime,
    RefLifetime,
}

/// Figures 3.8–3.10: varying the separation constraint on SLANG.
fn fig3_8_to_10(suite: &Suite, axis: Axis) -> String {
    let t = suite.organic_by_name("slang");
    let title = match axis {
        Axis::Coverage => "Figure 3.8 — list distribution vs separation constraint (SLANG)",
        Axis::SetLifetime => "Figure 3.9 — list-set lifetimes vs separation constraint (SLANG)",
        Axis::RefLifetime => "Figure 3.10 — reference lifetimes vs separation constraint (SLANG)",
    };
    let mut out = format!("{title}\n");
    for frac in [0.05, 0.10, 0.25, 0.50, 1.00] {
        let p = partition(t, SeparationConstraint::Fraction(frac));
        let _ = write!(out, "sep {:>3.0}%: {:>5} sets", frac * 100.0, p.sets.len());
        match axis {
            Axis::Coverage => {
                let _ = write!(out, "; sets to 80% of refs: {:>4}", p.sets_to_cover(0.80));
            }
            Axis::SetLifetime => {
                let cdf = small_analysis::hist::Cdf::from_samples(p.lifetimes());
                let _ = write!(
                    out,
                    "; sets with lifetime<=10%: {:.1}%",
                    cdf.at(0.1) * 100.0
                );
            }
            Axis::RefLifetime => {
                let cdf = small_analysis::hist::Cdf::from_weighted(p.lifetimes_weighted());
                let _ = write!(out, "; refs in sets<=10%: {:.1}%", cdf.at(0.1) * 100.0);
            }
        }
        out.push('\n');
    }
    out
}

/// Figures 3.11–3.13: one absolute separation constant across traces
/// (10% of the shortest trace).
fn fig3_11_to_13(suite: &Suite, axis: Axis) -> String {
    let names = ["plagen", "slang", "lyra", "editor"];
    let shortest = names
        .iter()
        .map(|n| suite.organic_by_name(n).primitive_count())
        .min()
        .expect("traces");
    let window = (shortest as f64 * 0.10).ceil() as usize;
    let title = match axis {
        Axis::Coverage => "Figure 3.11 — list distribution, fixed separation constant",
        Axis::SetLifetime => "Figure 3.12 — list-set lifetimes, fixed separation constant",
        Axis::RefLifetime => "Figure 3.13 — reference lifetimes, fixed separation constant",
    };
    let mut out = format!("{title} (window = {window} events)\n");
    for n in names {
        let t = suite.organic_by_name(n);
        let p = partition(t, SeparationConstraint::Absolute(window));
        let _ = write!(out, "[{n}] {:>5} sets", p.sets.len());
        match axis {
            Axis::Coverage => {
                let _ = write!(
                    out,
                    "; sets to 80%: {:>4}; 100 largest cover {:.1}%",
                    p.sets_to_cover(0.80),
                    {
                        let c = p.coverage_curve();
                        c.get(99).map_or(1.0, |x| x.1) * 100.0
                    }
                );
            }
            Axis::SetLifetime => {
                let cdf = small_analysis::hist::Cdf::from_samples(p.lifetimes());
                let _ = write!(
                    out,
                    "; lifetime<=10%: {:.1}%; <=50%: {:.1}%",
                    cdf.at(0.1) * 100.0,
                    cdf.at(0.5) * 100.0
                );
            }
            Axis::RefLifetime => {
                let cdf = small_analysis::hist::Cdf::from_weighted(p.lifetimes_weighted());
                let _ = write!(
                    out,
                    "; refs in sets<=10%: {:.1}%; <=50%: {:.1}%",
                    cdf.at(0.1) * 100.0,
                    cdf.at(0.5) * 100.0
                );
            }
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Chapter 4
// ---------------------------------------------------------------------

/// Figures 4.14/4.15: compiled stack code.
pub fn compile_figures() -> String {
    let mut i = small_sexpr::Interner::new();
    let fact = small_lisp::compiler::compile_program(
        "(def fact (lambda (x) (cond ((equal x 0) 1) (t (times x (fact (sub x 1)))))))",
        &mut i,
    )
    .expect("fact compiles");
    let lm = small_lisp::compiler::compile_program(
        "(def printit (lambda (junk) (write (cdr junk))))
         (def doit (lambda () (prog (lst)
            (read lst) (printit lst)
            (setq lst (cdr (cdr lst))) (return lst))))
         (doit)",
        &mut i,
    )
    .expect("doit compiles");
    format!(
        "Figure 4.14 — factorial compiled to the SMALL stack ISA\n{}\nFigure 4.15 — list manipulation and function calling\n{}",
        fact.disassemble(&i),
        lm.disassemble(&i)
    )
}

/// Figures 4.10–4.13: EP/LP timing decomposition.
pub fn timing_figures() -> String {
    let m = TimingModel::default();
    let mut rows = Vec::new();
    for (name, op) in [
        ("readlist   (Fig 4.10)", TimedOp::ReadList),
        ("access hit (Fig 4.11)", TimedOp::AccessHit),
        ("access miss(Fig 4.11)", TimedOp::AccessMiss),
        ("modify     (Fig 4.12)", TimedOp::Modify),
        ("cons       (Fig 4.13)", TimedOp::Cons),
    ] {
        let t = m.op(op);
        rows.push(vec![
            name.to_string(),
            t.ep_pre.to_string(),
            t.latency.to_string(),
            t.lp_tail.to_string(),
            format!("{:.0}%", t.overlap_fraction() * 100.0),
        ]);
    }
    let stream = m.run_stream(std::iter::repeat_n(TimedOp::Cons, 1000), 4);
    format!(
        "Figures 4.10-4.13 — EP/LP timing (abstract cycles)\n{}\n1000 back-to-back conses with 4-cycle EP gaps: EP utilization {:.0}%\n",
        table(&["operation", "EP pre", "latency", "LP tail", "overlap"], &rows),
        stream.ep_utilization() * 100.0
    )
}

// ---------------------------------------------------------------------
// Chapter 5
// ---------------------------------------------------------------------

/// Table 5.1: content of the traces.
pub fn table5_1(suite: &Suite) -> String {
    let mut rows = Vec::new();
    for name in ["lyra", "plagen", "slang", "editor"] {
        let t = suite.organic_by_name(name);
        let s = TraceStats::of(t);
        rows.push(vec![
            format!("{} (organic)", t.name),
            s.functions.to_string(),
            s.primitives.to_string(),
            s.max_depth.to_string(),
        ]);
    }
    for t in &suite.synthetic {
        let s = TraceStats::of(t);
        rows.push(vec![
            format!("{} (synthetic)", t.name),
            s.functions.to_string(),
            s.primitives.to_string(),
            s.max_depth.to_string(),
        ]);
    }
    format!(
        "Table 5.1 — content of the traces\n{}",
        table(&["trace", "functions", "primitives", "max depth"], &rows)
    )
}

/// Figure 5.1: peak LPT usage vs table size.
pub fn fig5_1(suite: &Suite) -> String {
    let mut out = String::from("Figure 5.1 — peak LPT usage vs table size (Compress-One)\n");
    for t in suite.chapter5() {
        let k = sweep::knee(t, SimParams::default());
        let sizes = [
            (k / 4).max(4),
            (k / 2).max(4),
            (k * 3 / 4).max(4),
            k,
            k + k / 4 + 1,
            k * 2,
        ];
        let curve = sweep::peak_curve(t, SimParams::default(), &sizes);
        let _ = writeln!(out, "[{}] knee = {k} entries", t.name);
        for p in curve {
            let _ = writeln!(
                out,
                "  size {:>5} -> peak {:>5}{}{}",
                p.table_size,
                p.peak,
                if p.pseudo { "  (pseudo overflow)" } else { "" },
                if p.true_overflow {
                    "  (TRUE overflow)"
                } else {
                    ""
                },
            );
        }
    }
    out
}

/// Figure 5.2: knee spread over seeds.
pub fn fig5_2(suite: &Suite) -> String {
    let mut rows = Vec::new();
    for t in suite.chapter5() {
        let (lo, hi) = sweep::knee_spread(t, SimParams::default(), 10);
        rows.push(vec![t.name.clone(), lo.to_string(), hi.to_string()]);
    }
    format!(
        "Figure 5.2 — max LPT occupancy spread over 10 seeds\n{}",
        table(&["trace", "min knee", "max knee"], &rows)
    )
}

/// Figure 5.3: average occupancy, Compress-One vs Compress-All.
pub fn fig5_3(suite: &Suite) -> String {
    let mut out =
        String::from("Figure 5.3 — average LPT occupancy: Compress-One vs Compress-All\n");
    for name in ["slang", "editor"] {
        let t = suite.synthetic_by_name(name);
        let k = sweep::knee(t, SimParams::default());
        let _ = writeln!(out, "[{name}] knee = {k}");
        for frac in [2usize, 3, 4] {
            let size = (k * frac / 4).max(8);
            let (one, all) = sweep::compression_comparison(t, SimParams::default(), size);
            let _ = writeln!(
                out,
                "  size {size:>5}: Compress-One avg {one:>8.1}   Compress-All avg {all:>8.1}"
            );
        }
    }
    out
}

/// Table 5.2: LPT activity.
pub fn table5_2(suite: &Suite) -> String {
    let mut rows = Vec::new();
    for t in suite.chapter5() {
        let r = sweep::lpt_activity(t, SimParams::default());
        rows.push(vec![
            t.name.clone(),
            r.refops.to_string(),
            r.gets.to_string(),
            r.frees.to_string(),
            r.rec_refops.to_string(),
        ]);
    }
    format!(
        "Table 5.2 — LPT activity (lazy vs recursive child decrement)\n{}",
        table(&["trace", "Refops", "Gets", "Frees", "RecRefops"], &rows)
    )
}

/// Table 5.3: split reference counts.
pub fn table5_3(suite: &Suite) -> String {
    let mut rows = Vec::new();
    for t in suite.chapter5() {
        let r = sweep::split_counts(t, SimParams::default());
        rows.push(vec![
            t.name.clone(),
            r.refops_then.to_string(),
            r.refops_now.to_string(),
            r.max_then.to_string(),
            r.max_now_lpt.to_string(),
            r.max_now_ep.to_string(),
        ]);
    }
    format!(
        "Table 5.3 — split reference counts: LPT bus refops Then (unified) vs Now (split)\n{}",
        table(
            &[
                "trace",
                "RefopsThen",
                "RefopsNow",
                "MaxThen",
                "MaxNowLPT",
                "MaxNowEP"
            ],
            &rows
        )
    )
}

/// Table 5.4: LPT vs data cache at three sizes per trace.
pub fn table5_4(suite: &Suite) -> String {
    let mut rows = Vec::new();
    for t in suite.chapter5() {
        let k = sweep::knee(t, SimParams::default());
        for frac in [3usize, 4, 5] {
            let size = (k * frac / 4).max(8);
            let r = sweep::cache_compare(t, SimParams::default(), size);
            rows.push(vec![
                t.name.clone(),
                size.to_string(),
                r.access_misses.to_string(),
                format!("{:.2}", r.lpt_hit_rate() * 100.0),
                r.cache_misses.to_string(),
                format!("{:.2}", r.cache_hit_rate() * 100.0),
            ]);
        }
    }
    format!(
        "Table 5.4 — LPT vs LRU data cache (equal entries, unit lines)\n{}",
        table(
            &[
                "trace",
                "size",
                "LPTMisses",
                "LPT hit%",
                "CacheMisses",
                "cache hit%"
            ],
            &rows
        )
    )
}

/// Figure 5.4: hit rates for LPT and cache vs size (SLANG).
pub fn fig5_4(suite: &Suite) -> String {
    let t = suite.synthetic_by_name("slang");
    let k = sweep::knee(t, SimParams::default());
    let mut out = format!("Figure 5.4 — hit rates vs size, SLANG (knee = {k})\n");
    for frac in [1usize, 2, 3, 4, 6, 8] {
        let size = (k * frac / 4).max(8);
        let r = sweep::cache_compare(t, SimParams::default(), size);
        let _ = writeln!(
            out,
            "  size {size:>5}: LPT {:.2}%   cache {:.2}%",
            r.lpt_hit_rate() * 100.0,
            r.cache_hit_rate() * 100.0
        );
    }
    out
}

/// Figure 5.5: cache-miss/LPT-miss ratio vs line size.
pub fn fig5_5(suite: &Suite) -> String {
    let mut out = String::from(
        "Figure 5.5 — cache misses / LPT misses vs line size (cache has 2x entries)\n",
    );
    for name in ["lyra", "slang", "editor"] {
        let t = suite.synthetic_by_name(name);
        let k = sweep::knee(t, SimParams::default());
        for frac in [3usize, 4] {
            let size = (k * frac / 4).max(8);
            let _ = write!(out, "[{name} size {size:>5}]");
            for line in [1usize, 2, 4, 8, 16] {
                let ratio = sweep::line_size_ratio(t, SimParams::default(), size, line);
                let _ = write!(out, "  L{line}: {ratio:.2}");
            }
            out.push('\n');
        }
    }
    out
}

/// Table 5.5: sensitivity to the probability parameters (SLANG).
pub fn table5_5(suite: &Suite) -> String {
    let t = suite.synthetic_by_name("slang");
    let k = sweep::knee(t, SimParams::default());
    let size = (k * 3 / 4).max(16);
    let mut rows = Vec::new();
    for (name, params) in [
        ("Control", SimParams::control()),
        ("HiArg", SimParams::hi_arg()),
        ("HiLoc", SimParams::hi_loc()),
        ("HiRead", SimParams::hi_read()),
        ("HiBind", SimParams::hi_bind()),
    ] {
        let r = run_sim(
            t,
            params.with_table(size),
            Some(CacheConfig {
                lines: size,
                line_cells: 1,
            }),
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", r.lpt.avg_occupancy()),
            r.lpt.max_occupancy.to_string(),
            r.access_hits.to_string(),
            r.cache_hits.to_string(),
            r.lpt.max_refcount.to_string(),
            r.lpt.refops.to_string(),
        ]);
    }
    format!(
        "Table 5.5 — sensitivity to probability parameters (SLANG, size {size})\n{}",
        table(
            &[
                "run",
                "AvgLPT",
                "MaxLPT",
                "LPTHits",
                "CacheHits",
                "MaxRefcnt",
                "Refops"
            ],
            &rows
        )
    )
}

/// §5.3.1: ordered traversal guarantees.
pub fn traversal_531() -> String {
    let mut i = small_sexpr::Interner::new();
    let mut out =
        String::from("§5.3.1 — ordered traversal: splits = n+p, guaranteed hit rate >= 75%\n");
    for src in [
        "(((A B) C D) E F G)",
        "(A B C (D E) F G)",
        "(A (B (C (D E F) G)))",
    ] {
        let e = small_sexpr::parse(src, &mut i).unwrap();
        let m = small_sexpr::metrics::np(&e);
        let backend = SmallBackend::new(4096, LpConfig::default());
        let mut lp = backend.lp;
        let v = lp.readlist(None, &e).unwrap();
        let c = traverse_preorder(&mut lp, v).unwrap();
        let _ = writeln!(
            out,
            "  {src:<24} n={} p={}  touches={} splits={} hit rate {:.1}%",
            m.n,
            m.p,
            c.touches,
            c.misses,
            c.hit_rate() * 100.0
        );
    }
    out
}

/// Apply a quick sanity pass over every experiment (used by tests).
pub fn smoke(suite: &Suite) -> Vec<(String, usize)> {
    ALL.iter()
        .map(|id| {
            let text = run(id, suite).expect("known id");
            (id.to_string(), text.len())
        })
        .collect()
}
