//! Every repro experiment must produce non-trivial output on the quick
//! suite (reduced synthetic traces; same organic workloads).

use small_bench::{experiments, Suite};

#[test]
fn every_experiment_produces_output() {
    let suite = Suite::generate_quick();
    for (id, len) in experiments::smoke(&suite) {
        assert!(len > 40, "experiment {id} produced only {len} bytes");
    }
}
