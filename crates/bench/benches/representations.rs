//! Representation ablation (§2.3.3): traversal and construction cost of
//! two-pointer cells vs cdr-coding vs linked vectors vs structure-coded
//! exception tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use small_heap::cdr_coded::CdrCodedHeap;
use small_heap::linked_vector::LinkedVectorHeap;
use small_heap::structure_coded::StructureCodedHeap;
use small_heap::{TwoPointerHeap, Word};
use small_sexpr::{parse, Interner, SExpr};
use std::hint::black_box;

fn sample_list(len: usize, i: &mut Interner) -> SExpr {
    let body = (0..len)
        .map(|k| {
            if k % 7 == 3 {
                format!("(s{k} t{k})")
            } else {
                format!("a{k}")
            }
        })
        .collect::<Vec<_>>()
        .join(" ");
    parse(&format!("({body})"), i).unwrap()
}

fn walk_two_pointer(h: &TwoPointerHeap, mut w: Word) -> usize {
    let mut n = 0;
    while w.is_ptr() {
        let a = w.addr();
        black_box(h.car(a));
        w = h.cdr(a);
        n += 1;
    }
    n
}

fn bench_traverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("traverse");
    for len in [64usize, 512] {
        let mut i = Interner::new();
        let e = sample_list(len, &mut i);

        let mut tp = TwoPointerHeap::with_capacity(len * 8);
        let wtp = tp.intern(&e).unwrap();
        group.bench_with_input(BenchmarkId::new("two_pointer", len), &len, |b, _| {
            b.iter(|| walk_two_pointer(&tp, wtp))
        });

        let mut cc = CdrCodedHeap::with_capacity(len * 8);
        let wcc = cc.intern(&e).unwrap();
        group.bench_with_input(BenchmarkId::new("cdr_coded", len), &len, |b, _| {
            b.iter(|| {
                let mut w = wcc;
                let mut n = 0;
                while w.is_ptr() {
                    let a = w.addr();
                    black_box(cc.car(a).unwrap());
                    w = cc.cdr(a).unwrap();
                    n += 1;
                }
                n
            })
        });

        let mut lv = LinkedVectorHeap::with_capacity(len * 8);
        let wlv = lv.intern(&e).unwrap();
        group.bench_with_input(BenchmarkId::new("linked_vector", len), &len, |b, _| {
            b.iter(|| {
                let mut w = wlv;
                let mut n = 0;
                while w.is_ptr() {
                    let a = w.addr();
                    black_box(lv.car(a).unwrap());
                    w = lv.cdr(a).unwrap();
                    n += 1;
                }
                n
            })
        });

        group.bench_with_input(BenchmarkId::new("structure_coded", len), &len, |b, _| {
            b.iter(|| {
                let mut sc = StructureCodedHeap::new();
                let w = sc.intern(&e);
                black_box(sc.extract(w))
            })
        });
    }
    group.finish();
}

fn bench_intern(c: &mut Criterion) {
    let mut group = c.benchmark_group("intern");
    let mut i = Interner::new();
    let e = sample_list(256, &mut i);
    group.bench_function("two_pointer", |b| {
        b.iter(|| {
            let mut h = TwoPointerHeap::with_capacity(4096);
            black_box(h.intern(&e).unwrap())
        })
    });
    group.bench_function("cdr_coded", |b| {
        b.iter(|| {
            let mut h = CdrCodedHeap::with_capacity(4096);
            black_box(h.intern(&e).unwrap())
        })
    });
    group.bench_function("structure_coded", |b| {
        b.iter(|| {
            let mut h = StructureCodedHeap::new();
            black_box(h.intern(&e))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets = bench_traverse, bench_intern
}
criterion_main!(benches);
