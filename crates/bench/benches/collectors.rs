//! Garbage collector ablation (§2.3.4): mark-sweep vs reference
//! counting vs semispace copying on an allocation-churn workload.

use criterion::{criterion_group, criterion_main, Criterion};
use small_heap::gc::{CopyingHeap, MarkSweep, RefCountHeap};
use small_heap::{TwoPointerHeap, Word};
use std::hint::black_box;

const CELLS: usize = 8192;
const CHURN: usize = 6000;

fn bench_collectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_churn");

    group.bench_function("mark_sweep", |b| {
        b.iter(|| {
            let mut h = TwoPointerHeap::with_capacity(CELLS);
            let mut gc = MarkSweep::new();
            let mut root = Word::NIL;
            for k in 0..CHURN {
                let cell = loop {
                    match h.alloc(Word::int(k as i64), root) {
                        Some(a) => break a,
                        None => {
                            gc.collect(&mut h, &[root]);
                        }
                    }
                };
                // Keep a bounded window live: drop the root periodically.
                root = if k % 64 == 0 {
                    Word::NIL
                } else {
                    Word::ptr(cell)
                };
            }
            black_box(h.live())
        })
    });

    group.bench_function("refcount", |b| {
        b.iter(|| {
            let mut h = RefCountHeap::with_capacity(CELLS);
            let mut root = Word::NIL;
            for k in 0..CHURN {
                let cell = h.cons(Word::int(k as i64), root).expect("churn fits");
                if root.is_ptr() {
                    h.release(root); // spine now holds the only older ref
                }
                root = if k % 64 == 0 {
                    h.release(Word::ptr(cell));
                    Word::NIL
                } else {
                    Word::ptr(cell)
                };
            }
            black_box(h.live())
        })
    });

    group.bench_function("copying", |b| {
        b.iter(|| {
            let mut h = CopyingHeap::with_capacity(CELLS);
            let mut root = Word::NIL;
            for k in 0..CHURN {
                let cell = loop {
                    match h.alloc(Word::int(k as i64), root) {
                        Some(a) => break a,
                        None => {
                            let mut roots = [root];
                            h.collect(&mut roots);
                            root = roots[0];
                        }
                    }
                };
                root = if k % 64 == 0 {
                    Word::NIL
                } else {
                    Word::ptr(cell)
                };
            }
            black_box(h.used())
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets = bench_collectors
}
criterion_main!(benches);
