//! The headline comparison: the same compiled Lisp programs on the
//! conventional direct-heap backend vs the SMALL LP/LPT backend, plus
//! raw LP operation costs.

use criterion::{criterion_group, criterion_main, Criterion};
use small_core::machine::SmallBackend;
use small_core::{ListProcessor, LpConfig, LpValue};
use small_heap::controller::TwoPointerController;
use small_heap::{FaultyController, HeapController};
use small_lisp::compiler::compile_program;
use small_lisp::vm::{DirectBackend, Vm};
use small_metrics::{CountingSink, EventSink, NoopSink};
use small_profile::SpanSink;
use small_sexpr::Interner;
use std::hint::black_box;

const APPEND_PROGRAM: &str = "
(def app (lambda (a b)
  (cond ((null a) b)
        (t (cons (car a) (app (cdr a) b))))))
(def build (lambda (n)
  (cond ((equal n 0) nil)
        (t (cons n (build (sub n 1)))))))
(def go* (lambda (n) (app (build n) (build n))))
(go* 60)";

const FACT_PROGRAM: &str = "
(def fact (lambda (x)
  (cond ((equal x 0) 1) (t (times x (fact (sub x 1)))))))
(fact 18)";

fn bench_vm_backends(c: &mut Criterion) {
    for (name, src) in [("append", APPEND_PROGRAM), ("fact", FACT_PROGRAM)] {
        let mut group = c.benchmark_group(format!("vm_{name}"));
        group.bench_function("direct_heap", |b| {
            b.iter(|| {
                let mut i = Interner::new();
                let p = compile_program(src, &mut i).unwrap();
                let mut vm = Vm::new(p, DirectBackend::new(1 << 16));
                black_box(vm.run().unwrap())
            })
        });
        group.bench_function("small_lpt", |b| {
            b.iter(|| {
                let mut i = Interner::new();
                let p = compile_program(src, &mut i).unwrap();
                let mut vm = Vm::new(p, SmallBackend::new(1 << 16, LpConfig::default()));
                black_box(vm.run().unwrap())
            })
        });
        group.finish();
    }
}

fn bench_lp_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_primitive");
    group.bench_function("cons_release", |b| {
        let backend = SmallBackend::new(1 << 16, LpConfig::default());
        let mut lp = backend.lp;
        b.iter(|| {
            let v = lp
                .cons(
                    LpValue::Atom(small_heap::Word::int(1)),
                    LpValue::Atom(small_heap::Word::NIL),
                )
                .unwrap();
            drop(lp.adopt_binding(v));
            black_box(lp.occupancy())
        })
    });
    group.bench_function("car_hit", |b| {
        let mut i = Interner::new();
        let backend = SmallBackend::new(1 << 16, LpConfig::default());
        let mut lp = backend.lp;
        let e = small_sexpr::parse("(a b c d)", &mut i).unwrap();
        let v = lp.readlist(None, &e).unwrap();
        let id = v.obj().unwrap();
        let _ = lp.car(id).unwrap(); // materialize once
        b.iter(|| {
            let c = lp.car(id).unwrap();
            drop(lp.adopt_binding(c));
            black_box(c)
        })
    });
    group.finish();
}

/// Instrumentation overhead: the same cons/car/release loop on an LP
/// with the default [`NoopSink`] (events monomorphize to nothing), a
/// [`CountingSink`], and the profiler's [`SpanSink`] in both states.
/// The Noop case must be indistinguishable from the
/// pre-instrumentation baseline, and `SpanSink::<false>` (disabled)
/// must be within noise of Noop — its `if !ACTIVE` guards are resolved
/// at monomorphization, so the instrumented call sites compile away.
fn bench_metrics_overhead(c: &mut Criterion) {
    fn workload<S: EventSink>(lp: &mut ListProcessor<TwoPointerController, S>) -> usize {
        let mut last = 0;
        for k in 0..64 {
            let v = lp
                .cons(
                    LpValue::Atom(small_heap::Word::int(k)),
                    LpValue::Atom(small_heap::Word::NIL),
                )
                .unwrap();
            let id = v.obj().unwrap();
            let _ = lp.car(id).unwrap();
            drop(lp.adopt_binding(v));
            last = lp.occupancy();
        }
        last
    }

    let mut group = c.benchmark_group("metrics_overhead");
    group.bench_function("noop_sink", |b| {
        let mut lp = ListProcessor::with_sink(
            TwoPointerController::new(1 << 16, 64),
            LpConfig::default(),
            NoopSink,
        );
        b.iter(|| black_box(workload(&mut lp)))
    });
    group.bench_function("counting_sink", |b| {
        let mut lp = ListProcessor::with_sink(
            TwoPointerController::new(1 << 16, 64),
            LpConfig::default(),
            CountingSink::default(),
        );
        b.iter(|| black_box(workload(&mut lp)))
    });
    group.bench_function("span_sink_disabled", |b| {
        let mut lp = ListProcessor::with_sink(
            TwoPointerController::new(1 << 16, 64),
            LpConfig::default(),
            SpanSink::<false>::disabled(),
        );
        b.iter(|| black_box(workload(&mut lp)))
    });
    group.bench_function("span_sink_active", |b| {
        let mut lp = ListProcessor::with_sink(
            TwoPointerController::new(1 << 16, 64),
            LpConfig::default(),
            SpanSink::new("bench").summary_only(),
        );
        b.iter(|| black_box(workload(&mut lp)))
    });
    group.finish();
}

/// Fault-injection overhead guard: an LP over a
/// [`small_heap::FaultyController`] in passthrough (no-fault) state
/// must be within noise of one over the bare controller — the wrapper
/// holds no schedule, every fault check is one branch on an always-None
/// option, and the whole layer monomorphizes down to the inner calls.
fn bench_fault_injection_overhead(c: &mut Criterion) {
    fn workload<C: HeapController>(lp: &mut ListProcessor<C>) -> usize {
        let mut last = 0;
        for k in 0..64 {
            let v = lp
                .cons(
                    LpValue::Atom(small_heap::Word::int(k)),
                    LpValue::Atom(small_heap::Word::NIL),
                )
                .unwrap();
            let id = v.obj().unwrap();
            let _ = lp.car(id).unwrap();
            drop(lp.adopt_binding(v));
            last = lp.occupancy();
        }
        last
    }

    let mut group = c.benchmark_group("fault_injection_overhead");
    group.bench_function("bare_controller", |b| {
        let mut lp =
            ListProcessor::new(TwoPointerController::new(1 << 16, 64), LpConfig::default());
        b.iter(|| black_box(workload(&mut lp)))
    });
    group.bench_function("faulty_controller_disabled", |b| {
        let mut lp = ListProcessor::new(
            FaultyController::passthrough(TwoPointerController::new(1 << 16, 64)),
            LpConfig::default(),
        );
        b.iter(|| black_box(workload(&mut lp)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets = bench_vm_backends, bench_lp_primitives, bench_metrics_overhead,
        bench_fault_injection_overhead
}
criterion_main!(benches);
