//! Environment ablation (§2.3.2): deep vs shallow vs value-cached
//! binding under call-heavy and lookup-heavy mixes.

use criterion::{criterion_group, criterion_main, Criterion};
use small_lisp::env::{DeepEnv, Environment, ShallowEnv, ValueCacheEnv};
use small_lisp::value::Value;
use small_sexpr::{Interner, Symbol};
use std::hint::black_box;

fn workload<E: Environment>(env: &mut E, names: &[Symbol], lookups_per_call: usize) {
    // 100 nested calls, each binding 3 names then doing lookups of a
    // mix of locals and deep names.
    for depth in 0..100 {
        env.push_frame();
        for k in 0..3 {
            env.bind(
                names[(depth * 3 + k) % names.len()],
                Value::Int(depth as i64),
            );
        }
        for k in 0..lookups_per_call {
            black_box(env.lookup(names[(depth + k * 7) % names.len()]));
        }
    }
    for _ in 0..100 {
        env.pop_frame();
    }
}

fn bench_envs(c: &mut Criterion) {
    let mut i = Interner::new();
    let names: Vec<Symbol> = (0..48).map(|k| i.intern(&format!("v{k}"))).collect();
    for (mix, lookups) in [("call_heavy", 2usize), ("lookup_heavy", 24)] {
        let mut group = c.benchmark_group(format!("env_{mix}"));
        group.bench_function("deep", |b| {
            b.iter(|| workload(&mut DeepEnv::new(), &names, lookups))
        });
        group.bench_function("shallow", |b| {
            b.iter(|| workload(&mut ShallowEnv::new(), &names, lookups))
        });
        group.bench_function("value_cache", |b| {
            b.iter(|| workload(&mut ValueCacheEnv::new(16), &names, lookups))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets = bench_envs
}
criterion_main!(benches);
