//! Design-choice ablations from DESIGN.md: compression policies, lazy
//! vs recursive decrement, unified vs split reference counts — each
//! measured as wall time of a fixed simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use small_core::{CompressPolicy, DecrementPolicy, RefcountMode};
use small_core::{FreeDiscipline, ListProcessor, LpConfig, LpValue};
use small_heap::controller::TwoPointerController;
use small_heap::Word;
use small_simulator::driver::run_sim;
use small_simulator::SimParams;
use small_trace::Trace;
use small_workloads::synthetic;
use std::hint::black_box;

fn trace() -> Trace {
    let mut p = synthetic::table_5_1("slang");
    p.primitives = 2304;
    synthetic::generate(&p)
}

fn bench_ablations(c: &mut Criterion) {
    let t = trace();
    // A table size just below the knee so compression actually runs.
    let size = 48;

    let mut group = c.benchmark_group("simulate_slang");
    group.bench_function("compress_one", |b| {
        let p = SimParams {
            compression: CompressPolicy::CompressOne,
            table_size: size,
            ..SimParams::default()
        };
        b.iter(|| black_box(run_sim(&t, p, None)))
    });
    group.bench_function("compress_all", |b| {
        let p = SimParams {
            compression: CompressPolicy::CompressAll,
            table_size: size,
            ..SimParams::default()
        };
        b.iter(|| black_box(run_sim(&t, p, None)))
    });
    group.bench_function("lazy_decrement", |b| {
        let p = SimParams {
            decrement: DecrementPolicy::Lazy,
            ..SimParams::default()
        };
        b.iter(|| black_box(run_sim(&t, p, None)))
    });
    group.bench_function("recursive_decrement", |b| {
        let p = SimParams {
            decrement: DecrementPolicy::Recursive,
            ..SimParams::default()
        };
        b.iter(|| black_box(run_sim(&t, p, None)))
    });
    group.bench_function("unified_counts", |b| {
        let p = SimParams {
            refcounts: RefcountMode::Unified,
            ..SimParams::default()
        };
        b.iter(|| black_box(run_sim(&t, p, None)))
    });
    group.bench_function("split_counts", |b| {
        let p = SimParams {
            refcounts: RefcountMode::Split,
            ..SimParams::default()
        };
        b.iter(|| black_box(run_sim(&t, p, None)))
    });
    group.finish();
}

/// Free-list discipline ablation (§4.3.2.1): churn through a small LPT
/// under stack vs queue reuse; stack reuse keeps the table emptier and
/// drains deferred decrements with better locality.
fn bench_free_discipline(c: &mut Criterion) {
    let mut group = c.benchmark_group("free_discipline");
    for (name, disc) in [
        ("stack", FreeDiscipline::Stack),
        ("queue", FreeDiscipline::Queue),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut lp = ListProcessor::new(
                    TwoPointerController::new(1 << 14, 64),
                    LpConfig {
                        table_size: 128,
                        free_discipline: disc,
                        ..LpConfig::default()
                    },
                );
                for k in 0..2000i64 {
                    let a = lp
                        .cons(LpValue::Atom(Word::int(k)), LpValue::Atom(Word::NIL))
                        .unwrap();
                    let b2 = lp.cons(a, LpValue::Atom(Word::NIL)).unwrap();
                    drop(lp.adopt_binding(a));
                    drop(lp.adopt_binding(b2));
                }
                black_box(lp.stats().gets)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets = bench_ablations, bench_free_discipline
}
criterion_main!(benches);
