//! Reference weighting (§6.x, Figures 6.2–6.3, 6.5).
//!
//! Plain reference counting is awkward in a message-passing
//! multiprocessor: every inter-node copy of a reference needs an
//! *increment* message to the object's owner, and messages in flight
//! race with decrements (Figure 6.2's hazard). Reference **weighting**
//! fixes this: the owner records a total weight; every reference carries
//! a weight; the invariant is
//!
//! > total weight of the object == sum of the weights of all extant
//! > references.
//!
//! Copying a reference *splits its weight in half* — **no message**
//! (Figure 6.5). Dropping a reference sends one decrement(weight)
//! message. Only when a weight-1 reference must be copied does the
//! copier ask the owner for more weight (a rare "replenish" message).
//! The object dies when its total weight reaches zero.

use std::collections::HashMap;

/// Object identifier in a weight table.
pub type ObjId = u64;

/// Messages a weight table receives (counted for the Figure 6.5
/// comparison).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WeightMsgStats {
    /// Decrement messages (reference deaths).
    pub decrements: u64,
    /// Replenish requests (weight-1 copies).
    pub replenishes: u64,
    /// What a naive counting scheme would have sent: one increment per
    /// copy plus one decrement per death.
    pub naive_messages: u64,
}

impl WeightMsgStats {
    /// Total messages actually sent under weighting.
    pub fn total(&self) -> u64 {
        self.decrements + self.replenishes
    }
}

/// The owner-side table: object → total weight.
#[derive(Debug, Default)]
pub struct WeightTable {
    totals: HashMap<ObjId, u64>,
    /// Message accounting.
    pub stats: WeightMsgStats,
    /// Objects whose weight reached zero (reclaimed).
    pub reclaimed: Vec<ObjId>,
}

/// The initial weight granted to a new reference (a power of two so
/// halving stays integral as long as possible).
pub const INITIAL_WEIGHT: u64 = 1 << 16;

impl WeightTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new object, returning its first reference.
    pub fn create(&mut self, obj: ObjId) -> WeightedRef {
        let prev = self.totals.insert(obj, INITIAL_WEIGHT);
        debug_assert!(prev.is_none(), "object {obj} already registered");
        WeightedRef {
            obj,
            weight: INITIAL_WEIGHT,
        }
    }

    /// Current total weight (None once reclaimed / never created).
    pub fn total(&self, obj: ObjId) -> Option<u64> {
        self.totals.get(&obj).copied()
    }

    /// Whether the object is still alive.
    pub fn alive(&self, obj: ObjId) -> bool {
        self.totals.contains_key(&obj)
    }

    /// Process a decrement message.
    pub fn decrement(&mut self, obj: ObjId, weight: u64) {
        self.stats.decrements += 1;
        self.stats.naive_messages += 1;
        let t = self
            .totals
            .get_mut(&obj)
            .unwrap_or_else(|| panic!("decrement of dead object {obj}"));
        debug_assert!(*t >= weight, "weight underflow on {obj}");
        *t -= weight;
        if *t == 0 {
            self.totals.remove(&obj);
            self.reclaimed.push(obj);
        }
    }

    /// Process a replenish request: grant `amount` more weight.
    pub fn replenish(&mut self, obj: ObjId, amount: u64) {
        self.stats.replenishes += 1;
        self.stats.naive_messages += 1;
        let t = self
            .totals
            .get_mut(&obj)
            .unwrap_or_else(|| panic!("replenish of dead object {obj}"));
        *t += amount;
    }
}

/// A weighted reference to an object.
#[derive(Debug, PartialEq, Eq)]
pub struct WeightedRef {
    /// The referenced object.
    pub obj: ObjId,
    /// This reference's weight.
    pub weight: u64,
}

impl WeightedRef {
    /// Copy the reference *without any message*: the weight is split in
    /// half (Figure 6.5). When the weight is 1 it cannot split; the
    /// owner grants more weight first (one replenish message) — the
    /// naive scheme would have sent a message on *every* copy.
    pub fn split(&mut self, table: &mut WeightTable) -> WeightedRef {
        table.stats.naive_messages += 1; // naive: increment per copy
        if self.weight <= 1 {
            table.replenish(self.obj, INITIAL_WEIGHT);
            self.weight += INITIAL_WEIGHT;
        }
        let half = self.weight / 2;
        self.weight -= half;
        WeightedRef {
            obj: self.obj,
            weight: half,
        }
    }

    /// Drop the reference: one decrement message to the owner.
    pub fn release(self, table: &mut WeightTable) {
        table.decrement(self.obj, self.weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_split_release_invariant() {
        let mut t = WeightTable::new();
        let mut a = t.create(7);
        let b = a.split(&mut t);
        let c = a.split(&mut t);
        assert_eq!(
            t.total(7).unwrap(),
            a.weight + b.weight + c.weight,
            "total weight equals the sum over references"
        );
        b.release(&mut t);
        c.release(&mut t);
        assert!(t.alive(7));
        a.release(&mut t);
        assert!(!t.alive(7), "object dies when weight reaches zero");
        assert_eq!(t.reclaimed, vec![7]);
    }

    #[test]
    fn copies_need_no_messages() {
        // Figure 6.5: copying a reference between nodes costs nothing.
        let mut t = WeightTable::new();
        let mut refs = vec![t.create(1)];
        for _ in 0..10 {
            let r = refs.last_mut().unwrap().split(&mut t);
            refs.push(r);
        }
        assert_eq!(t.stats.total(), 0, "10 copies, zero messages");
        assert_eq!(t.stats.naive_messages, 10, "naive counting: 10 messages");
        for r in refs {
            r.release(&mut t);
        }
        assert!(!t.alive(1));
    }

    #[test]
    fn weight_one_copy_replenishes() {
        let mut t = WeightTable::new();
        let mut a = t.create(3);
        // Split down to weight 1 (INITIAL_WEIGHT = 2^16 → 16 splits).
        let mut kids = Vec::new();
        while a.weight > 1 {
            kids.push(a.split(&mut t));
        }
        assert_eq!(a.weight, 1);
        let before = t.stats.replenishes;
        let extra = a.split(&mut t);
        assert_eq!(t.stats.replenishes, before + 1, "one replenish message");
        // Invariant still holds.
        let sum: u64 = kids.iter().map(|r| r.weight).sum::<u64>() + a.weight + extra.weight;
        assert_eq!(t.total(3).unwrap(), sum);
        for r in kids {
            r.release(&mut t);
        }
        extra.release(&mut t);
        a.release(&mut t);
        assert!(!t.alive(3));
    }

    #[test]
    fn message_savings_are_large() {
        // A copy-heavy workload: references fan out across the system
        // (each copy splits from the heaviest extant reference, the
        // balanced pattern of real fan-out). Weighting pays messages
        // only on deaths; naive counting pays on every copy too.
        let mut t = WeightTable::new();
        let mut refs = vec![t.create(9)];
        for _ in 0..1000 {
            let k = refs
                .iter()
                .enumerate()
                .max_by_key(|(_, r)| r.weight)
                .map(|(k, _)| k)
                .expect("nonempty");
            let r = refs[k].split(&mut t);
            refs.push(r);
        }
        assert_eq!(t.stats.replenishes, 0, "balanced fan-out never replenishes");
        for r in refs {
            r.release(&mut t);
        }
        let actual = t.stats.total();
        let naive = t.stats.naive_messages;
        // Deaths cost one message under either scheme (and are further
        // combined at the node layer); the 1000 copy messages vanish
        // entirely under weighting.
        assert_eq!(naive - actual, 1000, "copies must be free");
        assert_eq!(actual, 1001, "one decrement per reference death");
        assert!(!t.alive(9));
    }

    #[test]
    #[should_panic(expected = "decrement of dead object")]
    fn double_release_detected() {
        let mut t = WeightTable::new();
        let a = t.create(1);
        let w = a.weight;
        a.release(&mut t);
        t.decrement(1, w);
    }
}
