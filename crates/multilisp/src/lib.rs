#![warn(missing_docs)]
//! A SMALL Multilisp (Chapter 6).
//!
//! Chapter 6 extends SMALL to multiprocessing: `future`-based parallel
//! evaluation in the Halstead style (§6.2.1.2), **reference weighting**
//! so that copying a reference between nodes requires no reference-count
//! messages (Figures 6.3 and 6.5), a multi-node organization where each
//! node owns an LPT (Figure 6.1/6.4), and **combining queues** that
//! merge outgoing weight updates addressed to the same object
//! (Figure 6.6).
//!
//! * [`mod@future`] — futures and parallel argument evaluation,
//! * [`weights`] — weighted reference counting with message accounting,
//! * [`node`] — the deterministic multi-node system with combining
//!   update queues (exact message accounting),
//! * [`parallel`] — the same organization on real threads and channels.

pub mod future;
pub mod node;
pub mod parallel;
pub mod weights;

pub use future::{future, pcall, Future};
pub use node::MultiNode;
pub use parallel::ParallelSystem;
pub use weights::{WeightTable, WeightedRef};
