//! A threaded multi-node SMALL system (Figure 6.1).
//!
//! Where [`crate::node::MultiNode`] is a deterministic single-threaded
//! simulation (exact message accounting for the Chapter 6 claims), this
//! module runs each node as a real OS thread owning its own List
//! Processor, connected by crossbeam channels. Requests:
//!
//! * `Create` — intern a list on the node, registering a weight;
//! * `Fetch` — read the structure behind a reference (copy reply);
//! * `WeightUpdate` — a batch of combined weight decrements
//!   (Figure 6.6: senders flush whole combining queues as one message);
//! * `Occupancy` — introspection;
//! * `Shutdown`.
//!
//! Weighted references are `Send`, so they can be handed between client
//! threads freely — the Figure 6.5 point: no owner interaction on copy.

use crate::weights::{WeightTable, WeightedRef};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use small_core::{ListProcessor, LpConfig, LpValue};
use small_heap::controller::TwoPointerController;
use small_sexpr::SExpr;
use std::thread::JoinHandle;

/// A sendable reference to a list object owned by some node.
#[derive(Debug)]
pub struct RemoteRef {
    /// Owner node.
    pub node: usize,
    wref: WeightedRef,
}

enum Request {
    Create {
        expr: SExpr,
        reply: Sender<RemoteRef>,
    },
    Fetch {
        obj: u64,
        reply: Sender<SExpr>,
    },
    WeightUpdate {
        updates: Vec<(u64, u64)>,
    },
    Occupancy {
        reply: Sender<usize>,
    },
    Shutdown,
}

struct NodeState {
    index: usize,
    lp: ListProcessor<TwoPointerController>,
    weights: WeightTable,
}

impl NodeState {
    fn serve(mut self, rx: Receiver<Request>) {
        while let Ok(req) = rx.recv() {
            match req {
                Request::Create { expr, reply } => {
                    let v = self
                        .lp
                        .readlist(None, &expr)
                        .expect("node heap/LPT exhausted");
                    let id = v.obj().expect("create of an atom");
                    let wref = self.weights.create(u64::from(id));
                    let _ = reply.send(RemoteRef {
                        node: self.index,
                        wref,
                    });
                }
                Request::Fetch { obj, reply } => {
                    let e = self
                        .lp
                        .writelist(LpValue::Obj(obj as small_core::Id))
                        .expect("fetch of live object");
                    let _ = reply.send(e);
                }
                Request::WeightUpdate { updates } => {
                    for (obj, weight) in updates {
                        self.weights.decrement(obj, weight);
                        if !self.weights.alive(obj) {
                            drop(self.lp.adopt_binding(LpValue::Obj(obj as small_core::Id)));
                            self.lp.drain_unroots();
                        }
                    }
                }
                Request::Occupancy { reply } => {
                    let _ = reply.send(self.lp.occupancy());
                }
                Request::Shutdown => break,
            }
        }
    }
}

/// Handle to a running threaded node system.
pub struct ParallelSystem {
    senders: Vec<Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
}

impl ParallelSystem {
    /// Spawn `n` nodes, each with its own LP of `table_size` entries.
    pub fn spawn(n: usize, table_size: usize) -> ParallelSystem {
        let mut senders = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for index in 0..n {
            let (tx, rx) = unbounded();
            let state = NodeState {
                index,
                lp: ListProcessor::new(
                    TwoPointerController::new(1 << 16, 64),
                    LpConfig {
                        table_size,
                        ..LpConfig::default()
                    },
                ),
                weights: WeightTable::new(),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("small-node-{index}"))
                    .spawn(move || state.serve(rx))
                    .expect("spawn node"),
            );
            senders.push(tx);
        }
        ParallelSystem { senders, handles }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Create a list object on `node`; blocks for the reference.
    pub fn create(&self, node: usize, expr: SExpr) -> RemoteRef {
        let (reply, rx) = bounded(1);
        self.senders[node]
            .send(Request::Create { expr, reply })
            .expect("node alive");
        rx.recv().expect("node replies")
    }

    /// Fetch the structure behind a reference (one request/reply).
    pub fn fetch(&self, r: &RemoteRef) -> SExpr {
        let (reply, rx) = bounded(1);
        self.senders[r.node]
            .send(Request::Fetch {
                obj: r.wref.obj,
                reply,
            })
            .expect("node alive");
        rx.recv().expect("node replies")
    }

    /// Clone a reference for another consumer — local weight split, no
    /// owner interaction (Figure 6.5). Panics if the reference's weight
    /// is exhausted (clients with heavy fan-out should request fresh
    /// references instead; the deterministic [`crate::node::MultiNode`]
    /// models the replenish protocol).
    pub fn copy_ref(&self, r: &mut RemoteRef) -> RemoteRef {
        assert!(r.wref.weight > 1, "reference weight exhausted");
        let half = r.wref.weight / 2;
        r.wref.weight -= half;
        RemoteRef {
            node: r.node,
            wref: WeightedRef {
                obj: r.wref.obj,
                weight: half,
            },
        }
    }

    /// Release a batch of references: updates to the same owner are
    /// combined client-side (Figure 6.6) into one message per object.
    pub fn release_batch(&self, refs: Vec<RemoteRef>) {
        let n = self.senders.len();
        let mut per_owner: Vec<std::collections::HashMap<u64, u64>> =
            vec![std::collections::HashMap::new(); n];
        for r in refs {
            *per_owner[r.node].entry(r.wref.obj).or_insert(0) += r.wref.weight;
        }
        for (owner, updates) in per_owner.into_iter().enumerate() {
            if updates.is_empty() {
                continue;
            }
            self.senders[owner]
                .send(Request::WeightUpdate {
                    updates: updates.into_iter().collect(),
                })
                .expect("node alive");
        }
    }

    /// Current LPT occupancy of a node.
    pub fn occupancy(&self, node: usize) -> usize {
        let (reply, rx) = bounded(1);
        self.senders[node]
            .send(Request::Occupancy { reply })
            .expect("node alive");
        rx.recv().expect("node replies")
    }

    /// Shut every node down and join the threads.
    pub fn shutdown(self) {
        for tx in &self.senders {
            let _ = tx.send(Request::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::{parse, print, Interner};
    use std::sync::Arc;

    #[test]
    fn create_fetch_across_threads() {
        let mut i = Interner::new();
        let sys = ParallelSystem::spawn(3, 256);
        let e = parse("(a (b c) d)", &mut i).unwrap();
        let r = sys.create(1, e.clone());
        let got = sys.fetch(&r);
        assert_eq!(print(&got, &i), print(&e, &i));
        sys.release_batch(vec![r]);
        sys.shutdown();
    }

    #[test]
    fn concurrent_clients_share_weighted_references() {
        let mut i = Interner::new();
        let sys = Arc::new(ParallelSystem::spawn(4, 512));
        let e = parse("(shared (data 1 2 3))", &mut i).unwrap();
        let mut root = sys.create(0, e.clone());
        let expected = print(&e, &i);

        // 8 client threads each receive a weighted copy and fetch
        // concurrently; copies required no owner messages.
        let mut clients = Vec::new();
        for _ in 0..8 {
            let r = sys.copy_ref(&mut root);
            let sys2 = Arc::clone(&sys);
            let expect = expected.clone();
            let interner = i.clone();
            clients.push(std::thread::spawn(move || {
                let got = sys2.fetch(&r);
                assert_eq!(print(&got, &interner), expect);
                r
            }));
        }
        let returned: Vec<RemoteRef> = clients
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect();

        // Everyone done: release all references in one combined batch,
        // then the owner must have reclaimed the object.
        sys.release_batch(returned);
        sys.release_batch(vec![root]);
        // Occupancy request is served after the updates (same queue).
        assert_eq!(sys.occupancy(0), 0, "object reclaimed at weight zero");
        match Arc::try_unwrap(sys) {
            Ok(s) => s.shutdown(),
            Err(_) => panic!("all clients joined"),
        }
    }

    #[test]
    fn many_objects_across_nodes() {
        let mut i = Interner::new();
        let sys = ParallelSystem::spawn(4, 512);
        let mut refs = Vec::new();
        for k in 0..40 {
            let e = parse(&format!("(obj {k} (payload {k}))"), &mut i).unwrap();
            refs.push(sys.create(k % 4, e));
        }
        for r in &refs {
            let got = sys.fetch(r);
            assert!(got.is_proper_list());
        }
        sys.release_batch(refs);
        for node in 0..4 {
            assert_eq!(sys.occupancy(node), 0, "node {node}");
        }
        sys.shutdown();
    }
}
