//! Futures and parallel argument evaluation (§6.2.1.2).
//!
//! In Halstead's Multilisp, `(future X)` immediately returns a pseudo
//! value while `X` evaluates concurrently; a consumer that needs the
//! real value **touches** the future and blocks until it resolves.
//! `pcall` evaluates a call's arguments in parallel — the "implicit
//! parallelism" of §6.2.1.1 made explicit. Parallel evaluation must not
//! violate sequential Lisp semantics; these combinators are safe for
//! side-effect-free computations, which the caller asserts by using
//! them (the same contract Multilisp places on the programmer).

use crossbeam::channel::{bounded, Receiver};
use std::thread;

/// A value that may still be computing.
pub struct Future<T> {
    state: FutureState<T>,
}

enum FutureState<T> {
    Pending(Receiver<T>, thread::JoinHandle<()>),
    Ready(T),
    Taken,
}

/// Spawn `f` on its own thread; returns immediately with a future.
pub fn future<T, F>(f: F) -> Future<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = bounded(1);
    let handle = thread::spawn(move || {
        // A dropped future never touches the channel; ignore send errors.
        let _ = tx.send(f());
    });
    Future {
        state: FutureState::Pending(rx, handle),
    }
}

impl<T> Future<T> {
    /// An already-resolved future.
    pub fn ready(v: T) -> Future<T> {
        Future {
            state: FutureState::Ready(v),
        }
    }

    /// Whether the value has resolved (without blocking).
    pub fn is_ready(&self) -> bool {
        match &self.state {
            FutureState::Pending(rx, _) => !rx.is_empty(),
            FutureState::Ready(_) => true,
            FutureState::Taken => false,
        }
    }

    /// Touch: block until the value is available, then return a
    /// reference to it.
    pub fn touch(&mut self) -> &T {
        if let FutureState::Pending(rx, _) = &self.state {
            let v = rx.recv().expect("future producer panicked");
            if let FutureState::Pending(_, handle) =
                std::mem::replace(&mut self.state, FutureState::Ready(v))
            {
                let _ = handle.join();
            }
        }
        match &self.state {
            FutureState::Ready(v) => v,
            _ => unreachable!("touch resolves the future"),
        }
    }

    /// Touch and take ownership of the value.
    pub fn take(mut self) -> T {
        self.touch();
        match std::mem::replace(&mut self.state, FutureState::Taken) {
            FutureState::Ready(v) => v,
            _ => unreachable!("touched above"),
        }
    }
}

/// Evaluate all thunks in parallel and return their values in call
/// order — parallel argument evaluation (§6.2.1.1), consistent with
/// left-to-right sequential semantics for independent arguments.
pub fn pcall<T, F>(thunks: Vec<F>) -> Vec<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let futures: Vec<Future<T>> = thunks.into_iter().map(future).collect();
    futures.into_iter().map(Future::take).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn future_resolves() {
        let mut f = future(|| 6 * 7);
        assert_eq!(*f.touch(), 42);
        assert_eq!(*f.touch(), 42, "idempotent");
    }

    #[test]
    fn ready_future() {
        let mut f = Future::ready("x");
        assert!(f.is_ready());
        assert_eq!(*f.touch(), "x");
    }

    #[test]
    fn pcall_preserves_argument_order() {
        let vals = pcall((0..16).map(|k| move || k * k).collect::<Vec<_>>());
        assert_eq!(vals, (0..16).map(|k| k * k).collect::<Vec<_>>());
    }

    #[test]
    fn pcall_actually_overlaps() {
        // All thunks wait on a shared barrier: with sequential
        // evaluation this would deadlock; parallel evaluation completes.
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let thunks: Vec<_> = (0..4)
            .map(|k| {
                let b = Arc::clone(&barrier);
                move || {
                    b.wait();
                    k
                }
            })
            .collect();
        let vals = pcall(thunks);
        assert_eq!(vals, vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_tree_sum_matches_sequential() {
        // The Chapter 6 motivating shape: evaluate a function's argument
        // sub-expressions in parallel.
        fn tree_sum(depth: u32, seed: u64) -> u64 {
            if depth == 0 {
                return seed % 1000;
            }
            let l = tree_sum(depth - 1, seed.wrapping_mul(31).wrapping_add(1));
            let r = tree_sum(depth - 1, seed.wrapping_mul(37).wrapping_add(2));
            l + r
        }
        let sequential = tree_sum(6, 1) + tree_sum(6, 2);
        let parallel: u64 = pcall(vec![
            (|| tree_sum(6, 1)) as fn() -> u64,
            (|| tree_sum(6, 2)) as fn() -> u64,
        ])
        .into_iter()
        .sum();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn dropped_future_does_not_hang() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let f = future(move || {
            c.fetch_add(1, Ordering::SeqCst);
            1
        });
        drop(f); // producer may still run; dropping must not deadlock
    }
}
