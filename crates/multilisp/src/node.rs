//! The multi-node SMALL system (Figures 6.1, 6.4–6.6).
//!
//! Each node is a complete SMALL engine — an EP/LP pair with its own
//! LPT — connected to its peers by message channels (Figure 6.1). List
//! objects live on their *owner* node; other nodes hold **global
//! references** `(node, identifier)` protected by reference weights
//! (Figure 6.4 extends the LPT entry with a weight field; here the
//! owner-side weights live in a per-node [`WeightTable`] keyed by
//! identifier).
//!
//! Two Chapter 6 mechanisms are reproduced and measured:
//!
//! * **weight-based copying** (Figure 6.5): passing a reference to
//!   another node splits its weight locally — no message to the owner;
//! * **combining queues** (Figure 6.6): outgoing weight decrements
//!   addressed to the same object are merged in the sender's queue, so a
//!   burst of releases costs one message.
//!
//! Message delivery is deterministic (explicit [`MultiNode::flush`]), so
//! the accounting the tests assert is exact.

use crate::weights::{WeightTable, WeightedRef};
use small_core::{ListProcessor, LpConfig, LpValue};
use small_heap::controller::TwoPointerController;
use small_sexpr::SExpr;

/// A reference to a list object that may live on another node.
#[derive(Debug)]
pub struct GlobalRef {
    /// Owner node index.
    pub node: usize,
    /// The weighted reference to the owner's object.
    wref: WeightedRef,
}

impl GlobalRef {
    /// The owner-node LPT identifier.
    pub fn id(&self) -> small_core::Id {
        self.wref.obj as small_core::Id
    }
}

/// One outgoing weight-decrement queue with combining (Figure 6.6).
#[derive(Debug, Default)]
pub struct CombiningQueue {
    entries: Vec<(u64, u64)>, // (obj, accumulated weight)
    /// Updates enqueued.
    pub enqueued: u64,
    /// Updates absorbed by combining (messages saved).
    pub combined: u64,
}

impl CombiningQueue {
    /// Queue a decrement, combining with a pending update to the same
    /// object if present.
    pub fn push(&mut self, obj: u64, weight: u64) {
        self.enqueued += 1;
        if let Some(e) = self.entries.iter_mut().find(|(o, _)| *o == obj) {
            e.1 += weight;
            self.combined += 1;
        } else {
            self.entries.push((obj, weight));
        }
    }

    /// Drain the queue (one message per remaining entry).
    pub fn drain(&mut self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.entries)
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

struct Node {
    lp: ListProcessor<TwoPointerController>,
    weights: WeightTable,
    /// Outgoing decrement queues, one per peer (indexed by owner node).
    outgoing: Vec<CombiningQueue>,
}

/// System-wide message statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Weight-decrement messages delivered.
    pub weight_messages: u64,
    /// Copy-request/reply message pairs.
    pub copy_messages: u64,
    /// Messages saved by combining.
    pub combined_saved: u64,
}

/// The multi-node system.
pub struct MultiNode {
    nodes: Vec<Node>,
    /// Network statistics.
    pub stats: NetStats,
}

impl MultiNode {
    /// Create `n` nodes, each with an LPT of `table_size` entries.
    pub fn new(n: usize, table_size: usize) -> Self {
        let nodes = (0..n)
            .map(|_| Node {
                lp: ListProcessor::new(
                    TwoPointerController::new(1 << 16, 64),
                    LpConfig {
                        table_size,
                        ..LpConfig::default()
                    },
                ),
                weights: WeightTable::new(),
                outgoing: (0..n).map(|_| CombiningQueue::default()).collect(),
            })
            .collect();
        MultiNode {
            nodes,
            stats: NetStats::default(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the system has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Live LPT occupancy of a node.
    pub fn occupancy(&self, node: usize) -> usize {
        self.nodes[node].lp.occupancy()
    }

    /// Create a list object on `node`; returns a weighted global
    /// reference (the creator holds it).
    pub fn create(&mut self, node: usize, e: &SExpr) -> GlobalRef {
        let n = &mut self.nodes[node];
        let v = n.lp.readlist(None, e).expect("node LPT/heap exhausted");
        let id = v.obj().expect("create of an atom");
        let wref = n.weights.create(u64::from(id));
        GlobalRef { node, wref }
    }

    /// Copy a reference (for passing to another node): weight splits
    /// locally, **no message** (Figure 6.5).
    pub fn copy_ref(&mut self, r: &mut GlobalRef) -> GlobalRef {
        let wref = r.wref.split(&mut self.nodes[r.node].weights);
        GlobalRef { node: r.node, wref }
    }

    /// Release a reference held by `holder`: the decrement is queued in
    /// the holder's combining queue toward the owner.
    pub fn release(&mut self, holder: usize, r: GlobalRef) {
        let owner = r.node;
        // The reference's weight travels in the queued message;
        // WeightedRef has no Drop, so consuming it here is the release.
        self.nodes[holder].outgoing[owner].push(r.wref.obj, r.wref.weight);
    }

    /// Fetch the s-expression behind a (possibly remote) reference: one
    /// copy-request/reply pair when remote, free locally.
    pub fn fetch(&mut self, from: usize, r: &GlobalRef) -> SExpr {
        if from != r.node {
            self.stats.copy_messages += 1;
        }
        let id = r.id();
        self.nodes[r.node]
            .lp
            .writelist(LpValue::Obj(id))
            .expect("fetch of live object")
    }

    /// Deliver all queued weight updates. Returns the number of weight
    /// messages sent.
    pub fn flush(&mut self) -> u64 {
        let mut sent = 0u64;
        for holder in 0..self.nodes.len() {
            for owner in 0..self.nodes.len() {
                let q = &mut self.nodes[holder].outgoing[owner];
                let msgs = q.drain();
                let saved = q.combined;
                q.combined = 0;
                q.enqueued = 0;
                self.stats.combined_saved += saved;
                for (obj, weight) in msgs {
                    sent += 1;
                    self.stats.weight_messages += 1;
                    let node = &mut self.nodes[owner];
                    node.weights.decrement(obj, weight);
                    if !node.weights.alive(obj) {
                        // Last reference anywhere: the owner's LPT entry
                        // (created with one EP reference) is released.
                        drop(node.lp.adopt_binding(LpValue::Obj(obj as small_core::Id)));
                        node.lp.drain_unroots();
                    }
                }
            }
        }
        sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::{parse, print, Interner};

    fn sys() -> (Interner, MultiNode) {
        (Interner::new(), MultiNode::new(4, 256))
    }

    #[test]
    fn remote_fetch_returns_structure() {
        let (mut i, mut m) = sys();
        let e = parse("(a (b c) d)", &mut i).unwrap();
        let r = m.create(0, &e);
        let got = m.fetch(2, &r);
        assert_eq!(print(&got, &i), "(a (b c) d)");
        assert_eq!(m.stats.copy_messages, 1);
        // Local fetch is free.
        m.fetch(0, &r);
        assert_eq!(m.stats.copy_messages, 1);
    }

    #[test]
    fn copying_references_costs_no_messages() {
        let (mut i, mut m) = sys();
        let e = parse("(x)", &mut i).unwrap();
        let mut r = m.create(0, &e);
        let mut held = Vec::new();
        for _ in 0..20 {
            held.push(m.copy_ref(&mut r)); // would be 20 increments naively
        }
        assert_eq!(m.stats.weight_messages, 0);
        assert_eq!(m.flush(), 0, "nothing queued by copies");
        // Cleanup.
        for h in held {
            m.release(1, h);
        }
        m.release(0, r);
        m.flush();
    }

    #[test]
    fn combining_queue_merges_same_object_updates() {
        // Figure 6.6: a burst of releases to one object → one message.
        let (mut i, mut m) = sys();
        let e = parse("(x y)", &mut i).unwrap();
        let mut r = m.create(0, &e);
        let held: Vec<GlobalRef> = (0..10).map(|_| m.copy_ref(&mut r)).collect();
        for h in held {
            m.release(3, h); // all from node 3, all to the same object
        }
        let sent = m.flush();
        assert_eq!(sent, 1, "10 releases combine into 1 weight message");
        assert_eq!(m.stats.combined_saved, 9);
        m.release(0, r);
        m.flush();
    }

    #[test]
    fn object_reclaimed_when_global_weight_zero() {
        let (mut i, mut m) = sys();
        let e = parse("(q r s)", &mut i).unwrap();
        let mut r = m.create(1, &e);
        let occupied = m.occupancy(1);
        let c = m.copy_ref(&mut r);
        m.release(2, c);
        m.flush();
        assert_eq!(m.occupancy(1), occupied, "object still referenced");
        m.release(0, r);
        m.flush();
        assert!(
            m.occupancy(1) < occupied,
            "owner LPT entry freed when weight hit zero"
        );
    }

    #[test]
    fn distributed_fan_out_and_teardown() {
        let (mut i, mut m) = sys();
        let mut roots = Vec::new();
        for k in 0..8 {
            let e = parse(&format!("(obj {k})"), &mut i).unwrap();
            let mut r = m.create(k % 4, &e);
            for holder in 0..4 {
                let c = m.copy_ref(&mut r);
                // Exercise remote fetch from each holder.
                let _ = m.fetch(holder, &c);
                m.release(holder, c);
            }
            roots.push(r);
        }
        for r in roots.drain(..) {
            m.release(0, r);
        }
        m.flush();
        for node in 0..4 {
            assert_eq!(m.occupancy(node), 0, "node {node} must be empty");
        }
        // Weight messages ≤ one per (holder, object) burst + root.
        assert!(m.stats.weight_messages <= 8 * 4 + 8);
    }
}
