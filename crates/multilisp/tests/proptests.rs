//! Property tests: the reference-weight invariant survives arbitrary
//! split/release interleavings, and combining queues conserve weight.

use proptest::prelude::*;
use small_multilisp::node::CombiningQueue;
use small_multilisp::weights::WeightTable;

proptest! {
    #[test]
    fn weight_invariant_under_random_interleaving(
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        // true = split a random live ref, false = release one.
        let mut t = WeightTable::new();
        let mut refs = vec![t.create(1)];
        let mut cursor = 0usize;
        for op in ops {
            if op || refs.len() == 1 {
                cursor = (cursor * 7 + 3) % refs.len();
                let r = refs[cursor].split(&mut t);
                refs.push(r);
            } else {
                cursor = (cursor * 5 + 1) % refs.len();
                let r = refs.swap_remove(cursor % refs.len());
                r.release(&mut t);
            }
            let sum: u64 = refs.iter().map(|r| r.weight).sum();
            prop_assert_eq!(t.total(1), Some(sum), "invariant broke");
            prop_assert!(refs.iter().all(|r| r.weight >= 1));
        }
        for r in refs {
            r.release(&mut t);
        }
        prop_assert!(!t.alive(1));
    }

    #[test]
    fn combining_queue_conserves_weight(
        updates in prop::collection::vec((0u64..5, 1u64..100), 0..60),
    ) {
        let mut q = CombiningQueue::default();
        let mut expected = std::collections::HashMap::new();
        for (obj, w) in &updates {
            q.push(*obj, *w);
            *expected.entry(*obj).or_insert(0u64) += w;
        }
        let drained: std::collections::HashMap<u64, u64> =
            q.drain().into_iter().collect();
        prop_assert_eq!(drained, expected);
        prop_assert!(q.is_empty());
    }
}
