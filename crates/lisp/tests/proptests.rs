//! Property tests for the Lisp system: the three environment
//! implementations are observationally equivalent under random
//! operation sequences, and interpreter arithmetic/list laws hold.

use proptest::prelude::*;
use small_lisp::env::{DeepEnv, Environment, ShallowEnv, ValueCacheEnv};
use small_lisp::value::Value;
use small_sexpr::{Interner, Symbol};

/// A random environment operation over a small name alphabet.
#[derive(Debug, Clone, Copy)]
enum EnvOp {
    Push,
    Pop,
    Bind(u8, i64),
    Set(u8, i64),
    Lookup(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<EnvOp>> {
    prop::collection::vec(
        prop_oneof![
            Just(EnvOp::Push),
            Just(EnvOp::Pop),
            (0u8..6, -100i64..100).prop_map(|(n, v)| EnvOp::Bind(n, v)),
            (0u8..6, -100i64..100).prop_map(|(n, v)| EnvOp::Set(n, v)),
            (0u8..6).prop_map(EnvOp::Lookup),
        ],
        0..120,
    )
}

/// Apply ops, collecting every lookup observation. Pops with no open
/// frame are skipped (they would be interpreter bugs, not env states).
fn observe<E: Environment>(env: &mut E, names: &[Symbol], ops: &[EnvOp]) -> Vec<Option<i64>> {
    let mut out = Vec::new();
    for op in ops {
        match *op {
            EnvOp::Push => env.push_frame(),
            EnvOp::Pop => {
                if env.depth() > 0 {
                    env.pop_frame();
                }
            }
            EnvOp::Bind(n, v) => env.bind(names[n as usize], Value::Int(v)),
            EnvOp::Set(n, v) => {
                env.set(names[n as usize], Value::Int(v));
            }
            EnvOp::Lookup(n) => out.push(match env.lookup(names[n as usize]) {
                Some(Value::Int(i)) => Some(i),
                Some(_) => None,
                None => None,
            }),
        }
    }
    // Unwind remaining frames and observe the final top-level state.
    while env.depth() > 0 {
        env.pop_frame();
    }
    for name in names {
        out.push(match env.lookup(*name) {
            Some(Value::Int(i)) => Some(i),
            _ => None,
        });
    }
    out
}

proptest! {
    #[test]
    fn environments_are_observationally_equivalent(ops in arb_ops()) {
        let mut i = Interner::new();
        let names: Vec<Symbol> = (0..6).map(|k| i.intern(&format!("v{k}"))).collect();
        let deep = observe(&mut DeepEnv::new(), &names, &ops);
        let shallow = observe(&mut ShallowEnv::new(), &names, &ops);
        let cached = observe(&mut ValueCacheEnv::new(4), &names, &ops);
        prop_assert_eq!(&deep, &shallow, "deep vs shallow");
        prop_assert_eq!(&deep, &cached, "deep vs value-cache");
    }

    #[test]
    fn interpreter_list_identities(xs in prop::collection::vec(-50i64..50, 0..8)) {
        use small_lisp::interp::{Interp, NoHook, PRELUDE};
        let mut it = Interp::new(Interner::new(), DeepEnv::new(), NoHook);
        it.run_program(PRELUDE).unwrap();
        let lit = format!(
            "'({})",
            xs.iter().map(i64::to_string).collect::<Vec<_>>().join(" ")
        );
        // (length x) == |xs|
        let v = it.run_program(&format!("(length {lit})")).unwrap();
        prop_assert!(matches!(v, Value::Int(n) if n == xs.len() as i64));
        // (reverse (reverse x)) == x
        let v = it
            .run_program(&format!("(equal (reverse (reverse {lit})) {lit})"))
            .unwrap();
        prop_assert!(v.is_true());
        // (length (append x x)) == 2|xs|
        let v = it
            .run_program(&format!("(length (append {lit} {lit}))"))
            .unwrap();
        prop_assert!(matches!(v, Value::Int(n) if n == 2 * xs.len() as i64));
    }

    #[test]
    fn interpreter_arithmetic_matches_rust(a in -1000i64..1000, b in -1000i64..1000) {
        use small_lisp::interp::{Interp, NoHook};
        let mut it = Interp::new(Interner::new(), DeepEnv::new(), NoHook);
        let v = it.run_program(&format!("(add {a} {b})")).unwrap();
        prop_assert!(matches!(v, Value::Int(x) if x == a + b));
        let v = it.run_program(&format!("(times {a} {b})")).unwrap();
        prop_assert!(matches!(v, Value::Int(x) if x == a * b));
        if b != 0 {
            let v = it.run_program(&format!("(quotient {a} {b})")).unwrap();
            prop_assert!(matches!(v, Value::Int(x) if x == a / b));
        }
    }
}
