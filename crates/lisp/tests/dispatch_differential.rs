//! Dispatch conformance: the threaded dispatcher ([`Vm::run_threaded`])
//! must be observationally indistinguishable from the reference
//! interpreter ([`Vm::run_reference`]) — byte-equal results, equal
//! [`VmStats`], equal [`LptStats`] ledgers, and equal per-kind event
//! counts — on every program the repository knows how to generate:
//!
//! * the typed expression grammar and the `rplaca`/`rplacd` mutation
//!   scenes of the engine differential suite (`tests/differential.rs`,
//!   mirrored here because integration tests cannot import each
//!   other), run one-shot;
//! * the soak generator's seeded request templates
//!   ([`small_serve::gen::programs_for`]), run session-style — one
//!   persistent machine per client with `load_program` per request,
//!   error recovery included, exactly as the serving layer drives it.
//!
//! Both backends run over the SMALL List Processor with a counting
//! sink, so a divergence in *any* deterministic observable — not just
//! the final value — fails the suite.

use proptest::prelude::*;
use small_core::{LpConfig, LptStats, SmallBackend};
use small_heap::controller::TwoPointerController;
use small_lisp::compiler::{compile_forms, compile_program};
use small_lisp::vm::{ListBackend, Vm, VmValue};
use small_metrics::{CountingSink, EventCounts};
use small_serve::gen::{programs_for, PINNED_SEEDS};
use small_sexpr::{parse_all, print, Interner};

type Backend = SmallBackend<TwoPointerController, CountingSink>;

fn backend() -> Backend {
    SmallBackend::with_sink(1 << 16, LpConfig::default(), CountingSink::default())
}

/// Library functions available to generated programs (the same
/// definitions the engine differential suite uses).
const LIB: &str = "
(def append (lambda (a b)
  (cond ((null a) b) (t (cons (car a) (append (cdr a) b))))))
(def reverse-onto (lambda (a acc)
  (cond ((null a) acc) (t (reverse-onto (cdr a) (cons (car a) acc))))))
(def reverse (lambda (a) (reverse-onto a nil)))
(def length (lambda (a)
  (cond ((null a) 0) (t (add 1 (length (cdr a)))))))
";

/// Everything one run observes. `VmStats` carries no `PartialEq`, so
/// its fields ride as a tuple.
#[derive(Debug, PartialEq)]
struct Report {
    /// Per-program reply: the canonical printed value, or the typed
    /// error path taken (parse/compile/lp/vm, with the error's debug
    /// form — the exact classification the serving layer would reply).
    replies: Vec<String>,
    vm_stats: (u64, u64, usize, u64, u64),
    lpt: LptStats,
    counts: EventCounts,
    occupancy: usize,
}

/// Drive `programs` through one persistent machine the way a session
/// does — compile each against the shared interner, `load_program`,
/// run with the selected dispatch backend, recover from errors, keep
/// going — then shut down and collect every observable.
fn drive(programs: &[String], threaded: bool) -> Report {
    let mut interner = Interner::new();
    let empty = compile_program("nil", &mut interner).expect("the empty program compiles");
    let mut vm = Vm::new(empty, backend());
    let mut replies = Vec::new();
    for src in programs {
        let forms = match parse_all(src, &mut interner) {
            Ok(f) => f,
            Err(e) => {
                replies.push(format!("parse:{e:?}"));
                continue;
            }
        };
        let program = match compile_forms(&forms, &mut interner) {
            Ok(p) => p,
            Err(e) => {
                replies.push(format!("compile:{e:?}"));
                continue;
            }
        };
        vm.load_program(program);
        vm.set_budget(50_000_000);
        let result = if threaded {
            vm.run_threaded()
        } else {
            vm.run_reference()
        };
        match result {
            Ok(v) => {
                match vm.backend.try_write_out(&v) {
                    Ok(e) => replies.push(print(&e, &interner)),
                    Err(e) => replies.push(format!("lp:{e:?}")),
                }
                if let VmValue::List(id) = v {
                    vm.backend.release(&id);
                }
            }
            Err(e) => {
                vm.recover();
                replies.push(format!("vm:{e:?}"));
            }
        }
        vm.backend.lp.drain_unroots();
    }
    vm.shutdown();
    let s = vm.stats();
    let mut backend = vm.backend;
    backend.lp.drain_lazy();
    let occupancy = backend.lp.occupancy();
    let lpt = backend.lp.stats();
    Report {
        replies,
        vm_stats: (
            s.instructions,
            s.fn_calls,
            s.max_depth,
            s.list_ops,
            s.name_searches,
        ),
        lpt,
        counts: backend.into_sink().counts,
        occupancy,
    }
}

/// One-shot program with the library prepended, both backends, every
/// observable compared.
fn assert_backends_agree(src: &str) {
    let program = vec![format!("{LIB}\n{src}")];
    let reference = drive(&program, false);
    let threaded = drive(&program, true);
    assert_eq!(reference, threaded, "dispatch divergence on {src}");
    assert_eq!(reference.occupancy, 0, "LPT leak running {src}");
}

// --------------------------------------------------------------------
// The typed grammar (mirrors tests/differential.rs).
// --------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Ty {
    Int,
    List,
}

fn gen_expr(ty: Ty, depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        return match ty {
            Ty::Int => (-20i64..20).prop_map(|i| i.to_string()).boxed(),
            Ty::List => prop_oneof![
                Just("nil".to_string()),
                prop::collection::vec(-9i64..9, 0..4).prop_map(|xs| format!(
                    "'({})",
                    xs.iter().map(i64::to_string).collect::<Vec<_>>().join(" ")
                )),
            ]
            .boxed(),
        };
    }
    let d = depth - 1;
    match ty {
        Ty::Int => prop_oneof![
            gen_expr(Ty::Int, 0),
            (gen_expr(Ty::Int, d), gen_expr(Ty::Int, d))
                .prop_map(|(a, b)| format!("(add {a} {b})")),
            (gen_expr(Ty::Int, d), gen_expr(Ty::Int, d))
                .prop_map(|(a, b)| format!("(sub {a} {b})")),
            (gen_expr(Ty::Int, d), gen_expr(Ty::Int, d))
                .prop_map(|(a, b)| format!("(times {a} {b})")),
            gen_expr(Ty::List, d).prop_map(|l| format!("(length {l})")),
            (
                gen_expr(Ty::List, d),
                gen_expr(Ty::Int, d),
                gen_expr(Ty::Int, d)
            )
                .prop_map(|(t, a, b)| format!("(cond ((null {t}) {a}) (t {b}))")),
        ]
        .boxed(),
        Ty::List => prop_oneof![
            gen_expr(Ty::List, 0),
            (gen_expr(Ty::Int, d), gen_expr(Ty::List, d))
                .prop_map(|(a, b)| format!("(cons {a} {b})")),
            (gen_expr(Ty::List, d), gen_expr(Ty::List, d))
                .prop_map(|(a, b)| format!("(cons {a} {b})")),
            gen_expr(Ty::List, d).prop_map(|l| format!("(cdr {l})")),
            (gen_expr(Ty::List, d), gen_expr(Ty::List, d))
                .prop_map(|(a, b)| format!("(append {a} {b})")),
            gen_expr(Ty::List, d).prop_map(|l| format!("(reverse {l})")),
            (
                gen_expr(Ty::List, d),
                gen_expr(Ty::List, d),
                gen_expr(Ty::List, d)
            )
                .prop_map(|(t, a, b)| format!("(cond ((null {t}) {a}) (t {b}))")),
        ]
        .boxed(),
    }
}

fn arb_program() -> impl Strategy<Value = String> {
    prop_oneof![gen_expr(Ty::Int, 4), gen_expr(Ty::List, 4)]
}

/// Mutation scenes (mirrors `gen_mutation_program` of
/// tests/differential.rs): fresh cells mutated directly, through
/// shared structure, and through a temporary self-referential knot.
fn gen_mutation_program() -> impl Strategy<Value = String> {
    let int = || gen_expr(Ty::Int, 2);
    let list = || gen_expr(Ty::List, 2);
    prop_oneof![
        (int(), list(), int(), list()).prop_map(|(a, l, b, l2)| format!(
            "(prog (m0) \
               (setq m0 (cons {a} {l})) \
               (rplaca m0 {b}) \
               (rplacd m0 {l2}) \
               (return (cons (car m0) (cdr m0))))"
        )),
        (int(), list(), int(), int(), list()).prop_map(|(a, l, b, c, l2)| format!(
            "(prog (m0 m1) \
               (setq m0 (cons {a} {l})) \
               (setq m1 (cons {b} m0)) \
               (rplaca m0 {c}) \
               (rplacd m0 {l2}) \
               (cond ((null (cdr m0)) nil) (t (rplaca (cdr m0) (car m1)))) \
               (return (cons (car (cdr m1)) (append m1 m0))))"
        )),
        (int(), int()).prop_map(|(a, b)| format!(
            "(prog (m0 m1) \
               (setq m0 (cons {a} (cons {b} nil))) \
               (rplacd (cdr m0) m0) \
               (setq m1 (car (cdr (cdr m0)))) \
               (rplacd (cdr m0) nil) \
               (return (cons m1 m0)))"
        )),
        (int(), int(), int(), int(), int()).prop_map(|(a, b, c, d, e)| format!(
            "(prog (m0 m1) \
               (setq m0 (cons {a} nil)) \
               (setq m1 (cons {b} (cons {c} m0))) \
               (rplaca (cdr m1) {d}) \
               (rplacd (cdr m1) (cons {e} m0)) \
               (rplaca m0 (length m1)) \
               (return (append m1 (cons (car m0) nil))))"
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dispatch_backends_agree(src in arb_program()) {
        assert_backends_agree(&src);
    }

    #[test]
    fn dispatch_backends_agree_under_mutation(src in gen_mutation_program()) {
        assert_backends_agree(&src);
    }
}

/// Every pinned soak seed, several clients each, driven session-style:
/// persistent `setq` globals across requests, typed error paths mid-
/// stream, mutation through shared structure and broken cycles — the
/// exact request mix the soak harness replays against the server.
#[test]
fn soak_templates_agree_across_dispatch_backends() {
    for seed in PINNED_SEEDS {
        for client in 0..3u64 {
            let programs = programs_for(seed, client, 32);
            let reference = drive(&programs, false);
            let threaded = drive(&programs, true);
            assert_eq!(
                reference, threaded,
                "dispatch divergence on seed {seed} client {client}"
            );
            assert_eq!(
                reference.occupancy, 0,
                "LPT leak on seed {seed} client {client}"
            );
        }
    }
}

/// A mixed session whose programs alternate between the two dispatch
/// backends *on the same machine* must still agree with a pure run of
/// either: the decoded-program cache and the reference loop share all
/// machine state, so interleaving them cannot skew any observable.
#[test]
fn interleaved_backends_match_pure_runs() {
    let programs = programs_for(PINNED_SEEDS[0], 1, 24);
    let pure = drive(&programs, true);

    let mut interner = Interner::new();
    let empty = compile_program("nil", &mut interner).expect("the empty program compiles");
    let mut vm = Vm::new(empty, backend());
    let mut replies = Vec::new();
    for (k, src) in programs.iter().enumerate() {
        let forms = parse_all(src, &mut interner).expect("soak templates parse");
        let program = compile_forms(&forms, &mut interner).expect("soak templates compile");
        vm.load_program(program);
        vm.set_budget(50_000_000);
        let result = if k % 2 == 0 {
            vm.run_threaded()
        } else {
            vm.run_reference()
        };
        match result {
            Ok(v) => {
                match vm.backend.try_write_out(&v) {
                    Ok(e) => replies.push(print(&e, &interner)),
                    Err(e) => replies.push(format!("lp:{e:?}")),
                }
                if let VmValue::List(id) = v {
                    vm.backend.release(&id);
                }
            }
            Err(e) => {
                vm.recover();
                replies.push(format!("vm:{e:?}"));
            }
        }
        vm.backend.lp.drain_unroots();
    }
    vm.shutdown();
    let s = vm.stats();
    let mut b = vm.backend;
    b.lp.drain_lazy();
    assert_eq!(replies, pure.replies);
    assert_eq!(
        (
            s.instructions,
            s.fn_calls,
            s.max_depth,
            s.list_ops,
            s.name_searches
        ),
        pure.vm_stats
    );
    assert_eq!(b.lp.occupancy(), 0);
    assert_eq!(b.lp.stats(), pure.lpt);
    assert_eq!(b.into_sink().counts, pure.counts);
}
