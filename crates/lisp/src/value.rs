//! Interpreter runtime values.
//!
//! Unlike [`small_sexpr::SExpr`] (an immutable analysis-level tree),
//! interpreter values have *mutable* cons cells — `rplaca`/`rplacd` are
//! among the traced primitives — and each cell carries a session-unique
//! id. The id gives the trace recorder exact list-object identity, which
//! the thesis could not obtain from Franz Lisp (§5.2.1 "two list
//! arguments that look identical could actually be different objects");
//! we record both the s-expression form and the exact identity.

use small_sexpr::{Atom, SExpr, Symbol};
use std::cell::RefCell;
use std::rc::Rc;

/// A mutable cons cell with a session-unique identity.
#[derive(Debug)]
pub struct ConsCell {
    /// Session-unique id, assigned by the interpreter's cell counter.
    pub id: u64,
    /// The car field.
    pub car: RefCell<Value>,
    /// The cdr field.
    pub cdr: RefCell<Value>,
}

/// A runtime value of the simple Lisp (§4.3.4): integers are the only
/// numeric type.
#[derive(Debug, Clone)]
pub enum Value {
    /// nil — the empty list and the false value.
    Nil,
    /// A fixnum.
    Int(i64),
    /// A symbol (also the true value `t` by convention).
    Sym(Symbol),
    /// A shared, mutable cons cell.
    Cons(Rc<ConsCell>),
}

impl Value {
    /// True iff nil.
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Lisp truthiness: everything but nil is true.
    pub fn is_true(&self) -> bool {
        !self.is_nil()
    }

    /// True iff an atom in the Lisp sense (nil included).
    pub fn is_atom(&self) -> bool {
        !matches!(self, Value::Cons(_))
    }

    /// The cell id, if a cons.
    pub fn list_id(&self) -> Option<u64> {
        match self {
            Value::Cons(c) => Some(c.id),
            _ => None,
        }
    }

    /// Structural conversion to an analysis-level s-expression.
    ///
    /// Cyclic structure is cut off at `depth_limit` cells (the thesis
    /// traces were s-expression prints; true cycles are rare in the
    /// workloads and the limit keeps tracing total).
    pub fn to_sexpr(&self) -> SExpr {
        self.to_sexpr_limited(100_000)
    }

    /// As [`Value::to_sexpr`], with an explicit cell budget.
    pub fn to_sexpr_limited(&self, mut budget: usize) -> SExpr {
        fn go(v: &Value, budget: &mut usize) -> SExpr {
            match v {
                Value::Nil => SExpr::Nil,
                Value::Int(i) => SExpr::int(*i),
                Value::Sym(s) => SExpr::sym(*s),
                Value::Cons(c) => {
                    if *budget == 0 {
                        return SExpr::Nil;
                    }
                    *budget -= 1;
                    let car = go(&c.car.borrow(), budget);
                    let cdr = go(&c.cdr.borrow(), budget);
                    SExpr::cons(car, cdr)
                }
            }
        }
        go(self, &mut budget)
    }

    /// Pointer/identity equality (`eq`): atoms compare by value, lists by
    /// cell identity.
    pub fn eq_identity(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Cons(a), Value::Cons(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Structural equality (`equal`).
    pub fn eq_structural(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Cons(a), Value::Cons(b)) => {
                Rc::ptr_eq(a, b)
                    || (a.car.borrow().eq_structural(&b.car.borrow())
                        && a.cdr.borrow().eq_structural(&b.cdr.borrow()))
            }
            _ => self.eq_identity(other),
        }
    }
}

/// Allocates identity-bearing cons cells for one interpreter session.
#[derive(Debug, Default)]
pub struct CellAllocator {
    next_id: u64,
    /// Cells created (the `cons` count at the value level).
    pub cells_created: u64,
}

impl CellAllocator {
    /// New allocator with ids from 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cons a fresh cell.
    pub fn cons(&mut self, car: Value, cdr: Value) -> Value {
        let id = self.next_id;
        self.next_id += 1;
        self.cells_created += 1;
        Value::Cons(Rc::new(ConsCell {
            id,
            car: RefCell::new(car),
            cdr: RefCell::new(cdr),
        }))
    }

    /// Build a value from an s-expression (fresh cells throughout).
    pub fn from_sexpr(&mut self, e: &SExpr) -> Value {
        match e {
            SExpr::Nil => Value::Nil,
            SExpr::Atom(Atom::Int(i)) => Value::Int(*i),
            SExpr::Atom(Atom::Sym(s)) => Value::Sym(*s),
            SExpr::Cons(c) => {
                let car = self.from_sexpr(&c.0);
                let cdr = self.from_sexpr(&c.1);
                self.cons(car, cdr)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::{parse, print, Interner};

    #[test]
    fn from_sexpr_roundtrip() {
        let mut i = Interner::new();
        let mut alloc = CellAllocator::new();
        let e = parse("(a (b 2) c)", &mut i).unwrap();
        let v = alloc.from_sexpr(&e);
        assert_eq!(print(&v.to_sexpr(), &i), "(a (b 2) c)");
    }

    #[test]
    fn cell_ids_are_unique() {
        let mut i = Interner::new();
        let mut alloc = CellAllocator::new();
        let e = parse("(a b)", &mut i).unwrap();
        let v1 = alloc.from_sexpr(&e);
        let v2 = alloc.from_sexpr(&e);
        assert_ne!(v1.list_id(), v2.list_id());
        assert!(v1.eq_structural(&v2));
        assert!(!v1.eq_identity(&v2));
    }

    #[test]
    fn mutation_through_shared_cell() {
        let mut i = Interner::new();
        let mut alloc = CellAllocator::new();
        let e = parse("(a b)", &mut i).unwrap();
        let v = alloc.from_sexpr(&e);
        let alias = v.clone();
        if let Value::Cons(c) = &v {
            *c.car.borrow_mut() = Value::Int(42);
        }
        assert_eq!(print(&alias.to_sexpr(), &i), "(42 b)");
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Nil.is_true());
        assert!(Value::Int(0).is_true(), "0 is true in Lisp");
        let mut i = Interner::new();
        assert!(Value::Sym(i.intern("t")).is_true());
    }

    #[test]
    fn cycle_conversion_is_bounded() {
        let mut alloc = CellAllocator::new();
        let v = alloc.cons(Value::Int(1), Value::Nil);
        if let Value::Cons(c) = &v {
            *c.cdr.borrow_mut() = v.clone(); // self-cycle
        }
        // Must terminate.
        let _ = v.to_sexpr_limited(100);
    }
}
