//! The stack-machine emulator (§4.3.4), generic over a list backend.
//!
//! The thesis's emulator "operated by tracing the state of three key
//! SMALL structures: the stack (control and environment), the LPT and
//! the heap". This VM owns the first — a combined control/binding stack,
//! deep-bound, exactly the §4.3.1 model — and delegates every list
//! operation to a [`ListBackend`]:
//!
//! * [`DirectBackend`] (here) runs lists straight against a two-pointer
//!   heap — the conventional-machine baseline;
//! * `small-core` provides the LP/LPT backend, so the *same compiled
//!   program* exercises the SMALL architecture.
//!
//! The backend's `retain`/`release` hooks fire when list values are
//! bound into / dropped from the environment — the points where the EP
//! sends reference-count traffic to the LP (§4.3.1, §5.3.3).

use crate::isa::{CodeAddr, Inst, Program};
use small_heap::controller::HeapError;
use small_heap::Tag;
use small_sexpr::{SExpr, Symbol};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// A VM value: immediates plus a backend-defined list reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmValue<R> {
    /// nil.
    Nil,
    /// A fixnum.
    Int(i64),
    /// A symbol.
    Sym(Symbol),
    /// A list object handle (heap address, LPT identifier, …).
    List(R),
}

impl<R> VmValue<R> {
    /// Lisp truthiness.
    pub fn is_true(&self) -> bool {
        !matches!(self, VmValue::Nil)
    }

    /// Atom test (nil is an atom).
    pub fn is_atom(&self) -> bool {
        !matches!(self, VmValue::List(_))
    }
}

/// VM runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Reference to an unbound name.
    Unbound(String),
    /// FCall of an undefined function.
    NoSuchFunction(String),
    /// Operand of the wrong type.
    TypeError(&'static str),
    /// Integer division by zero.
    DivideByZero,
    /// Operand stack underflow (compiler bug if it happens).
    StackUnderflow,
    /// `read` on an empty input queue.
    ReadEof,
    /// Instruction budget exhausted.
    StepBudget,
    /// The backend failed (heap/LPT exhaustion etc.).
    Backend(BackendError),
}

/// Typed failures crossing the EP–LP (VM–backend) boundary, so call
/// sites can match on the cause instead of parsing strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendError {
    /// The LPT overflowed and no space could be recovered: the machine
    /// would degrade to overflow mode (§4.3.2.3).
    TrueOverflow,
    /// The backing heap failed (exhaustion, bad operand).
    Heap(HeapError),
    /// car/cdr applied to a non-list operand.
    NotAList,
    /// The backend surfaced a word with a tag the machine cannot
    /// interpret — memory corruption, never reachable for well-formed
    /// programs.
    UnexpectedTag(Tag),
    /// The backend refused the operation because it is running in
    /// degraded (heap-direct overflow) mode; the payload names the
    /// refused operation.
    Degraded(&'static str),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::TrueOverflow => write!(f, "LPT true overflow"),
            BackendError::Heap(e) => write!(f, "heap: {e}"),
            BackendError::NotAList => write!(f, "operand is not a list object"),
            BackendError::UnexpectedTag(t) => write!(f, "unexpected word tag {t:?}"),
            BackendError::Degraded(what) => {
                write!(f, "{what} is unsupported in degraded overflow mode")
            }
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for BackendError {
    fn from(e: HeapError) -> Self {
        BackendError::Heap(e)
    }
}

impl From<BackendError> for VmError {
    fn from(e: BackendError) -> Self {
        VmError::Backend(e)
    }
}

impl From<HeapError> for VmError {
    fn from(e: HeapError) -> Self {
        VmError::Backend(BackendError::Heap(e))
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Unbound(n) => write!(f, "unbound name {n}"),
            VmError::NoSuchFunction(n) => write!(f, "undefined function {n}"),
            VmError::TypeError(p) => write!(f, "type error in {p}"),
            VmError::DivideByZero => write!(f, "division by zero"),
            VmError::StackUnderflow => write!(f, "operand stack underflow"),
            VmError::ReadEof => write!(f, "read: input exhausted"),
            VmError::StepBudget => write!(f, "instruction budget exhausted"),
            VmError::Backend(e) => write!(f, "backend error: {e}"),
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

/// The list-structure interface the VM drives (the EP→LP request set of
/// §4.3.2.2: readlist, car, cdr, rplaca, rplacd, cons, plus writelist).
///
/// Reference discipline: every `List` value the VM holds (operand-stack
/// slot or binding) carries exactly one retained reference. Values
/// *returned* by `car`/`cdr`/`cons`/`read_in` arrive already retained;
/// the VM calls [`ListBackend::release`] whenever it drops a value and
/// [`ListBackend::retain`] whenever it copies one. Backends without
/// reference counting (the direct heap) leave the hooks as no-ops.
pub trait ListBackend {
    /// Handle type for list objects.
    type Ref: Clone + PartialEq + Eq + fmt::Debug;

    /// `car` of a list object.
    fn car(&mut self, r: &Self::Ref) -> Result<VmValue<Self::Ref>, VmError>;
    /// `cdr` of a list object.
    fn cdr(&mut self, r: &Self::Ref) -> Result<VmValue<Self::Ref>, VmError>;
    /// Allocate a cons of two values.
    fn cons(
        &mut self,
        car: VmValue<Self::Ref>,
        cdr: VmValue<Self::Ref>,
    ) -> Result<Self::Ref, VmError>;
    /// Replace the car of a list object.
    fn rplaca(&mut self, r: &Self::Ref, v: VmValue<Self::Ref>) -> Result<(), VmError>;
    /// Replace the cdr of a list object.
    fn rplacd(&mut self, r: &Self::Ref, v: VmValue<Self::Ref>) -> Result<(), VmError>;
    /// Read an s-expression into the backend (`readlist`).
    fn read_in(&mut self, e: &SExpr) -> Result<VmValue<Self::Ref>, VmError>;
    /// Reconstruct the s-expression for a value (`writelist`).
    fn write_out(&mut self, v: &VmValue<Self::Ref>) -> SExpr;
    /// Structural equality of two values.
    fn equal(&mut self, a: &VmValue<Self::Ref>, b: &VmValue<Self::Ref>) -> bool;
    /// A new *binding* reference to a list object was created (the EP
    /// tells the LP to increment the object's reference count).
    fn retain(&mut self, r: &Self::Ref) {
        let _ = r;
    }
    /// A binding reference was dropped (function return, §4.3.1).
    fn release(&mut self, r: &Self::Ref) {
        let _ = r;
    }
}

#[derive(Debug)]
struct Frame {
    /// Return address.
    ret_pc: usize,
    /// Binding-stack mark: bindings at or above this index belong here.
    bind_mark: usize,
    /// Operand-stack mark at call time.
    op_mark: usize,
}

/// VM execution statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct VmStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Function calls performed.
    pub fn_calls: u64,
    /// Maximum control-stack depth.
    pub max_depth: usize,
    /// List-primitive instructions executed (car/cdr/cons/rplaca/rplacd).
    pub list_ops: u64,
    /// Environment searches for free variables (PushName/SetName).
    pub name_searches: u64,
}

/// The stack-machine emulator.
pub struct Vm<B: ListBackend> {
    /// The list backend.
    pub backend: B,
    program: Program,
    /// Operand stack.
    stack: Vec<VmValue<B::Ref>>,
    /// Combined control/environment stack: name–value bindings.
    bindings: Vec<(Symbol, VmValue<B::Ref>)>,
    frames: Vec<Frame>,
    /// Input queue served to `RdList`.
    pub input: VecDeque<SExpr>,
    /// Output collected from `WrList`.
    pub output: Vec<SExpr>,
    stats: VmStats,
    budget: u64,
    /// Frame-slot base for code running outside any call frame. Zero on
    /// a fresh machine, but a reused session enters `run` with
    /// persistent globals already on the binding stack, and top-level
    /// `prog` locals must be addressed above them.
    entry_base: usize,
    /// Lazily built threaded-dispatch image of `program.code`: one
    /// handler-fn entry per instruction with operands pre-resolved.
    /// Invalidated whenever the program is swapped.
    decoded: Option<Arc<[DecodedOp<B>]>>,
}

/// One pre-decoded instruction of the threaded-dispatch backend: the
/// handler function pointer plus every operand it could need, resolved
/// at decode time (branch targets as absolute addresses, `FCall`
/// targets as entry/arity instead of a hash lookup per call).
struct DecodedOp<B: ListBackend> {
    handler: Handler<B>,
    addr: CodeAddr,
    num: i64,
    sym: Symbol,
    n: u16,
}

impl<B: ListBackend> Clone for DecodedOp<B> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<B: ListBackend> Copy for DecodedOp<B> {}

type Handler<B> =
    fn(&mut Vm<B>, &DecodedOp<B>, &mut usize) -> Result<Step<<B as ListBackend>::Ref>, VmError>;

/// Outcome of one dispatched instruction.
enum Step<R> {
    /// Keep executing at the (already advanced) program counter.
    Next,
    /// The program produced its final value (`Halt`, or a top-level
    /// `FRetN`).
    Done(VmValue<R>),
}

impl<B: ListBackend> Vm<B> {
    /// Create a VM for `program` over `backend`.
    pub fn new(program: Program, backend: B) -> Self {
        Vm {
            backend,
            program,
            stack: Vec::new(),
            bindings: Vec::new(),
            frames: Vec::new(),
            input: VecDeque::new(),
            output: Vec::new(),
            stats: VmStats::default(),
            budget: u64::MAX,
            entry_base: 0,
            decoded: None,
        }
    }

    /// Bound the number of instructions executed.
    pub fn set_budget(&mut self, n: u64) {
        self.budget = n;
    }

    /// Execution statistics.
    pub fn stats(&self) -> VmStats {
        self.stats
    }

    /// Release every value still held by the machine (top-level bindings
    /// and operand-stack leftovers). Call when the program is done and
    /// reference accounting must balance.
    pub fn shutdown(&mut self) {
        while let Some(v) = self.stack.pop() {
            self.release_value(&v);
        }
        while let Some((_, v)) = self.bindings.pop() {
            self.release_value(&v);
        }
        self.frames.clear();
    }

    /// Swap in a new program, keeping the backend, the global bindings,
    /// and the I/O queues — the *session reuse* entry point: a serving
    /// layer compiles each request against a persistent interner and
    /// runs it on the same machine, so `setq`-created globals (and the
    /// list structure they retain) survive from one request to the
    /// next.
    ///
    /// Any leftover operand-stack values or frames from a previous
    /// (possibly failed) run are released first, exactly as
    /// [`Vm::recover`] would.
    pub fn load_program(&mut self, program: Program) {
        self.recover();
        self.program = program;
        self.decoded = None;
    }

    /// Unwind to the global level after a failed run: pop every call
    /// frame, release call-local bindings (everything at or above the
    /// outermost frame's binding mark) and all operand-stack leftovers.
    /// Globals — bindings below the first frame, including ones an
    /// unbound `setq` created mid-call — survive. A no-op on a machine
    /// that is already at rest.
    pub fn recover(&mut self) {
        let global_mark = self.frames.first().map_or(self.bindings.len(), |f| {
            f.bind_mark.min(self.bindings.len())
        });
        while self.bindings.len() > global_mark {
            let (_, v) = self.bindings.pop().expect("marked binding");
            self.release_value(&v);
        }
        self.frames.clear();
        while let Some(v) = self.stack.pop() {
            self.release_value(&v);
        }
    }

    /// The global bindings (name–value pairs below any call frame), in
    /// binding order. Only meaningful when the machine is at rest
    /// (after [`Vm::run`] returned and [`Vm::recover`] ran if it
    /// failed); a session layer serializes these to suspend a session.
    pub fn globals(&self) -> &[(Symbol, VmValue<B::Ref>)] {
        debug_assert!(self.frames.is_empty(), "globals read mid-call");
        &self.bindings
    }

    /// Restore the global bindings of a suspended session, in the exact
    /// order [`Vm::globals`] reported them. The values arrive with
    /// their references already accounted for in the restored backend
    /// (no `retain` is issued); the machine must be at rest and must
    /// not already hold bindings.
    pub fn restore_globals(&mut self, globals: Vec<(Symbol, VmValue<B::Ref>)>) {
        assert!(
            self.bindings.is_empty() && self.frames.is_empty(),
            "restore_globals on a machine that is not fresh"
        );
        self.bindings = globals;
    }

    /// Run from the program entry point; returns the final value left on
    /// the operand stack by `Halt` (or nil).
    ///
    /// Dispatch backend selection: the default build routes through the
    /// pre-decoded threaded-dispatch loop ([`Vm::run_threaded`]); with
    /// the `reference-interp` feature on, it routes through the original
    /// decode-per-step `match` loop ([`Vm::run_reference`]). Both
    /// backends execute the same per-opcode handlers, so results, stats,
    /// and backend traffic are identical instruction for instruction.
    pub fn run(&mut self) -> Result<VmValue<B::Ref>, VmError> {
        #[cfg(feature = "reference-interp")]
        {
            self.run_reference()
        }
        #[cfg(not(feature = "reference-interp"))]
        {
            self.run_threaded()
        }
    }

    /// Run with the reference interpreter: re-decode `Inst` and branch
    /// through a `match` on every step. This is the semantic oracle the
    /// dispatch differential suite holds [`Vm::run_threaded`] against.
    pub fn run_reference(&mut self) -> Result<VmValue<B::Ref>, VmError> {
        // Everything bound before this run (globals from earlier
        // requests, including persisted top-level prog locals) sits
        // below the entry block's own slot space.
        self.entry_base = self.bindings.len();
        let mut pc = self.program.entry;
        loop {
            if self.budget == 0 {
                return Err(VmError::StepBudget);
            }
            self.budget -= 1;
            self.stats.instructions += 1;
            let inst = self.program.code[pc];
            pc += 1;
            match inst {
                Inst::Halt => {
                    return Ok(self.stack.pop().unwrap_or(VmValue::Nil));
                }
                Inst::BindN(sym) => self.do_bindn(sym)?,
                Inst::BindNil(sym) => self.do_bindnil(sym),
                Inst::PushStk(k) => self.do_pushstk(k)?,
                Inst::PushName(sym) => self.do_pushname(sym)?,
                Inst::PushInt(i) => self.stack.push(VmValue::Int(i)),
                Inst::PushSym(s) => self.stack.push(VmValue::Sym(s)),
                Inst::PushNil => self.stack.push(VmValue::Nil),
                Inst::PushConst(k) => self.do_pushconst(k)?,
                Inst::Pop => self.do_pop_discard()?,
                Inst::Dup => self.do_dup()?,
                Inst::SetStk(k) => self.do_setstk(k)?,
                Inst::SetName(sym) => self.do_setname(sym)?,
                Inst::Jmp(a) => pc = a,
                Inst::Brf(a) => self.do_brf(a, &mut pc)?,
                Inst::Brt(a) => self.do_brt(a, &mut pc)?,
                Inst::BrNeq(a) => self.do_brneq(a, &mut pc)?,
                Inst::AddOp => self.do_add()?,
                Inst::SubOp => self.do_sub()?,
                Inst::MulOp => self.do_mul()?,
                Inst::DivOp => self.do_div()?,
                Inst::RemOp => self.do_rem()?,
                Inst::EqualP => self.do_equalp()?,
                Inst::EqP => self.do_eqp()?,
                Inst::GreaterP => self.do_greaterp()?,
                Inst::LessP => self.do_lessp()?,
                Inst::AtomP => self.do_atomp()?,
                Inst::NullP => self.do_nullp()?,
                Inst::CarOp => self.do_car()?,
                Inst::CdrOp => self.do_cdr()?,
                Inst::ConsOp => self.do_cons()?,
                Inst::RplacaOp => self.do_rplaca()?,
                Inst::RplacdOp => self.do_rplacd()?,
                Inst::RdList => self.do_rdlist()?,
                Inst::WrList => self.do_wrlist()?,
                Inst::FCall(name, _nargs) => {
                    let fi = self
                        .program
                        .functions
                        .get(&name)
                        .copied()
                        .ok_or_else(|| VmError::NoSuchFunction(format!("#{}", name.0)))?;
                    self.do_call(fi.entry, fi.arity, &mut pc);
                }
                Inst::FRetN => {
                    if let Some(ret) = self.do_fretn(&mut pc)? {
                        // `return` at top level (outside any call): the
                        // program's final value.
                        return Ok(ret);
                    }
                }
            }
        }
    }

    /// Run with threaded dispatch: on first use the program is decoded
    /// into a dense array of handler-fn entries with operands resolved
    /// (branch targets absolute, `FCall` targets looked up once), then
    /// the loop is an indexed load and an indirect call per step — no
    /// per-step operand decoding or function-table hashing.
    pub fn run_threaded(&mut self) -> Result<VmValue<B::Ref>, VmError> {
        let ops = match &self.decoded {
            Some(ops) => Arc::clone(ops),
            None => {
                let ops: Arc<[DecodedOp<B>]> = self
                    .program
                    .code
                    .iter()
                    .map(|&inst| Self::decode_inst(inst, &self.program))
                    .collect();
                self.decoded = Some(Arc::clone(&ops));
                ops
            }
        };
        // Everything bound before this run (globals from earlier
        // requests, including persisted top-level prog locals) sits
        // below the entry block's own slot space.
        self.entry_base = self.bindings.len();
        let mut pc = self.program.entry;
        loop {
            if self.budget == 0 {
                return Err(VmError::StepBudget);
            }
            self.budget -= 1;
            self.stats.instructions += 1;
            let op = &ops[pc];
            pc += 1;
            match (op.handler)(self, op, &mut pc)? {
                Step::Next => {}
                Step::Done(v) => return Ok(v),
            }
        }
    }

    // -----------------------------------------------------------------
    // Threaded-dispatch decode and handlers
    // -----------------------------------------------------------------

    fn decode_inst(inst: Inst, program: &Program) -> DecodedOp<B> {
        let mut op = DecodedOp {
            handler: Self::th_halt as Handler<B>,
            addr: 0,
            num: 0,
            sym: Symbol(0),
            n: 0,
        };
        match inst {
            Inst::Halt => op.handler = Self::th_halt,
            Inst::BindN(s) => (op.handler, op.sym) = (Self::th_bindn, s),
            Inst::BindNil(s) => (op.handler, op.sym) = (Self::th_bindnil, s),
            Inst::PushStk(k) => (op.handler, op.n) = (Self::th_pushstk, k),
            Inst::PushName(s) => (op.handler, op.sym) = (Self::th_pushname, s),
            Inst::PushInt(i) => (op.handler, op.num) = (Self::th_pushint, i),
            Inst::PushSym(s) => (op.handler, op.sym) = (Self::th_pushsym, s),
            Inst::PushNil => op.handler = Self::th_pushnil,
            Inst::PushConst(k) => (op.handler, op.n) = (Self::th_pushconst, k),
            Inst::Pop => op.handler = Self::th_pop,
            Inst::Dup => op.handler = Self::th_dup,
            Inst::SetStk(k) => (op.handler, op.n) = (Self::th_setstk, k),
            Inst::SetName(s) => (op.handler, op.sym) = (Self::th_setname, s),
            Inst::Jmp(a) => (op.handler, op.addr) = (Self::th_jmp, a),
            Inst::Brf(a) => (op.handler, op.addr) = (Self::th_brf, a),
            Inst::Brt(a) => (op.handler, op.addr) = (Self::th_brt, a),
            Inst::BrNeq(a) => (op.handler, op.addr) = (Self::th_brneq, a),
            Inst::AddOp => op.handler = Self::th_add,
            Inst::SubOp => op.handler = Self::th_sub,
            Inst::MulOp => op.handler = Self::th_mul,
            Inst::DivOp => op.handler = Self::th_div,
            Inst::RemOp => op.handler = Self::th_rem,
            Inst::EqualP => op.handler = Self::th_equalp,
            Inst::EqP => op.handler = Self::th_eqp,
            Inst::GreaterP => op.handler = Self::th_greaterp,
            Inst::LessP => op.handler = Self::th_lessp,
            Inst::AtomP => op.handler = Self::th_atomp,
            Inst::NullP => op.handler = Self::th_nullp,
            Inst::CarOp => op.handler = Self::th_car,
            Inst::CdrOp => op.handler = Self::th_cdr,
            Inst::ConsOp => op.handler = Self::th_cons,
            Inst::RplacaOp => op.handler = Self::th_rplaca,
            Inst::RplacdOp => op.handler = Self::th_rplacd,
            Inst::RdList => op.handler = Self::th_rdlist,
            Inst::WrList => op.handler = Self::th_wrlist,
            Inst::FCall(name, _nargs) => match program.functions.get(&name) {
                // The hash lookup the reference loop pays per call
                // happens once, here. A call to an undefined function
                // must still fail at *execution* time (the call site may
                // be dead code), so it decodes to an erroring handler.
                Some(fi) => {
                    (op.handler, op.addr, op.n) = (Self::th_call, fi.entry, u16::from(fi.arity))
                }
                None => (op.handler, op.sym) = (Self::th_call_missing, name),
            },
            Inst::FRetN => op.handler = Self::th_fretn,
        }
        op
    }

    fn th_halt(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        Ok(Step::Done(vm.stack.pop().unwrap_or(VmValue::Nil)))
    }

    fn th_bindn(
        vm: &mut Self,
        op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_bindn(op.sym)?;
        Ok(Step::Next)
    }

    fn th_bindnil(
        vm: &mut Self,
        op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_bindnil(op.sym);
        Ok(Step::Next)
    }

    fn th_pushstk(
        vm: &mut Self,
        op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_pushstk(op.n)?;
        Ok(Step::Next)
    }

    fn th_pushname(
        vm: &mut Self,
        op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_pushname(op.sym)?;
        Ok(Step::Next)
    }

    fn th_pushint(
        vm: &mut Self,
        op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.stack.push(VmValue::Int(op.num));
        Ok(Step::Next)
    }

    fn th_pushsym(
        vm: &mut Self,
        op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.stack.push(VmValue::Sym(op.sym));
        Ok(Step::Next)
    }

    fn th_pushnil(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.stack.push(VmValue::Nil);
        Ok(Step::Next)
    }

    fn th_pushconst(
        vm: &mut Self,
        op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_pushconst(op.n)?;
        Ok(Step::Next)
    }

    fn th_pop(vm: &mut Self, _op: &DecodedOp<B>, _pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_pop_discard()?;
        Ok(Step::Next)
    }

    fn th_dup(vm: &mut Self, _op: &DecodedOp<B>, _pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_dup()?;
        Ok(Step::Next)
    }

    fn th_setstk(
        vm: &mut Self,
        op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_setstk(op.n)?;
        Ok(Step::Next)
    }

    fn th_setname(
        vm: &mut Self,
        op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_setname(op.sym)?;
        Ok(Step::Next)
    }

    fn th_jmp(vm: &mut Self, op: &DecodedOp<B>, pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        let _ = vm;
        *pc = op.addr;
        Ok(Step::Next)
    }

    fn th_brf(vm: &mut Self, op: &DecodedOp<B>, pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_brf(op.addr, pc)?;
        Ok(Step::Next)
    }

    fn th_brt(vm: &mut Self, op: &DecodedOp<B>, pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_brt(op.addr, pc)?;
        Ok(Step::Next)
    }

    fn th_brneq(vm: &mut Self, op: &DecodedOp<B>, pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_brneq(op.addr, pc)?;
        Ok(Step::Next)
    }

    fn th_add(vm: &mut Self, _op: &DecodedOp<B>, _pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_add()?;
        Ok(Step::Next)
    }

    fn th_sub(vm: &mut Self, _op: &DecodedOp<B>, _pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_sub()?;
        Ok(Step::Next)
    }

    fn th_mul(vm: &mut Self, _op: &DecodedOp<B>, _pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_mul()?;
        Ok(Step::Next)
    }

    fn th_div(vm: &mut Self, _op: &DecodedOp<B>, _pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_div()?;
        Ok(Step::Next)
    }

    fn th_rem(vm: &mut Self, _op: &DecodedOp<B>, _pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_rem()?;
        Ok(Step::Next)
    }

    fn th_equalp(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_equalp()?;
        Ok(Step::Next)
    }

    fn th_eqp(vm: &mut Self, _op: &DecodedOp<B>, _pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_eqp()?;
        Ok(Step::Next)
    }

    fn th_greaterp(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_greaterp()?;
        Ok(Step::Next)
    }

    fn th_lessp(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_lessp()?;
        Ok(Step::Next)
    }

    fn th_atomp(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_atomp()?;
        Ok(Step::Next)
    }

    fn th_nullp(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_nullp()?;
        Ok(Step::Next)
    }

    fn th_car(vm: &mut Self, _op: &DecodedOp<B>, _pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_car()?;
        Ok(Step::Next)
    }

    fn th_cdr(vm: &mut Self, _op: &DecodedOp<B>, _pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_cdr()?;
        Ok(Step::Next)
    }

    fn th_cons(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_cons()?;
        Ok(Step::Next)
    }

    fn th_rplaca(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_rplaca()?;
        Ok(Step::Next)
    }

    fn th_rplacd(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_rplacd()?;
        Ok(Step::Next)
    }

    fn th_rdlist(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_rdlist()?;
        Ok(Step::Next)
    }

    fn th_wrlist(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        vm.do_wrlist()?;
        Ok(Step::Next)
    }

    fn th_call(vm: &mut Self, op: &DecodedOp<B>, pc: &mut usize) -> Result<Step<B::Ref>, VmError> {
        vm.do_call(op.addr, op.n as u8, pc);
        Ok(Step::Next)
    }

    fn th_call_missing(
        _vm: &mut Self,
        op: &DecodedOp<B>,
        _pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        Err(VmError::NoSuchFunction(format!("#{}", op.sym.0)))
    }

    fn th_fretn(
        vm: &mut Self,
        _op: &DecodedOp<B>,
        pc: &mut usize,
    ) -> Result<Step<B::Ref>, VmError> {
        match vm.do_fretn(pc)? {
            Some(ret) => Ok(Step::Done(ret)),
            None => Ok(Step::Next),
        }
    }

    // -----------------------------------------------------------------
    // Per-opcode cores, shared by both dispatch backends
    // -----------------------------------------------------------------

    #[inline(always)]
    fn frame_base(&self) -> usize {
        self.frames.last().map_or(self.entry_base, |f| f.bind_mark)
    }

    #[inline(always)]
    fn do_bindn(&mut self, sym: Symbol) -> Result<(), VmError> {
        // The binding inherits the operand-stack reference.
        let v = self.pop()?;
        self.bindings.push((sym, v));
        Ok(())
    }

    #[inline(always)]
    fn do_bindnil(&mut self, sym: Symbol) {
        self.bindings.push((sym, VmValue::Nil));
    }

    #[inline(always)]
    fn do_pushstk(&mut self, k: u16) -> Result<(), VmError> {
        let base = self.frame_base();
        let v = self
            .bindings
            .get(base + k as usize)
            .ok_or(VmError::StackUnderflow)?
            .1
            .clone();
        self.retain_value(&v);
        self.stack.push(v);
        Ok(())
    }

    #[inline(always)]
    fn do_pushname(&mut self, sym: Symbol) -> Result<(), VmError> {
        self.stats.name_searches += 1;
        let v = self
            .bindings
            .iter()
            .rev()
            .find(|(n, _)| *n == sym)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| VmError::Unbound(format!("#{}", sym.0)))?;
        self.retain_value(&v);
        self.stack.push(v);
        Ok(())
    }

    #[inline(always)]
    fn do_pushconst(&mut self, k: u16) -> Result<(), VmError> {
        let e = self.program.constants[k as usize].clone();
        let v = self.backend.read_in(&e)?;
        self.stack.push(v);
        Ok(())
    }

    #[inline(always)]
    fn do_pop_discard(&mut self) -> Result<(), VmError> {
        let v = self.pop()?;
        self.release_value(&v);
        Ok(())
    }

    #[inline(always)]
    fn do_dup(&mut self) -> Result<(), VmError> {
        let v = self.peek()?.clone();
        self.retain_value(&v);
        self.stack.push(v);
        Ok(())
    }

    #[inline(always)]
    fn do_setstk(&mut self, k: u16) -> Result<(), VmError> {
        let v = self.peek()?.clone();
        self.retain_value(&v);
        let base = self.frame_base();
        let slot = self
            .bindings
            .get_mut(base + k as usize)
            .ok_or(VmError::StackUnderflow)?;
        let old = std::mem::replace(&mut slot.1, v);
        self.release_value(&old);
        Ok(())
    }

    #[inline(always)]
    fn do_setname(&mut self, sym: Symbol) -> Result<(), VmError> {
        self.stats.name_searches += 1;
        let v = self.peek()?.clone();
        self.retain_value(&v);
        match self.bindings.iter_mut().rev().find(|(n, _)| *n == sym) {
            Some(slot) => {
                let old = std::mem::replace(&mut slot.1, v);
                self.release_value(&old);
            }
            None => {
                // Unbound setq creates a global binding below
                // every frame.
                self.bindings.insert(0, (sym, v));
                self.entry_base += 1;
                for f in &mut self.frames {
                    f.bind_mark += 1;
                }
            }
        }
        Ok(())
    }

    #[inline(always)]
    fn do_brf(&mut self, a: CodeAddr, pc: &mut usize) -> Result<(), VmError> {
        let v = self.pop()?;
        self.release_value(&v);
        if !v.is_true() {
            *pc = a;
        }
        Ok(())
    }

    #[inline(always)]
    fn do_brt(&mut self, a: CodeAddr, pc: &mut usize) -> Result<(), VmError> {
        let v = self.pop()?;
        self.release_value(&v);
        if v.is_true() {
            *pc = a;
        }
        Ok(())
    }

    #[inline(always)]
    fn do_brneq(&mut self, a: CodeAddr, pc: &mut usize) -> Result<(), VmError> {
        let b = self.pop()?;
        let x = self.pop()?;
        let eq = self.backend.equal(&x, &b);
        self.release_value(&b);
        self.release_value(&x);
        if !eq {
            *pc = a;
        }
        Ok(())
    }

    #[inline(always)]
    fn do_add(&mut self) -> Result<(), VmError> {
        self.arith(|x, y| Ok(x.wrapping_add(y)))
    }

    #[inline(always)]
    fn do_sub(&mut self) -> Result<(), VmError> {
        self.arith(|x, y| Ok(x.wrapping_sub(y)))
    }

    #[inline(always)]
    fn do_mul(&mut self) -> Result<(), VmError> {
        self.arith(|x, y| Ok(x.wrapping_mul(y)))
    }

    #[inline(always)]
    fn do_div(&mut self) -> Result<(), VmError> {
        self.arith(|x, y| {
            if y == 0 {
                Err(VmError::DivideByZero)
            } else {
                Ok(x / y)
            }
        })
    }

    #[inline(always)]
    fn do_rem(&mut self) -> Result<(), VmError> {
        self.arith(|x, y| {
            if y == 0 {
                Err(VmError::DivideByZero)
            } else {
                Ok(x % y)
            }
        })
    }

    #[inline(always)]
    fn do_equalp(&mut self) -> Result<(), VmError> {
        let b = self.pop()?;
        let a = self.pop()?;
        let eq = self.backend.equal(&a, &b);
        self.release_value(&a);
        self.release_value(&b);
        self.push_bool(eq);
        Ok(())
    }

    #[inline(always)]
    fn do_eqp(&mut self) -> Result<(), VmError> {
        let b = self.pop()?;
        let a = self.pop()?;
        let eq = a == b;
        self.release_value(&a);
        self.release_value(&b);
        self.push_bool(eq);
        Ok(())
    }

    #[inline(always)]
    fn do_greaterp(&mut self) -> Result<(), VmError> {
        let (x, y) = self.two_ints()?;
        self.push_bool(x > y);
        Ok(())
    }

    #[inline(always)]
    fn do_lessp(&mut self) -> Result<(), VmError> {
        let (x, y) = self.two_ints()?;
        self.push_bool(x < y);
        Ok(())
    }

    #[inline(always)]
    fn do_atomp(&mut self) -> Result<(), VmError> {
        let v = self.pop()?;
        self.release_value(&v);
        self.push_bool(v.is_atom());
        Ok(())
    }

    #[inline(always)]
    fn do_nullp(&mut self) -> Result<(), VmError> {
        let v = self.pop()?;
        self.release_value(&v);
        self.push_bool(!v.is_true());
        Ok(())
    }

    #[inline(always)]
    fn do_car(&mut self) -> Result<(), VmError> {
        self.stats.list_ops += 1;
        let v = self.pop()?;
        let out = match &v {
            VmValue::List(r) => self.backend.car(r)?,
            VmValue::Nil => VmValue::Nil,
            _ => return Err(VmError::TypeError("car")),
        };
        self.release_value(&v);
        self.stack.push(out);
        Ok(())
    }

    #[inline(always)]
    fn do_cdr(&mut self) -> Result<(), VmError> {
        self.stats.list_ops += 1;
        let v = self.pop()?;
        let out = match &v {
            VmValue::List(r) => self.backend.cdr(r)?,
            VmValue::Nil => VmValue::Nil,
            _ => return Err(VmError::TypeError("cdr")),
        };
        self.release_value(&v);
        self.stack.push(out);
        Ok(())
    }

    #[inline(always)]
    fn do_cons(&mut self) -> Result<(), VmError> {
        self.stats.list_ops += 1;
        let cdr = self.pop()?;
        let car = self.pop()?;
        let r = self.backend.cons(car.clone(), cdr.clone())?;
        self.release_value(&car);
        self.release_value(&cdr);
        self.stack.push(VmValue::List(r));
        Ok(())
    }

    #[inline(always)]
    fn do_rplaca(&mut self) -> Result<(), VmError> {
        self.stats.list_ops += 1;
        let v = self.pop()?;
        let target = self.pop()?;
        match &target {
            VmValue::List(r) => self.backend.rplaca(r, v.clone())?,
            _ => return Err(VmError::TypeError("rplaca")),
        }
        self.release_value(&v);
        self.stack.push(target);
        Ok(())
    }

    #[inline(always)]
    fn do_rplacd(&mut self) -> Result<(), VmError> {
        self.stats.list_ops += 1;
        let v = self.pop()?;
        let target = self.pop()?;
        match &target {
            VmValue::List(r) => self.backend.rplacd(r, v.clone())?,
            _ => return Err(VmError::TypeError("rplacd")),
        }
        self.release_value(&v);
        self.stack.push(target);
        Ok(())
    }

    #[inline(always)]
    fn do_rdlist(&mut self) -> Result<(), VmError> {
        let e = self.input.pop_front().ok_or(VmError::ReadEof)?;
        let v = self.backend.read_in(&e)?;
        self.stack.push(v);
        Ok(())
    }

    #[inline(always)]
    fn do_wrlist(&mut self) -> Result<(), VmError> {
        let v = self.peek()?.clone();
        let e = self.backend.write_out(&v);
        self.output.push(e);
        Ok(())
    }

    #[inline(always)]
    fn do_call(&mut self, entry: CodeAddr, arity: u8, pc: &mut usize) {
        self.stats.fn_calls += 1;
        self.frames.push(Frame {
            ret_pc: *pc,
            bind_mark: self.bindings.len(),
            op_mark: self.stack.len().saturating_sub(arity as usize),
        });
        self.stats.max_depth = self.stats.max_depth.max(self.frames.len());
        *pc = entry;
    }

    /// Returns `Some(value)` on a top-level `return` (outside any call).
    #[inline(always)]
    fn do_fretn(&mut self, pc: &mut usize) -> Result<Option<VmValue<B::Ref>>, VmError> {
        let ret = self.pop()?;
        let Some(frame) = self.frames.pop() else {
            return Ok(Some(ret));
        };
        // Unbind this call's bindings, releasing list refs
        // (the burst of decrement traffic of §5.3.3).
        while self.bindings.len() > frame.bind_mark {
            let (_, v) = self.bindings.pop().expect("marked binding");
            self.release_value(&v);
        }
        while self.stack.len() > frame.op_mark {
            let v = self.stack.pop().expect("marked operand");
            self.release_value(&v);
        }
        self.stack.push(ret);
        *pc = frame.ret_pc;
        Ok(None)
    }

    fn pop(&mut self) -> Result<VmValue<B::Ref>, VmError> {
        self.stack.pop().ok_or(VmError::StackUnderflow)
    }

    fn release_value(&mut self, v: &VmValue<B::Ref>) {
        if let VmValue::List(r) = v {
            self.backend.release(r);
        }
    }

    #[inline(always)]
    fn retain_value(&mut self, v: &VmValue<B::Ref>) {
        if let VmValue::List(r) = v {
            self.backend.retain(r);
        }
    }

    fn peek(&self) -> Result<&VmValue<B::Ref>, VmError> {
        self.stack.last().ok_or(VmError::StackUnderflow)
    }

    fn push_bool(&mut self, b: bool) {
        // Truth is any non-nil value; predicates feed Brf/Brt, so the
        // canonical truth constant is Int(1) (the VM has no access to the
        // interner to push the symbol `t`).
        self.stack
            .push(if b { VmValue::Int(1) } else { VmValue::Nil });
    }

    fn two_ints(&mut self) -> Result<(i64, i64), VmError> {
        let b = self.pop()?;
        let a = self.pop()?;
        match (a, b) {
            (VmValue::Int(x), VmValue::Int(y)) => Ok((x, y)),
            _ => Err(VmError::TypeError("integer comparison")),
        }
    }

    fn arith(&mut self, f: impl Fn(i64, i64) -> Result<i64, VmError>) -> Result<(), VmError> {
        let (x, y) = self.two_ints()?;
        self.stack.push(VmValue::Int(f(x, y)?));
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Direct backend: lists straight on a two-pointer heap
// ---------------------------------------------------------------------

use small_heap::{TwoPointerHeap, Word};

/// The conventional-machine baseline backend: list values live on a
/// [`TwoPointerHeap`], references are raw heap words.
pub struct DirectBackend {
    /// The backing heap.
    pub heap: TwoPointerHeap,
}

impl DirectBackend {
    /// Create a backend with a heap of `cells` cells.
    pub fn new(cells: usize) -> Self {
        DirectBackend {
            heap: TwoPointerHeap::with_capacity(cells),
        }
    }

    fn to_value(w: Word) -> VmValue<Word> {
        match w.tag() {
            Tag::Nil => VmValue::Nil,
            Tag::Int => VmValue::Int(w.as_int()),
            Tag::Sym => VmValue::Sym(Symbol(w.as_sym())),
            Tag::Ptr | Tag::Invisible => VmValue::List(w),
            _ => VmValue::Nil,
        }
    }

    fn to_word(v: &VmValue<Word>) -> Word {
        match v {
            VmValue::Nil => Word::NIL,
            VmValue::Int(i) => Word::int(*i),
            VmValue::Sym(s) => Word::sym(s.0),
            VmValue::List(w) => *w,
        }
    }
}

impl ListBackend for DirectBackend {
    type Ref = Word;

    fn car(&mut self, r: &Word) -> Result<VmValue<Word>, VmError> {
        Ok(Self::to_value(self.heap.car(r.addr())))
    }

    fn cdr(&mut self, r: &Word) -> Result<VmValue<Word>, VmError> {
        Ok(Self::to_value(self.heap.cdr(r.addr())))
    }

    fn cons(&mut self, car: VmValue<Word>, cdr: VmValue<Word>) -> Result<Word, VmError> {
        let cw = Self::to_word(&car);
        let dw = Self::to_word(&cdr);
        self.heap
            .alloc(cw, dw)
            .map(Word::ptr)
            .ok_or(VmError::Backend(BackendError::Heap(HeapError::Exhausted)))
    }

    fn rplaca(&mut self, r: &Word, v: VmValue<Word>) -> Result<(), VmError> {
        self.heap.rplaca(r.addr(), Self::to_word(&v));
        Ok(())
    }

    fn rplacd(&mut self, r: &Word, v: VmValue<Word>) -> Result<(), VmError> {
        self.heap.rplacd(r.addr(), Self::to_word(&v));
        Ok(())
    }

    fn read_in(&mut self, e: &SExpr) -> Result<VmValue<Word>, VmError> {
        let w = self
            .heap
            .intern(e)
            .ok_or(VmError::Backend(BackendError::Heap(HeapError::Exhausted)))?;
        Ok(Self::to_value(w))
    }

    fn write_out(&mut self, v: &VmValue<Word>) -> SExpr {
        self.heap.extract(Self::to_word(v))
    }

    fn equal(&mut self, a: &VmValue<Word>, b: &VmValue<Word>) -> bool {
        match (a, b) {
            (VmValue::List(x), VmValue::List(y)) => self.heap.extract(*x) == self.heap.extract(*y),
            // Cross-type numeric/bool truth: predicates push Int(1).
            (VmValue::Int(x), VmValue::Int(y)) => x == y,
            (VmValue::Sym(x), VmValue::Sym(y)) => x == y,
            (VmValue::Nil, VmValue::Nil) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile_program;
    use small_sexpr::{parse, print, Interner};

    fn run_src(src: &str) -> (String, Interner) {
        let mut i = Interner::new();
        let p = compile_program(src, &mut i).expect("compile");
        let mut vm = Vm::new(p, DirectBackend::new(65536));
        let v = vm.run().expect("run");
        let e = vm.backend.write_out(&v);
        (print(&e, &i), i)
    }

    #[test]
    fn factorial_figure_4_14() {
        let src = "
        (def fact (lambda (x)
          (cond ((equal x 0) 1)
                (t (times x (fact (sub x 1)))))))
        (fact 10)";
        assert_eq!(run_src(src).0, "3628800");
    }

    #[test]
    fn list_manipulation_figure_4_15() {
        let mut i = Interner::new();
        let src = "
        (def printit (lambda (junk) (write (cdr junk))))
        (def doit (lambda ()
          (prog (lst)
            (read lst)
            (printit lst)
            (setq lst (cdr (cdr lst)))
            (return lst))))
        (doit)";
        let p = compile_program(src, &mut i).unwrap();
        let mut vm = Vm::new(p, DirectBackend::new(4096));
        vm.input.push_back(parse("(a b c d)", &mut i).unwrap());
        let v = vm.run().unwrap();
        let out = vm.backend.write_out(&v);
        assert_eq!(print(&out, &i), "(c d)");
        assert_eq!(print(&vm.output[0], &i), "(b c d)");
    }

    #[test]
    fn quoted_constants() {
        assert_eq!(run_src("(car '(a b))").0, "a");
        assert_eq!(run_src("(cdr '(a (b c)))").0, "((b c))");
    }

    #[test]
    fn arithmetic_chain() {
        assert_eq!(run_src("(add 1 (times 2 3))").0, "7");
        assert_eq!(run_src("(sub 10 (quotient 7 2))").0, "7");
        assert_eq!(run_src("(rem 17 5)").0, "2");
    }

    #[test]
    fn cond_without_body_keeps_test_value() {
        assert_eq!(run_src("(cond (nil 1) (5))").0, "5");
        assert_eq!(run_src("(cond (nil 1))").0, "nil");
    }

    #[test]
    fn and_or_short_circuit() {
        assert_eq!(run_src("(and 1 2 3)").0, "3");
        assert_eq!(run_src("(and 1 nil 3)").0, "nil");
        assert_eq!(run_src("(or nil nil 7)").0, "7");
        assert_eq!(run_src("(or nil nil)").0, "nil");
    }

    #[test]
    fn prog_loop_with_go() {
        let src = "
        (def sum-to (lambda (n)
          (prog (acc i)
            (setq acc 0)
            (setq i 0)
            loop
            (cond ((greaterp i n) (return acc)))
            (setq acc (add acc i))
            (setq i (add i 1))
            (go loop))))
        (sum-to 100)";
        assert_eq!(run_src(src).0, "5050");
    }

    #[test]
    fn recursive_list_function() {
        let src = "
        (def append2 (lambda (a b)
          (cond ((null a) b)
                (t (cons (car a) (append2 (cdr a) b))))))
        (append2 '(1 2 3) '(4 5))";
        assert_eq!(run_src(src).0, "(1 2 3 4 5)");
    }

    #[test]
    fn rplaca_rplacd_on_heap() {
        let src = "
        (prog (x)
          (setq x '(1 2 3))
          (rplaca x 9)
          (rplacd (cdr x) '(7))
          (return x))";
        assert_eq!(run_src(src).0, "(9 2 7)");
    }

    #[test]
    fn free_variable_dynamic_scope() {
        let src = "
        (def g (lambda () x))
        (def f (lambda (x) (g)))
        (f 42)";
        assert_eq!(run_src(src).0, "42");
    }

    #[test]
    fn setq_of_unbound_creates_global() {
        let src = "
        (def f (lambda () (setq g 5)))
        (progn (f) g)";
        assert_eq!(run_src(src).0, "5");
    }

    #[test]
    fn stats_count_list_ops() {
        let mut i = Interner::new();
        let p = compile_program("(car (cdr '(1 2 3)))", &mut i).unwrap();
        let mut vm = Vm::new(p, DirectBackend::new(256));
        vm.run().unwrap();
        assert_eq!(vm.stats().list_ops, 2);
    }

    #[test]
    fn budget_stops_infinite_loop() {
        let mut i = Interner::new();
        let p = compile_program("(prog () loop (go loop))", &mut i).unwrap();
        let mut vm = Vm::new(p, DirectBackend::new(256));
        vm.set_budget(10_000);
        assert_eq!(vm.run(), Err(VmError::StepBudget));
    }

    #[test]
    fn load_program_keeps_globals_across_requests() {
        let mut i = Interner::new();
        let p1 = compile_program("(setq acc '(1 2 3))", &mut i).unwrap();
        let mut vm = Vm::new(p1, DirectBackend::new(4096));
        vm.run().unwrap();
        assert_eq!(vm.globals().len(), 1);

        let p2 = compile_program("(car acc)", &mut i).unwrap();
        vm.load_program(p2);
        let v = vm.run().unwrap();
        let out = vm.backend.write_out(&v);
        assert_eq!(print(&out, &i), "1");

        // A later request can rebind the same global.
        let p3 = compile_program("(progn (setq acc (cdr acc)) acc)", &mut i).unwrap();
        vm.load_program(p3);
        let v = vm.run().unwrap();
        let out = vm.backend.write_out(&v);
        assert_eq!(print(&out, &i), "(2 3)");
        assert_eq!(vm.globals().len(), 1);
    }

    #[test]
    fn top_level_prog_locals_do_not_alias_globals() {
        // Regression: on a reused machine the binding stack already
        // holds globals when the entry block runs, so top-level prog
        // locals (frame slots with no enclosing frame) must be
        // addressed above them — slot 0 is NOT binding 0.
        let mut i = Interner::new();
        let p1 = compile_program("(setq acc nil)", &mut i).unwrap();
        let mut vm = Vm::new(p1, DirectBackend::new(4096));
        vm.run().unwrap();

        let p2 = compile_program(
            "(prog (x) (setq x (cons 3 acc)) (rplaca x 1) (rplacd x acc) (return (car x)))",
            &mut i,
        )
        .unwrap();
        vm.load_program(p2);
        let v = vm.run().unwrap();
        let out = vm.backend.write_out(&v);
        assert_eq!(print(&out, &i), "1");

        // The global was only read, never clobbered through slot 0.
        let p3 = compile_program("acc", &mut i).unwrap();
        vm.load_program(p3);
        let v = vm.run().unwrap();
        let out = vm.backend.write_out(&v);
        assert_eq!(print(&out, &i), "nil");
    }

    #[test]
    fn recover_after_error_preserves_globals() {
        let mut i = Interner::new();
        let src = "
        (def f (lambda (x) (car 5)))
        (progn (setq g 7) (f 1))";
        let p = compile_program(src, &mut i).unwrap();
        let mut vm = Vm::new(p, DirectBackend::new(4096));
        assert_eq!(vm.run(), Err(VmError::TypeError("car")));
        vm.recover();
        assert_eq!(vm.globals().len(), 1);

        let p2 = compile_program("g", &mut i).unwrap();
        vm.load_program(p2);
        let v = vm.run().unwrap();
        let out = vm.backend.write_out(&v);
        assert_eq!(print(&out, &i), "7");
    }

    #[test]
    fn restore_globals_round_trips() {
        let mut i = Interner::new();
        let p1 = compile_program("(setq pair (cons 4 5))", &mut i).unwrap();
        let mut vm = Vm::new(p1, DirectBackend::new(4096));
        vm.run().unwrap();
        let saved = vm.globals().to_vec();

        // A fresh machine over the same backend resumes those bindings
        // (the direct backend has no refcounts, so moving the heap over
        // is the whole restore).
        let backend = std::mem::replace(&mut vm.backend, DirectBackend::new(16));
        let p2 = compile_program("(cdr pair)", &mut i).unwrap();
        let mut vm2 = Vm::new(p2, backend);
        vm2.restore_globals(saved);
        let v = vm2.run().unwrap();
        let out = vm2.backend.write_out(&v);
        assert_eq!(print(&out, &i), "5");
    }

    #[test]
    fn disassembly_mentions_fact_shape() {
        // Sanity-check the Figure 4.14 shape: BINDN, PUSHSTK, EQUALP…
        let mut i = Interner::new();
        let p = compile_program(
            "(def fact (lambda (x) (cond ((equal x 0) 1) (t (times x (fact (sub x 1)))))))",
            &mut i,
        )
        .unwrap();
        let dis = p.disassemble(&i);
        for needle in [
            "fact:",
            "BINDN    x",
            "PUSHSTK  1",
            "EQUALP",
            "FCALL    fact 1",
            "MULOP",
            "FRETN",
        ] {
            assert!(dis.contains(needle), "missing {needle} in:\n{dis}");
        }
    }
}
